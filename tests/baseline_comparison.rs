//! Integration tests for the Section-7 comparison: FANTOM versus the
//! classical Huffman baseline and the STG-style input expansion.

use fantom_flow::benchmarks;
use seance::baseline::{huffman_baseline, stg_expansion_estimate};
use seance::{synthesize, SynthesisOptions};

fn table1_options() -> SynthesisOptions {
    SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::default()
    }
}

#[test]
fn fantom_protects_every_hazard_the_baseline_leaves_exposed() {
    for table in benchmarks::paper_suite() {
        let fantom = synthesize(&table, &table1_options()).expect("synthesis succeeds");
        let baseline = huffman_baseline(&table).expect("baseline succeeds");
        assert_eq!(
            fantom.hazards.hazard_state_count(),
            baseline.unprotected_hazard_states,
            "{}",
            table.name()
        );
        // The protection is real: every hazard state appears in the fsv on-set.
        for m in &fantom.hazards.fl {
            assert!(fantom.factored.fsv_cover.covers_minterm(m));
        }
    }
}

#[test]
fn fantom_pays_for_protection_with_depth_not_with_state_count() {
    for table in benchmarks::paper_suite() {
        let fantom = synthesize(&table, &table1_options()).expect("synthesis succeeds");
        let baseline = huffman_baseline(&table).expect("baseline succeeds");
        let stg = stg_expansion_estimate(&table);

        // Depth overhead relative to the unprotected baseline.
        assert!(
            fantom.depth.total_depth >= baseline.total_depth,
            "{}",
            table.name()
        );
        // ... but the state-variable count is identical: the state space is
        // expanded only by the single fantom variable.
        assert_eq!(
            fantom.spec.num_state_vars(),
            baseline.state_vars,
            "{}",
            table.name()
        );
        // The STG route instead inflates the specification.
        if !table.multiple_input_change_transitions().is_empty() {
            assert!(stg.extra_states > 0, "{}", table.name());
            assert!(
                stg.expanded_steps > stg.original_transitions,
                "{}",
                table.name()
            );
        }
    }
}

#[test]
fn baseline_depth_is_two_levels_of_logic() {
    // The all-prime-implicant baseline is a plain AND-OR structure.
    for table in benchmarks::paper_suite() {
        let baseline = huffman_baseline(&table).expect("baseline succeeds");
        assert!(
            baseline.y_depth <= 2,
            "{}: baseline depth {}",
            table.name(),
            baseline.y_depth
        );
    }
}

#[test]
fn baseline_next_state_covers_are_valid_implementations() {
    use fantom_assign::assign;
    use seance::SpecifiedTable;
    for table in benchmarks::paper_suite() {
        let baseline = huffman_baseline(&table).expect("baseline succeeds");
        let assignment = assign(&table);
        let spec = SpecifiedTable::new(table.clone(), assignment).expect("spec builds");
        let functions = spec.next_state_functions().expect("consistent");
        for (f, cover) in functions.iter().zip(&baseline.y_covers) {
            assert!(cover.equivalent_to(f), "{}", table.name());
        }
    }
}

#[test]
fn depth_overhead_is_bounded_by_the_fsv_feedback() {
    // FANTOM's extra depth over the baseline is exactly the fsv pass plus the
    // factoring overhead; it never exceeds fsv_depth + a small constant.
    for table in benchmarks::paper_suite() {
        let fantom = synthesize(&table, &table1_options()).expect("synthesis succeeds");
        let baseline = huffman_baseline(&table).expect("baseline succeeds");
        let overhead = fantom.depth.total_depth - baseline.total_depth;
        assert!(
            overhead <= fantom.depth.fsv_depth + 4,
            "{}: overhead {} too large",
            table.name(),
            overhead
        );
    }
}
