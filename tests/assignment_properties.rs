//! Property-based integration tests for the state-assignment and
//! specification layers: race-freedom of the USTT assignment and consistency
//! of the specified next-state functions, checked on randomly generated
//! normal-mode flow tables.

use fantom_assign::{assign, required_dichotomies};
use fantom_flow::{Bits, FlowTable, StateId};
use proptest::prelude::*;
use seance::{synthesize, SpecifiedTable, SynthesisOptions};

/// Generate a random normal-mode, strongly connected flow table over two
/// inputs by the same construction the benchmark corpus uses: pick a stable
/// column per state, then wire every remaining column of every state to some
/// state that is stable there (or leave it unspecified).
fn arb_flow_table() -> impl Strategy<Value = FlowTable> {
    let num_states = 3usize..7;
    num_states
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(0usize..4, n), // stable column per state
                proptest::collection::vec(0usize..n, n * 4), // destination choices
                proptest::collection::vec(0u8..3, n * 4), // 0/1 = specify, 2 = leave out
                proptest::collection::vec(any::<bool>(), n), // output bit per state
            )
        })
        .prop_map(|(n, stable_cols, dests, specify, outputs)| {
            build_table(n, &stable_cols, &dests, &specify, &outputs)
        })
        .prop_filter("table must be acceptable to SEANCE", |t| {
            fantom_flow::validate::validate(t).is_acceptable()
        })
}

fn build_table(
    n: usize,
    stable_cols: &[usize],
    dests: &[usize],
    specify: &[u8],
    outputs: &[bool],
) -> FlowTable {
    let names: Vec<String> = (0..n).map(|i| format!("R{i}")).collect();
    let mut table = FlowTable::new("random", 2, 1, names).expect("non-empty table");
    for s in 0..n {
        let out = Bits::from_bools(vec![outputs[s]]);
        table
            .set_entry(
                StateId(s),
                stable_cols[s],
                Some(StateId(s)),
                Some(out.clone()),
            )
            .expect("valid entry");
        for c in 0..4 {
            if c == stable_cols[s] {
                continue;
            }
            let idx = s * 4 + c;
            if specify[idx] == 2 {
                continue;
            }
            // Destination must be stable under column c; walk from the random
            // choice until one is found (there may be none).
            let candidate = (0..n)
                .map(|k| (dests[idx] + k) % n)
                .find(|&d| stable_cols[d] == c);
            if let Some(d) = candidate {
                table
                    .set_entry(StateId(s), c, Some(StateId(d)), Some(out.clone()))
                    .expect("valid entry");
            }
        }
    }
    table
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Tracey assignment always verifies: unique codes and every required
    /// dichotomy separated by some state variable.
    #[test]
    fn assignment_is_always_race_free(table in arb_flow_table()) {
        let assignment = assign(&table);
        prop_assert!(assignment.verify(&table).is_ok());
    }

    /// Every required dichotomy is separated by at least one variable of the
    /// produced assignment (the defining property, stated directly).
    #[test]
    fn every_dichotomy_is_separated(table in arb_flow_table()) {
        let assignment = assign(&table);
        for d in required_dichotomies(&table) {
            prop_assert!(assignment.separates(&d), "dichotomy {} not separated", d);
        }
    }

    /// The single-transition-time filling never conflicts for a verified
    /// assignment, and every stable total state maps to itself.
    #[test]
    fn next_state_functions_are_consistent(table in arb_flow_table()) {
        let assignment = assign(&table);
        let spec = SpecifiedTable::new(table.clone(), assignment).expect("spec builds");
        let y = spec.next_state_functions().expect("no race conflicts");
        for s in table.states() {
            for c in table.stable_columns(s) {
                let m = spec.minterm(c, spec.code(s));
                for (bit, f) in y.iter().enumerate() {
                    prop_assert_eq!(f.is_on(m), spec.code(s).bit(bit));
                }
            }
        }
    }

    /// The full pipeline succeeds on every random acceptable table and the
    /// produced equations satisfy the structural hazard-freedom checks.
    #[test]
    fn pipeline_succeeds_on_random_tables(table in arb_flow_table()) {
        let options = SynthesisOptions { minimize_states: false, ..SynthesisOptions::default() };
        let result = synthesize(&table, &options).expect("synthesis succeeds");
        prop_assert!(seance::validate::verify_hold_property(&result).is_ok());
        prop_assert!(seance::validate::verify_fsv_marks_hazards(&result).is_ok());
        prop_assert!(seance::validate::verify_equations_implement_table(&result).is_ok());
    }
}
