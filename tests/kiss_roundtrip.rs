//! Integration tests for the KISS2 interchange path: every benchmark can be
//! exported, re-imported and synthesized to an identical machine.

use fantom_flow::{benchmarks, kiss, validate};
use seance::{synthesize, SynthesisOptions};

fn table1_options() -> SynthesisOptions {
    SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::default()
    }
}

#[test]
fn every_benchmark_round_trips_through_kiss2() {
    for table in benchmarks::all() {
        let text = kiss::write(&table);
        let back = kiss::parse(&text, table.name()).expect("round trip parses");
        assert_eq!(back.num_states(), table.num_states(), "{}", table.name());
        assert_eq!(back.num_inputs(), table.num_inputs());
        assert_eq!(back.num_outputs(), table.num_outputs());
        for s in table.states() {
            let name = table.state_name(s);
            let s2 = back.state_by_name(name).expect("state preserved");
            for c in 0..table.num_columns() {
                let next_a = table
                    .next_state(s, c)
                    .map(|t| table.state_name(t).to_string());
                let next_b = back
                    .next_state(s2, c)
                    .map(|t| back.state_name(t).to_string());
                assert_eq!(next_a, next_b, "{}: ({name}, {c})", table.name());
                assert_eq!(
                    table.output(s, c),
                    back.output(s2, c),
                    "{}: ({name}, {c})",
                    table.name()
                );
            }
        }
    }
}

#[test]
fn reparsed_tables_stay_valid_and_synthesize_identically() {
    for table in benchmarks::paper_suite() {
        let text = kiss::write(&table);
        let back = kiss::parse(&text, table.name()).expect("round trip parses");
        assert!(
            validate::validate(&back).is_acceptable(),
            "{}",
            table.name()
        );

        let a = synthesize(&table, &table1_options()).expect("original synthesizes");
        let b = synthesize(&back, &table1_options()).expect("reparsed synthesizes");
        assert_eq!(a.depth, b.depth, "{}", table.name());
        assert_eq!(
            a.hazards.hazard_state_count(),
            b.hazards.hazard_state_count()
        );
    }
}

#[test]
fn kiss_parser_handles_the_mcnc_dialect() {
    // Don't-care inputs, dash outputs, comments, reset state and .e terminator.
    let text = "\
# a tiny fragment in the MCNC dialect
.i 2
.o 1
.s 2
.p 5
.r idle
-0 idle idle 0
01 idle busy 0
-1 busy busy 1
00 busy idle 1
.e
";
    let table = kiss::parse(text, "fragment").expect("dialect parses");
    assert_eq!(table.num_states(), 2);
    let idle = table.state_by_name("idle").expect("reset state present");
    assert_eq!(idle.index(), 0, "reset state must come first");
    assert!(table.is_stable(idle, 0b00));
    assert!(table.is_stable(idle, 0b10));
    let busy = table.state_by_name("busy").expect("state parsed");
    assert!(table.is_stable(busy, 0b01));
    assert!(table.is_stable(busy, 0b11));
}

#[test]
fn malformed_kiss_inputs_are_rejected_with_line_numbers() {
    let missing_field = ".i 1\n.o 1\n0 a a\n";
    let err = kiss::parse(missing_field, "bad").unwrap_err();
    assert!(err.to_string().contains("line 3"), "{err}");

    let wrong_width = ".i 2\n.o 1\n0 a a 0\n";
    assert!(kiss::parse(wrong_width, "bad").is_err());

    let missing_directive = "00 a a 0\n";
    assert!(kiss::parse(missing_directive, "bad").is_err());
}
