//! Campaign integration tests: worker-count determinism and corpus
//! cleanliness of the Monte-Carlo hazard-validation driver.

use fantom_flow::benchmarks;
use seance::{
    run_campaign, run_campaign_sparse, synthesize, synthesize_sparse, CampaignOptions,
    SynthesisOptions,
};

fn corpus_synthesis_options() -> SynthesisOptions {
    SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::default()
    }
}

/// Same seed, same machine: the rendered report is byte-identical at 1, 2
/// and 8 workers. Every random draw derives from `(seed, assignment, step)`,
/// never from scheduling.
#[test]
fn campaign_report_is_byte_identical_across_worker_counts() {
    let options = corpus_synthesis_options();
    for table in [benchmarks::lion(), benchmarks::traffic()] {
        let result = synthesize(&table, &options).expect("corpus synthesizes");
        let reports: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&workers| {
                run_campaign(
                    &result,
                    &CampaignOptions {
                        assignments: 16,
                        workers,
                        ..CampaignOptions::default()
                    },
                )
            })
            .collect();
        let renders: Vec<String> = reports.iter().map(|r| r.render()).collect();
        assert_eq!(renders[0], renders[1], "{}: 1 vs 2 workers", table.name());
        assert_eq!(renders[0], renders[2], "{}: 1 vs 8 workers", table.name());
        // The per-variable glitch histograms are merged in submission order,
        // so they too must be scheduling-independent (and sized to the
        // machine, not left empty).
        for r in &reports[1..] {
            assert_eq!(
                r.protected_glitches_per_var,
                reports[0].protected_glitches_per_var,
                "{}: protected histogram",
                table.name()
            );
            assert_eq!(
                r.unprotected_glitches_per_var,
                reports[0].unprotected_glitches_per_var,
                "{}: unprotected histogram",
                table.name()
            );
            assert_eq!(
                r.output_glitches_per_var,
                reports[0].output_glitches_per_var,
                "{}: output histogram",
                table.name()
            );
        }
        assert_eq!(
            reports[0].protected_glitches_per_var.len(),
            reports[0].unprotected_glitches_per_var.len(),
            "{}: state histograms cover the same variables",
            table.name()
        );
        assert!(
            !reports[0].output_glitches_per_var.is_empty(),
            "{}: output histogram sized to the machine",
            table.name()
        );
    }
}

/// The whole small corpus validates clean: every protected transition
/// settles into the right state with the right outputs, no analytically
/// hazard-free state variable ever glitches, and the zero-delay oracle
/// agrees with the event-driven simulator throughout.
#[test]
fn small_corpus_campaigns_are_clean() {
    let options = corpus_synthesis_options();
    for table in benchmarks::all() {
        let result = synthesize(&table, &options).expect("corpus synthesizes");
        let report = run_campaign(
            &result,
            &CampaignOptions {
                assignments: 16,
                ..CampaignOptions::default()
            },
        );
        assert!(report.steps > 0, "{}", table.name());
        assert!(report.protected_steps > 0, "{}", table.name());
        assert!(report.is_clean(), "{}:\n{}", table.name(), report.render());
        // The zero-delay oracle may fail to find a fixpoint where a race
        // runs through unspecified table entries (`lion9`/`train11` each
        // have one such transition); instability must stay bounded by the
        // steps whose behaviour the table underdetermines.
        assert!(
            report.oracle_unstable <= report.unprotected_steps,
            "{}:\n{}",
            table.name(),
            report.render()
        );
    }
}

/// The large suite runs through the sparse pipeline with sampled sequences;
/// protected-transition checks must still be clean.
#[test]
fn large_suite_campaigns_are_clean_with_sampled_sequences() {
    for table in benchmarks::large_suite() {
        let options = SynthesisOptions::for_large_machines();
        let result = synthesize_sparse(&table, &options).expect("large machines synthesize");
        let report = run_campaign_sparse(
            &result,
            &CampaignOptions {
                assignments: 4,
                sequences_per_assignment: 4,
                ..CampaignOptions::default()
            },
        );
        assert!(report.steps > 0, "{}", table.name());
        assert!(report.is_clean(), "{}:\n{}", table.name(), report.render());
    }
}
