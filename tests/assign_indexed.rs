//! Differential tests for the indexed Step-3 covering engine.
//!
//! PR 10 rebuilt candidate generation on a shared inverted dichotomy index
//! with incrementally maintained coverage sets, replaced the rescan-per-pick
//! greedy loop with a lazy-max heap, and added adjacency seeding. The
//! pre-index implementation is retained verbatim in
//! [`fantom_bench::reference`] as the oracle; these tests pin the new engine
//! against it at the like-for-like configuration (two seed orderings, no
//! adjacency seeds — the only configuration where the old rotation orderings
//! contribute anything beyond Forward/Reverse) over the hand-written
//! benchmark suite, the seeded generator grid, and proptest-driven random
//! generator shapes, then check the full adjacency-seeded engine for
//! coverage validity and the width pins, and finally prove the dedicated-
//! partition fallback fires under candidate-budget starvation.

use fantom_assign::{
    assign_with_options, grow_candidates, required_dichotomies, select_partitions_in,
    AssignScratch, AssignmentOptions, Dichotomy,
};
use fantom_bench::reference::{scalar_candidate_growth, scalar_greedy_cover};
use fantom_flow::generate::{generate, GeneratorOptions};
use fantom_flow::{benchmarks, FlowTable};
use proptest::prelude::*;

/// The like-for-like configuration: Forward + Reverse orderings (the scalar
/// reference's rotation variants ≥ 2 are provably duplicates of Forward, so
/// two orderings is the largest pool both engines agree on) and no adjacency
/// seeds.
fn like_for_like() -> AssignmentOptions {
    AssignmentOptions {
        seed_orderings: 2,
        adjacency_seeding: false,
        ..AssignmentOptions::bounded()
    }
}

/// Assert the indexed grower enumerates exactly the scalar reference's
/// candidate pool — same dichotomies in the same order with the same
/// coverage sets.
fn assert_growth_matches(table: &FlowTable, scratch: &mut AssignScratch) {
    let dichotomies = required_dichotomies(table);
    let options = like_for_like();
    let reference = scalar_candidate_growth(&dichotomies, 2, options.max_candidate_partitions);
    let pool = grow_candidates(&dichotomies, &[], &options, scratch);
    assert_eq!(pool.len(), reference.len(), "{}: pool size", table.name());
    for (i, (p, (d, covers))) in pool.iter().zip(&reference).enumerate() {
        assert_eq!(p.dichotomy(), d, "{}: candidate {i}", table.name());
        assert!(
            p.covers().same_contents(covers),
            "{}: covers of candidate {i}",
            table.name()
        );
    }
}

#[test]
fn indexed_growth_matches_scalar_reference_on_benchmark_suite() {
    let mut scratch = AssignScratch::default();
    for table in benchmarks::all()
        .into_iter()
        .chain(benchmarks::large_suite())
    {
        assert_growth_matches(&table, &mut scratch);
    }
}

#[test]
fn indexed_growth_matches_scalar_reference_on_generator_grid() {
    let mut scratch = AssignScratch::default();
    for &states in &[10usize, 18, 26] {
        for &dc in &[0.25f64, 0.5, 0.75] {
            let table = generate(&GeneratorOptions {
                states,
                dc_density: dc,
                ..GeneratorOptions::default()
            });
            assert_growth_matches(&table, &mut scratch);
        }
    }
}

#[test]
fn lazy_greedy_matches_scalar_reference_on_suite_pools() {
    for table in benchmarks::all()
        .into_iter()
        .chain(benchmarks::large_suite())
    {
        let dichotomies = required_dichotomies(&table);
        let pool = scalar_candidate_growth(&dichotomies, 2, usize::MAX);
        let covers: Vec<_> = pool.into_iter().map(|(_, c)| c).collect();
        let num = dichotomies.len();
        assert_eq!(
            fantom_assign::greedy_cover_sets(&covers, num),
            scalar_greedy_cover(&covers, num),
            "{}: greedy picks diverge",
            table.name()
        );
    }
}

/// The full adjacency-seeded engine on every corpus machine: the assignment
/// must verify (unique codes, every required dichotomy separated) and the
/// known machines must stay within their width pins.
#[test]
fn adjacency_seeded_assignment_is_valid_within_pins() {
    let default = AssignmentOptions::default();
    assert!(
        default.adjacency_seeding,
        "adjacency seeding is the default"
    );
    let pins = [("lion9", 4), ("train11", 5)];
    for table in benchmarks::all() {
        let assignment = assign_with_options(&table, &default);
        assignment
            .verify(&table)
            .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        if let Some(&(_, pin)) = pins.iter().find(|(n, _)| *n == table.name()) {
            assert!(
                assignment.num_vars() <= pin,
                "{}: {} vars exceeds pin {pin}",
                table.name(),
                assignment.num_vars()
            );
        }
    }
    let bounded = AssignmentOptions::bounded();
    let pins = [("chain40", 12), ("ring44", 12), ("wide36", 11)];
    for table in benchmarks::large_suite() {
        let assignment = assign_with_options(&table, &bounded);
        assignment
            .verify(&table)
            .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        let (_, pin) = pins.iter().find(|(n, _)| *n == table.name()).unwrap();
        assert!(
            assignment.num_vars() <= *pin,
            "{}: {} vars exceeds pin {pin}",
            table.name(),
            assignment.num_vars()
        );
    }
    for &states in &[10usize, 18, 26] {
        for &dc in &[0.25f64, 0.5, 0.75] {
            let table = generate(&GeneratorOptions {
                states,
                dc_density: dc,
                ..GeneratorOptions::default()
            });
            let assignment = assign_with_options(&table, &bounded);
            assignment
                .verify(&table)
                .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        }
    }
}

/// Starve the candidate budget to zero: the grower returns an empty pool, so
/// every partition in the selection can only have come from the dedicated-
/// partition fallback — which must still cover every dichotomy, and the
/// resulting assignment must still verify.
#[test]
fn budget_starvation_fires_dedicated_partition_fallback() {
    let starved = AssignmentOptions {
        max_candidate_partitions: 0,
        exact_node_budget: 0,
        adjacency_seeding: true,
        ..AssignmentOptions::bounded()
    };
    let table = benchmarks::train11();
    let dichotomies = required_dichotomies(&table);
    assert!(!dichotomies.is_empty());

    let mut scratch = AssignScratch::default();
    let seeds: Vec<Dichotomy> = fantom_assign::adjacency_seeds(&table);
    assert!(
        grow_candidates(&dichotomies, &seeds, &starved, &mut scratch).is_empty(),
        "a zero budget must starve the candidate pool"
    );
    let partitions = select_partitions_in(&dichotomies, &seeds, &starved, &mut scratch);
    assert!(
        !partitions.is_empty(),
        "fallback must produce dedicated partitions"
    );
    for (i, d) in dichotomies.iter().enumerate() {
        assert!(
            partitions.iter().any(|p| p.covers().contains(i as u64)),
            "dichotomy {d} not covered by the fallback partitions"
        );
    }

    let assignment = assign_with_options(&table, &starved);
    assignment
        .verify(&table)
        .expect("starved assignment verifies");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Growth equality holds on random generator shapes, not just the pinned
    /// lattice: any machine the generator emits yields identical candidate
    /// pools from the indexed engine and the scalar reference.
    #[test]
    fn indexed_growth_matches_scalar_reference_on_random_shapes(
        states in 6usize..16,
        dc_pct in 0u32..90,
        seed in 0u64..1024,
    ) {
        let table = generate(&GeneratorOptions {
            states,
            dc_density: f64::from(dc_pct) / 100.0,
            seed,
            ..GeneratorOptions::default()
        });
        let dichotomies = required_dichotomies(&table);
        let options = like_for_like();
        let reference =
            scalar_candidate_growth(&dichotomies, 2, options.max_candidate_partitions);
        let mut scratch = AssignScratch::default();
        let pool = grow_candidates(&dichotomies, &[], &options, &mut scratch);
        prop_assert_eq!(pool.len(), reference.len());
        for (p, (d, covers)) in pool.iter().zip(&reference) {
            prop_assert_eq!(p.dichotomy(), d);
            prop_assert!(p.covers().same_contents(covers));
        }
    }
}
