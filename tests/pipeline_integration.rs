//! Integration tests spanning the whole workspace: flow tables → minimization
//! → assignment → SEANCE synthesis → reporting.

use fantom_flow::benchmarks;
use seance::{synthesize, table1_row, SynthesisOptions};

fn table1_options() -> SynthesisOptions {
    SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::default()
    }
}

#[test]
fn full_pipeline_reproduces_the_shape_of_table_1() {
    // The paper reports (fsv depth, Y depth, total depth):
    //   test example 3/5/9, traffic 3/5/9, lion 3/5/9, lion9 4/5/10, train11 2/5/8.
    // The reconstructed corpus is not bit-identical to the original MCNC files,
    // so we assert the shape: a few levels of fsv logic, roughly five levels of
    // next-state logic, and total = fsv + Y + 1 in the 7..=11 band.
    for table in benchmarks::paper_suite() {
        let result = synthesize(&table, &table1_options()).expect("synthesis succeeds");
        let row = table1_row(&result);
        assert!(
            (2..=5).contains(&row.fsv_depth),
            "{}: fsv depth {} outside the expected band",
            row.benchmark,
            row.fsv_depth
        );
        assert!(
            (3..=6).contains(&row.y_depth),
            "{}: Y depth {} outside the expected band",
            row.benchmark,
            row.y_depth
        );
        assert!(
            (6..=11).contains(&row.total_depth),
            "{}: total depth {} outside the expected band",
            row.benchmark,
            row.total_depth
        );
        assert_eq!(row.total_depth, row.fsv_depth + row.y_depth + 1);
    }
}

#[test]
fn paper_running_example_matches_table_1_exactly() {
    let result =
        synthesize(&benchmarks::test_example(), &table1_options()).expect("synthesis succeeds");
    let row = table1_row(&result);
    assert_eq!((row.fsv_depth, row.y_depth, row.total_depth), (3, 5, 9));
}

#[test]
fn synthesis_is_deterministic() {
    for table in benchmarks::paper_suite() {
        let a = synthesize(&table, &table1_options()).expect("synthesis succeeds");
        let b = synthesize(&table, &table1_options()).expect("synthesis succeeds");
        assert_eq!(a.depth, b.depth, "{}", table.name());
        assert_eq!(
            a.assignment.codes(),
            b.assignment.codes(),
            "{}",
            table.name()
        );
        assert_eq!(
            a.render_equations(),
            b.render_equations(),
            "{}",
            table.name()
        );
    }
}

#[test]
fn default_options_with_reduction_also_synthesize_everything() {
    for table in benchmarks::all() {
        let result = synthesize(&table, &SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        // Every synthesized machine satisfies the structural invariants.
        seance::validate::verify_hold_property(&result)
            .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        seance::validate::verify_fsv_marks_hazards(&result)
            .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        seance::validate::verify_equations_implement_table(&result)
            .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
    }
}

#[test]
fn synthesis_scales_through_the_whole_corpus_quickly() {
    let start = std::time::Instant::now();
    for table in benchmarks::all() {
        synthesize(&table, &table1_options()).expect("synthesis succeeds");
    }
    // The paper quotes ~4 s per example on a VAXStation 3100; the whole corpus
    // should synthesize well within a minute on any modern machine even in
    // debug builds.
    assert!(
        start.elapsed() < std::time::Duration::from_secs(60),
        "corpus synthesis took {:?}",
        start.elapsed()
    );
}

#[test]
fn reduction_then_synthesis_preserves_hazard_protection() {
    // When Step 2 merges states, every remaining multiple-input-change hazard
    // must still be found and held.
    let table = benchmarks::redundant_traffic();
    let result = synthesize(&table, &SynthesisOptions::default()).expect("synthesis succeeds");
    assert!(result.reduced_table.num_states() < table.num_states());
    seance::validate::verify_hold_property(&result).expect("hold property");
    let expected_mic = result.reduced_table.multiple_input_change_transitions();
    assert!(!expected_mic.is_empty());
}
