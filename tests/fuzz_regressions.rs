//! Replay of the checked-in fuzz-regression corpus and the external-style
//! benchmark set through both synthesis pipelines.
//!
//! `tests/fuzz_regressions/` holds the pinned shrunk shapes from fuzz runs
//! (all-clean so far: each file is a minimal table that still carries a
//! multiple-input-change transition). Every checked-in KISS2 file — here and
//! in `benchmarks/` — goes through `seance::fuzz::check_table`: sparse
//! synthesis, the dense/sparse pointwise differential where the machine fits
//! the dense engine, and a validation campaign. A bug fixed once stays fixed.

use std::path::Path;

use fantom_flow::{benchmarks, kiss};
use seance::fuzz::{check_table, check_table_campaign_only, regression_corpus};

fn repo_dir(relative: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(relative)
}

#[test]
fn regression_corpus_replays_clean_through_both_pipelines() {
    let tables =
        benchmarks::import_kiss_dir(&repo_dir("tests/fuzz_regressions")).expect("corpus imports");
    assert!(
        tables.len() >= 10,
        "regression corpus must pin at least 10 shapes, found {}",
        tables.len()
    );
    for table in &tables {
        check_table(table, 4).unwrap_or_else(|msg| panic!("{}: {msg}", table.name()));
    }
}

#[test]
fn benchmark_grid_replays_clean_through_both_pipelines() {
    let tables = benchmarks::import_kiss_dir(&repo_dir("benchmarks")).expect("benchmarks import");
    assert!(
        tables.len() >= 9,
        "benchmarks/ must hold the 3x3 grid, found {}",
        tables.len()
    );
    for table in &tables {
        // The smallest grid row gets the full dense/sparse differential; the
        // 18/26-state shapes run sparse + campaign only — their dense `2^n`
        // tabulation is feasible but costs minutes in debug builds, and the
        // fuzz CI job covers them in release.
        if table.num_states() <= 10 {
            check_table(table, 2).unwrap_or_else(|msg| panic!("{}: {msg}", table.name()));
        } else {
            check_table_campaign_only(table, 2)
                .unwrap_or_else(|msg| panic!("{}: {msg}", table.name()));
        }
    }
}

/// The checked-in pin files are byte-identical to what the generator +
/// shrinker produce today — the corpus regenerates with
/// `cargo run --release --example fuzz -- --emit-corpus tests/fuzz_regressions`,
/// and any drift in the generator's stream is an intentional contract break
/// that must come with regenerated files.
#[test]
fn pinned_corpus_matches_regeneration() {
    for table in regression_corpus() {
        let path = repo_dir("tests/fuzz_regressions").join(format!("{}.kiss", table.name()));
        let checked_in =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            checked_in,
            kiss::write(&table),
            "{} drifted from the generator",
            table.name()
        );
    }
}
