//! Word-boundary property tests over *generated* machines.
//!
//! `crates/boolean/tests/cube_kernel_properties.rs` pins the packed cube
//! kernel against a naive reference at 31/32/33 variables using random
//! hand-built cubes. This test drives the same 1-word/2-word boundary with
//! the cubes the pipeline actually produces: covers synthesized from seeded
//! generated flow tables are embedded into 31/32/33-variable universes at
//! offsets that straddle bit 32, and every kernel operation the Step 5/7
//! engines rely on (containment, intersection, supercube, adjacency merge,
//! consensus, distance) must commute with the embedding — the embedded
//! padding is all don't-cares, so each operation's result is the embedded
//! original result, word splits notwithstanding.
//!
//! A second suite runs the same commutation at 127/128/129 and 255/256/257
//! variables, straddling every 32-variable word boundary on the way — in
//! particular the 128-variable boundary where the `fantom_boolean::lane`
//! kernels switch from full 256-bit lanes to their scalar tails, pinning the
//! lane tail path exactly as the original suite pins the `u64` tail.

use fantom_boolean::{Cube, Literal};
use fantom_flow::generate::{generate, GeneratorOptions};
use seance::fuzz::fuzz_synthesis_options;
use seance::synthesize_sparse;

/// Embed `cube` into a `width`-variable universe at `offset`: positions
/// outside `offset..offset + cube.num_vars()` are don't-cares.
fn embed(cube: &Cube, width: usize, offset: usize) -> Cube {
    let mut lits = vec![Literal::DontCare; width];
    for (i, lit) in cube.literals().enumerate() {
        lits[offset + i] = lit;
    }
    Cube::new(lits)
}

/// Every cover cube of the sparse synthesis result of `table`, grouped by
/// variable count (the fsv/Y covers live over the doubled `(fsv, x, y)`
/// space, the Z covers over the narrower output space, and cube operations
/// are only defined within one universe). Emission order inside each group
/// is fsv, Y, Z — the real workload of the Step 5/7 kernels.
fn pipeline_cube_groups(table: &fantom_flow::FlowTable) -> Vec<Vec<Cube>> {
    let result = synthesize_sparse(table, &fuzz_synthesis_options())
        .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
    let mut cubes: Vec<Cube> = result.factored.fsv_cover.cubes().to_vec();
    for cover in &result.factored.y_covers {
        cubes.extend(cover.cubes().iter().cloned());
    }
    for cover in &result.outputs.z_covers {
        cubes.extend(cover.cubes().iter().cloned());
    }
    let mut widths: Vec<usize> = cubes.iter().map(Cube::num_vars).collect();
    widths.sort_unstable();
    widths.dedup();
    widths
        .into_iter()
        .map(|n| {
            cubes
                .iter()
                .filter(|c| c.num_vars() == n)
                .cloned()
                .collect()
        })
        .collect()
}

/// An offset placing an `n`-variable cube across variable `boundary` of a
/// `width`-variable universe (start strictly before, end strictly after), or
/// `None` when no such placement exists.
fn straddle_offset(width: usize, n: usize, boundary: usize) -> Option<usize> {
    if n < 2 || width <= boundary {
        return None;
    }
    let lo = (boundary + 1).saturating_sub(n);
    let hi = (boundary - 1).min(width - n);
    if lo > hi {
        return None;
    }
    Some(boundary.saturating_sub(n / 2).clamp(lo, hi))
}

/// Offsets placing an `n`-variable cube against the start, the end, and
/// straddling every 32-variable word boundary of a `width`-variable universe
/// — which includes the 128-variable (4-word) *lane* boundary once `width`
/// crosses it.
fn boundary_offsets(width: usize, n: usize) -> Vec<usize> {
    let mut offsets = vec![0, width - n];
    for boundary in (32..width).step_by(32) {
        offsets.extend(straddle_offset(width, n, boundary));
    }
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

fn generated_corpus() -> Vec<fantom_flow::FlowTable> {
    [
        GeneratorOptions {
            seed: 0xB0_0B5,
            states: 8,
            inputs: 3,
            dc_density: 0.3,
            ..GeneratorOptions::default()
        },
        GeneratorOptions {
            seed: 0xB0_0B6,
            states: 12,
            inputs: 2,
            dc_density: 0.6,
            chain_depth: 1,
            ..GeneratorOptions::default()
        },
        GeneratorOptions {
            seed: 0xB0_0B7,
            states: 10,
            inputs: 4,
            outputs: 2,
            dc_density: 0.5,
            mic_stable_columns: 2,
            ..GeneratorOptions::default()
        },
    ]
    .iter()
    .map(generate)
    .collect()
}

/// Pairwise kernel-op/embedding commutation over every cover-cube group of
/// every corpus machine, at the given universe `widths`, over a bounded
/// pairwise `window` per group.
fn assert_ops_commute_at(widths: &[usize], window_cap: usize) {
    for table in generated_corpus() {
        let groups = pipeline_cube_groups(&table);
        assert!(!groups.is_empty(), "{}: no cover cubes", table.name());
        for cubes in groups {
            let n = cubes[0].num_vars();
            // Pairwise over a bounded window so the test stays fast on the
            // larger machines.
            let window = cubes.len().min(window_cap);
            for &width in widths {
                if width < n {
                    continue;
                }
                for offset in boundary_offsets(width, n) {
                    for (a, b) in cubes[..window]
                        .iter()
                        .flat_map(|a| cubes[..window].iter().map(move |b| (a, b)))
                    {
                        let (ea, eb) = (embed(a, width, offset), embed(b, width, offset));
                        assert_eq!(
                            ea.covers(&eb),
                            a.covers(b),
                            "{}: covers at width {width} offset {offset}",
                            table.name()
                        );
                        assert_eq!(
                            ea.intersect(&eb),
                            a.intersect(b).map(|c| embed(&c, width, offset)),
                            "{}: intersect at width {width} offset {offset}",
                            table.name()
                        );
                        assert_eq!(
                            ea.supercube(&eb),
                            embed(&a.supercube(b), width, offset),
                            "{}: supercube at width {width} offset {offset}",
                            table.name()
                        );
                        assert_eq!(
                            ea.combine_adjacent(&eb),
                            a.combine_adjacent(b).map(|c| embed(&c, width, offset)),
                            "{}: combine_adjacent at width {width} offset {offset}",
                            table.name()
                        );
                        assert_eq!(
                            ea.consensus(&eb),
                            a.consensus(b).map(|c| embed(&c, width, offset)),
                            "{}: consensus at width {width} offset {offset}",
                            table.name()
                        );
                        assert_eq!(
                            ea.distance(&eb),
                            a.distance(b),
                            "{}: distance at width {width} offset {offset}",
                            table.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn pipeline_cover_ops_commute_with_boundary_embedding() {
    // The 1-word/2-word inline/heap boundary (the `u64` tail of the kernels).
    assert_ops_commute_at(&[31, 32, 33], 24);
}

#[test]
fn pipeline_cover_ops_commute_with_lane_boundary_embedding() {
    // The 4-word lane boundary of the `fantom_boolean::lane` kernels: 127/129
    // exercise the scalar-tail path on either side of one full lane, 128 the
    // exact-lane path; 255/256/257 the two-lane equivalents. The pairwise
    // window is smaller than the word-boundary suite's because each op here
    // walks 4–9 words per cube.
    assert_ops_commute_at(&[127, 128, 129, 255, 256, 257], 12);
}

/// Literal surgery on embedded pipeline cubes: reading and rewriting every
/// position across the boundary preserves all others — the `with_literal` /
/// `literal` pair the hazard engines use for cofactoring near bit 32.
#[test]
fn embedded_literal_surgery_round_trips() {
    for table in generated_corpus() {
        for cubes in pipeline_cube_groups(&table) {
            let n = cubes[0].num_vars();
            for &width in &[31usize, 32, 33] {
                if width < n {
                    continue;
                }
                let offset = boundary_offsets(width, n)[0];
                for a in cubes.iter().take(8) {
                    let ea = embed(a, width, offset);
                    for v in 0..width {
                        for lit in [Literal::Zero, Literal::One, Literal::DontCare] {
                            let q = ea.with_literal(v, lit);
                            for u in 0..width {
                                let expected = if u == v { lit } else { ea.literal(u) };
                                assert_eq!(
                                    q.literal(u),
                                    expected,
                                    "{}: width {width} offset {offset} v={v} u={u}",
                                    table.name()
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
