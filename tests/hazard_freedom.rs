//! End-to-end hazard-freedom validation: the synthesized FANTOM machines are
//! emitted as gate-level netlists and driven through every multiple-input
//! change with randomized gate delays and skewed input edges.

use fantom_flow::benchmarks;
use fantom_sim::{DelayModel, DelayStyle, Simulator};
use seance::emit::{emit, DEFAULT_LOOP_STAGES};
use seance::validate::{validate_machine, verify_hold_property};
use seance::{synthesize, SynthesisOptions};

fn table1_options() -> SynthesisOptions {
    SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::default()
    }
}

/// Benchmarks whose flow tables specify every intermediate entry of every
/// multiple-input-change transition. For these machines the paper's guarantee
/// is unconditional: invariant state variables may never glitch.
fn completely_specified_suite() -> Vec<fantom_flow::FlowTable> {
    vec![
        benchmarks::test_example(),
        benchmarks::traffic(),
        benchmarks::lion(),
        benchmarks::mic3(),
    ]
}

#[test]
fn every_multiple_input_change_reaches_the_correct_stable_state() {
    for table in benchmarks::paper_suite() {
        let result = synthesize(&table, &table1_options()).expect("synthesis succeeds");
        let summary = validate_machine(&result, &[1, 2]);
        assert!(
            !summary.is_empty(),
            "{} has no multiple-input changes",
            table.name()
        );
        assert!(
            summary.all_settled(),
            "{}: a transition did not settle",
            table.name()
        );
        assert!(
            summary.all_final_states_correct(),
            "{}: a transition reached the wrong state",
            table.name()
        );
        assert!(
            summary.all_outputs_correct(),
            "{}: a transition produced wrong outputs",
            table.name()
        );
    }
}

#[test]
fn invariant_state_variables_never_glitch_on_completely_specified_machines() {
    for table in completely_specified_suite() {
        let result = synthesize(&table, &table1_options()).expect("synthesis succeeds");
        let summary = validate_machine(&result, &[3, 17, 99]);
        assert_eq!(
            summary.total_invariant_glitches(),
            0,
            "{}: an invariant state variable glitched during a multiple-input change",
            table.name()
        );
    }
}

#[test]
fn changing_state_variables_obey_the_two_change_bound() {
    // "A FANTOM machine moves through at most two state changes regardless of
    // the number of bit changes in the input" (Section 7).
    for table in completely_specified_suite() {
        let result = synthesize(&table, &table1_options()).expect("synthesis succeeds");
        let summary = validate_machine(&result, &[5]);
        for check in &summary.checks {
            assert!(
                check.changing_variable_transitions <= 2,
                "{}: a state variable changed {} times",
                table.name(),
                check.changing_variable_transitions
            );
        }
    }
}

#[test]
fn hold_property_holds_even_without_state_reduction_or_with_it() {
    for table in benchmarks::all() {
        for minimize_states in [false, true] {
            let options = SynthesisOptions {
                minimize_states,
                ..SynthesisOptions::default()
            };
            let result = synthesize(&table, &options).expect("synthesis succeeds");
            verify_hold_property(&result)
                .unwrap_or_else(|e| panic!("{} (minimize={minimize_states}): {e}", table.name()));
        }
    }
}

/// Driving an emitted machine directly through the rebuilt simulator API:
/// configure the loop-delay assumption through the builder, initialize at a
/// stable total state, fire a multiple-input change, settle cleanly.
#[test]
fn builder_configured_machine_settles_through_a_multiple_input_change() {
    let result = synthesize(&benchmarks::lion(), &table1_options()).expect("synthesis succeeds");
    let machine = emit(&result, DEFAULT_LOOP_STAGES);
    let t = result
        .reduced_table
        .multiple_input_change_transitions()
        .into_iter()
        .next()
        .expect("lion has a multiple-input change");

    let loop_delay = (result.depth.total_depth as u64 + 4) * 9 * 2;
    let mut builder = Simulator::builder(&machine.netlist)
        .delay_model(DelayModel::Random {
            min: 4,
            max: 9,
            seed: 7,
        })
        .style(DelayStyle::Inertial)
        .event_budget(100_000);
    for gates in &machine.loop_gates {
        for &g in gates {
            builder = builder.gate_delay(g, loop_delay);
        }
    }
    let mut sim = builder.build();

    let mut fixed = Vec::new();
    for (i, &net) in machine.x.iter().enumerate() {
        fixed.push((net, t.from_input.bit(i)));
    }
    let from_code = result.spec.code(t.from_state);
    for (i, &net) in machine.y.iter().enumerate() {
        fixed.push((net, from_code.bit(i)));
    }
    sim.initialize_consistent(&fixed).expect("consistent init");
    sim.run_until_quiet().expect("quiescent start");

    for (i, &net) in machine.x.iter().enumerate() {
        if t.from_input.bit(i) != t.to_input.bit(i) {
            sim.schedule_input(net, t.to_input.bit(i), 1);
        }
    }
    sim.run_until_quiet().expect("machine settles");
    let to_code = result.spec.code(t.to_state);
    for (i, &net) in machine.y.iter().enumerate() {
        assert_eq!(sim.value(net), to_code.bit(i), "y{}", i + 1);
    }
}

#[test]
fn validation_is_reproducible_for_a_fixed_seed() {
    let result = synthesize(&benchmarks::lion(), &table1_options()).expect("synthesis succeeds");
    let a = validate_machine(&result, &[42]);
    let b = validate_machine(&result, &[42]);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.checks.iter().zip(&b.checks) {
        assert_eq!(x.final_state_correct, y.final_state_correct);
        assert_eq!(x.invariant_glitches, y.invariant_glitches);
        assert_eq!(
            x.changing_variable_transitions,
            y.changing_variable_transitions
        );
    }
}
