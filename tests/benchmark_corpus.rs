//! Integration tests over the benchmark corpus itself: the reconstructed
//! machines must be structurally faithful stand-ins for the MCNC originals.

use fantom_flow::{benchmarks, validate};
use fantom_minimize::reduce;

#[test]
fn corpus_has_the_canonical_sizes() {
    let sizes: Vec<(String, usize, usize, usize)> = benchmarks::paper_suite()
        .iter()
        .map(|t| {
            (
                t.name().to_string(),
                t.num_states(),
                t.num_inputs(),
                t.num_outputs(),
            )
        })
        .collect();
    assert_eq!(
        sizes,
        vec![
            ("test_example".to_string(), 4, 2, 1),
            ("traffic".to_string(), 4, 2, 2),
            ("lion".to_string(), 4, 2, 1),
            ("lion9".to_string(), 9, 2, 1),
            ("train11".to_string(), 11, 2, 1),
        ]
    );
}

#[test]
fn every_machine_is_a_valid_seance_input() {
    for table in benchmarks::all() {
        let report = validate::validate(&table);
        assert!(report.is_acceptable(), "{}: {report:?}", table.name());
    }
}

#[test]
fn every_machine_exercises_multiple_input_changes() {
    for table in benchmarks::all() {
        let mic = table.multiple_input_change_transitions();
        assert!(
            !mic.is_empty(),
            "{} has no multiple-input changes",
            table.name()
        );
        // And at least one distance-2 (or wider) change exists by definition.
        assert!(mic.iter().all(|t| t.input_distance() >= 2));
    }
}

#[test]
fn incompletely_specified_machines_are_present_in_the_corpus() {
    // SEANCE's generality claim: it accepts incompletely specified tables.
    let incomplete: Vec<String> = benchmarks::all()
        .into_iter()
        .filter(|t| !t.is_completely_specified())
        .map(|t| t.name().to_string())
        .collect();
    assert!(incomplete.contains(&"lion9".to_string()));
    assert!(incomplete.contains(&"train11".to_string()));
}

#[test]
fn reduction_only_merges_truly_compatible_states() {
    for table in benchmarks::all() {
        let reduction = reduce(&table);
        // Behaviour preservation: for every original specified entry, the
        // reduced machine's next class contains the original next state and
        // the specified output survives.
        for s in table.states() {
            let rs = reduction.map_state(s);
            for c in 0..table.num_columns() {
                if let Some(next) = table.next_state(s, c) {
                    let rnext = reduction.table.next_state(rs, c).expect("entry preserved");
                    assert!(
                        reduction.cover.classes[rnext.index()].contains(&next),
                        "{}: state {s} column {c}",
                        table.name()
                    );
                }
                if let Some(out) = table.output(s, c) {
                    assert_eq!(reduction.table.output(rs, c), Some(out), "{}", table.name());
                }
            }
        }
    }
}

#[test]
fn redundant_machine_reduces_while_distinct_output_machines_do_not() {
    // The deliberately redundant machine must shrink under Step 2 ...
    let reduced = reduce(&benchmarks::redundant_traffic());
    assert!(reduced.table.num_states() < 5);

    // ... while machines whose states are distinguishable by their outputs are
    // irreducible.
    for table in [benchmarks::traffic(), benchmarks::lion()] {
        let reduction = reduce(&table);
        assert_eq!(
            reduction.table.num_states(),
            table.num_states(),
            "{} unexpectedly reduced",
            table.name()
        );
    }
}

#[test]
fn kiss_export_of_the_corpus_is_parseable_by_name() {
    for table in benchmarks::all() {
        let text = fantom_flow::kiss::write(&table);
        assert!(text.contains(&format!(".i {}", table.num_inputs())));
        assert!(text.contains(&format!(".o {}", table.num_outputs())));
        let parsed = fantom_flow::kiss::parse(&text, table.name()).expect("parses");
        assert_eq!(parsed.name(), table.name());
    }
}
