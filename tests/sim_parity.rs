//! Scheduler parity: the indexed-queue simulator (`fantom_sim`) must behave
//! exactly like the retired global `BinaryHeap` scheduler
//! (`fantom_bench::heap_sim::HeapSimulator`) on the benchmark corpus.
//!
//! Transport mode is compared event-for-event (identical processed-event
//! counts — the two schedulers pop the same `(time, seq)` stream) on top of
//! identical waveforms. Inertial mode is compared on applied-value traces:
//! the old scheduler popped stale superseded events as tombstones, so its
//! processed count is an upper bound on the new one, but every committed
//! value change — and therefore every waveform and final state — must match.

use fantom_bench::heap_sim::{HeapDelayStyle, HeapSimulator};
use fantom_flow::benchmarks;
use fantom_sim::{DelayModel, DelayStyle, NetId, Netlist, Simulator};
use seance::emit::{emit, FantomNetlist};
use seance::{synthesize, SynthesisOptions};

fn machines() -> Vec<(String, FantomNetlist)> {
    benchmarks::all()
        .iter()
        .map(|table| {
            let options = SynthesisOptions {
                minimize_states: false,
                ..SynthesisOptions::default()
            };
            let result = synthesize(table, &options).expect("corpus synthesizes");
            (
                table.name().to_string(),
                emit(&result, seance::emit::DEFAULT_LOOP_STAGES),
            )
        })
        .collect()
}

/// Walking-bit stimulus over the primary inputs: toggles every input in a
/// staggered pattern so single- and multiple-input changes both occur.
fn stimulus(netlist: &Netlist) -> Vec<(NetId, bool, u64)> {
    let inputs = netlist.primary_inputs();
    let mut events = Vec::new();
    for round in 0..4u64 {
        for (i, &net) in inputs.iter().enumerate() {
            let value = (round + i as u64) % 2 == 0;
            events.push((net, value, 40 * (round + 1) + i as u64));
        }
    }
    events
}

fn all_waveforms(sim: &Simulator<'_>, num_nets: usize) -> Vec<Vec<(u64, bool)>> {
    (0..num_nets)
        .map(|n| sim.waveform(NetId(n)).expect("monitored").clone())
        .collect()
}

fn all_waveforms_heap(sim: &HeapSimulator<'_>, num_nets: usize) -> Vec<Vec<(u64, bool)>> {
    (0..num_nets)
        .map(|n| sim.waveform(NetId(n)).expect("monitored").clone())
        .collect()
}

fn run_pair<'a>(
    machine: &'a FantomNetlist,
    model: &DelayModel,
    style: DelayStyle,
    loop_delay: u64,
) -> (
    Result<u64, fantom_sim::SimError>,
    Result<u64, fantom_bench::heap_sim::HeapSimError>,
    Simulator<'a>,
    HeapSimulator<'a>,
) {
    let netlist = &machine.netlist;
    let mut builder = Simulator::builder(netlist)
        .delay_model(model.clone())
        .style(style)
        .monitor_all();
    for gates in &machine.loop_gates {
        for &g in gates {
            builder = builder.gate_delay(g, loop_delay);
        }
    }
    let mut new_sim = builder.build();

    let heap_style = match style {
        DelayStyle::Transport => HeapDelayStyle::Transport,
        DelayStyle::Inertial => HeapDelayStyle::Inertial,
    };
    let mut old_sim = HeapSimulator::with_style(netlist, model, heap_style);
    for n in 0..netlist.num_nets() {
        old_sim.monitor(NetId(n));
    }
    for gates in &machine.loop_gates {
        for &g in gates {
            old_sim.set_gate_delay(g, loop_delay);
        }
    }

    for (net, value, delta) in stimulus(netlist) {
        new_sim.schedule_input(net, value, delta);
        old_sim.schedule_input(net, value, delta);
    }
    let new_res = new_sim.run_until_quiet();
    let old_res = old_sim.run_until_quiet(new_sim.event_budget());
    (new_res, old_res, new_sim, old_sim)
}

#[test]
fn transport_mode_matches_the_heap_scheduler_event_for_event() {
    for (name, machine) in machines() {
        for model in [
            DelayModel::Unit,
            DelayModel::Fixed(3),
            DelayModel::Random {
                min: 4,
                max: 9,
                seed: 0xFA57_0000,
            },
        ] {
            let loop_delay = 200;
            let (new_res, old_res, new_sim, old_sim) =
                run_pair(&machine, &model, DelayStyle::Transport, loop_delay);
            let n = machine.netlist.num_nets();
            assert_eq!(
                all_waveforms(&new_sim, n),
                all_waveforms_heap(&old_sim, n),
                "{name}: transport waveforms under {model:?}"
            );
            assert_eq!(
                new_sim.net_values(),
                old_sim.net_values(),
                "{name}: transport final values under {model:?}"
            );
            assert_eq!(
                new_res.is_ok(),
                old_res.is_ok(),
                "{name}: transport verdicts under {model:?}"
            );
            if new_res.is_ok() {
                assert_eq!(new_sim.time(), old_sim.time(), "{name}: final time");
                // Without inertial tombstones the two schedulers pop the very
                // same event stream.
                assert_eq!(
                    new_sim.events_processed(),
                    old_sim.events_processed(),
                    "{name}: transport event counts under {model:?}"
                );
            }
        }
    }
}

#[test]
fn inertial_mode_matches_the_heap_scheduler_on_applied_values() {
    for (name, machine) in machines() {
        for model in [
            DelayModel::Unit,
            DelayModel::Fixed(3),
            DelayModel::Random {
                min: 4,
                max: 9,
                seed: 0xFA57_0001,
            },
        ] {
            let loop_delay = 200;
            let (new_res, old_res, new_sim, old_sim) =
                run_pair(&machine, &model, DelayStyle::Inertial, loop_delay);
            assert!(new_res.is_ok(), "{name}: inertial run settles ({model:?})");
            assert!(old_res.is_ok(), "{name}: heap inertial run settles");
            let n = machine.netlist.num_nets();
            assert_eq!(
                all_waveforms(&new_sim, n),
                all_waveforms_heap(&old_sim, n),
                "{name}: inertial waveforms under {model:?}"
            );
            assert_eq!(
                new_sim.net_values(),
                old_sim.net_values(),
                "{name}: inertial final values under {model:?}"
            );
            // The old scheduler popped superseded events as tombstones —
            // advancing its clock and its event count on each — while the
            // indexed queue cancels them in place, so it can only do less of
            // both.
            assert!(
                new_sim.time() <= old_sim.time(),
                "{name}: {} > {} final time under {model:?}",
                new_sim.time(),
                old_sim.time(),
            );
            assert!(
                new_sim.events_processed() <= old_sim.events_processed(),
                "{name}: {} > {} popped events under {model:?}",
                new_sim.events_processed(),
                old_sim.events_processed(),
            );
        }
    }
}
