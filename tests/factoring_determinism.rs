//! Determinism of the threaded Step 7: fanning the per-bit `Yₙ` consensus
//! closures out across scoped threads must produce output **byte-identical**
//! to the single-threaded run — the closures are independent and results are
//! merged in bit order, so the only thing threading may change is wall-clock.

use fantom_assign::assign_with_options;
use fantom_flow::benchmarks;
use seance::factoring::{factor_covers, FactoringOptions};
use seance::{fsv, hazard, SpecifiedTable, SynthesisOptions};

#[test]
fn threaded_factor_covers_is_byte_identical_to_single_threaded() {
    let opts = SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::for_large_machines()
    };
    let mut tables = benchmarks::paper_suite();
    tables.extend(benchmarks::large_suite());
    for table in tables {
        let assignment = assign_with_options(&table, &opts.assignment);
        assignment.verify(&table).unwrap();
        let spec = SpecifiedTable::new(table.clone(), assignment).unwrap();
        let hazards = hazard::analyze(&spec);
        let equations = fsv::generate_covers(&spec, &hazards).unwrap();
        let threaded = factor_covers(
            &spec,
            &equations,
            FactoringOptions {
                parallel_y: true,
                ..FactoringOptions::default()
            },
        );
        let sequential = factor_covers(
            &spec,
            &equations,
            FactoringOptions {
                parallel_y: false,
                ..FactoringOptions::default()
            },
        );
        let name = table.name();
        assert_eq!(
            threaded.fsv_cover.cubes(),
            sequential.fsv_cover.cubes(),
            "{name}: fsv covers diverge"
        );
        assert_eq!(
            threaded.fsv_expr, sequential.fsv_expr,
            "{name}: fsv expressions diverge"
        );
        assert_eq!(
            threaded.y_covers.len(),
            sequential.y_covers.len(),
            "{name}: Y cover counts diverge"
        );
        for (var, (a, b)) in threaded
            .y_covers
            .iter()
            .zip(&sequential.y_covers)
            .enumerate()
        {
            assert_eq!(a.cubes(), b.cubes(), "{name}: Y{var} covers diverge");
        }
        assert_eq!(
            threaded.y_exprs, sequential.y_exprs,
            "{name}: Y expressions diverge"
        );
    }
}

/// Repeated threaded runs are stable with themselves (no run-to-run
/// nondeterminism from scheduling).
#[test]
fn threaded_factor_covers_is_stable_across_runs() {
    let opts = SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::for_large_machines()
    };
    let table = &benchmarks::large_suite()[0];
    let assignment = assign_with_options(table, &opts.assignment);
    let spec = SpecifiedTable::new(table.clone(), assignment).unwrap();
    let hazards = hazard::analyze(&spec);
    let equations = fsv::generate_covers(&spec, &hazards).unwrap();
    let first = factor_covers(&spec, &equations, FactoringOptions::default());
    for _ in 0..3 {
        let again = factor_covers(&spec, &equations, FactoringOptions::default());
        assert_eq!(first.fsv_cover.cubes(), again.fsv_cover.cubes());
        for (a, b) in first.y_covers.iter().zip(&again.y_covers) {
            assert_eq!(a.cubes(), b.cubes());
        }
        assert_eq!(first.y_exprs, again.y_exprs);
    }
}
