//! Integration tests for the sparse cover-based synthesis pipeline and the
//! bounded Step-2 reduction of the large benchmark machines.
//!
//! The fast (tier-1) test synthesizes the large suite with
//! [`SynthesisOptions::for_large_machines`], whose bounded reduction merges
//! the don't-care-heavy chain states first — the machines the Tracey
//! assignment then sees are much smaller, so the whole test runs in seconds
//! even in debug builds.
//!
//! The *unreduced* large machines (the ≥ 24-variable stress shape that only
//! the sparse engine can synthesize) still get full coverage, but their
//! Tracey assignments cost ~25 s each in debug builds, so those tests are
//! `#[ignore]`d from tier-1 and run in release mode by the CI `build-test`
//! job (`cargo test --release -- --ignored`). Locally:
//!
//! ```text
//! cargo test --release --test sparse_pipeline -- --include-ignored
//! ```

use fantom_flow::benchmarks;
use seance::{synthesize, synthesize_sparse, SynthesisError, SynthesisOptions};

/// The PR 2 shape of the large-machine run: Step 2 disabled, so the machines
/// keep their full ≥ 24-variable `(x, y)` spaces.
fn unreduced_options() -> SynthesisOptions {
    SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::for_large_machines()
    }
}

/// Bounded reduction must run Step 2 on every large machine (no
/// `MachineTooLarge` skip, no fallback) and still synthesize end to end.
#[test]
fn bounded_reduction_synthesizes_the_large_suite() {
    for table in benchmarks::large_suite() {
        let result = synthesize_sparse(&table, &SynthesisOptions::for_large_machines())
            .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        let name = table.name();
        // Step 2 ran and actually merged states: the synthetic chains are
        // don't-care-heavy and therefore redundant.
        assert!(
            result.reduced_table.num_states() < table.num_states(),
            "{name}: bounded reduction merged nothing ({} states)",
            result.reduced_table.num_states()
        );
        assert!(result.factored.fsv_cover.cube_count() > 0, "{name}");
        assert_eq!(
            result.depth.total_depth,
            result.depth.fsv_depth + result.depth.y_depth + 1,
            "{name}"
        );
        // Every minimized cover still implements its cover function.
        assert!(
            result
                .equations
                .fsv
                .implemented_by(&result.equations.fsv_cover),
            "{name}: fsv cover"
        );
        for (f, c) in result.equations.y.iter().zip(&result.equations.y_covers) {
            assert!(f.implemented_by(c), "{name}: y cover");
        }
        for (f, c) in result.outputs.z.iter().zip(&result.outputs.z_covers) {
            assert!(f.implemented_by(c), "{name}: z cover");
        }
        // The chains stay rich in multiple-input changes even after merging,
        // so the hazard machinery is still exercised on the reduced machines.
        assert!(
            !result.hazards.is_hazard_free(),
            "{name}: expected function hazards after reduction"
        );
    }
}

#[test]
#[ignore = "40-state Tracey assignment is ~25 s in debug; CI runs this in release via --ignored"]
fn dense_pipeline_rejects_machines_beyond_its_limit() {
    let err = synthesize(&benchmarks::chain40(), &unreduced_options());
    assert!(
        matches!(err, Err(SynthesisError::MachineTooLarge { .. })),
        "chain40 unexpectedly fit the dense pipeline"
    );
}

#[test]
#[ignore = "three 40-state Tracey assignments are ~80 s in debug; CI runs this in release via --ignored"]
fn sparse_pipeline_synthesizes_the_large_suite() {
    for table in benchmarks::large_suite() {
        let result = synthesize_sparse(&table, &unreduced_options())
            .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        let name = table.name();
        // The whole point of the suite: ≥ 24 state-signal/input variables,
        // beyond the dense-function limit once fsv doubles the space.
        assert!(
            result.spec.num_vars() >= 24,
            "{name}: only {} (x, y) variables",
            result.spec.num_vars()
        );
        assert!(result.spec.num_vars_extended() > fantom_boolean::MAX_DENSE_VARS);
        // These machines are rich in multiple-input changes, so they must
        // exhibit function hazards and a non-trivial fsv.
        assert!(
            !result.hazards.is_hazard_free(),
            "{name}: expected function hazards"
        );
        assert!(result.factored.fsv_cover.cube_count() > 0, "{name}");
        assert_eq!(
            result.depth.total_depth,
            result.depth.fsv_depth + result.depth.y_depth + 1,
            "{name}"
        );
        // Every minimized cover implements its cover function.
        assert!(
            result
                .equations
                .fsv
                .implemented_by(&result.equations.fsv_cover),
            "{name}: fsv cover"
        );
        for (f, c) in result.equations.y.iter().zip(&result.equations.y_covers) {
            assert!(f.implemented_by(c), "{name}: y cover");
        }
        for (f, c) in result.outputs.z.iter().zip(&result.outputs.z_covers) {
            assert!(f.implemented_by(c), "{name}: z cover");
        }
        assert!(
            result.outputs.ssd.implemented_by(&result.outputs.ssd_cover),
            "{name}: ssd cover"
        );
        // The factored (hazard-augmented) covers still implement the
        // functions.
        assert!(
            result
                .equations
                .fsv
                .implemented_by(&result.factored.fsv_cover),
            "{name}: factored fsv"
        );
        for (f, c) in result.equations.y.iter().zip(&result.factored.y_covers) {
            assert!(f.implemented_by(c), "{name}: factored y");
        }
        // Spot-check the fantom-variable property on a sample of hazard
        // points: the factored next-state functions hold the hazardous
        // variable in the fsv = 0 half-space.
        let mut checked = 0usize;
        for (var, hl) in result.hazards.hl.iter().enumerate() {
            for m in hl.iter().take(3) {
                let (_, code) = result.spec.decompose(m);
                let present = code.bit(var);
                let fsv0 = m << 1;
                assert_eq!(
                    result.equations.y[var].is_on(fsv0),
                    present,
                    "{name}: Y{} must hold its present value at hazard minterm {m}",
                    var + 1
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "{name}: no hazard points checked");
    }
}
