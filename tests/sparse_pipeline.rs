//! Integration tests for the sparse cover-based synthesis pipeline and the
//! bounded Step-2 reduction of the large benchmark machines.
//!
//! Since the packed, budgeted Step-3 engine landed, the unreduced 40-state
//! Tracey assignments cost milliseconds instead of ~25 s in debug builds, so
//! the whole large suite — reduced *and* unreduced — runs in tier-1 with no
//! `#[ignore]` gating. A side effect of the shorter codes it finds: the
//! machines' `(x, y)` spaces shrank enough that even the dense pipeline can
//! synthesize them unreduced, which the differential test below exploits.

use fantom_assign::AssignmentOptions;
use fantom_flow::benchmarks;
use seance::{synthesize, synthesize_sparse, SynthesisError, SynthesisOptions};

/// The PR 2 shape of the large-machine run: Step 2 disabled, so the machines
/// keep their full 40-state-class flow tables.
fn unreduced_options() -> SynthesisOptions {
    SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::for_large_machines()
    }
}

/// Bounded reduction must run Step 2 on every large machine (no
/// `MachineTooLarge` skip, no fallback) and still synthesize end to end.
#[test]
fn bounded_reduction_synthesizes_the_large_suite() {
    for table in benchmarks::large_suite() {
        let result = synthesize_sparse(&table, &SynthesisOptions::for_large_machines())
            .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        let name = table.name();
        // Step 2 ran and actually merged states: the synthetic chains are
        // don't-care-heavy and therefore redundant.
        assert!(
            result.reduced_table.num_states() < table.num_states(),
            "{name}: bounded reduction merged nothing ({} states)",
            result.reduced_table.num_states()
        );
        assert!(result.factored.fsv_cover.cube_count() > 0, "{name}");
        assert_eq!(
            result.depth.total_depth,
            result.depth.fsv_depth + result.depth.y_depth + 1,
            "{name}"
        );
        // Every minimized cover still implements its cover function.
        assert!(
            result
                .equations
                .fsv
                .implemented_by(&result.equations.fsv_cover),
            "{name}: fsv cover"
        );
        for (f, c) in result.equations.y.iter().zip(&result.equations.y_covers) {
            assert!(f.implemented_by(c), "{name}: y cover");
        }
        for (f, c) in result.outputs.z.iter().zip(&result.outputs.z_covers) {
            assert!(f.implemented_by(c), "{name}: z cover");
        }
        // The chains stay rich in multiple-input changes even after merging,
        // so the hazard machinery is still exercised on the reduced machines.
        assert!(
            !result.hazards.is_hazard_free(),
            "{name}: expected function hazards after reduction"
        );
    }
}

/// Assignment budgets bound the code search, never its validity: even with
/// candidate generation, refinement and the exact search all but disabled,
/// the degraded assignment verifies — it just spends more state variables
/// than the default budgets would.
#[test]
fn starved_assignment_budgets_degrade_width_not_validity() {
    let starved = SynthesisOptions {
        assignment: AssignmentOptions {
            max_candidate_partitions: 1,
            seed_orderings: 1,
            refine_passes: 0,
            exact_max_candidates: 0,
            exact_node_budget: 0,
            adjacency_seeding: false,
        },
        ..unreduced_options()
    };
    let table = benchmarks::chain40();
    let degraded = synthesize_sparse(&table, &starved).expect("degraded chain40");
    let default = synthesize_sparse(&table, &unreduced_options()).expect("default chain40");
    assert!(
        degraded.assignment.verify(&degraded.reduced_table).is_ok(),
        "degraded assignment must still be race-free"
    );
    assert!(
        degraded.assignment.num_vars() >= default.assignment.num_vars(),
        "starving the budgets should never find a shorter code ({} vs {})",
        degraded.assignment.num_vars(),
        default.assignment.num_vars()
    );
}

/// Machines whose total variable count exceeds `MAX_TOTAL_VARS` are rejected
/// with `MachineTooLarge` at specification time instead of thrashing.
#[test]
fn oversized_assignments_are_rejected() {
    use fantom_flow::Bits;
    let table = benchmarks::chain40();
    // A (valid but absurdly wide) 47-variable unicode assignment: 2 inputs
    // + 47 state variables + fsv = 50 > 48 total.
    let wide = fantom_assign::StateAssignment::from_codes(
        (0..table.num_states())
            .map(|s| Bits::from_index(47, s))
            .collect(),
    );
    let result = seance::SpecifiedTable::new(table, wide);
    assert!(
        matches!(result, Err(SynthesisError::MachineTooLarge { .. })),
        "oversized assignment unexpectedly accepted"
    );
}

/// The packed Step-3 engine finds codes short enough that chain40 fits the
/// *dense* pipeline even unreduced — so the two engines can be pinned against
/// each other on a 40-state machine, far beyond the small corpus the
/// differential tests used to be limited to.
#[test]
fn dense_and_sparse_agree_on_unreduced_chain40() {
    let table = benchmarks::chain40();
    // Skip the all-primes fsv expansion: the dense Quine–McCluskey pass over
    // the doubled 2^15 space costs ~20 s in debug builds and the differential
    // below compares functions against covers either way.
    let options = SynthesisOptions {
        fsv_all_primes: false,
        ..unreduced_options()
    };
    let dense = synthesize(&table, &options).expect("dense chain40 fits since the packed engine");
    let sparse = synthesize_sparse(&table, &options).expect("sparse chain40");
    assert!(
        dense
            .equations
            .fsv_function
            .implemented_by(&sparse.factored.fsv_cover),
        "sparse fsv cover"
    );
    assert_eq!(
        dense.equations.y_functions.len(),
        sparse.factored.y_covers.len(),
        "Y function counts"
    );
    for (f, c) in dense
        .equations
        .y_functions
        .iter()
        .zip(&sparse.factored.y_covers)
    {
        assert!(f.implemented_by(c), "sparse Y cover");
    }
    assert_eq!(
        dense.outputs.z_functions.len(),
        sparse.outputs.z_covers.len(),
        "Z function counts"
    );
    for (f, c) in dense
        .outputs
        .z_functions
        .iter()
        .zip(&sparse.outputs.z_covers)
    {
        assert!(f.implemented_by(c), "sparse Z cover");
    }
    assert_eq!(
        dense.hazards.hazard_state_count(),
        sparse.hazards.hazard_state_count(),
        "hazard counts"
    );
}

#[test]
fn sparse_pipeline_synthesizes_the_large_suite() {
    for table in benchmarks::large_suite() {
        let result = synthesize_sparse(&table, &unreduced_options())
            .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        let name = table.name();
        // The assignment is race-free and as wide as information-theoretically
        // necessary (the packed engine keeps it close to that bound).
        assert!(
            result.assignment.verify(&result.reduced_table).is_ok(),
            "{name}: assignment fails verification"
        );
        let lower = (usize::BITS - (table.num_states() - 1).leading_zeros()) as usize;
        assert!(
            result.assignment.num_vars() >= lower,
            "{name}: {} vars cannot encode {} states",
            result.assignment.num_vars(),
            table.num_states()
        );
        // These machines are rich in multiple-input changes, so they must
        // exhibit function hazards and a non-trivial fsv.
        assert!(
            !result.hazards.is_hazard_free(),
            "{name}: expected function hazards"
        );
        assert!(result.factored.fsv_cover.cube_count() > 0, "{name}");
        assert_eq!(
            result.depth.total_depth,
            result.depth.fsv_depth + result.depth.y_depth + 1,
            "{name}"
        );
        // Every minimized cover implements its cover function.
        assert!(
            result
                .equations
                .fsv
                .implemented_by(&result.equations.fsv_cover),
            "{name}: fsv cover"
        );
        for (f, c) in result.equations.y.iter().zip(&result.equations.y_covers) {
            assert!(f.implemented_by(c), "{name}: y cover");
        }
        for (f, c) in result.outputs.z.iter().zip(&result.outputs.z_covers) {
            assert!(f.implemented_by(c), "{name}: z cover");
        }
        assert!(
            result.outputs.ssd.implemented_by(&result.outputs.ssd_cover),
            "{name}: ssd cover"
        );
        // The factored (hazard-augmented) covers still implement the
        // functions.
        assert!(
            result
                .equations
                .fsv
                .implemented_by(&result.factored.fsv_cover),
            "{name}: factored fsv"
        );
        for (f, c) in result.equations.y.iter().zip(&result.factored.y_covers) {
            assert!(f.implemented_by(c), "{name}: factored y");
        }
        // Spot-check the fantom-variable property on a sample of hazard
        // points: the factored next-state functions hold the hazardous
        // variable in the fsv = 0 half-space.
        let mut checked = 0usize;
        for (var, hl) in result.hazards.hl.iter().enumerate() {
            for m in hl.iter().take(3) {
                let (_, code) = result.spec.decompose(m);
                let present = code.bit(var);
                let fsv0 = m << 1;
                assert_eq!(
                    result.equations.y[var].is_on(fsv0),
                    present,
                    "{name}: Y{} must hold its present value at hazard minterm {m}",
                    var + 1
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "{name}: no hazard points checked");
    }
}
