//! Integration tests for the batch synthesis service: determinism across
//! worker counts, cache-hit correctness on relabeled resubmissions, and
//! cross-batch cache persistence.

use fantom_flow::canonical::relabel;
use fantom_flow::{benchmarks, FlowTable};
use seance::service::CacheStatus;
use seance::{
    synthesize_many, synthesize_sparse, ServiceOptions, SpecifiedTable, SynthesisService,
};

/// A deterministic permutation of `0..n` drawn from an xorshift stream.
fn permutation(rng: &mut u64, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let j = (*rng % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// A randomly state/input/output-relabeled copy of `table`.
fn relabeled_copy(table: &FlowTable, rng: &mut u64, name: &str) -> FlowTable {
    let sm = permutation(rng, table.num_states());
    let im = permutation(rng, table.num_inputs());
    let om = permutation(rng, table.num_outputs());
    relabel(table, &sm, &im, &om, name)
}

/// A mixed batch: the small corpus plus a relabeled copy of each machine.
fn mixed_batch() -> Vec<FlowTable> {
    let mut rng = 0x5eed_cafe_f00d_u64;
    let mut batch = benchmarks::all();
    let copies: Vec<FlowTable> = batch
        .iter()
        .map(|t| relabeled_copy(t, &mut rng, &format!("{}_resub", t.name())))
        .collect();
    batch.extend(copies);
    batch
}

/// The full outcome rendering used for byte-identity comparisons: report
/// line plus every synthesized equation.
fn full_render(outcomes: &[seance::SynthesisOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        out.push_str(&o.report_line());
        out.push('\n');
        if let Ok(r) = &o.result {
            out.push_str(&r.render_equations());
        }
    }
    out
}

/// Batch output is byte-identical for 1, 2, and 8 workers, with the cache on
/// and off: sharding and cache races must never leak into results.
#[test]
fn batch_output_is_byte_identical_across_worker_counts() {
    let batch = mixed_batch();
    for cache in [true, false] {
        let renders: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&parallelism| {
                let outcomes = synthesize_many(
                    &batch,
                    &ServiceOptions {
                        parallelism,
                        cache,
                        ..ServiceOptions::default()
                    },
                );
                full_render(&outcomes)
            })
            .collect();
        assert_eq!(renders[0], renders[1], "cache={cache}: 1 vs 2 workers");
        assert_eq!(renders[0], renders[2], "cache={cache}: 1 vs 8 workers");
    }
}

/// Cache hits return *correct* results for the submitted labeling, not just
/// the cached one: every cover served from the cache must implement the
/// functions freshly derived from the hit's own reduced table + assignment,
/// and the relabeling-invariant metrics must match the original's.
#[test]
fn cache_hits_verify_against_the_submitted_table() {
    let mut rng = 0xdead_beef_0451_u64;
    let service = SynthesisService::new(ServiceOptions {
        parallelism: 1,
        ..ServiceOptions::default()
    });
    for table in benchmarks::all() {
        let copy = relabeled_copy(&table, &mut rng, &format!("{}_iso", table.name()));
        let outcomes = service.synthesize_many(&[table.clone(), copy]);
        let original = outcomes[0].result.as_ref().expect("original synthesizes");
        let hit = outcomes[1]
            .result
            .as_ref()
            .expect("resubmission synthesizes");
        assert_eq!(hit.cache, CacheStatus::Hit, "{}", table.name());

        // Relabeling-invariant metrics agree with the original submission.
        assert_eq!(hit.depth, original.depth, "{}", table.name());
        assert_eq!(
            hit.hazard_state_count,
            original.hazard_state_count,
            "{}",
            table.name()
        );
        assert_eq!(hit.states_before, table.num_states(), "{}", table.name());

        // The served assignment is valid for the served reduced table, and
        // every served cover implements the functions derived from scratch
        // for that table — this is what "relabeled back correctly" means.
        hit.assignment
            .verify(&hit.reduced_table)
            .expect("assignment valid for the relabeled reduced table");
        let spec = SpecifiedTable::new(hit.reduced_table.clone(), hit.assignment.clone())
            .expect("spec builds");
        let outputs = seance::outputs::generate_covers(&spec).expect("output covers");
        for (b, z) in outputs.z.iter().enumerate() {
            assert!(
                z.implemented_by(&hit.outputs.z_covers[b]),
                "{}: Z{} cover",
                table.name(),
                b + 1
            );
        }
        assert!(
            outputs.ssd.implemented_by(&hit.outputs.ssd_cover),
            "{}: SSD cover",
            table.name()
        );
        let hazards = seance::hazard::analyze(&spec);
        let equations = seance::fsv::generate_covers(&spec, &hazards).expect("fsv covers");
        assert!(
            equations.fsv.implemented_by(&hit.factored.fsv_cover),
            "{}: fsv cover",
            table.name()
        );
        for (i, y) in equations.y.iter().enumerate() {
            assert!(
                y.implemented_by(&hit.factored.y_covers[i]),
                "{}: Y{} cover",
                table.name(),
                i + 1
            );
        }
    }
    let stats = service.cache_stats();
    assert_eq!(stats.hits, benchmarks::all().len());
    assert_eq!(stats.misses, benchmarks::all().len());
}

/// A persistent service answers a resubmitted batch entirely from the cache,
/// and the second batch's output is byte-identical to the first.
#[test]
fn resubmitted_batch_is_all_hits_and_byte_identical() {
    let batch = benchmarks::all();
    let service = SynthesisService::new(ServiceOptions::default());
    let first = service.synthesize_many(&batch);
    let misses = service.cache_stats().misses;
    assert_eq!(misses, batch.len());

    let second = service.synthesize_many(&batch);
    assert_eq!(full_render(&first), full_render(&second));
    let stats = service.cache_stats();
    assert_eq!(stats.misses, misses, "no new misses on resubmission");
    assert_eq!(stats.hits, batch.len());
    for o in &second {
        assert_eq!(o.result.as_ref().unwrap().cache, CacheStatus::Hit);
    }
}

/// Eviction pressure never changes results: a service bounded to two cache
/// entries produces byte-identical batch output to an unbounded one, across
/// worker counts, and the cache actually stays within its bound.
#[test]
fn bounded_cache_output_is_byte_identical_under_eviction_pressure() {
    let batch = mixed_batch();
    let unbounded = full_render(&synthesize_many(
        &batch,
        &ServiceOptions {
            parallelism: 1,
            ..ServiceOptions::default()
        },
    ));
    for parallelism in [1usize, 2, 8] {
        let service = SynthesisService::new(ServiceOptions {
            parallelism,
            max_cache_entries: 2,
            ..ServiceOptions::default()
        });
        let bounded = full_render(&service.synthesize_many(&batch));
        assert_eq!(unbounded, bounded, "parallelism={parallelism}");
        let stats = service.cache_stats();
        assert!(
            stats.entries <= 2,
            "parallelism={parallelism}: entries = {}",
            stats.entries
        );
    }
}

/// The cache-off service path agrees with a plain sequential
/// `synthesize_sparse` loop on reports and equations.
#[test]
fn service_agrees_with_sequential_sparse_loop() {
    let batch = mixed_batch();
    let options = ServiceOptions {
        cache: false,
        ..ServiceOptions::default()
    };
    let outcomes = synthesize_many(&batch, &options);
    for (t, o) in batch.iter().zip(&outcomes) {
        let direct = synthesize_sparse(t, &options.synthesis).expect("direct run");
        let served = o.result.as_ref().expect("service run");
        assert_eq!(served.render_equations(), direct.render_equations());
        assert_eq!(served.y_literals(), direct.y_literals());
        assert_eq!(served.depth, direct.depth);
    }
}
