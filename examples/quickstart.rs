//! Quickstart: synthesize a FANTOM machine from a benchmark flow table and
//! print its equations and depth metrics.
//!
//! Run with `cargo run --example quickstart`.

use seance::{synthesize, table1_row, SynthesisOptions, Table1Row};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a flow table. The corpus ships the machines used by the paper's
    //    evaluation; `lion` is the classic lion-in-a-cage controller.
    let table = fantom_flow::benchmarks::lion();
    println!("{table}");

    // 2. Run the SEANCE pipeline: reduction, USTT assignment, output and SSD
    //    equations, hazard search, fsv / next-state generation, factoring.
    let options = SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::default()
    };
    let result = synthesize(&table, &options)?;

    // 3. Inspect the result.
    println!("{}", result.render_equations());
    println!(
        "hazardous total states: {} across {} multiple-input-change transitions",
        result.hazards.hazard_state_count(),
        result
            .reduced_table
            .multiple_input_change_transitions()
            .len()
    );
    println!("\n{}", Table1Row::header());
    println!("{}", table1_row(&result));

    // 4. Check the structural hazard-freedom claims statically.
    seance::validate::verify_hold_property(&result)?;
    seance::validate::verify_fsv_marks_hazards(&result)?;
    println!("\nstatic hazard-freedom checks passed");

    // 5. Simulate every multiple-input change on the emitted gate-level
    //    netlist with randomized delays and skewed input edges.
    let summary = seance::validate::validate_machine(&result, &[1, 2, 3]);
    println!(
        "simulated {} transitions: final states correct = {}, invariant-variable glitches = {}",
        summary.len(),
        summary.all_final_states_correct(),
        summary.total_invariant_glitches()
    );
    Ok(())
}
