//! Demonstration of the function-hazard search and the fantom state variable.
//!
//! The example walks the paper's running 4-state test machine through the
//! hazard search (Figure 4), prints every hazardous total state, and shows how
//! the `fsv = 0` half of the next-state equations holds the endangered state
//! variables while `fsv` marks the hazardous states.
//!
//! Run with `cargo run --example hazard_demo`.

use seance::{synthesize, SynthesisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = fantom_flow::benchmarks::test_example();
    let options = SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::default()
    };
    let result = synthesize(&table, &options)?;

    println!("{}", table);
    println!("state codes:");
    for state in result.reduced_table.states() {
        println!(
            "  {:>4} -> {}",
            result.reduced_table.state_name(state),
            result.spec.code(state)
        );
    }

    println!("\nmultiple-input-change transitions and their hazards:");
    for site in &result.hazards.sites {
        let t = &site.transition;
        println!(
            "  {} @ {} -> {} @ {}: intermediate input {} disturbs {}",
            result.reduced_table.state_name(t.from_state),
            t.from_input,
            result.reduced_table.state_name(t.to_state),
            t.to_input,
            site.intermediate_input,
            site.variables
                .iter()
                .map(|v| format!("y{}", v + 1))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    println!("\nsynthesized equations:");
    println!("{}", result.render_equations());

    // Show the hold mechanism explicitly for the first hazard site.
    if let Some(site) = result.hazards.sites.first() {
        let spec = &result.spec;
        let vars = spec.num_vars();
        let mut bits: Vec<bool> = (0..vars)
            .map(|i| (site.minterm >> (vars - 1 - i)) & 1 == 1)
            .collect();
        let var = site.variables[0];
        let present = spec.code(site.transition.from_state).bit(var);

        bits.push(false); // fsv = 0
        let held = result.factored.y_exprs[var].eval(&bits);
        bits.pop();
        bits.push(true); // fsv = 1
        let released = result.factored.y_exprs[var].eval(&bits);

        println!(
            "at hazardous total state (input {}, state {}):",
            site.intermediate_input,
            result.reduced_table.state_name(site.transition.from_state)
        );
        println!(
            "  present value of y{}           = {}",
            var + 1,
            u8::from(present)
        );
        println!(
            "  Y{} with fsv = 0 (held)        = {}",
            var + 1,
            u8::from(held)
        );
        println!(
            "  Y{} with fsv = 1 (table value) = {}",
            var + 1,
            u8::from(released)
        );
    }

    seance::validate::verify_hold_property(&result)?;
    seance::validate::verify_equations_implement_table(&result)?;
    println!("\nall static hazard-freedom checks passed");

    // Confirm the analytical verdicts dynamically: a short Monte-Carlo
    // campaign sweeps sampled delay assignments over every stable transition
    // and cross-checks the machine against the zero-delay oracle.
    let report = seance::run_campaign(
        &result,
        &seance::CampaignOptions {
            assignments: 16,
            ..seance::CampaignOptions::default()
        },
    );
    print!("\n{}", report.render());
    assert!(report.is_clean(), "campaign must confirm hazard freedom");
    Ok(())
}
