//! Monte-Carlo hazard-validation campaigns over the benchmark corpus.
//!
//! Synthesizes every machine of the small corpus (and, in full mode, the
//! large suite through the sparse pipeline), then drives each emitted FANTOM
//! machine through its stable-state transitions under many sampled delay
//! assignments, cross-checking observed glitches against the analytical
//! hazard verdicts and a zero-delay differential oracle.
//!
//! Run with `cargo run --release --example campaign` (full corpus, 1000
//! assignments per machine) or `cargo run --example campaign -- --smoke`
//! (CI-sized: 8 assignments, small corpus only).

use fantom_flow::benchmarks;
use seance::{
    run_campaign, run_campaign_sparse, synthesize, synthesize_sparse, CampaignOptions,
    SynthesisOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let assignments = if smoke { 8 } else { 1000 };

    let synthesis = SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::default()
    };
    let mut all_clean = true;

    for table in benchmarks::all() {
        let result = synthesize(&table, &synthesis)?;
        let report = run_campaign(
            &result,
            &CampaignOptions {
                assignments,
                ..CampaignOptions::default()
            },
        );
        all_clean &= report.is_clean();
        print!("{}", report.render());
    }

    if !smoke {
        for table in benchmarks::large_suite() {
            let result = synthesize_sparse(&table, &SynthesisOptions::for_large_machines())?;
            let report = run_campaign_sparse(
                &result,
                &CampaignOptions {
                    assignments,
                    sequences_per_assignment: 4,
                    ..CampaignOptions::default()
                },
            );
            all_clean &= report.is_clean();
            print!("{}", report.render());
        }
    }

    println!("all clean = {all_clean}");
    assert!(all_clean, "campaign found a divergence");
    Ok(())
}
