//! Synthesis as a service: a minimal stdin/stdout front end over
//! [`seance::SynthesisService`].
//!
//! Run with `cargo run --release --example service` and feed requests on
//! stdin, or `cargo run --release --example service -- --demo` for a
//! self-contained demonstration batch (used by CI).
//!
//! # Protocol
//!
//! A request stream is a sequence of machines in either form, freely mixed:
//!
//! ```text
//! machine <name> [bounded]
//! <KISS2 flow table lines>
//! end
//! ```
//!
//! or a **bare KISS2 document** — exactly what `fantom_flow::kiss::write`
//! emits and what the generated corpus files under `benchmarks/` and
//! `tests/fuzz_regressions/` contain: a leading `# <name>` comment, the
//! directives, the rows, a terminating `.e`. Bare documents need no header
//! and no `end`, so whole corpora can be piped in bulk:
//!
//! ```text
//! cat benchmarks/*.kiss | cargo run --release --example service
//! ```
//!
//! The stream is parsed in one pass; per-machine options are never re-parsed.
//! For headered requests the optional `bounded` word selects the budgeted
//! pipeline ([`SynthesisOptions::for_large_machines`]): Step 2/Step 3 run
//! under the bounded reduction/assignment budgets, which is what you want
//! for 40-state-class submissions. Bare documents take the global default —
//! pass `--bounded` to run every headerless machine through the budgeted
//! pipeline. Everything between a header and `end` is standard KISS2
//! (`.i/.o/.s/.r`, one `state input next output` row per specified entry;
//! see `fantom_flow::kiss`).
//!
//! At end of input the whole batch is synthesized at once —
//! [`SynthesisService::synthesize_many`] shards machines across the worker
//! pool and answers isomorphic resubmissions from the canonical-form result
//! cache — and one `report` line per machine is printed to stdout **in
//! submission order**:
//!
//! ```text
//! report <name> status=ok states=4->4 state_vars=2 depth=3 ... hazard_states=2
//! report <name> status=error message="..."
//! ```
//!
//! Pass `--parallel <n>` to pin the worker count (default: all cores), and
//! `--equations` to print each machine's synthesized equations (prefixed
//! with `# `) above its report line. Cache statistics go to stderr so stdout
//! stays machine-readable.

use std::io::Read as _;

use seance::{ServiceOptions, SynthesisOptions, SynthesisService};

/// One parsed request: the table plus its per-request pipeline options, or a
/// parse failure to report in place.
enum Request {
    Table(fantom_flow::FlowTable, bool),
    Bad(String, String),
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut demo = false;
    let mut equations = false;
    let mut bounded_default = false;
    let mut parallel = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--demo" => demo = true,
            "--equations" => equations = true,
            "--bounded" => bounded_default = true,
            "--parallel" => {
                i += 1;
                parallel = args
                    .get(i)
                    .ok_or("--parallel needs a worker count")?
                    .parse()?;
            }
            other => return Err(format!("unknown argument {other}").into()),
        }
        i += 1;
    }

    let requests = if demo {
        demo_batch()
    } else {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text)?;
        parse_requests(&text, bounded_default)
    };
    serve(&requests, parallel, equations);
    Ok(())
}

/// Split the input stream into requests in one pass (see the module docs for
/// the grammar): `machine <name> [bounded]` headers carry per-request
/// options; anything else opens a bare KISS2 document running through its
/// `.e` terminator, named by its leading `# <name>` comment and synthesized
/// under the global `bounded_default`. Parse failures become `Request::Bad`
/// so one malformed machine never poisons the batch.
fn parse_requests(text: &str, bounded_default: bool) -> Vec<Request> {
    let mut requests = Vec::new();
    let mut lines = text.lines();
    let mut anonymous = 0usize;
    while let Some(line) = lines.next() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.split_whitespace().next() == Some("machine") {
            let mut words = trimmed.split_whitespace().skip(1);
            let name = match words.next() {
                Some(n) => n.to_string(),
                None => {
                    requests.push(Request::Bad(
                        trimmed.to_string(),
                        "machine header is missing a name".to_string(),
                    ));
                    continue;
                }
            };
            let bounded = match words.next() {
                None => false,
                Some("bounded") => true,
                Some(w) => {
                    requests.push(Request::Bad(name, format!("unknown request flag {w}")));
                    continue;
                }
            };
            let mut body = String::new();
            for body_line in lines.by_ref() {
                if body_line.trim() == "end" {
                    break;
                }
                body.push_str(body_line);
                body.push('\n');
            }
            match fantom_flow::kiss::parse(&body, &name) {
                Ok(table) => requests.push(Request::Table(table, bounded)),
                Err(e) => requests.push(Request::Bad(name, e.to_string())),
            }
            continue;
        }
        // Bare KISS2 document (bulk corpus submission): gather lines through
        // the terminating `.e`.
        let mut name: Option<String> = None;
        let mut body = String::new();
        let mut current = Some(line);
        while let Some(doc_line) = current {
            let doc_trimmed = doc_line.trim();
            if let Some(comment) = doc_trimmed.strip_prefix('#') {
                let candidate = comment.trim();
                if name.is_none() && !candidate.is_empty() {
                    name = Some(candidate.to_string());
                }
            }
            body.push_str(doc_line);
            body.push('\n');
            if doc_trimmed == ".e" {
                break;
            }
            current = lines.next();
        }
        let name = name.unwrap_or_else(|| {
            anonymous += 1;
            format!("machine_{anonymous}")
        });
        match fantom_flow::kiss::parse(&body, &name) {
            Ok(table) => requests.push(Request::Table(table, bounded_default)),
            Err(e) => requests.push(Request::Bad(name, e.to_string())),
        }
    }
    requests
}

/// The corpus plus a state/input/output-relabeled `lion` resubmission, so
/// the demo exercises both pool sharding and a canonical-form cache hit.
fn demo_batch() -> Vec<Request> {
    let mut requests: Vec<Request> = fantom_flow::benchmarks::all()
        .into_iter()
        .map(|t| Request::Table(t, false))
        .collect();
    let relabeled = fantom_flow::canonical::relabel(
        &fantom_flow::benchmarks::lion(),
        &[2, 0, 3, 1],
        &[1, 0],
        &[0],
        "lion_resubmitted",
    );
    requests.push(Request::Table(relabeled, false));
    for t in fantom_flow::benchmarks::large_suite() {
        requests.push(Request::Table(t, true));
    }
    requests
}

/// Synthesize the batch and print one report line per request in submission
/// order. Default and `bounded` requests run as two sub-batches (a service
/// applies one option set per batch) whose outcomes are stitched back.
fn serve(requests: &[Request], parallel: usize, equations: bool) {
    let mut default_tables = Vec::new();
    let mut bounded_tables = Vec::new();
    // Where in (sub-batch 0 = default, 1 = bounded) each request landed.
    let placements: Vec<Option<(usize, usize)>> = requests
        .iter()
        .map(|r| match r {
            Request::Table(t, false) => {
                default_tables.push(t.clone());
                Some((0, default_tables.len() - 1))
            }
            Request::Table(t, true) => {
                bounded_tables.push(t.clone());
                Some((1, bounded_tables.len() - 1))
            }
            Request::Bad(..) => None,
        })
        .collect();

    let default_service = SynthesisService::new(ServiceOptions {
        parallelism: parallel,
        ..ServiceOptions::default()
    });
    let bounded_service = SynthesisService::new(ServiceOptions {
        parallelism: parallel,
        synthesis: SynthesisOptions {
            parallel_factoring: false,
            ..SynthesisOptions::for_large_machines()
        },
        ..ServiceOptions::default()
    });
    let outcomes = [
        default_service.synthesize_many(&default_tables),
        bounded_service.synthesize_many(&bounded_tables),
    ];

    for (request, placement) in requests.iter().zip(&placements) {
        match (request, placement) {
            (Request::Bad(name, message), _) => {
                println!("report {name} status=error message={message:?}");
            }
            (Request::Table(..), Some((batch, index))) => {
                let (batch, index) = (*batch, *index);
                let outcome = &outcomes[batch][index];
                if equations {
                    if let Ok(result) = &outcome.result {
                        for line in result.render_equations().lines() {
                            println!("# {line}");
                        }
                    }
                }
                println!("{}", outcome.report_line());
            }
            (Request::Table(..), None) => unreachable!("tables are always placed"),
        }
    }

    let stats = default_service.cache_stats();
    let bounded_stats = bounded_service.cache_stats();
    eprintln!(
        "cache: {} hits, {} misses, {} entries",
        stats.hits + bounded_stats.hits,
        stats.misses + bounded_stats.misses,
        stats.entries + bounded_stats.entries,
    );
}
