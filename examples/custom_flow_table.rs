//! Building a machine from scratch: specify a custom normal-mode flow table
//! with the builder (or KISS2 text), validate it, and synthesize a FANTOM
//! implementation.
//!
//! The machine is a small asynchronous bus arbiter: two request lines, one
//! grant output, and multiple-input changes whenever both requesters act in
//! the same instant.
//!
//! Run with `cargo run --example custom_flow_table`.

use fantom_flow::{kiss, validate, FlowTableBuilder};
use seance::{synthesize, SynthesisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Inputs: r1 r2 (request lines). Output: g (grant to requester 1).
    // States: IDLE (nobody granted), G1 (requester 1 granted),
    //         G2 (requester 2 granted).
    let mut builder = FlowTableBuilder::new("arbiter", 2, 1);
    builder.states(["IDLE", "G1", "G2"]);

    builder.stable("IDLE", "00", "0")?;
    builder.stable("G1", "10", "1")?;
    builder.stable("G1", "11", "1")?;
    builder.stable("G2", "01", "0")?;

    // Requests arriving (possibly both at once).
    builder.transition_with_output("IDLE", "10", "G1", "0")?;
    builder.transition_with_output("IDLE", "11", "G1", "0")?;
    builder.transition_with_output("IDLE", "01", "G2", "0")?;
    // Releases and hand-overs.
    builder.transition_with_output("G1", "00", "IDLE", "1")?;
    builder.transition_with_output("G1", "01", "G2", "1")?;
    builder.transition_with_output("G2", "00", "IDLE", "0")?;
    builder.transition_with_output("G2", "11", "G1", "0")?;
    builder.transition_with_output("G2", "10", "G1", "0")?;

    let table = builder.build()?;

    // Validate before synthesis: normal mode, strong connectivity, stability.
    let report = validate::validate(&table);
    println!("validation report: {report:#?}");
    assert!(
        report.is_acceptable(),
        "the arbiter specification must be well formed"
    );

    // Round-trip through KISS2 to show the interchange format.
    let text = kiss::write(&table);
    println!("KISS2:\n{text}");
    let reparsed = kiss::parse(&text, "arbiter")?;
    assert_eq!(reparsed.num_states(), table.num_states());

    // Synthesize and inspect. The arbiter is specified loosely enough that
    // Step 2 could merge IDLE and G2; keep all three states so the
    // multiple-input-change hazards of the specification stay visible.
    let options = SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::default()
    };
    let result = synthesize(&table, &options)?;
    println!("{}", result.render_equations());
    println!(
        "fsv depth {}, Y depth {}, total depth {}",
        result.depth.fsv_depth, result.depth.y_depth, result.depth.total_depth
    );

    let summary = seance::validate::validate_machine(&result, &[5]);
    println!(
        "simulated {} multiple-input-change transitions; all correct = {}",
        summary.len(),
        summary.all_final_states_correct() && summary.all_outputs_correct()
    );
    Ok(())
}
