//! A domain-specific scenario: an asynchronous traffic-light controller whose
//! two sensor inputs (car detector and timer expiry) can change at the same
//! time.
//!
//! The example synthesizes the controller, compares the FANTOM implementation
//! against the classical Huffman baseline (which would leave the
//! multiple-input-change hazards unprotected), and shows the KISS2 export.
//!
//! Run with `cargo run --example traffic_controller`.

use seance::baseline::{huffman_baseline, stg_expansion_estimate};
use seance::{synthesize, SynthesisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = fantom_flow::benchmarks::traffic();
    println!("{table}");
    println!("KISS2 form:\n{}", fantom_flow::kiss::write(&table));

    let options = SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::default()
    };
    let fantom = synthesize(&table, &options)?;
    let baseline = huffman_baseline(&table)?;
    let stg = stg_expansion_estimate(&table);

    println!("--- FANTOM (this paper) ---");
    println!("state variables : {}", fantom.spec.num_state_vars());
    println!("fsv depth       : {}", fantom.depth.fsv_depth);
    println!("Y depth         : {}", fantom.depth.y_depth);
    println!("total depth     : {}", fantom.depth.total_depth);
    println!("hazard states   : {}", fantom.hazards.hazard_state_count());

    println!("--- classical Huffman baseline (single-input change only) ---");
    println!("Y depth         : {}", baseline.y_depth);
    println!("total depth     : {}", baseline.total_depth);
    println!(
        "unprotected hazard states: {}",
        baseline.unprotected_hazard_states
    );

    println!("--- STG-style input expansion (Section 7 comparison) ---");
    println!(
        "{} transitions expand to {} single-bit steps (+{} intermediate states)",
        stg.original_transitions, stg.expanded_steps, stg.extra_states
    );

    // Exercise the controller: a car arrives exactly when the timer expires —
    // a two-bit input change — and the machine must still settle correctly.
    let summary = seance::validate::validate_machine(&fantom, &[11, 42]);
    println!(
        "simulation: {} multiple-input-change transitions checked, all settled = {}, all correct = {}",
        summary.len(),
        summary.all_settled(),
        summary.all_final_states_correct()
    );

    // Hammer the same controller with a Monte-Carlo campaign: 32 sampled
    // delay assignments, every stable transition, zero-delay oracle on.
    let report = seance::run_campaign(
        &fantom,
        &seance::CampaignOptions {
            assignments: 32,
            ..seance::CampaignOptions::default()
        },
    );
    println!(
        "campaign: {} steps over {} assignments, {} events, clean = {}",
        report.steps,
        report.assignments,
        report.events,
        report.is_clean()
    );
    assert!(report.is_clean());
    Ok(())
}
