//! Differential fuzzing CLI: random valid flow tables through both synthesis
//! pipelines, pointwise-compared and campaign-validated.
//!
//! ```text
//! cargo run --release --example fuzz -- --budget-seconds 60 --seed from-lockfile
//! ```
//!
//! Flags:
//!
//! * `--budget-seconds N` — wall-clock budget (default 60).
//! * `--max-cases N` — stop after N cases regardless of budget (0 = budget
//!   only; every case is a pure function of `(seed, case index)`, so a cap
//!   makes the whole run reproducible).
//! * `--seed S` — base seed: a decimal/hex (`0x…`) integer, or the literal
//!   `from-lockfile` to fold the bytes of `Cargo.lock` into a seed, so CI
//!   explores a fresh deterministic stream whenever the dependency graph
//!   changes but is replayable for any given commit.
//! * `--campaign-assignments N` — delay assignments per validation campaign
//!   (default 4).
//! * `--emit-corpus DIR` — instead of fuzzing, write the pinned regression
//!   corpus (`seance::fuzz::regression_corpus`) as KISS2 files into DIR and
//!   exit. Regenerates `tests/fuzz_regressions/` byte-identically.
//! * `--emit-benchmarks DIR` — instead of fuzzing, write the 3×3 grid
//!   benchmark machines (the same lattice `bench_json --grid` sweeps) as
//!   KISS2 files into DIR and exit. Regenerates `benchmarks/`.
//!
//! Exits nonzero on any differential or campaign mismatch; the report
//! (including shrunk reproducers) is printed either way.

use std::time::Duration;

use fantom_flow::generate::{generate_grid, GeneratorOptions};
use fantom_flow::kiss;
use seance::fuzz::{run_fuzz, FuzzOptions};

/// Fold arbitrary bytes into a 64-bit seed (FNV-1a).
fn fold_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn parse_seed(value: &str) -> Result<u64, String> {
    if value == "from-lockfile" {
        let lock = std::fs::read("Cargo.lock")
            .map_err(|e| format!("--seed from-lockfile: cannot read Cargo.lock: {e}"))?;
        return Ok(fold_bytes(&lock));
    }
    let parsed = if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        value.parse()
    };
    parsed.map_err(|e| format!("--seed {value}: {e}"))
}

/// The grid swept by `bench_json --grid`, mirrored here so the checked-in
/// `benchmarks/` directory and the perf gate always describe the same
/// machines.
fn grid_machines() -> Vec<fantom_flow::FlowTable> {
    generate_grid(
        &GeneratorOptions::default(),
        &[10, 18, 26],
        &[0.25, 0.5, 0.75],
    )
}

fn emit(dir: &str, tables: Vec<fantom_flow::FlowTable>) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    for table in tables {
        let path = std::path::Path::new(dir).join(format!("{}.kiss", table.name()));
        std::fs::write(&path, kiss::write(&table))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = FuzzOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or(format!("{name} needs a value"))
        };
        match flag {
            "--budget-seconds" => {
                options.budget = Duration::from_secs(value("--budget-seconds")?.parse()?);
            }
            "--max-cases" => options.max_cases = value("--max-cases")?.parse()?,
            "--seed" => options.seed = parse_seed(&value("--seed")?)?,
            "--campaign-assignments" => {
                options.campaign_assignments = value("--campaign-assignments")?.parse()?;
            }
            "--emit-corpus" => {
                return emit(&value("--emit-corpus")?, seance::fuzz::regression_corpus());
            }
            "--emit-benchmarks" => {
                return emit(&value("--emit-benchmarks")?, grid_machines());
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
        i += 1;
    }

    println!(
        "fuzzing: seed {:#x}, budget {}s, max cases {}, {} campaign assignments",
        options.seed,
        options.budget.as_secs(),
        options.max_cases,
        options.campaign_assignments
    );
    let report = run_fuzz(&options);
    print!("{}", report.render());
    assert!(report.is_clean(), "fuzz run found mismatches");
    Ok(())
}
