//! Workspace facade for the FANTOM/SEANCE asynchronous FSM synthesis system.
//!
//! Re-exports every crate of the workspace under one roof so downstream users
//! can depend on a single package. The workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`) are attached to this
//! package.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fantom_assign as assign;
pub use fantom_boolean as boolean;
pub use fantom_flow as flow;
pub use fantom_minimize as minimize;
pub use fantom_sim as sim;
pub use seance;
