//! Property tests for the scalable state-reduction engine.
//!
//! The pivoted, degeneracy-ordered Bron–Kerbosch is pinned against a
//! pivotless textbook oracle on random compatibility graphs (n ≤ 12, small
//! enough that the pivotless search is instant), the incremental worklist
//! compatibility analysis is pinned against the classical
//! rescan-to-fixpoint implication-table loop on the whole benchmark corpus,
//! and cap degradation is checked to always yield complete, closed covers.

use fantom_flow::{benchmarks, FlowTable, StateId};
use fantom_minimize::{
    closed_cover_with, compatibility, maximal_compatibles, maximal_compatibles_bounded,
    reduce_with_options, CompatibilityBuilder, CompatibilityTable, ReductionOptions,
};
use proptest::prelude::*;

/// Build a compatibility table from an upper-triangular adjacency bitmap.
fn table_from_bits(n: usize, bits: &[bool]) -> CompatibilityTable {
    let mut builder = CompatibilityBuilder::new(n);
    let mut k = 0;
    for a in 0..n {
        for b in (a + 1)..n {
            if !bits[k] {
                builder.mark_incompatible(StateId(a), StateId(b));
            }
            k += 1;
        }
    }
    builder.finish()
}

/// The pivotless textbook Bron–Kerbosch used as the enumeration oracle.
fn pivotless_oracle(compat: &CompatibilityTable) -> Vec<Vec<StateId>> {
    fn recurse(
        compat: &CompatibilityTable,
        r: &mut Vec<usize>,
        p: &mut Vec<usize>,
        x: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if p.is_empty() && x.is_empty() {
            out.push(r.clone());
            return;
        }
        for v in p.clone() {
            let neighbours = |u: usize| u != v && compat.are_compatible(StateId(v), StateId(u));
            let mut p2: Vec<usize> = p.iter().copied().filter(|&u| neighbours(u)).collect();
            let mut x2: Vec<usize> = x.iter().copied().filter(|&u| neighbours(u)).collect();
            r.push(v);
            recurse(compat, r, &mut p2, &mut x2, out);
            r.pop();
            p.retain(|&u| u != v);
            x.push(v);
        }
    }
    let n = compat.num_states();
    let mut out = Vec::new();
    let mut p: Vec<usize> = (0..n).collect();
    recurse(compat, &mut Vec::new(), &mut p, &mut Vec::new(), &mut out);
    let mut cliques: Vec<Vec<StateId>> = out
        .into_iter()
        .map(|c| {
            let mut c: Vec<StateId> = c.into_iter().map(StateId).collect();
            c.sort();
            c
        })
        .collect();
    cliques.sort();
    cliques.dedup();
    cliques
}

/// The classical implication-table analysis: rescan every pair against every
/// column until nothing changes. Oracle for the incremental worklist builder.
#[allow(clippy::needless_range_loop)] // symmetric 2-D indexing; iterators obscure the pairs
fn fixpoint_oracle(table: &FlowTable) -> Vec<Vec<bool>> {
    let n = table.num_states();
    let mut compatible = vec![vec![true; n]; n];
    for a in 0..n {
        for b in (a + 1)..n {
            let conflict = (0..table.num_columns()).any(|c| {
                matches!(
                    (table.output(StateId(a), c), table.output(StateId(b), c)),
                    (Some(oa), Some(ob)) if oa != ob
                )
            });
            if conflict {
                compatible[a][b] = false;
                compatible[b][a] = false;
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for a in 0..n {
            for b in (a + 1)..n {
                if !compatible[a][b] {
                    continue;
                }
                for c in 0..table.num_columns() {
                    if let (Some(na), Some(nb)) = (
                        table.next_state(StateId(a), c),
                        table.next_state(StateId(b), c),
                    ) {
                        if na != nb && !compatible[na.0][nb.0] {
                            compatible[a][b] = false;
                            compatible[b][a] = false;
                            changed = true;
                            break;
                        }
                    }
                }
            }
        }
    }
    compatible
}

/// An arbitrary compatibility graph on up to 12 states: a state count plus
/// one adjacency bit per unordered pair (unused tail bits are ignored).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<bool>)> {
    (2usize..=12, proptest::collection::vec(any::<bool>(), 66))
}

proptest! {
    /// The pivoted, degeneracy-ordered enumeration finds exactly the maximal
    /// cliques the pivotless oracle finds.
    #[test]
    fn pivoted_enumeration_matches_pivotless_oracle(graph in arb_graph()) {
        let (n, bits) = graph;
        let compat = table_from_bits(n, &bits);
        let pivoted = maximal_compatibles(&compat);
        let oracle = pivotless_oracle(&compat);
        prop_assert_eq!(pivoted, oracle);
    }

    /// Under arbitrary caps every emitted set is still a compatible
    /// (a clique), the emission cap is respected, and an enumeration
    /// reported as complete matches the oracle exactly.
    #[test]
    fn capped_enumeration_is_sound(
        graph in arb_graph(),
        max_compatibles in 1usize..=64,
        max_clique_width in 1usize..=13,
        node_budget in 1u64..=512,
    ) {
        let (n, bits) = graph;
        let compat = table_from_bits(n, &bits);
        let options = ReductionOptions {
            max_compatibles,
            max_clique_width,
            node_budget,
            exact_cover_max_states: 0,
            refine_passes: 2,
        };
        let result = maximal_compatibles_bounded(&compat, &options);
        prop_assert!(result.compatibles.len() <= max_compatibles);
        for c in &result.compatibles {
            prop_assert!(compat.set_is_compatible(c));
            prop_assert!(c.len() <= max_clique_width);
        }
        if result.complete {
            prop_assert_eq!(result.compatibles, pivotless_oracle(&compat));
        }
    }

    /// Whatever the caps, cover selection yields a complete, closed cover of
    /// compatible classes on every benchmark machine, and the resulting
    /// reduction never grows the machine.
    #[test]
    fn degraded_covers_stay_complete_and_closed(
        bench in 0usize..8,
        max_compatibles in 1usize..=32,
        max_clique_width in 1usize..=8,
        node_budget in 1u64..=256,
        exact_cover_max_states in 0usize..=12,
        refine_passes in 0usize..=2,
    ) {
        let table = &benchmarks::all()[bench];
        let options = ReductionOptions {
            max_compatibles,
            max_clique_width,
            node_budget,
            exact_cover_max_states,
            refine_passes,
        };
        let compat = compatibility(table);
        let cover = closed_cover_with(table, &compat, &options);
        prop_assert!(cover.covers_all_states(table));
        prop_assert!(cover.is_closed(table));
        for class in &cover.classes {
            prop_assert!(compat.set_is_compatible(class));
        }
        let reduction = reduce_with_options(table, &options);
        prop_assert!(reduction.table.num_states() <= table.num_states());
        // Behaviour preservation: specified next states land in the class
        // chosen for them and specified outputs survive.
        for s in table.states() {
            let rs = reduction.map_state(s);
            for c in 0..table.num_columns() {
                if let Some(next) = table.next_state(s, c) {
                    let rnext = reduction.table.next_state(rs, c);
                    prop_assert!(rnext.is_some());
                    prop_assert!(reduction.cover.classes[rnext.unwrap().0].contains(&next));
                }
                if let Some(out) = table.output(s, c) {
                    prop_assert_eq!(reduction.table.output(rs, c), Some(out));
                }
            }
        }
    }
}

#[test]
fn incremental_compatibility_matches_fixpoint_oracle_on_the_corpus() {
    let mut tables = benchmarks::all();
    tables.extend(benchmarks::large_suite());
    for table in tables {
        let incremental = compatibility(&table);
        let oracle = fixpoint_oracle(&table);
        for a in table.states() {
            for b in table.states() {
                assert_eq!(
                    incremental.are_compatible(a, b),
                    oracle[a.0][b.0],
                    "{}: pair ({a}, {b})",
                    table.name()
                );
            }
        }
    }
}
