//! State minimization for (incompletely specified) flow tables.
//!
//! Step 2 of the SEANCE synthesis procedure removes redundant states from the
//! input flow table before state assignment ("Large flow tables benefit from
//! Step 2, table reduction", Section 5.1), using classical state-machine
//! minimization (Kohavi 1978):
//!
//! 1. pairwise **compatibility** analysis with an implication table
//!    ([`compatibility`]),
//! 2. enumeration of **maximal compatibles** ([`maximal_compatibles`]),
//! 3. selection of a minimum **closed cover** of compatibles
//!    ([`closed_cover`]),
//! 4. construction of the reduced flow table ([`reduce`]).
//!
//! For completely specified tables compatibility degenerates to equivalence
//! and the procedure reduces to classical partition refinement.
//!
//! # Example
//!
//! ```
//! use fantom_flow::benchmarks;
//! use fantom_minimize::reduce;
//!
//! let table = benchmarks::redundant_traffic();
//! let reduction = reduce(&table);
//! assert!(reduction.table.num_states() < table.num_states());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compat;
mod cover;
mod reduced;

pub use compat::{compatibility, maximal_compatibles, CompatibilityTable};
pub use cover::{closed_cover, StateCover};
pub use reduced::{reduce, reduce_with_cover, Reduction};
