//! State minimization for (incompletely specified) flow tables.
//!
//! Step 2 of the SEANCE synthesis procedure removes redundant states from the
//! input flow table before state assignment ("Large flow tables benefit from
//! Step 2, table reduction", Section 5.1), using classical state-machine
//! minimization (Kohavi 1978):
//!
//! 1. pairwise **compatibility** analysis with an implication table
//!    ([`compatibility`]), propagated incrementally along precomputed
//!    implication edges ([`CompatibilityBuilder`]) instead of rescanning all
//!    pairs to fixpoint,
//! 2. enumeration of **maximal compatibles** ([`maximal_compatibles`]) —
//!    maximal cliques of the compatibility graph, found by Bron–Kerbosch
//!    with Tomita-style pivoting over a degeneracy-ordered outer loop,
//! 3. selection of a minimum **closed cover** of compatibles
//!    ([`closed_cover`]),
//! 4. construction of the reduced flow table ([`reduce`]).
//!
//! For completely specified tables compatibility degenerates to equivalence
//! and the procedure reduces to classical partition refinement.
//!
//! # Bounded reduction for large machines
//!
//! Both clique enumeration and exact cover selection are exponential in the
//! worst case. [`ReductionOptions`] caps them (`max_compatibles`,
//! `max_clique_width`, `node_budget`, `exact_cover_max_states`); when a cap
//! is hit, [`maximal_compatibles_bounded`] reports the enumeration as
//! incomplete and [`closed_cover_with`] degrades to a greedy pair-merging
//! cover with closure repair, followed by `refine_passes` rounds of
//! local search (drop redundant classes, merge compatible pairs) that only
//! accepts covers whose reduced machine stays normal-mode and strongly
//! connected. Degraded covers are still complete and closed, so
//! [`reduce_with_options`] always yields a behaviourally valid reduced
//! table — the caps only cost merge optimality. This is what lets the
//! synthesis pipeline run Step 2 on 40-state unspecified-heavy machines
//! instead of skipping it.
//!
//! # Example
//!
//! ```
//! use fantom_flow::benchmarks;
//! use fantom_minimize::reduce;
//!
//! let table = benchmarks::redundant_traffic();
//! let reduction = reduce(&table);
//! assert!(reduction.table.num_states() < table.num_states());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compat;
mod cover;
mod options;
mod reduced;

pub use compat::{
    compatibility, maximal_compatibles, maximal_compatibles_bounded, CompatibilityBuilder,
    CompatibilityTable, CompatiblesResult,
};
pub use cover::{closed_cover, closed_cover_with, StateCover};
pub use options::ReductionOptions;
pub use reduced::{reduce, reduce_with_cover, reduce_with_options, Reduction};
