//! Pairwise compatibility analysis and maximal-compatible enumeration.
//!
//! Compatibility is computed *incrementally*: implication edges between state
//! pairs are recorded once, direct output conflicts seed a worklist, and
//! incompatibility is propagated along the recorded edges. Total cost is
//! O(n² · columns + implications) instead of the classical
//! fixpoint-of-full-rescans loop, which rescans all n²/2 pairs against every
//! column on every iteration.
//!
//! Maximal compatibles are the maximal cliques of the compatibility graph,
//! enumerated by Bron–Kerbosch with Tomita-style greedy pivoting over a
//! degeneracy-ordered outer loop, with configurable caps
//! ([`ReductionOptions`]) so enumeration stays bounded on adversarial tables.

use fantom_flow::{FlowTable, StateId};

use crate::options::ReductionOptions;

const WORD_BITS: usize = 64;

#[inline]
fn word_count(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}

#[inline]
fn get_bit(row: &[u64], i: usize) -> bool {
    row[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
}

#[inline]
fn set_bit(row: &mut [u64], i: usize) {
    row[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
}

#[inline]
fn clear_bit(row: &mut [u64], i: usize) {
    row[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
}

#[inline]
fn popcount(row: &[u64]) -> usize {
    row.iter().map(|w| w.count_ones() as usize).sum()
}

/// Iterate the set bit indices of a word slice.
fn for_each_bit(row: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &w) in row.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let b = w.trailing_zeros() as usize;
            f(wi * WORD_BITS + b);
            w &= w - 1;
        }
    }
}

/// Result of the pairwise compatibility analysis (the implication table).
///
/// Rows are stored as packed bitsets so clique enumeration can intersect
/// neighbourhoods word-parallel.
#[derive(Debug, Clone)]
pub struct CompatibilityTable {
    n: usize,
    words: usize,
    /// `n` rows of `words` words; bit `b` of row `a` means `a` and `b` are
    /// compatible. The diagonal is always set.
    rows: Vec<u64>,
}

impl CompatibilityTable {
    #[inline]
    fn row(&self, a: usize) -> &[u64] {
        &self.rows[a * self.words..(a + 1) * self.words]
    }

    /// Whether states `a` and `b` are compatible. A state is always compatible
    /// with itself.
    pub fn are_compatible(&self, a: StateId, b: StateId) -> bool {
        get_bit(self.row(a.0), b.0)
    }

    /// Number of states of the analysed table.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// All compatible pairs `(a, b)` with `a < b`.
    pub fn compatible_pairs(&self) -> Vec<(StateId, StateId)> {
        let mut out = Vec::new();
        for a in 0..self.n {
            for_each_bit(self.row(a), |b| {
                if a < b {
                    out.push((StateId(a), StateId(b)));
                }
            });
        }
        out
    }

    /// Whether every pair of states drawn from `set` is compatible.
    pub fn set_is_compatible(&self, set: &[StateId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if !self.are_compatible(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

/// Incremental construction of a [`CompatibilityTable`].
///
/// The builder starts from the all-compatible table. Implication edges
/// ("if `implied` is incompatible then `premise` is incompatible") are
/// recorded once; direct conflicts are seeded with
/// [`mark_incompatible`](Self::mark_incompatible); and [`finish`](Self::finish)
/// propagates incompatibility along the recorded edges with a worklist. Each
/// pair is enqueued at most once, so propagation is linear in the number of
/// recorded implications rather than quadratic rescans to fixpoint.
#[derive(Debug, Clone)]
pub struct CompatibilityBuilder {
    n: usize,
    words: usize,
    rows: Vec<u64>,
    /// Indexed by the upper-triangular index of a pair `(a, b)` with
    /// `a < b`: the packed pairs that become incompatible when `(a, b)`
    /// does. Triangular so only the n·(n−1)/2 addressable slots exist.
    dependents: Vec<Vec<u32>>,
    /// Packed `(a, b)` pairs whose incompatibility is yet to be propagated.
    worklist: Vec<u32>,
}

/// Pack an unordered state pair into 16-bit halves (states are bounded far
/// below 2^16 by the n² structures above).
#[inline]
fn pack_pair(a: StateId, b: StateId) -> u32 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    ((lo as u32) << 16) | hi as u32
}

#[inline]
fn unpack_pair(p: u32) -> (usize, usize) {
    ((p >> 16) as usize, (p & 0xFFFF) as usize)
}

impl CompatibilityBuilder {
    /// A builder over `n` states with every pair initially compatible.
    pub fn new(n: usize) -> Self {
        let words = word_count(n).max(1);
        let mut rows = vec![0u64; n * words];
        for a in 0..n {
            let row = &mut rows[a * words..(a + 1) * words];
            for b in 0..n {
                set_bit(row, b);
            }
        }
        CompatibilityBuilder {
            n,
            words,
            rows,
            dependents: vec![Vec::new(); n * n.saturating_sub(1) / 2],
            worklist: Vec::new(),
        }
    }

    /// Upper-triangular index of an unordered pair (`lo < hi`).
    #[inline]
    fn tri_index(&self, a: StateId, b: StateId) -> usize {
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        lo * self.n - lo * (lo + 1) / 2 + (hi - lo - 1)
    }

    /// Record that `premise` is incompatible whenever `implied` is (some
    /// input column sends the premise pair to the implied pair).
    pub fn add_implication(&mut self, premise: (StateId, StateId), implied: (StateId, StateId)) {
        let p = pack_pair(premise.0, premise.1);
        let i = self.tri_index(implied.0, implied.1);
        self.dependents[i].push(p);
    }

    /// Seed a direct incompatibility (e.g. an output conflict).
    pub fn mark_incompatible(&mut self, a: StateId, b: StateId) {
        if a.0 == b.0 {
            return;
        }
        if !get_bit(&self.rows[a.0 * self.words..(a.0 + 1) * self.words], b.0) {
            return; // already marked
        }
        clear_bit(
            &mut self.rows[a.0 * self.words..(a.0 + 1) * self.words],
            b.0,
        );
        clear_bit(
            &mut self.rows[b.0 * self.words..(b.0 + 1) * self.words],
            a.0,
        );
        self.worklist.push(pack_pair(a, b));
    }

    /// Propagate incompatibility along the recorded implications and return
    /// the finished table.
    pub fn finish(mut self) -> CompatibilityTable {
        while let Some(pair) = self.worklist.pop() {
            let (a, b) = unpack_pair(pair);
            // Move the dependents out to appease the borrow checker; the pair
            // can never be re-processed, so the list is not needed again.
            let idx = self.tri_index(StateId(a), StateId(b));
            let deps = std::mem::take(&mut self.dependents[idx]);
            for dep in deps {
                let (a, b) = unpack_pair(dep);
                if get_bit(&self.rows[a * self.words..(a + 1) * self.words], b) {
                    self.mark_incompatible(StateId(a), StateId(b));
                }
            }
        }
        CompatibilityTable {
            n: self.n,
            words: self.words,
            rows: self.rows,
        }
    }
}

/// Run the implication-table analysis on `table`.
///
/// Two states are *compatible* when, for every input column, their specified
/// outputs agree and their specified next states are themselves (pairwise)
/// compatible. Incompatibility is propagated along precomputed implication
/// edges with a worklist (see [`CompatibilityBuilder`]), not by rescanning
/// all pairs to fixpoint.
pub fn compatibility(table: &FlowTable) -> CompatibilityTable {
    let n = table.num_states();
    let mut builder = CompatibilityBuilder::new(n);

    for a in 0..n {
        for b in (a + 1)..n {
            let (sa, sb) = (StateId(a), StateId(b));
            if output_conflict(table, sa, sb) {
                builder.mark_incompatible(sa, sb);
                continue;
            }
            for c in 0..table.num_columns() {
                if let (Some(na), Some(nb)) = (table.next_state(sa, c), table.next_state(sb, c)) {
                    if na != nb && !(na == sa && nb == sb) && !(na == sb && nb == sa) {
                        builder.add_implication((sa, sb), (na, nb));
                    }
                }
            }
        }
    }

    builder.finish()
}

fn output_conflict(table: &FlowTable, a: StateId, b: StateId) -> bool {
    for c in 0..table.num_columns() {
        if let (Some(oa), Some(ob)) = (table.output(a, c), table.output(b, c)) {
            if oa != ob {
                return true;
            }
        }
    }
    false
}

/// Outcome of a (possibly budgeted) compatible enumeration.
#[derive(Debug, Clone)]
pub struct CompatiblesResult {
    /// The enumerated compatibles, each sorted by state index; the list is
    /// sorted and duplicate-free.
    pub compatibles: Vec<Vec<StateId>>,
    /// `true` when enumeration finished without hitting any cap, i.e. the
    /// result is exactly the set of maximal compatibles.
    pub complete: bool,
    /// Bron–Kerbosch search nodes visited.
    pub nodes: u64,
}

/// Enumerate the maximal compatibles of `compat`: maximal sets of states in
/// which every pair is compatible (maximal cliques of the compatibility
/// graph). Sets are returned sorted by their smallest member.
pub fn maximal_compatibles(compat: &CompatibilityTable) -> Vec<Vec<StateId>> {
    let result = maximal_compatibles_bounded(compat, &ReductionOptions::exact());
    debug_assert!(result.complete);
    result.compatibles
}

/// Enumerate compatibles under the budgets of `options`.
///
/// Within budget this returns exactly the maximal compatibles
/// (`complete == true`). When a cap is hit, the returned sets are still all
/// compatible (they are cliques) but may be non-maximal, and some maximal
/// compatibles may be missing (`complete == false`).
pub fn maximal_compatibles_bounded(
    compat: &CompatibilityTable,
    options: &ReductionOptions,
) -> CompatiblesResult {
    let n = compat.num_states();
    let words = word_count(n).max(1);

    // Adjacency without the diagonal (a clique never re-adds its own member).
    let mut adj = vec![0u64; n * words];
    for a in 0..n {
        adj[a * words..(a + 1) * words].copy_from_slice(compat.row(a));
        clear_bit(&mut adj[a * words..(a + 1) * words], a);
    }

    let order = degeneracy_order(&adj, n, words);

    let mut search = BoundedSearch {
        adj: &adj,
        words,
        options,
        nodes: 0,
        truncated: false,
        out: Vec::new(),
    };

    // Degeneracy-ordered outer loop: each vertex roots a subtree whose
    // candidate set is its later neighbours, keeping the recursion depth
    // close to the graph's degeneracy.
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v] = i;
    }
    'outer: for &v in &order {
        let mut p = vec![0u64; words];
        let mut x = vec![0u64; words];
        for_each_bit(&adj[v * words..(v + 1) * words], |u| {
            if position[u] > position[v] {
                set_bit(&mut p, u);
            } else {
                set_bit(&mut x, u);
            }
        });
        let mut r = vec![v];
        if !search.expand(&mut r, p, x) {
            break 'outer;
        }
    }

    let truncated = search.truncated;
    let nodes = search.nodes;
    let mut compatibles: Vec<Vec<StateId>> = search
        .out
        .into_iter()
        .map(|c| {
            let mut c: Vec<StateId> = c.into_iter().map(StateId).collect();
            c.sort();
            c
        })
        .collect();
    compatibles.sort();
    compatibles.dedup();
    CompatiblesResult {
        compatibles,
        complete: !truncated,
        nodes,
    }
}

/// Degeneracy ordering: repeatedly remove a minimum-degree vertex. Ties are
/// broken by index so the ordering (and therefore the enumeration order) is
/// deterministic.
fn degeneracy_order(adj: &[u64], n: usize, words: usize) -> Vec<usize> {
    let mut remaining = vec![0u64; words];
    for v in 0..n {
        set_bit(&mut remaining, v);
    }
    let mut degree: Vec<usize> = (0..n)
        .map(|v| popcount(&adj[v * words..(v + 1) * words]))
        .collect();
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for_each_bit(&remaining, |v| {
            if degree[v] < best_deg {
                best_deg = degree[v];
                best = v;
            }
        });
        let v = best;
        clear_bit(&mut remaining, v);
        order.push(v);
        for_each_bit(&adj[v * words..(v + 1) * words], |u| {
            if get_bit(&remaining, u) {
                degree[u] -= 1;
            }
        });
    }
    order
}

struct BoundedSearch<'a> {
    adj: &'a [u64],
    words: usize,
    options: &'a ReductionOptions,
    nodes: u64,
    truncated: bool,
    out: Vec<Vec<usize>>,
}

impl BoundedSearch<'_> {
    #[inline]
    fn neighbours(&self, v: usize) -> &[u64] {
        &self.adj[v * self.words..(v + 1) * self.words]
    }

    /// Emit a compatible; returns `false` when the emission cap is reached.
    fn emit(&mut self, r: &[usize]) -> bool {
        self.out.push(r.to_vec());
        if self.out.len() >= self.options.max_compatibles {
            self.truncated = true;
            return false;
        }
        true
    }

    /// Pivoted Bron–Kerbosch over bitset candidate (`p`) and exclusion (`x`)
    /// sets. Returns `false` when the whole search should stop (a global cap
    /// was hit).
    fn expand(&mut self, r: &mut Vec<usize>, mut p: Vec<u64>, mut x: Vec<u64>) -> bool {
        self.nodes += 1;
        if self.nodes > self.options.node_budget {
            self.truncated = true;
            // Whatever has been grown so far is still a clique worth keeping
            // as a cover candidate — but the budget is a hard abort, so stop
            // the whole search regardless of the emission cap.
            if !r.is_empty() {
                self.emit(r);
            }
            return false;
        }
        let p_count = popcount(&p);
        if p_count == 0 {
            if popcount(&x) == 0 {
                return self.emit(r);
            }
            return true;
        }
        if r.len() >= self.options.max_clique_width {
            // Depth cap: record the clique as-is and stop deepening. The set
            // may be non-maximal, so mark the enumeration incomplete.
            self.truncated = true;
            return self.emit(r);
        }

        // Tomita pivot: the vertex of P ∪ X with the most neighbours in P
        // minimizes the branching set P \ N(u).
        let mut pivot = usize::MAX;
        let mut pivot_cover = usize::MAX;
        for set in [&p, &x] {
            for_each_bit(set, |u| {
                let cover: usize = self
                    .neighbours(u)
                    .iter()
                    .zip(&p)
                    .map(|(a, b)| (a & b).count_ones() as usize)
                    .sum();
                if pivot == usize::MAX || cover > pivot_cover {
                    pivot = u;
                    pivot_cover = cover;
                }
            });
        }

        // Branch on P \ N(pivot).
        let mut branch = vec![0u64; self.words];
        for (b, (pw, nw)) in branch.iter_mut().zip(p.iter().zip(self.neighbours(pivot))) {
            *b = pw & !nw;
        }
        let mut branch_vertices = Vec::new();
        for_each_bit(&branch, |v| branch_vertices.push(v));

        for v in branch_vertices {
            let nv = self.neighbours(v).to_vec();
            let p2: Vec<u64> = p.iter().zip(&nv).map(|(a, b)| a & b).collect();
            let x2: Vec<u64> = x.iter().zip(&nv).map(|(a, b)| a & b).collect();
            r.push(v);
            let keep_going = self.expand(r, p2, x2);
            r.pop();
            if !keep_going {
                return false;
            }
            clear_bit(&mut p, v);
            set_bit(&mut x, v);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fantom_flow::{benchmarks, FlowTableBuilder};

    #[test]
    fn identical_rows_are_compatible() {
        let table = benchmarks::redundant_traffic();
        let compat = compatibility(&table);
        let hg1 = table.state_by_name("HG1").unwrap();
        let hg2 = table.state_by_name("HG2").unwrap();
        assert!(compat.are_compatible(hg1, hg2));
    }

    #[test]
    fn output_conflicts_make_states_incompatible() {
        let table = benchmarks::lion();
        let compat = compatibility(&table);
        let l0 = table.state_by_name("L0").unwrap(); // output 0
        let l2 = table.state_by_name("L2").unwrap(); // output 1, stable at 00 as well
        assert!(!compat.are_compatible(l0, l2));
    }

    #[test]
    fn incompatibility_propagates_through_next_states() {
        // A/B differ only in that their successors under column 1 conflict in output.
        let mut b = FlowTableBuilder::new("prop", 1, 1);
        b.states(["A", "B", "C", "D"]);
        b.stable("A", "0", "0").unwrap();
        b.stable("B", "0", "0").unwrap();
        b.stable("C", "1", "0").unwrap();
        b.stable("D", "1", "1").unwrap();
        b.transition("A", "1", "C").unwrap();
        b.transition("B", "1", "D").unwrap();
        b.transition("C", "0", "A").unwrap();
        b.transition("D", "0", "B").unwrap();
        let t = b.build().unwrap();
        let compat = compatibility(&t);
        let a = t.state_by_name("A").unwrap();
        let b_id = t.state_by_name("B").unwrap();
        let c = t.state_by_name("C").unwrap();
        let d = t.state_by_name("D").unwrap();
        assert!(!compat.are_compatible(c, d), "C and D conflict directly");
        assert!(
            !compat.are_compatible(a, b_id),
            "A and B conflict through implication"
        );
    }

    #[test]
    fn maximal_compatibles_cover_all_states_and_are_maximal() {
        for table in benchmarks::all() {
            let compat = compatibility(&table);
            let maxes = maximal_compatibles(&compat);
            // Every state appears in at least one maximal compatible.
            for s in table.states() {
                assert!(
                    maxes.iter().any(|m| m.contains(&s)),
                    "state {s} of {} not covered",
                    table.name()
                );
            }
            for m in &maxes {
                assert!(compat.set_is_compatible(m));
                // Maximality: no state outside the set is compatible with all members.
                for s in table.states() {
                    if m.contains(&s) {
                        continue;
                    }
                    let all_ok = m.iter().all(|&x| compat.are_compatible(x, s));
                    assert!(
                        !all_ok,
                        "compatible set {m:?} of {} is not maximal",
                        table.name()
                    );
                }
            }
        }
    }

    #[test]
    fn self_compatibility_always_holds() {
        let table = benchmarks::lion9();
        let compat = compatibility(&table);
        for s in table.states() {
            assert!(compat.are_compatible(s, s));
        }
    }

    #[test]
    fn builder_propagates_chained_implications() {
        let mut b = CompatibilityBuilder::new(6);
        // (0,1) depends on (2,3) depends on (4,5).
        b.add_implication((StateId(0), StateId(1)), (StateId(2), StateId(3)));
        b.add_implication((StateId(2), StateId(3)), (StateId(4), StateId(5)));
        b.mark_incompatible(StateId(4), StateId(5));
        let table = b.finish();
        assert!(!table.are_compatible(StateId(4), StateId(5)));
        assert!(!table.are_compatible(StateId(2), StateId(3)));
        assert!(!table.are_compatible(StateId(0), StateId(1)));
        // Untouched pairs stay compatible.
        assert!(table.are_compatible(StateId(0), StateId(2)));
    }

    #[test]
    fn bounded_enumeration_respects_caps_and_reports_truncation() {
        let table = benchmarks::redundant_traffic();
        let compat = compatibility(&table);
        let exact = maximal_compatibles(&compat);

        let capped = maximal_compatibles_bounded(
            &compat,
            &ReductionOptions {
                max_compatibles: 1,
                ..ReductionOptions::exact()
            },
        );
        assert!(!capped.complete);
        assert_eq!(capped.compatibles.len(), 1);
        assert!(compat.set_is_compatible(&capped.compatibles[0]));

        let width_capped = maximal_compatibles_bounded(
            &compat,
            &ReductionOptions {
                max_clique_width: 1,
                ..ReductionOptions::exact()
            },
        );
        assert!(!width_capped.complete);
        for c in &width_capped.compatibles {
            assert!(c.len() <= 1);
        }

        let unbounded = maximal_compatibles_bounded(&compat, &ReductionOptions::exact());
        assert!(unbounded.complete);
        assert_eq!(unbounded.compatibles, exact);
    }

    #[test]
    fn node_budget_exhaustion_still_yields_compatible_sets() {
        let table = benchmarks::train11();
        let compat = compatibility(&table);
        let starved = maximal_compatibles_bounded(
            &compat,
            &ReductionOptions {
                node_budget: 3,
                ..ReductionOptions::exact()
            },
        );
        assert!(!starved.complete);
        for c in &starved.compatibles {
            assert!(compat.set_is_compatible(c));
        }
    }
}
