//! Pairwise compatibility analysis and maximal-compatible enumeration.

use fantom_flow::{FlowTable, StateId};

/// Result of the pairwise compatibility analysis (the implication table).
#[derive(Debug, Clone)]
pub struct CompatibilityTable {
    n: usize,
    compatible: Vec<Vec<bool>>,
}

impl CompatibilityTable {
    /// Whether states `a` and `b` are compatible. A state is always compatible
    /// with itself.
    pub fn are_compatible(&self, a: StateId, b: StateId) -> bool {
        self.compatible[a.0][b.0]
    }

    /// Number of states of the analysed table.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// All compatible pairs `(a, b)` with `a < b`.
    pub fn compatible_pairs(&self) -> Vec<(StateId, StateId)> {
        let mut out = Vec::new();
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if self.compatible[a][b] {
                    out.push((StateId(a), StateId(b)));
                }
            }
        }
        out
    }

    /// Whether every pair of states drawn from `set` is compatible.
    pub fn set_is_compatible(&self, set: &[StateId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if !self.are_compatible(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

/// Run the iterative implication-table analysis on `table`.
///
/// Two states are *compatible* when, for every input column, their specified
/// outputs agree and their specified next states are themselves (pairwise)
/// compatible. Incompatibility is propagated to fixpoint.
#[allow(clippy::needless_range_loop)] // symmetric 2-D indexing; iterators obscure the pairs
pub fn compatibility(table: &FlowTable) -> CompatibilityTable {
    let n = table.num_states();
    let mut compatible = vec![vec![true; n]; n];

    // Seed: direct output conflicts.
    for a in 0..n {
        for b in (a + 1)..n {
            if output_conflict(table, StateId(a), StateId(b)) {
                compatible[a][b] = false;
                compatible[b][a] = false;
            }
        }
    }

    // Propagate: a pair is incompatible if some column implies an incompatible pair.
    let mut changed = true;
    while changed {
        changed = false;
        for a in 0..n {
            for b in (a + 1)..n {
                if !compatible[a][b] {
                    continue;
                }
                'columns: for c in 0..table.num_columns() {
                    let (na, nb) = (
                        table.next_state(StateId(a), c),
                        table.next_state(StateId(b), c),
                    );
                    if let (Some(na), Some(nb)) = (na, nb) {
                        if na != nb && !compatible[na.0][nb.0] {
                            compatible[a][b] = false;
                            compatible[b][a] = false;
                            changed = true;
                            break 'columns;
                        }
                    }
                }
            }
        }
    }

    CompatibilityTable { n, compatible }
}

fn output_conflict(table: &FlowTable, a: StateId, b: StateId) -> bool {
    for c in 0..table.num_columns() {
        if let (Some(oa), Some(ob)) = (table.output(a, c), table.output(b, c)) {
            if oa != ob {
                return true;
            }
        }
    }
    false
}

/// Enumerate the maximal compatibles of `table`: maximal sets of states in
/// which every pair is compatible (maximal cliques of the compatibility
/// graph). Sets are returned sorted by their smallest member.
pub fn maximal_compatibles(compat: &CompatibilityTable) -> Vec<Vec<StateId>> {
    let n = compat.num_states();
    let mut cliques: Vec<Vec<usize>> = Vec::new();
    let mut r = Vec::new();
    let mut p: Vec<usize> = (0..n).collect();
    let mut x: Vec<usize> = Vec::new();
    bron_kerbosch(compat, &mut r, &mut p, &mut x, &mut cliques);
    let mut out: Vec<Vec<StateId>> = cliques
        .into_iter()
        .map(|c| {
            let mut c: Vec<StateId> = c.into_iter().map(StateId).collect();
            c.sort();
            c
        })
        .collect();
    out.sort();
    out
}

fn bron_kerbosch(
    compat: &CompatibilityTable,
    r: &mut Vec<usize>,
    p: &mut Vec<usize>,
    x: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if p.is_empty() && x.is_empty() {
        out.push(r.clone());
        return;
    }
    let candidates = p.clone();
    for v in candidates {
        let neighbours = |u: usize| compat.compatible[v][u] && v != u;
        let mut p2: Vec<usize> = p.iter().copied().filter(|&u| neighbours(u)).collect();
        let mut x2: Vec<usize> = x.iter().copied().filter(|&u| neighbours(u)).collect();
        r.push(v);
        bron_kerbosch(compat, r, &mut p2, &mut x2, out);
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fantom_flow::{benchmarks, FlowTableBuilder};

    #[test]
    fn identical_rows_are_compatible() {
        let table = benchmarks::redundant_traffic();
        let compat = compatibility(&table);
        let hg1 = table.state_by_name("HG1").unwrap();
        let hg2 = table.state_by_name("HG2").unwrap();
        assert!(compat.are_compatible(hg1, hg2));
    }

    #[test]
    fn output_conflicts_make_states_incompatible() {
        let table = benchmarks::lion();
        let compat = compatibility(&table);
        let l0 = table.state_by_name("L0").unwrap(); // output 0
        let l2 = table.state_by_name("L2").unwrap(); // output 1, stable at 00 as well
        assert!(!compat.are_compatible(l0, l2));
    }

    #[test]
    fn incompatibility_propagates_through_next_states() {
        // A/B differ only in that their successors under column 1 conflict in output.
        let mut b = FlowTableBuilder::new("prop", 1, 1);
        b.states(["A", "B", "C", "D"]);
        b.stable("A", "0", "0").unwrap();
        b.stable("B", "0", "0").unwrap();
        b.stable("C", "1", "0").unwrap();
        b.stable("D", "1", "1").unwrap();
        b.transition("A", "1", "C").unwrap();
        b.transition("B", "1", "D").unwrap();
        b.transition("C", "0", "A").unwrap();
        b.transition("D", "0", "B").unwrap();
        let t = b.build().unwrap();
        let compat = compatibility(&t);
        let a = t.state_by_name("A").unwrap();
        let b_id = t.state_by_name("B").unwrap();
        let c = t.state_by_name("C").unwrap();
        let d = t.state_by_name("D").unwrap();
        assert!(!compat.are_compatible(c, d), "C and D conflict directly");
        assert!(
            !compat.are_compatible(a, b_id),
            "A and B conflict through implication"
        );
    }

    #[test]
    fn maximal_compatibles_cover_all_states_and_are_maximal() {
        for table in benchmarks::all() {
            let compat = compatibility(&table);
            let maxes = maximal_compatibles(&compat);
            // Every state appears in at least one maximal compatible.
            for s in table.states() {
                assert!(
                    maxes.iter().any(|m| m.contains(&s)),
                    "state {s} of {} not covered",
                    table.name()
                );
            }
            for m in &maxes {
                assert!(compat.set_is_compatible(m));
                // Maximality: no state outside the set is compatible with all members.
                for s in table.states() {
                    if m.contains(&s) {
                        continue;
                    }
                    let all_ok = m.iter().all(|&x| compat.are_compatible(x, s));
                    assert!(
                        !all_ok,
                        "compatible set {m:?} of {} is not maximal",
                        table.name()
                    );
                }
            }
        }
    }

    #[test]
    fn self_compatibility_always_holds() {
        let table = benchmarks::lion9();
        let compat = compatibility(&table);
        for s in table.states() {
            assert!(compat.are_compatible(s, s));
        }
    }
}
