//! Resource budgets for the state-reduction engine.

/// Budgets and caps controlling Step 2 (state minimization).
///
/// Maximal-compatible enumeration is maximal-clique enumeration and therefore
/// exponential in the worst case, and exact closed-cover selection is a set
/// cover on top of it. These options bound both phases so reduction can run
/// on *every* machine: within budget the result is exact, and when a cap is
/// hit the engine degrades to a greedy pair-merging cover instead of skipping
/// reduction entirely. Degraded covers are still complete (every state is
/// covered) and closed, so the reduced machine is always behaviourally valid
/// — the caps only cost optimality (fewer states merged than an unbounded
/// search might find).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionOptions {
    /// Stop compatible enumeration after this many sets have been emitted.
    pub max_compatibles: usize,
    /// Emit (and stop deepening) a compatible once it reaches this many
    /// states. Capped sets may be non-maximal but are still compatible, so
    /// they remain valid cover classes.
    pub max_clique_width: usize,
    /// Abort enumeration after this many Bron–Kerbosch search nodes.
    pub node_budget: u64,
    /// Above this state count the exact closed-cover search (exponential in
    /// the candidate count) is replaced by the greedy cover heuristic.
    pub exact_cover_max_states: usize,
    /// Rounds of local-search refinement applied to greedy covers: redundant
    /// classes are dropped and compatible class pairs are merged (with
    /// closure repair) while the cover shrinks. Refinement never loosens the
    /// cover invariants — the result stays complete and closed.
    pub refine_passes: usize,
}

impl Default for ReductionOptions {
    /// Effectively exact for the small benchmark corpus (n ≤ 12): generous
    /// enumeration budgets and the exact cover search, with the greedy
    /// fallback only for larger machines.
    fn default() -> Self {
        ReductionOptions {
            max_compatibles: 100_000,
            max_clique_width: usize::MAX,
            node_budget: 10_000_000,
            exact_cover_max_states: 12,
            refine_passes: 2,
        }
    }
}

impl ReductionOptions {
    /// No caps at all: full maximal-compatible enumeration and the exact
    /// cover search regardless of machine size. Exponential in the worst
    /// case — use only when the input is known to be small.
    pub fn exact() -> Self {
        ReductionOptions {
            max_compatibles: usize::MAX,
            max_clique_width: usize::MAX,
            node_budget: u64::MAX,
            exact_cover_max_states: usize::MAX,
            refine_passes: 2,
        }
    }

    /// Tight budgets for large (40-state-class) machines: enumeration is
    /// bounded to a few thousand compatibles and a quarter-million search
    /// nodes, and cover selection is always greedy. Reduction stays
    /// millisecond-scale on the `large_suite` benchmarks.
    pub fn bounded() -> Self {
        ReductionOptions {
            max_compatibles: 4096,
            max_clique_width: 64,
            node_budget: 250_000,
            exact_cover_max_states: 12,
            refine_passes: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_tightness() {
        let exact = ReductionOptions::exact();
        let default = ReductionOptions::default();
        let bounded = ReductionOptions::bounded();
        assert!(exact.node_budget >= default.node_budget);
        assert!(default.node_budget >= bounded.node_budget);
        assert!(default.max_compatibles >= bounded.max_compatibles);
        assert!(bounded.max_clique_width >= 2);
    }
}
