//! Closed-cover selection over compatibles.

use fantom_flow::{FlowTable, StateId};

use crate::compat::{maximal_compatibles, CompatibilityTable};

/// A closed cover of the state set: a collection of compatible classes such
/// that every state belongs to at least one class and every implied class is
/// contained in some chosen class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateCover {
    /// The chosen compatible classes (each sorted by state index).
    pub classes: Vec<Vec<StateId>>,
}

impl StateCover {
    /// The trivial cover with one singleton class per state (always closed).
    pub fn trivial(num_states: usize) -> Self {
        StateCover {
            classes: (0..num_states).map(|i| vec![StateId(i)]).collect(),
        }
    }

    /// Number of classes (states of the reduced machine).
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` if the cover has no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Index of the first class containing `state`.
    ///
    /// # Panics
    ///
    /// Panics if no class contains `state` (the cover is not a cover).
    pub fn class_of(&self, state: StateId) -> usize {
        self.classes
            .iter()
            .position(|c| c.contains(&state))
            .expect("cover must contain every state")
    }

    /// Index of the first class containing the whole `set`, if any.
    pub fn class_containing(&self, set: &[StateId]) -> Option<usize> {
        self.classes
            .iter()
            .position(|c| set.iter().all(|s| c.contains(s)))
    }
}

/// The set of states implied by class `class` under input column `column`:
/// the specified next states of its members.
pub fn implied_set(table: &FlowTable, class: &[StateId], column: usize) -> Vec<StateId> {
    let mut out: Vec<StateId> = class
        .iter()
        .filter_map(|&s| table.next_state(s, column))
        .collect();
    out.sort();
    out.dedup();
    out
}

fn is_closed(table: &FlowTable, cover: &StateCover) -> bool {
    for class in &cover.classes {
        for c in 0..table.num_columns() {
            let implied = implied_set(table, class, c);
            if implied.len() >= 2 && cover.class_containing(&implied).is_none() {
                return false;
            }
            if implied.len() == 1 && cover.class_containing(&implied).is_none() {
                return false;
            }
        }
    }
    true
}

/// Select a small closed cover of compatibles for `table`.
///
/// Candidate classes are the maximal compatibles together with all singleton
/// classes. The search tries covers of increasing size (exact for the small
/// machines in the benchmark corpus); if no closed cover smaller than the
/// trivial one is found, the trivial cover is returned.
pub fn closed_cover(table: &FlowTable, compat: &CompatibilityTable) -> StateCover {
    let n = table.num_states();
    let mut candidates = maximal_compatibles(compat);
    for i in 0..n {
        let single = vec![StateId(i)];
        if !candidates.contains(&single) {
            candidates.push(single);
        }
    }
    // Prefer big classes first so the greedy DFS finds small covers early.
    candidates.sort_by_key(|c| std::cmp::Reverse(c.len()));

    for size in 1..n {
        if let Some(cover) = search_cover(table, &candidates, size, n) {
            return cover;
        }
    }
    StateCover::trivial(n)
}

fn search_cover(
    table: &FlowTable,
    candidates: &[Vec<StateId>],
    size: usize,
    num_states: usize,
) -> Option<StateCover> {
    let mut chosen: Vec<usize> = Vec::new();
    search_rec(table, candidates, size, num_states, 0, &mut chosen)
}

fn search_rec(
    table: &FlowTable,
    candidates: &[Vec<StateId>],
    size: usize,
    num_states: usize,
    start: usize,
    chosen: &mut Vec<usize>,
) -> Option<StateCover> {
    if chosen.len() == size {
        let cover = StateCover {
            classes: chosen.iter().map(|&i| candidates[i].clone()).collect(),
        };
        let covered =
            (0..num_states).all(|s| cover.classes.iter().any(|c| c.contains(&StateId(s))));
        if covered && is_closed(table, &cover) {
            return Some(cover);
        }
        return None;
    }
    // Prune: remaining picks cannot cover the missing states if even the union
    // of all remaining candidates misses one.
    for i in start..candidates.len() {
        chosen.push(i);
        if let Some(cover) = search_rec(table, candidates, size, num_states, i + 1, chosen) {
            return Some(cover);
        }
        chosen.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compatibility;
    use fantom_flow::benchmarks;

    #[test]
    fn trivial_cover_is_always_closed() {
        for table in benchmarks::all() {
            let cover = StateCover::trivial(table.num_states());
            assert!(
                is_closed(&table, &cover),
                "trivial cover not closed for {}",
                table.name()
            );
        }
    }

    #[test]
    fn cover_covers_every_state_and_is_closed() {
        for table in benchmarks::all() {
            let compat = compatibility(&table);
            let cover = closed_cover(&table, &compat);
            for s in table.states() {
                assert!(
                    cover.classes.iter().any(|c| c.contains(&s)),
                    "state {s} of {} uncovered",
                    table.name()
                );
            }
            assert!(
                is_closed(&table, &cover),
                "cover not closed for {}",
                table.name()
            );
            assert!(cover.len() <= table.num_states());
        }
    }

    #[test]
    fn redundant_states_reduce_class_count() {
        let table = benchmarks::redundant_traffic();
        let compat = compatibility(&table);
        let cover = closed_cover(&table, &compat);
        assert!(cover.len() < table.num_states());
    }

    #[test]
    fn class_of_and_class_containing() {
        let cover = StateCover {
            classes: vec![vec![StateId(0), StateId(1)], vec![StateId(2)]],
        };
        assert_eq!(cover.class_of(StateId(1)), 0);
        assert_eq!(cover.class_of(StateId(2)), 1);
        assert_eq!(cover.class_containing(&[StateId(0), StateId(1)]), Some(0));
        assert_eq!(cover.class_containing(&[StateId(1), StateId(2)]), None);
    }
}
