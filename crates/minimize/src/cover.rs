//! Closed-cover selection over compatibles.

use std::collections::BTreeSet;

use fantom_flow::{FlowTable, StateId};

use crate::compat::{maximal_compatibles_bounded, CompatibilityTable};
use crate::options::ReductionOptions;

/// A closed cover of the state set: a collection of compatible classes such
/// that every state belongs to at least one class and every implied class is
/// contained in some chosen class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateCover {
    /// The chosen compatible classes (each sorted by state index).
    pub classes: Vec<Vec<StateId>>,
}

impl StateCover {
    /// The trivial cover with one singleton class per state (always closed).
    pub fn trivial(num_states: usize) -> Self {
        StateCover {
            classes: (0..num_states).map(|i| vec![StateId(i)]).collect(),
        }
    }

    /// Number of classes (states of the reduced machine).
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` if the cover has no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Index of the first class containing `state`.
    ///
    /// # Panics
    ///
    /// Panics if no class contains `state` (the cover is not a cover).
    pub fn class_of(&self, state: StateId) -> usize {
        self.classes
            .iter()
            .position(|c| c.contains(&state))
            .expect("cover must contain every state")
    }

    /// Index of the first class containing the whole `set`, if any.
    pub fn class_containing(&self, set: &[StateId]) -> Option<usize> {
        self.classes
            .iter()
            .position(|c| set.iter().all(|s| c.contains(s)))
    }

    /// Whether every state of `table` belongs to at least one class.
    pub fn covers_all_states(&self, table: &FlowTable) -> bool {
        table
            .states()
            .all(|s| self.classes.iter().any(|c| c.contains(&s)))
    }

    /// Whether the cover is *closed* for `table`: for every class and input
    /// column, the implied set of next states is contained in some class.
    pub fn is_closed(&self, table: &FlowTable) -> bool {
        for class in &self.classes {
            for c in 0..table.num_columns() {
                let implied = implied_set(table, class, c);
                if !implied.is_empty() && self.class_containing(&implied).is_none() {
                    return false;
                }
            }
        }
        true
    }
}

/// The set of states implied by class `class` under input column `column`:
/// the specified next states of its members.
pub fn implied_set(table: &FlowTable, class: &[StateId], column: usize) -> Vec<StateId> {
    let mut out: Vec<StateId> = class
        .iter()
        .filter_map(|&s| table.next_state(s, column))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Select a small closed cover of compatibles for `table` with the default
/// (exact-for-small-machines) budgets. See [`closed_cover_with`].
pub fn closed_cover(table: &FlowTable, compat: &CompatibilityTable) -> StateCover {
    closed_cover_with(table, compat, &ReductionOptions::default())
}

/// Select a closed cover of compatibles for `table` under the budgets of
/// `options`.
///
/// Candidate classes are the (possibly budget-truncated) compatibles together
/// with all singleton classes. When enumeration completed and the machine is
/// small (`exact_cover_max_states`), an exact search tries covers of
/// increasing size; otherwise a greedy pair-merging cover is built: classes
/// are chosen largest-coverage-first and the chosen set is repaired to
/// closure by adding implied classes. The result always covers every state
/// and is always closed (in the worst case it degrades to the trivial
/// cover).
pub fn closed_cover_with(
    table: &FlowTable,
    compat: &CompatibilityTable,
    options: &ReductionOptions,
) -> StateCover {
    let n = table.num_states();
    let enumeration = maximal_compatibles_bounded(compat, options);
    let mut candidates = enumeration.compatibles;
    // Set-backed dedup: the candidate list can be max_compatibles long, so
    // linear `contains` scans per injected pair would be quadratic exactly
    // when enumeration was truncated for being too big.
    let mut seen: BTreeSet<Vec<StateId>> = candidates.iter().cloned().collect();
    if !enumeration.complete {
        // Degraded mode: enumeration may have missed whole regions of the
        // graph, so make sure every compatible *pair* is available as a
        // merge candidate (n² of them at most — cheap next to enumeration).
        for (a, b) in compat.compatible_pairs() {
            let pair = vec![a, b];
            if seen.insert(pair.clone()) {
                candidates.push(pair);
            }
        }
    }
    for i in 0..n {
        let single = vec![StateId(i)];
        if seen.insert(single.clone()) {
            candidates.push(single);
        }
    }
    // Prefer big classes first so both searches find small covers early.
    // The sort is stable, so equal-length classes keep their (sorted,
    // deterministic) enumeration order.
    candidates.sort_by_key(|c| std::cmp::Reverse(c.len()));

    if enumeration.complete && n <= options.exact_cover_max_states {
        for size in 1..n {
            if let Some(cover) = search_cover(table, &candidates, size, n) {
                return cover;
            }
        }
        return StateCover::trivial(n);
    }
    greedy_closed_cover(table, compat, &candidates, n, options.refine_passes)
}

/// Greedy cover construction for machines beyond the exact-search budget:
/// pick the class covering the most still-uncovered states (ties to the
/// larger, then earlier, class), then repair closure by adding each missing
/// implied class (hosted in the largest candidate that contains it), then
/// refine by local search (drop redundant classes, merge compatible pairs).
/// Falls back to the trivial cover if closure repair fails to converge.
fn greedy_closed_cover(
    table: &FlowTable,
    compat: &CompatibilityTable,
    candidates: &[Vec<StateId>],
    n: usize,
    refine_passes: usize,
) -> StateCover {
    let mut classes: Vec<Vec<StateId>> = Vec::new();
    let mut covered = vec![false; n];
    let mut covered_count = 0usize;
    while covered_count < n {
        let mut best: Option<(&Vec<StateId>, usize)> = None;
        for cand in candidates {
            let gain = cand.iter().filter(|s| !covered[s.0]).count();
            if gain > 0 && best.map_or(true, |(_, g)| gain > g) {
                best = Some((cand, gain));
            }
        }
        // Singletons are always candidates, so every uncovered state yields
        // a candidate with gain ≥ 1.
        let (chosen, _) = best.expect("singleton candidates cover every state");
        // Keep only the still-uncovered states (a subset of a compatible set
        // is compatible): the base classes then partition the state set, so
        // a transition into a merged state lands in *its* class instead of a
        // never-entered overlapping copy.
        let class: Vec<StateId> = chosen.iter().copied().filter(|s| !covered[s.0]).collect();
        for s in &class {
            covered[s.0] = true;
            covered_count += 1;
        }
        classes.push(class);
    }

    let Some(classes) = repair_closure(table, candidates, classes, n) else {
        return StateCover::trivial(n);
    };
    let classes = refine_classes(table, compat, candidates, classes, n, refine_passes);
    let cover = StateCover { classes };
    debug_assert!(cover.is_closed(table));
    cover
}

/// Closure repair: every implied set must be contained in a chosen class.
/// Each round adds classes for the currently missing implied sets; newly
/// added classes can imply further sets, so iterate to fixpoint with a
/// generous round cap. Returns `None` if the cap is hit.
fn repair_closure(
    table: &FlowTable,
    candidates: &[Vec<StateId>],
    mut classes: Vec<Vec<StateId>>,
    n: usize,
) -> Option<Vec<Vec<StateId>>> {
    let max_rounds = 4 * n + 16;
    for _ in 0..max_rounds {
        let mut to_add: Vec<Vec<StateId>> = Vec::new();
        for class in &classes {
            for c in 0..table.num_columns() {
                let implied = implied_set(table, class, c);
                if implied.is_empty() {
                    continue;
                }
                let contained = |host: &Vec<StateId>| implied.iter().all(|s| host.contains(s));
                if classes.iter().any(contained) || to_add.iter().any(contained) {
                    continue;
                }
                // Host the implied set in the largest candidate containing
                // it; the implied set of a compatible class is itself
                // compatible, so it is always a valid class on its own.
                let host = candidates
                    .iter()
                    .find(|cand| contained(cand))
                    .cloned()
                    .unwrap_or(implied);
                to_add.push(host);
            }
        }
        if to_add.is_empty() {
            return Some(classes);
        }
        classes.extend(to_add);
    }
    None
}

/// Whether reducing `table` with `classes` yields a machine the synthesis
/// pipeline would accept: still normal-mode and strongly connected. Greedy
/// covers contain overlapping closure-repair classes, and local edits can
/// shift which class the first-containing-class transition mapping picks —
/// leaving never-entered duplicate rows. Refinement therefore validates each
/// trial against the real acceptance criterion, not just cover/closure.
fn keeps_reduction_acceptable(table: &FlowTable, classes: &[Vec<StateId>]) -> bool {
    let cover = StateCover {
        classes: classes.to_vec(),
    };
    let reduced = crate::reduced::reduce_with_cover(table, &cover).table;
    fantom_flow::validate::is_normal_mode(&reduced)
        && fantom_flow::validate::is_strongly_connected(&reduced)
}

/// Local-search refinement of a complete, closed cover: drop classes whose
/// removal keeps the cover complete and closed, and merge compatible class
/// pairs when the merged cover (after closure repair) is strictly smaller.
/// Every intermediate cover is checked against the full invariants — cover,
/// closure *and* reduction acceptability — so the result is never worse than
/// the input. (If the input cover itself reduces to an unacceptable machine
/// the pipeline will fall back to the original table anyway; refinement then
/// leaves it untouched.)
fn refine_classes(
    table: &FlowTable,
    compat: &CompatibilityTable,
    candidates: &[Vec<StateId>],
    mut classes: Vec<Vec<StateId>>,
    n: usize,
    passes: usize,
) -> Vec<Vec<StateId>> {
    // Refinement only preserves acceptability it can see: skip everything if
    // the input cover is already unacceptable (the pipeline will discard it).
    if !keeps_reduction_acceptable(table, &classes) {
        return classes;
    }
    for _ in 0..passes {
        let mut changed = false;

        // Drop pass: redundant classes (typically closure-repair hosts whose
        // states a later merge absorbed) can simply go.
        let mut i = 0;
        while i < classes.len() {
            if classes.len() > 1 {
                let removed = classes.remove(i);
                let trial = StateCover {
                    classes: classes.clone(),
                };
                if trial.covers_all_states(table)
                    && trial.is_closed(table)
                    && keeps_reduction_acceptable(table, &classes)
                {
                    changed = true;
                    continue;
                }
                classes.insert(i, removed);
            }
            i += 1;
        }

        // Merge pass: a compatible union of two classes merges more states
        // into one reduced row. Accept a merge only when it is *already*
        // closed without new classes — closure-repair additions would
        // overlap the base classes, and overlapping covers produce
        // never-entered duplicate states the pipeline then rejects.
        'merge: loop {
            for i in 0..classes.len() {
                for j in (i + 1)..classes.len() {
                    let mut union = classes[i].clone();
                    union.extend_from_slice(&classes[j]);
                    union.sort();
                    union.dedup();
                    if !compat.set_is_compatible(&union) {
                        continue;
                    }
                    let mut trial: Vec<Vec<StateId>> = classes
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| *k != i && *k != j)
                        .map(|(_, c)| c.clone())
                        .collect();
                    trial.push(union);
                    if let Some(repaired) = repair_closure(table, candidates, trial, n) {
                        if repaired.len() < classes.len()
                            && keeps_reduction_acceptable(table, &repaired)
                        {
                            classes = repaired;
                            changed = true;
                            continue 'merge;
                        }
                    }
                }
            }
            break;
        }

        if !changed {
            break;
        }
    }
    classes
}

fn search_cover(
    table: &FlowTable,
    candidates: &[Vec<StateId>],
    size: usize,
    num_states: usize,
) -> Option<StateCover> {
    let mut chosen: Vec<usize> = Vec::new();
    search_rec(table, candidates, size, num_states, 0, &mut chosen)
}

fn search_rec(
    table: &FlowTable,
    candidates: &[Vec<StateId>],
    size: usize,
    num_states: usize,
    start: usize,
    chosen: &mut Vec<usize>,
) -> Option<StateCover> {
    if chosen.len() == size {
        let cover = StateCover {
            classes: chosen.iter().map(|&i| candidates[i].clone()).collect(),
        };
        let covered =
            (0..num_states).all(|s| cover.classes.iter().any(|c| c.contains(&StateId(s))));
        if covered && cover.is_closed(table) {
            return Some(cover);
        }
        return None;
    }
    for i in start..candidates.len() {
        chosen.push(i);
        if let Some(cover) = search_rec(table, candidates, size, num_states, i + 1, chosen) {
            return Some(cover);
        }
        chosen.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compatibility;
    use fantom_flow::benchmarks;

    #[test]
    fn trivial_cover_is_always_closed() {
        for table in benchmarks::all() {
            let cover = StateCover::trivial(table.num_states());
            assert!(
                cover.is_closed(&table),
                "trivial cover not closed for {}",
                table.name()
            );
        }
    }

    #[test]
    fn cover_covers_every_state_and_is_closed() {
        for table in benchmarks::all() {
            let compat = compatibility(&table);
            let cover = closed_cover(&table, &compat);
            assert!(
                cover.covers_all_states(&table),
                "cover misses a state of {}",
                table.name()
            );
            assert!(
                cover.is_closed(&table),
                "cover not closed for {}",
                table.name()
            );
            assert!(cover.len() <= table.num_states());
        }
    }

    #[test]
    fn redundant_states_reduce_class_count() {
        let table = benchmarks::redundant_traffic();
        let compat = compatibility(&table);
        let cover = closed_cover(&table, &compat);
        assert!(cover.len() < table.num_states());
    }

    #[test]
    fn greedy_cover_matches_obligations_on_every_benchmark() {
        // Force the greedy path (exact search disabled) and check the
        // results keep the cover/closure invariants.
        let options = ReductionOptions {
            exact_cover_max_states: 0,
            ..ReductionOptions::default()
        };
        for table in benchmarks::all() {
            let compat = compatibility(&table);
            let cover = closed_cover_with(&table, &compat, &options);
            assert!(cover.covers_all_states(&table), "{}", table.name());
            assert!(cover.is_closed(&table), "{}", table.name());
            assert!(cover.len() <= table.num_states());
        }
    }

    #[test]
    fn capped_enumeration_still_yields_closed_covers() {
        let options = ReductionOptions {
            max_compatibles: 2,
            max_clique_width: 2,
            node_budget: 16,
            exact_cover_max_states: 0,
            refine_passes: 2,
        };
        for table in benchmarks::all() {
            let compat = compatibility(&table);
            let cover = closed_cover_with(&table, &compat, &options);
            assert!(cover.covers_all_states(&table), "{}", table.name());
            assert!(cover.is_closed(&table), "{}", table.name());
            for class in &cover.classes {
                assert!(compat.set_is_compatible(class), "{}", table.name());
            }
        }
    }

    #[test]
    fn refinement_never_grows_the_greedy_cover() {
        // Force the greedy path and compare refined vs unrefined class
        // counts on every benchmark: local search may only shrink the cover,
        // and the result keeps the cover/closure/compatibility invariants.
        let unrefined_opts = ReductionOptions {
            exact_cover_max_states: 0,
            refine_passes: 0,
            ..ReductionOptions::default()
        };
        let refined_opts = ReductionOptions {
            exact_cover_max_states: 0,
            ..ReductionOptions::default()
        };
        for table in benchmarks::all() {
            let compat = compatibility(&table);
            let unrefined = closed_cover_with(&table, &compat, &unrefined_opts);
            let refined = closed_cover_with(&table, &compat, &refined_opts);
            assert!(
                refined.len() <= unrefined.len(),
                "{}: refinement grew the cover {} -> {}",
                table.name(),
                unrefined.len(),
                refined.len()
            );
            assert!(refined.covers_all_states(&table), "{}", table.name());
            assert!(refined.is_closed(&table), "{}", table.name());
            for class in &refined.classes {
                assert!(compat.set_is_compatible(class), "{}", table.name());
            }
        }
    }

    #[test]
    fn refinement_closes_the_gap_on_redundant_machines() {
        // On the redundant benchmark the greedy cover alone is suboptimal
        // enough for a merge to fire; refinement must reach the exact cover's
        // class count.
        let table = benchmarks::redundant_traffic();
        let compat = compatibility(&table);
        let exact = closed_cover(&table, &compat);
        let greedy_refined = closed_cover_with(
            &table,
            &compat,
            &ReductionOptions {
                exact_cover_max_states: 0,
                ..ReductionOptions::default()
            },
        );
        assert!(
            greedy_refined.len() <= exact.len() + 1,
            "refined greedy cover ({}) far from exact ({})",
            greedy_refined.len(),
            exact.len()
        );
    }

    #[test]
    fn class_of_and_class_containing() {
        let cover = StateCover {
            classes: vec![vec![StateId(0), StateId(1)], vec![StateId(2)]],
        };
        assert_eq!(cover.class_of(StateId(1)), 0);
        assert_eq!(cover.class_of(StateId(2)), 1);
        assert_eq!(cover.class_containing(&[StateId(0), StateId(1)]), Some(0));
        assert_eq!(cover.class_containing(&[StateId(1), StateId(2)]), None);
    }
}
