//! Construction of the reduced flow table from a closed cover.

use fantom_flow::{FlowTable, StateId};

use crate::compat::compatibility;
use crate::cover::{closed_cover_with, implied_set, StateCover};
use crate::options::ReductionOptions;

/// The result of reducing a flow table.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced flow table (one state per cover class).
    pub table: FlowTable,
    /// The cover used: `cover.classes[i]` lists the original states merged
    /// into reduced state `i`.
    pub cover: StateCover,
    /// For every original state, the index of the reduced state it maps to.
    pub state_map: Vec<usize>,
}

impl Reduction {
    /// The reduced state that original state `s` was merged into.
    pub fn map_state(&self, s: StateId) -> StateId {
        StateId(self.state_map[s.0])
    }

    /// `true` if the reduction removed at least one state.
    pub fn reduced_anything(&self) -> bool {
        self.table.num_states() < self.state_map.len()
    }
}

/// Reduce `table` using compatibility analysis and a closed cover, under
/// [`ReductionOptions::default`] budgets.
///
/// The reduced table preserves the specified behaviour of the original: for
/// every original entry that names a next state, the corresponding reduced
/// entry leads to the class chosen for that implied set, and every specified
/// output is preserved.
///
/// The cover is the exact minimum for machines of up to
/// `ReductionOptions::default().exact_cover_max_states` (12) states; above
/// that, selection switches to the greedy heuristic, which still yields a
/// complete, closed (behaviourally valid) cover but may merge fewer states
/// than the exact search. Use [`reduce_with_options`] with
/// [`ReductionOptions::exact`] to force the exact search at any size (the
/// search is exponential), or [`ReductionOptions::bounded`] for large
/// machines.
pub fn reduce(table: &FlowTable) -> Reduction {
    reduce_with_options(table, &ReductionOptions::default())
}

/// Reduce `table` under the enumeration/cover budgets of `options`.
///
/// Within budget the result matches [`reduce`]; when a cap is hit the cover
/// selection degrades to the greedy pair-merging heuristic, which still
/// produces a complete, closed cover — the reduced table is always
/// behaviourally valid, it may simply merge fewer states than an unbounded
/// search would.
pub fn reduce_with_options(table: &FlowTable, options: &ReductionOptions) -> Reduction {
    let compat = compatibility(table);
    let cover = closed_cover_with(table, &compat, options);
    reduce_with_cover(table, &cover)
}

/// Reduce `table` using an explicit closed cover (useful for testing
/// alternative covers or for reproducing a specific reduction).
///
/// # Panics
///
/// Panics if `cover` does not cover every state of `table`.
pub fn reduce_with_cover(table: &FlowTable, cover: &StateCover) -> Reduction {
    let class_names: Vec<String> = cover
        .classes
        .iter()
        .map(|class| {
            class
                .iter()
                .map(|&s| table.state_name(s).to_string())
                .collect::<Vec<_>>()
                .join("+")
        })
        .collect();

    let mut reduced = FlowTable::new(
        format!("{}_reduced", table.name()),
        table.num_inputs(),
        table.num_outputs(),
        class_names,
    )
    .expect("cover is non-empty for a non-empty table");

    for (ci, class) in cover.classes.iter().enumerate() {
        for c in 0..table.num_columns() {
            let implied = implied_set(table, class, c);
            let next = if implied.is_empty() {
                None
            } else if implied.iter().all(|s| class.contains(s)) {
                // The class maps into itself: the reduced state is stable here
                // whenever any member was stable.
                Some(StateId(ci))
            } else {
                cover.class_containing(&implied).map(StateId)
            };
            let output = class.iter().find_map(|&s| table.output(s, c).cloned());
            if next.is_some() || output.is_some() {
                reduced
                    .set_entry(StateId(ci), c, next, output)
                    .expect("entry coordinates are valid");
            }
        }
    }

    let state_map: Vec<usize> = (0..table.num_states())
        .map(|s| cover.class_of(StateId(s)))
        .collect();
    Reduction {
        table: reduced,
        cover: cover.clone(),
        state_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fantom_flow::{benchmarks, validate};

    /// The reduced table must agree with the original wherever the original is
    /// specified: the reduced next state's class contains the original next
    /// state, and specified outputs are preserved.
    fn check_behaviour_preserved(original: &FlowTable, reduction: &Reduction) {
        for s in original.states() {
            let rs = reduction.map_state(s);
            for c in 0..original.num_columns() {
                if let Some(next) = original.next_state(s, c) {
                    let rnext = reduction
                        .table
                        .next_state(rs, c)
                        .unwrap_or_else(|| panic!("reduced entry ({rs}, {c}) lost its next state"));
                    assert!(
                        reduction.cover.classes[rnext.0].contains(&next),
                        "reduced next state {rnext} does not contain original next {next}"
                    );
                }
                if let Some(out) = original.output(s, c) {
                    let rout = reduction
                        .table
                        .output(rs, c)
                        .expect("specified output dropped");
                    assert_eq!(out, rout, "output changed at ({s}, {c})");
                }
            }
        }
    }

    #[test]
    fn redundant_traffic_merges_duplicate_state() {
        let table = benchmarks::redundant_traffic();
        let reduction = reduce(&table);
        assert!(reduction.table.num_states() <= 4);
        assert!(reduction.reduced_anything());
        check_behaviour_preserved(&table, &reduction);
        // HG1 and HG2 end up in the same class.
        let hg1 = table.state_by_name("HG1").unwrap();
        let hg2 = table.state_by_name("HG2").unwrap();
        assert_eq!(reduction.map_state(hg1), reduction.map_state(hg2));
    }

    #[test]
    fn every_benchmark_reduction_preserves_behaviour() {
        for table in benchmarks::all() {
            let reduction = reduce(&table);
            check_behaviour_preserved(&table, &reduction);
            assert!(reduction.table.num_states() <= table.num_states());
        }
    }

    #[test]
    fn reductions_of_benchmarks_stay_normal_mode_and_connected() {
        for table in benchmarks::all() {
            let reduction = reduce(&table);
            let report = validate::validate(&reduction.table);
            assert!(
                report.normal_mode_violations.is_empty(),
                "reduction of {} broke normal mode: {report:?}",
                table.name()
            );
            assert!(
                report.strongly_connected,
                "reduction of {} broke strong connectivity",
                table.name()
            );
        }
    }

    #[test]
    fn reduce_with_trivial_cover_is_identity_up_to_names() {
        let table = benchmarks::lion();
        let cover = StateCover::trivial(table.num_states());
        let reduction = reduce_with_cover(&table, &cover);
        assert_eq!(reduction.table.num_states(), table.num_states());
        for s in table.states() {
            for c in 0..table.num_columns() {
                assert_eq!(
                    table.next_state(s, c).map(|t| t.0),
                    reduction.table.next_state(s, c).map(|t| t.0)
                );
                assert_eq!(table.output(s, c), reduction.table.output(s, c));
            }
        }
    }
}
