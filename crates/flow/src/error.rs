use std::fmt;

/// Errors produced while building, parsing or validating flow tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// A referenced state name does not exist in the table.
    UnknownState(String),
    /// A state name was declared twice.
    DuplicateState(String),
    /// A bit-string contained characters other than `0`/`1`.
    InvalidBitString(String),
    /// A bit vector had the wrong width.
    WidthMismatch {
        /// Expected width in bits.
        expected: usize,
        /// Provided width in bits.
        found: usize,
    },
    /// An input column index exceeded `2^num_inputs`.
    ColumnOutOfRange {
        /// The offending column index.
        column: usize,
        /// Number of input bits.
        num_inputs: usize,
    },
    /// A KISS2 line could not be parsed.
    KissParse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The table violates the normal-mode requirement.
    NotNormalMode {
        /// State (row) name of the offending entry.
        state: String,
        /// Input column of the offending entry.
        column: usize,
    },
    /// The table has no states or no inputs.
    EmptyTable,
    /// A benchmark file or directory could not be read.
    Io {
        /// Path of the file or directory that failed.
        path: String,
        /// Description of the underlying I/O failure.
        message: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::UnknownState(name) => write!(f, "unknown state {name:?}"),
            FlowError::DuplicateState(name) => write!(f, "duplicate state {name:?}"),
            FlowError::InvalidBitString(s) => write!(f, "invalid bit string {s:?}"),
            FlowError::WidthMismatch { expected, found } => {
                write!(
                    f,
                    "bit-vector width mismatch: expected {expected}, found {found}"
                )
            }
            FlowError::ColumnOutOfRange { column, num_inputs } => {
                write!(
                    f,
                    "input column {column} out of range for {num_inputs} input bits"
                )
            }
            FlowError::KissParse { line, message } => {
                write!(f, "KISS2 parse error on line {line}: {message}")
            }
            FlowError::NotNormalMode { state, column } => {
                write!(
                    f,
                    "entry ({state}, column {column}) violates the normal-mode requirement"
                )
            }
            FlowError::EmptyTable => write!(f, "flow table has no states or no inputs"),
            FlowError::Io { path, message } => {
                write!(f, "failed to read {path}: {message}")
            }
        }
    }
}

impl std::error::Error for FlowError {}
