//! Seeded random flow-table generation.
//!
//! The hand-written benchmark corpus covers eleven points of flow-table shape
//! space; everything between them — dc-dense columns, deep chains,
//! multi-input-change clusters, near-redundant state groups — was untested
//! until this module. [`generate`] builds a *valid* normal-mode, strongly
//! connected Huffman flow table from a [`GeneratorOptions`] shape description,
//! and the whole construction is a pure function of the options: every random
//! draw comes from one SplitMix stream keyed by `(seed, knob fingerprint)`, so
//! a given `(seed, shape)` pair produces a byte-identical table (and
//! byte-identical [`crate::kiss::write`] text) on any platform, in any build,
//! forever. That property is what makes the fuzz-regression corpus and the
//! grid benchmark sweep reproducible.
//!
//! # Construction
//!
//! 1. **Home columns.** Each state gets a *home* input column it is stable
//!    under. Homes are laid out as a walk: inside a chain segment of
//!    [`GeneratorOptions::chain_depth`] states consecutive homes differ in one
//!    bit (single-input-change steps); at segment boundaries the walk jumps
//!    `≥ 2` bits at once, planting a multiple-input-change transition.
//! 2. **Backbone ring.** State `i` transitions to state `i + 1 (mod n)` under
//!    the successor's home column. The ring guarantees strong connectivity
//!    and, because every target is stable under the entered column, normal
//!    mode — independent of every other knob.
//! 3. **Extra stable columns.** Each state claims up to
//!    [`GeneratorOptions::mic_stable_columns`] additional random stable
//!    columns, widening the set of legal transition targets per column and
//!    enriching wide-distance multiple-input changes.
//! 4. **Density fill.** Every remaining unspecified cell is specified with
//!    probability `1 − dc_density`, pointing at a state stable under that
//!    column (respecting the per-target [`GeneratorOptions::fan_in`] cap).
//!    `dc_density` is therefore a direct knob on the don't-care fraction —
//!    the structure the paper's guarantees (and the Step 2/5/7 engines) are
//!    most sensitive to.
//! 5. **Near-redundant twins.** For each of
//!    [`GeneratorOptions::redundant_clusters`] sampled state pairs `(a, b)`,
//!    `b` adopts `a`'s stable output and copies `a`'s row into its own
//!    unspecified cells, leaving two rows that agree almost everywhere —
//!    the shape that stresses bounded Step 2 reduction.
//!
//! # Example
//!
//! ```
//! use fantom_flow::generate::{generate, GeneratorOptions};
//! use fantom_flow::validate;
//!
//! let options = GeneratorOptions {
//!     states: 12,
//!     dc_density: 0.6,
//!     ..GeneratorOptions::default()
//! };
//! let table = generate(&options);
//! assert_eq!(table.num_states(), 12);
//! assert!(validate::validate(&table).is_acceptable());
//! // Same options ⇒ byte-identical table.
//! assert_eq!(fantom_flow::kiss::write(&table), fantom_flow::kiss::write(&generate(&options)));
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{validate, Bits, FlowTable, StateId};

/// Shape knobs for [`generate`]. Every field participates in the stream key,
/// so two option sets that differ anywhere draw from independent SplitMix
/// streams.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorOptions {
    /// Base seed; the effective stream is keyed `(seed, knob fingerprint)`.
    pub seed: u64,
    /// Number of states (rows). Clamped to at least 2.
    pub states: usize,
    /// Number of input bits. Clamped to `2..=8` (the backbone walk needs at
    /// least 4 columns; 2⁸ columns bound the table width).
    pub inputs: usize,
    /// Number of output bits. Clamped to at least 1.
    pub outputs: usize,
    /// Probability that a fillable cell stays unspecified (don't-care).
    /// Clamped to `[0, 1]`. `0.0` specifies every reachable cell, `1.0`
    /// leaves only the backbone and stable entries.
    pub dc_density: f64,
    /// Maximum number of *fill* transitions wired into each stable
    /// `(state, column)` target — the column fan-in width. Backbone edges are
    /// exempt (they are forced for connectivity). Clamped to at least 1.
    pub fan_in: usize,
    /// Length of the single-input-change chain segments in the home-column
    /// walk; every `chain_depth`-th step is a multiple-input-change jump.
    /// Clamped to at least 1 (`1` makes every backbone step a MIC jump).
    pub chain_depth: usize,
    /// Extra stable columns claimed per state beyond its home column. More
    /// stable columns means more legal targets per column and more
    /// wide-distance multiple-input-change transitions.
    pub mic_stable_columns: usize,
    /// Number of near-redundant twin pairs to plant (clamped to
    /// `states / 2`). Twins share stable outputs and agree on almost every
    /// row entry — the Step 2 stress shape.
    pub redundant_clusters: usize,
}

impl Default for GeneratorOptions {
    fn default() -> Self {
        GeneratorOptions {
            seed: 0x5EED_F10C,
            states: 8,
            inputs: 2,
            outputs: 1,
            dc_density: 0.4,
            fan_in: 2,
            chain_depth: 3,
            mic_stable_columns: 1,
            redundant_clusters: 0,
        }
    }
}

/// SplitMix64-style derivation (the same finalizer as
/// `fantom_sim::campaign::derive_seed`, duplicated here so `fantom-flow`
/// stays dependency-light): maps `(base, stream)` to an independent seed.
fn derive_stream(base: u64, stream: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl GeneratorOptions {
    /// The options with every knob clamped to its legal range (see the field
    /// docs). [`generate`] always works on the normalized form, so degenerate
    /// knob values sampled by a fuzz driver cannot produce invalid tables.
    pub fn normalized(&self) -> GeneratorOptions {
        let states = self.states.max(2);
        GeneratorOptions {
            seed: self.seed,
            states,
            inputs: self.inputs.clamp(2, 8),
            outputs: self.outputs.max(1),
            dc_density: self.dc_density.clamp(0.0, 1.0),
            fan_in: self.fan_in.max(1),
            chain_depth: self.chain_depth.max(1),
            mic_stable_columns: self.mic_stable_columns,
            redundant_clusters: self.redundant_clusters.min(states / 2),
        }
    }

    /// Deterministic fingerprint of every knob *except* the seed — the
    /// grid-point half of the `(seed, knob-grid-point)` stream key.
    pub fn fingerprint(&self) -> u64 {
        let n = self.normalized();
        let knobs = [
            n.states as u64,
            n.inputs as u64,
            n.outputs as u64,
            n.dc_density.to_bits(),
            n.fan_in as u64,
            n.chain_depth as u64,
            n.mic_stable_columns as u64,
            n.redundant_clusters as u64,
        ];
        let mut h = 0x000F_10C7_AB1E_u64;
        for k in knobs {
            h = derive_stream(h, k);
        }
        h
    }

    /// The SplitMix stream seed all of this grid point's randomness derives
    /// from.
    pub fn stream_seed(&self) -> u64 {
        derive_stream(self.seed, self.fingerprint())
    }

    /// Deterministic table name encoding the shape and seed, e.g.
    /// `gen_s12_i3_o2_d40_f2_c3_m1_r0_x5eedf10c`. (`d40` = 40% dc-density.)
    pub fn table_name(&self) -> String {
        let n = self.normalized();
        format!(
            "gen_s{}_i{}_o{}_d{}_f{}_c{}_m{}_r{}_x{:x}",
            n.states,
            n.inputs,
            n.outputs,
            (n.dc_density * 100.0).round() as u32,
            n.fan_in,
            n.chain_depth,
            n.mic_stable_columns,
            n.redundant_clusters,
            n.seed,
        )
    }
}

/// Flip `flips` distinct random bit positions of `column`.
fn flip_bits(column: usize, inputs: usize, flips: usize, rng: &mut StdRng) -> usize {
    let mut positions: Vec<usize> = (0..inputs).collect();
    // Partial Fisher–Yates: the first `flips` slots end up as the chosen
    // distinct positions.
    let flips = flips.min(inputs);
    for k in 0..flips {
        let j = rng.gen_range(k..inputs);
        positions.swap(k, j);
    }
    let mut out = column;
    for &p in &positions[..flips] {
        out ^= 1 << p;
    }
    out
}

fn random_bits(width: usize, rng: &mut StdRng) -> Bits {
    Bits::from_bools((0..width).map(|_| rng.gen_bool(0.5)).collect())
}

/// Generate a valid flow table from `options` (see the module docs for the
/// construction). The result is guaranteed normal mode, strongly connected
/// and stable-column-complete at **every** knob setting; the same options
/// always produce the byte-identical table.
// The `0..n` loops walk several parallel per-state arrays (home columns,
// outputs, fan-in counters) at once, which iterator zips would obscure.
#[allow(clippy::needless_range_loop)]
pub fn generate(options: &GeneratorOptions) -> FlowTable {
    let o = options.normalized();
    let mut rng = StdRng::seed_from_u64(o.stream_seed());
    let n = o.states;
    let columns = 1usize << o.inputs;

    // 1. Home-column walk: SIC steps inside chain segments, MIC jumps at
    // segment boundaries.
    let mut home = vec![0usize; n];
    home[0] = rng.gen_range(0..columns);
    for i in 1..n {
        let jump = i % o.chain_depth == 0;
        let flips = if jump {
            2 + rng.gen_range(0..=(o.inputs.min(4) - 2))
        } else {
            1
        };
        home[i] = flip_bits(home[i - 1], o.inputs, flips, &mut rng);
    }
    // The ring wrap (last → first under home[0], first → second …) needs the
    // last home to differ from both its predecessor's and the first state's.
    if n > 1 && home[n - 1] == home[0] {
        let start = rng.gen_range(0..columns);
        home[n - 1] = (0..columns)
            .map(|k| (start + k) % columns)
            .find(|&c| c != home[0] && (n < 2 || c != home[n - 2]))
            .expect("at least 4 columns leave a free home");
    }

    // Twin pairs for near-redundant clusters (chosen up front so outputs can
    // be shared).
    let mut twins: Vec<(usize, usize)> = Vec::new();
    for _ in 0..o.redundant_clusters {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            twins.push((a.min(b), a.max(b)));
        }
    }

    let mut outputs: Vec<Bits> = (0..n).map(|_| random_bits(o.outputs, &mut rng)).collect();
    for &(a, b) in &twins {
        outputs[b] = outputs[a].clone();
    }

    let names: Vec<String> = (0..n).map(|i| format!("S{i}")).collect();
    let mut table = FlowTable::new(o.table_name(), o.inputs, o.outputs, names)
        .expect("normalized options give a non-empty table");

    // Which states are stable under each column (legal transition targets).
    let mut stable_in: Vec<Vec<usize>> = vec![Vec::new(); columns];
    for i in 0..n {
        table
            .set_entry(
                StateId(i),
                home[i],
                Some(StateId(i)),
                Some(outputs[i].clone()),
            )
            .expect("home column in range");
        stable_in[home[i]].push(i);
    }

    // 2. Backbone ring: i → i+1 under home[i+1]. home[i+1] ≠ home[i] by
    // construction, so the cell is free and the target is stable.
    for i in 0..n {
        let j = (i + 1) % n;
        if n == 1 {
            break;
        }
        table
            .set_entry(
                StateId(i),
                home[j],
                Some(StateId(j)),
                Some(outputs[i].clone()),
            )
            .expect("backbone cell in range");
    }

    // 3. Extra stable columns (MIC enrichment). Claims only unspecified
    // cells, so the backbone is never disturbed.
    for i in 0..n {
        for _ in 0..o.mic_stable_columns {
            let c = rng.gen_range(0..columns);
            if table.entry(StateId(i), c).is_unspecified() {
                table
                    .set_entry(StateId(i), c, Some(StateId(i)), Some(outputs[i].clone()))
                    .expect("cell in range");
                stable_in[c].push(i);
            }
        }
    }

    // 4. Density fill: specify each remaining cell with probability
    // 1 − dc_density, pointing at a fan-in-capped target stable under the
    // column. The row-major scan order is part of the determinism contract.
    let mut fanin_used: Vec<Vec<usize>> = vec![vec![0; n]; columns];
    for i in 0..n {
        for c in 0..columns {
            if !table.entry(StateId(i), c).is_unspecified() {
                continue;
            }
            if !rng.gen_bool(1.0 - o.dc_density) {
                continue;
            }
            let candidates: Vec<usize> = stable_in[c]
                .iter()
                .copied()
                .filter(|&t| t != i && fanin_used[c][t] < o.fan_in)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let t = candidates[rng.gen_range(0..candidates.len())];
            table
                .set_entry(StateId(i), c, Some(StateId(t)), Some(outputs[i].clone()))
                .expect("cell in range");
            fanin_used[c][t] += 1;
        }
    }

    // 5. Near-redundant twins: `b` copies `a`'s row into its free cells.
    // Every copied target is stable under its column (it was legal for `a`);
    // `a`'s own stable entries become `b → a` fan-in edges.
    for &(a, b) in &twins {
        for c in 0..columns {
            if !table.entry(StateId(b), c).is_unspecified() {
                continue;
            }
            let entry = table.entry(StateId(a), c).clone();
            let Some(next) = entry.next else { continue };
            table
                .set_entry(StateId(b), c, Some(next), entry.output)
                .expect("cell in range");
        }
    }

    debug_assert!(
        validate::validate(&table).is_acceptable(),
        "generator produced an invalid table for {options:?}"
    );
    table
}

/// Generate the 2-D `sizes × dc_densities` lattice of machines used by the
/// grid benchmark sweep: every `(size, density)` grid point instantiates
/// `base` with those two knobs overridden and its own independent stream.
pub fn generate_grid(
    base: &GeneratorOptions,
    sizes: &[usize],
    dc_densities: &[f64],
) -> Vec<FlowTable> {
    let mut out = Vec::with_capacity(sizes.len() * dc_densities.len());
    for &states in sizes {
        for &dc_density in dc_densities {
            out.push(generate(&GeneratorOptions {
                states,
                dc_density,
                ..base.clone()
            }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_tables_are_acceptable() {
        let table = generate(&GeneratorOptions::default());
        assert!(validate::validate(&table).is_acceptable());
        assert_eq!(table.num_states(), 8);
    }

    #[test]
    fn normalization_clamps_degenerate_knobs() {
        let wild = GeneratorOptions {
            states: 0,
            inputs: 77,
            outputs: 0,
            dc_density: 7.5,
            fan_in: 0,
            chain_depth: 0,
            redundant_clusters: 99,
            ..GeneratorOptions::default()
        };
        let n = wild.normalized();
        assert_eq!(n.states, 2);
        assert_eq!(n.inputs, 8);
        assert_eq!(n.outputs, 1);
        assert_eq!(n.dc_density, 1.0);
        assert_eq!(n.fan_in, 1);
        assert_eq!(n.chain_depth, 1);
        assert_eq!(n.redundant_clusters, 1);
        // Degenerate knobs still generate a valid table.
        assert!(validate::validate(&generate(&wild)).is_acceptable());
    }

    #[test]
    fn fingerprint_separates_grid_points() {
        let a = GeneratorOptions::default();
        let b = GeneratorOptions {
            dc_density: 0.41,
            ..GeneratorOptions::default()
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn grid_covers_the_lattice_with_unique_names() {
        let tables = generate_grid(&GeneratorOptions::default(), &[4, 8], &[0.2, 0.8]);
        assert_eq!(tables.len(), 4);
        let mut names: Vec<&str> = tables.iter().map(FlowTable::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4, "grid names must be unique");
    }
}
