//! The benchmark corpus.
//!
//! The paper evaluates SEANCE on five machines from the MCNC FSM benchmark
//! suite (Lisanke 1987): its running *test example*, *traffic*, *lion*,
//! *lion9* and *train11*. The original KISS files are not redistributable
//! here, so this module ships **reconstructions** with the canonical state,
//! input and output counts of each benchmark, built directly as normal-mode
//! Huffman flow tables (see `DESIGN.md`, "Substitutions"). Every table in this
//! module is normal mode, strongly connected and contains multiple-input
//! change transitions, so it exercises the same synthesis code paths as the
//! originals.
//!
//! Additional machines (`train4`, `mic3`, `redundant_traffic`) are provided
//! for the wider test-suite: a smaller chain machine, a three-input machine
//! with wide input transition cubes, and a machine with redundant states that
//! exercises the state-minimization step.

use crate::{FlowError, FlowTable, FlowTableBuilder};

/// Fill the output of every specified transient entry with the source state's
/// stable output (Moore-style association of outputs with the present state).
///
/// The MCNC machines specify an output on every transition; carrying the
/// source's output keeps the single-output-change principle (the output
/// changes only when the state does) and keeps behaviourally distinct states
/// distinguishable by the state-minimization step.
fn fill_outputs_from_source(table: &mut FlowTable) {
    let states: Vec<_> = table.states().collect();
    for s in states {
        let Some(out) = table.stable_output(s).cloned() else {
            continue;
        };
        for c in 0..table.num_columns() {
            let entry = table.entry(s, c);
            if entry.next.is_some() && entry.output.is_none() {
                let next = entry.next;
                table
                    .set_entry(s, c, next, Some(out.clone()))
                    .expect("entry coordinates are valid");
            }
        }
    }
}

/// The paper's running example: four states, two inputs, one output, with
/// several distance-2 input transitions.
pub fn test_example() -> FlowTable {
    let mut b = FlowTableBuilder::new("test_example", 2, 1);
    b.states(["A", "B", "C", "D"]);
    // Stable entries (state, input column, output).
    for (s, col, out) in [
        ("A", "00", "0"),
        ("A", "10", "0"),
        ("B", "01", "1"),
        ("C", "11", "1"),
        ("D", "10", "0"),
    ] {
        b.stable(s, col, out).expect("valid widths");
    }
    // Unstable entries.
    for (s, col, next) in [
        ("A", "01", "B"),
        ("A", "11", "C"),
        ("B", "00", "A"),
        ("B", "11", "C"),
        ("B", "10", "D"),
        ("C", "00", "A"),
        ("C", "01", "B"),
        ("C", "10", "D"),
        ("D", "00", "A"),
        ("D", "01", "B"),
        ("D", "11", "C"),
    ] {
        b.transition(s, col, next).expect("valid widths");
    }
    let mut table = b.build().expect("benchmark is well formed");
    fill_outputs_from_source(&mut table);
    table
}

/// A traffic-light controller: four states, two inputs (car sensor, timer),
/// two outputs (highway / farm-road green).
pub fn traffic() -> FlowTable {
    let mut b = FlowTableBuilder::new("traffic", 2, 2);
    b.states(["HG", "HY", "FG", "FY"]);
    for (s, col, out) in [
        ("HG", "00", "10"),
        ("HG", "01", "10"),
        ("HG", "10", "10"),
        ("HY", "11", "11"),
        ("HY", "10", "11"),
        ("FG", "00", "01"),
        ("FG", "01", "01"),
        ("FY", "11", "00"),
        ("FY", "10", "00"),
    ] {
        b.stable(s, col, out).expect("valid widths");
    }
    for (s, col, next) in [
        ("HG", "11", "HY"),
        ("HY", "00", "FG"),
        ("HY", "01", "FG"),
        ("FG", "11", "FY"),
        ("FG", "10", "FY"),
        ("FY", "00", "HG"),
        ("FY", "01", "HG"),
    ] {
        b.transition(s, col, next).expect("valid widths");
    }
    let mut table = b.build().expect("benchmark is well formed");
    fill_outputs_from_source(&mut table);
    table
}

/// The lion-in-a-cage machine: four states, two sensor inputs, one output
/// indicating whether the lion is outside the cage.
pub fn lion() -> FlowTable {
    let mut b = FlowTableBuilder::new("lion", 2, 1);
    b.states(["L0", "L1", "L2", "L3"]);
    for (s, col, out) in [
        ("L0", "00", "0"),
        ("L1", "01", "1"),
        ("L1", "11", "1"),
        ("L2", "10", "1"),
        ("L2", "00", "1"),
        ("L3", "01", "0"),
        ("L3", "11", "0"),
    ] {
        b.stable(s, col, out).expect("valid widths");
    }
    for (s, col, next) in [
        ("L0", "01", "L1"),
        ("L0", "11", "L1"),
        ("L0", "10", "L2"),
        ("L1", "00", "L0"),
        ("L1", "10", "L2"),
        ("L2", "01", "L3"),
        ("L2", "11", "L3"),
        ("L3", "00", "L0"),
        ("L3", "10", "L2"),
    ] {
        b.transition(s, col, next).expect("valid widths");
    }
    let mut table = b.build().expect("benchmark is well formed");
    fill_outputs_from_source(&mut table);
    table
}

/// Build an incompletely specified "chain" machine of `n` states over two
/// inputs: state `i` is stable under column `i mod 4` and can move one step
/// forward or backward along the chain. Steps between columns `01↔10` and
/// `11↔00` are multiple-input changes.
fn chain_machine(name: &str, n: usize, output_one: impl Fn(usize) -> bool) -> FlowTable {
    let col_str = |i: usize| -> String {
        match i % 4 {
            0 => "00",
            1 => "01",
            2 => "10",
            _ => "11",
        }
        .to_string()
    };
    let mut b = FlowTableBuilder::new(name, 2, 1);
    let names: Vec<String> = (0..n).map(|i| format!("S{i}")).collect();
    b.states(names.clone());
    for (i, name_i) in names.iter().enumerate() {
        let out = if output_one(i) { "1" } else { "0" };
        b.stable(name_i, &col_str(i), out).expect("valid widths");
    }
    for i in 0..n {
        if i + 1 < n {
            b.transition(&names[i], &col_str(i + 1), &names[i + 1])
                .expect("valid widths");
        }
        if i > 0 {
            b.transition(&names[i], &col_str(i - 1), &names[i - 1])
                .expect("valid widths");
        }
    }
    let mut table = b.build().expect("benchmark is well formed");
    fill_outputs_from_source(&mut table);
    table
}

/// The nine-state lion machine (incompletely specified chain).
pub fn lion9() -> FlowTable {
    chain_machine("lion9", 9, |i| (3..=6).contains(&i))
}

/// The eleven-state train machine (incompletely specified chain).
pub fn train11() -> FlowTable {
    chain_machine("train11", 11, |i| (4..=8).contains(&i))
}

/// The four-state train machine, completed with wrap-around transitions.
pub fn train4() -> FlowTable {
    let mut table = chain_machine("train4", 4, |i| i >= 2);
    // Add wrap-around transitions so the table is completely specified and has
    // additional multiple-input-change transitions.
    let s0 = table.state_by_name("S0").expect("state exists");
    let s3 = table.state_by_name("S3").expect("state exists");
    table
        .set_entry(s0, 0b11, Some(s3), None)
        .expect("valid entry");
    table
        .set_entry(s3, 0b00, Some(s0), None)
        .expect("valid entry");
    // S1 under 11 and S2 under 00 remain unspecified (incompletely specified
    // in just two cells).
    fill_outputs_from_source(&mut table);
    table
}

/// A three-input machine with wide (distance-3) input transition cubes.
pub fn mic3() -> FlowTable {
    let mut b = FlowTableBuilder::new("mic3", 3, 1);
    b.states(["A", "B", "C", "D"]);
    for (s, col, out) in [
        ("A", "000", "0"),
        ("B", "001", "0"),
        ("B", "010", "0"),
        ("B", "011", "0"),
        ("C", "111", "1"),
        ("D", "100", "1"),
        ("D", "101", "1"),
        ("D", "110", "1"),
    ] {
        b.stable(s, col, out).expect("valid widths");
    }
    let b_cols = ["001", "010", "011"];
    let d_cols = ["100", "101", "110"];
    for col in b_cols {
        b.transition("A", col, "B").expect("valid widths");
        b.transition("C", col, "B").expect("valid widths");
        b.transition("D", col, "B").expect("valid widths");
    }
    for col in d_cols {
        b.transition("A", col, "D").expect("valid widths");
        b.transition("B", col, "D").expect("valid widths");
        b.transition("C", col, "D").expect("valid widths");
    }
    for s in ["B", "C", "D"] {
        b.transition(s, "000", "A").expect("valid widths");
    }
    for s in ["A", "B", "D"] {
        b.transition(s, "111", "C").expect("valid widths");
    }
    let mut table = b.build().expect("benchmark is well formed");
    fill_outputs_from_source(&mut table);
    table
}

/// The traffic controller with its first state duplicated; the duplicate is
/// equivalent to the original, so state minimization must merge it.
pub fn redundant_traffic() -> FlowTable {
    let mut b = FlowTableBuilder::new("redundant_traffic", 2, 2);
    b.states(["HG1", "HG2", "HY", "FG", "FY"]);
    for hg in ["HG1", "HG2"] {
        for (col, out) in [("00", "10"), ("01", "10"), ("10", "10")] {
            b.stable(hg, col, out).expect("valid widths");
        }
        b.transition(hg, "11", "HY").expect("valid widths");
    }
    for (s, col, out) in [
        ("HY", "11", "11"),
        ("HY", "10", "11"),
        ("FG", "00", "01"),
        ("FG", "01", "01"),
        ("FY", "11", "00"),
        ("FY", "10", "00"),
    ] {
        b.stable(s, col, out).expect("valid widths");
    }
    for (s, col, next) in [
        ("HY", "00", "FG"),
        ("HY", "01", "FG"),
        ("FG", "11", "FY"),
        ("FG", "10", "FY"),
        ("FY", "00", "HG1"),
        ("FY", "01", "HG2"),
    ] {
        b.transition(s, col, next).expect("valid widths");
    }
    let mut table = b.build().expect("benchmark is well formed");
    fill_outputs_from_source(&mut table);
    table
}

/// A wide chain machine over `num_inputs` input bits: state `i` is stable
/// under the binary column `i mod 2^num_inputs` and steps one state forward or
/// backward along the chain. Consecutive binary columns frequently differ in
/// several bits (`0111 → 1000` flips all four), so the machine is rich in
/// multiple-input-change transitions of every distance up to `num_inputs`.
fn wide_chain_machine(name: &str, num_inputs: usize, n: usize) -> FlowTable {
    let columns = 1usize << num_inputs;
    let col_str = |i: usize| -> String {
        (0..num_inputs)
            .map(|b| {
                if (i % columns) >> (num_inputs - 1 - b) & 1 == 1 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    };
    let mut b = FlowTableBuilder::new(name, num_inputs, 1);
    let names: Vec<String> = (0..n).map(|i| format!("S{i}")).collect();
    b.states(names.clone());
    for (i, name_i) in names.iter().enumerate() {
        let out = if i % 3 == 0 { "1" } else { "0" };
        b.stable(name_i, &col_str(i), out).expect("valid widths");
    }
    for i in 0..n {
        if i + 1 < n {
            b.transition(&names[i], &col_str(i + 1), &names[i + 1])
                .expect("valid widths");
        }
        if i > 0 {
            b.transition(&names[i], &col_str(i - 1), &names[i - 1])
                .expect("valid widths");
        }
    }
    let mut table = b.build().expect("benchmark is well formed");
    fill_outputs_from_source(&mut table);
    table
}

/// A 40-state chain machine over two inputs, built as a Step-3 stress shape:
/// its ~550 required dichotomies make the Tracey assignment the dominant
/// synthesis cost. The seed-era ordered-set engine needed 22 state variables
/// here (a 24-variable `(x, y)` space, beyond the dense-function limit); the
/// packed bounded engine finds 12-variable codes, which both pipelines
/// handle. The chain is also don't-care-heavy and therefore redundant:
/// bounded Step-2 reduction merges it to ~22 states.
pub fn chain40() -> FlowTable {
    chain_machine("chain40", 40, |i| (10..=29).contains(&i))
}

/// A 44-state chain closed into a ring (wrap-around transitions), adding two
/// more multiple-input-change transitions and the densest dichotomy set of
/// the suite (~700 required dichotomies). Being a sparsely specified
/// one-output ring, Step-2 reduction collapses it dramatically.
pub fn ring44() -> FlowTable {
    let mut table = chain_machine("ring44", 44, |i| i % 4 == 0);
    let s0 = table.state_by_name("S0").expect("state exists");
    let last = table.state_by_name("S43").expect("state exists");
    // S43 is stable under column 3 (11); the wrap to S0 fires under column 0
    // (00) and vice versa — both distance-2 multiple-input changes.
    table
        .set_entry(last, 0b00, Some(s0), None)
        .expect("valid entry");
    table
        .set_entry(s0, 0b11, Some(last), None)
        .expect("valid entry");
    fill_outputs_from_source(&mut table);
    table
}

/// A 36-state chain over **four** inputs (16 columns), with multiple-input
/// changes up to distance 4 and ~580 required dichotomies across its 16
/// columns.
pub fn wide36() -> FlowTable {
    wide_chain_machine("wide36", 4, 36)
}

/// The five machines reported in Table 1 of the paper, in table order.
pub fn paper_suite() -> Vec<FlowTable> {
    vec![test_example(), traffic(), lion(), lion9(), train11()]
}

/// Large (40-state-class) machines stressing the scalable engines: hundreds
/// of required dichotomies for the bounded Step-3 assignment, big compatible
/// graphs for the bounded Step-2 reducer, and `(x, y)` spaces that demand
/// the sparse cover-based pipeline unless the assignment keeps codes short.
/// Kept out of [`all`] so small-space test loops stay fast.
pub fn large_suite() -> Vec<FlowTable> {
    vec![chain40(), ring44(), wide36()]
}

/// Every benchmark shipped with this crate.
pub fn all() -> Vec<FlowTable> {
    vec![
        test_example(),
        traffic(),
        lion(),
        lion9(),
        train11(),
        train4(),
        mic3(),
        redundant_traffic(),
    ]
}

/// Look up a benchmark by name (searching the small corpus first, then the
/// large sparse-engine suite).
pub fn by_name(name: &str) -> Option<FlowTable> {
    all()
        .into_iter()
        .find(|t| t.name() == name)
        .or_else(|| large_suite().into_iter().find(|t| t.name() == name))
}

/// Import a single external KISS2 benchmark file.
///
/// The machine is named after the file stem (`benchmarks/dk15.kiss` becomes
/// `dk15`), matching MCNC convention. The file must describe a normal-mode
/// flow table; parse errors are reported with their 1-based line number and
/// I/O failures as [`FlowError::Io`].
pub fn import_kiss_file(path: &std::path::Path) -> Result<FlowTable, FlowError> {
    let text = std::fs::read_to_string(path).map_err(|e| FlowError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "imported".to_string());
    crate::kiss::parse(&text, &name)
}

/// Import every `*.kiss` file in `dir`, sorted by file name so the corpus
/// order is stable across platforms.
///
/// This is the entry point for checking external MCNC-style benchmark sets
/// into the repository's `benchmarks/` directory: drop the `.kiss` files in
/// and every consumer (tests, the fuzz replayer, `bench_json`) sees the same
/// machines in the same order.
pub fn import_kiss_dir(dir: &std::path::Path) -> Result<Vec<FlowTable>, FlowError> {
    let entries = std::fs::read_dir(dir).map_err(|e| FlowError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "kiss"))
        .collect();
    paths.sort();
    paths.iter().map(|p| import_kiss_file(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn paper_suite_has_five_machines_in_table_order() {
        let names: Vec<String> = paper_suite().iter().map(|t| t.name().to_string()).collect();
        assert_eq!(
            names,
            vec!["test_example", "traffic", "lion", "lion9", "train11"]
        );
    }

    #[test]
    fn all_benchmarks_are_acceptable_inputs() {
        for table in all() {
            let report = validate::validate(&table);
            assert!(
                report.is_acceptable(),
                "benchmark {} failed validation: {report:?}",
                table.name()
            );
        }
    }

    #[test]
    fn all_benchmarks_have_multiple_input_changes() {
        for table in all() {
            assert!(
                !table.multiple_input_change_transitions().is_empty(),
                "benchmark {} has no multiple-input-change transitions",
                table.name()
            );
        }
    }

    #[test]
    fn state_counts_match_benchmark_names() {
        assert_eq!(test_example().num_states(), 4);
        assert_eq!(traffic().num_states(), 4);
        assert_eq!(lion().num_states(), 4);
        assert_eq!(lion9().num_states(), 9);
        assert_eq!(train11().num_states(), 11);
        assert_eq!(train4().num_states(), 4);
        assert_eq!(redundant_traffic().num_states(), 5);
    }

    #[test]
    fn completeness_flags() {
        assert!(test_example().is_completely_specified());
        assert!(traffic().is_completely_specified());
        assert!(lion().is_completely_specified());
        assert!(!lion9().is_completely_specified());
        assert!(!train11().is_completely_specified());
        assert!(mic3().is_completely_specified());
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("lion").is_some());
        assert!(by_name("does_not_exist").is_none());
    }

    #[test]
    fn large_suite_tables_are_valid_and_mic_rich() {
        for table in large_suite() {
            let report = validate::validate(&table);
            assert!(
                report.is_acceptable(),
                "benchmark {} failed validation: {report:?}",
                table.name()
            );
            assert!(
                !table.multiple_input_change_transitions().is_empty(),
                "benchmark {} has no multiple-input-change transitions",
                table.name()
            );
        }
        assert_eq!(chain40().num_states(), 40);
        assert_eq!(ring44().num_states(), 44);
        assert_eq!(wide36().num_states(), 36);
        assert_eq!(wide36().num_inputs(), 4);
        assert!(by_name("chain40").is_some());
    }

    #[test]
    fn wide36_has_distance_four_transitions() {
        let wide = wide36()
            .multiple_input_change_transitions()
            .into_iter()
            .filter(|t| t.input_distance() == 4)
            .count();
        assert!(wide > 0);
    }

    #[test]
    fn mic3_has_distance_three_transitions() {
        let wide = mic3()
            .multiple_input_change_transitions()
            .into_iter()
            .filter(|t| t.input_distance() == 3)
            .count();
        assert!(wide > 0);
    }
}
