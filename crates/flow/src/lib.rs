//! Huffman flow tables and the benchmark corpus for FANTOM/SEANCE.
//!
//! Asynchronous finite state machines are specified to SEANCE as *normal-mode
//! Huffman flow tables*: one row per internal state, one column per total
//! input vector, each entry naming a next state (and optionally an output
//! vector). In normal mode, every unstable entry leads directly to a state
//! that is stable under the same input column, so each input change causes at
//! most one state transition.
//!
//! This crate provides:
//!
//! * [`Bits`] — fixed-width bit vectors used for input columns, output
//!   vectors and state codes,
//! * [`FlowTable`] / [`FlowTableBuilder`] — the flow-table data structure and
//!   an ergonomic builder,
//! * [`kiss`] — a KISS2-format parser and writer,
//! * [`generate`] — a seeded, shape-parameterized random flow-table
//!   generator (byte-identical corpora for a given seed),
//! * [`validate`] — normal-mode, completeness and strong-connectivity checks,
//! * [`benchmarks`] — the reconstructed MCNC-style benchmark corpus used by
//!   the paper's evaluation (Table 1) plus additional machines used by the
//!   wider test-suite.
//!
//! # Example
//!
//! ```
//! use fantom_flow::benchmarks;
//! use fantom_flow::validate;
//!
//! let table = benchmarks::lion();
//! assert_eq!(table.num_inputs(), 2);
//! assert!(validate::is_normal_mode(&table));
//! assert!(validate::is_strongly_connected(&table));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
mod bits;
mod builder;
pub mod canonical;
mod error;
pub mod generate;
pub mod kiss;
mod table;
pub mod validate;

pub use bits::Bits;
pub use builder::FlowTableBuilder;
pub use error::FlowError;
pub use table::{Entry, FlowTable, StableTransition, StateId};
