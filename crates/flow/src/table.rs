use std::fmt;

use crate::{Bits, FlowError};

/// Identifier of a flow-table state (row index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

impl StateId {
    /// The underlying row index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One cell of a flow table: the behaviour of a state under one input column.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Entry {
    /// Next state, or `None` if the entry is unspecified (don't-care).
    pub next: Option<StateId>,
    /// Output vector, or `None` if the output is unspecified for this entry.
    pub output: Option<Bits>,
}

impl Entry {
    /// `true` if neither next state nor output is specified.
    pub fn is_unspecified(&self) -> bool {
        self.next.is_none() && self.output.is_none()
    }
}

/// A *stable-state transition*: starting from a state stable under one input
/// column, the input changes and the machine settles in a (possibly different)
/// state stable under the new column.
///
/// In a Huffman flow table this is the horizontal-then-vertical movement the
/// paper's hazard-search algorithm (Figure 4) traverses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StableTransition {
    /// The source state (stable under `from_input`).
    pub from_state: StateId,
    /// The input column the source state is stable in.
    pub from_input: Bits,
    /// The destination state (stable under `to_input`).
    pub to_state: StateId,
    /// The new input column.
    pub to_input: Bits,
}

impl StableTransition {
    /// Number of input bits that change in this transition.
    pub fn input_distance(&self) -> usize {
        self.from_input.hamming_distance(&self.to_input)
    }

    /// `true` if more than one input bit changes (a multiple-input change).
    pub fn is_multiple_input_change(&self) -> bool {
        self.input_distance() > 1
    }
}

/// A (possibly incompletely specified) normal-mode Huffman flow table.
///
/// Rows are internal states, columns are total input vectors
/// (`2^num_inputs` of them, indexed by their unsigned value), and each cell is
/// an [`Entry`]. Use [`crate::FlowTableBuilder`] to construct tables
/// conveniently, or [`crate::kiss::parse`] to read KISS2 text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowTable {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    state_names: Vec<String>,
    entries: Vec<Vec<Entry>>,
}

impl FlowTable {
    /// Create an empty table with the given dimensions and state names.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::EmptyTable`] if there are no states or no inputs,
    /// and [`FlowError::DuplicateState`] if two states share a name.
    pub fn new(
        name: impl Into<String>,
        num_inputs: usize,
        num_outputs: usize,
        state_names: Vec<String>,
    ) -> Result<Self, FlowError> {
        if state_names.is_empty() || num_inputs == 0 {
            return Err(FlowError::EmptyTable);
        }
        for (i, a) in state_names.iter().enumerate() {
            if state_names[..i].contains(a) {
                return Err(FlowError::DuplicateState(a.clone()));
            }
        }
        let columns = 1 << num_inputs;
        let entries = vec![vec![Entry::default(); columns]; state_names.len()];
        Ok(FlowTable {
            name: name.into(),
            num_inputs,
            num_outputs,
            state_names,
            entries,
        })
    }

    /// The table's name (benchmark identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of input bits.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output bits.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of states (rows).
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// Number of input columns (`2^num_inputs`).
    pub fn num_columns(&self) -> usize {
        1 << self.num_inputs
    }

    /// All state identifiers in row order.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.num_states()).map(StateId)
    }

    /// All input columns as bit vectors, in index order.
    pub fn columns(&self) -> impl Iterator<Item = Bits> + '_ {
        (0..self.num_columns()).map(|c| Bits::from_index(self.num_inputs, c))
    }

    /// The name of a state.
    ///
    /// # Panics
    ///
    /// Panics if the state index is out of range.
    pub fn state_name(&self, state: StateId) -> &str {
        &self.state_names[state.0]
    }

    /// Look up a state by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.state_names.iter().position(|n| n == name).map(StateId)
    }

    /// The entry for `state` under input column `column`.
    ///
    /// # Panics
    ///
    /// Panics if the state or column index is out of range.
    pub fn entry(&self, state: StateId, column: usize) -> &Entry {
        &self.entries[state.0][column]
    }

    /// Mutable access to an entry.
    ///
    /// # Panics
    ///
    /// Panics if the state or column index is out of range.
    pub fn entry_mut(&mut self, state: StateId, column: usize) -> &mut Entry {
        &mut self.entries[state.0][column]
    }

    /// Set the entry for `state` under `column`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::ColumnOutOfRange`] or [`FlowError::WidthMismatch`]
    /// for invalid coordinates or output width.
    pub fn set_entry(
        &mut self,
        state: StateId,
        column: usize,
        next: Option<StateId>,
        output: Option<Bits>,
    ) -> Result<(), FlowError> {
        if column >= self.num_columns() {
            return Err(FlowError::ColumnOutOfRange {
                column,
                num_inputs: self.num_inputs,
            });
        }
        if let Some(out) = &output {
            if out.width() != self.num_outputs {
                return Err(FlowError::WidthMismatch {
                    expected: self.num_outputs,
                    found: out.width(),
                });
            }
        }
        self.entries[state.0][column] = Entry { next, output };
        Ok(())
    }

    /// Next state of `state` under `column`, if specified.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn next_state(&self, state: StateId, column: usize) -> Option<StateId> {
        self.entries[state.0][column].next
    }

    /// The transition groups of an input column, keyed by destination: one
    /// group per reachable destination state, containing every state the
    /// column sends there (the destination itself included when it is
    /// stable). Groups are disjoint — each state has at most one next state
    /// per column — and returned in destination-id order; states with an
    /// unspecified entry belong to no group. This is the column partition
    /// Tracey's adjacency grouping clusters states by (the assignment
    /// engine's adjacency seeding consumes it).
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of range.
    pub fn column_groups(&self, column: usize) -> Vec<Vec<StateId>> {
        let mut by_dest: Vec<Vec<StateId>> = vec![Vec::new(); self.num_states()];
        for s in self.states() {
            if let Some(t) = self.next_state(s, column) {
                by_dest[t.0].push(s);
            }
        }
        by_dest.into_iter().filter(|g| !g.is_empty()).collect()
    }

    /// Output of `state` under `column`, if specified.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn output(&self, state: StateId, column: usize) -> Option<&Bits> {
        self.entries[state.0][column].output.as_ref()
    }

    /// `true` if `state` is stable under `column` (the entry's next state is
    /// the state itself).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn is_stable(&self, state: StateId, column: usize) -> bool {
        self.entries[state.0][column].next == Some(state)
    }

    /// Columns under which `state` is stable.
    pub fn stable_columns(&self, state: StateId) -> Vec<usize> {
        (0..self.num_columns())
            .filter(|&c| self.is_stable(state, c))
            .collect()
    }

    /// States stable under `column`.
    pub fn stable_states(&self, column: usize) -> Vec<StateId> {
        self.states()
            .filter(|&s| self.is_stable(s, column))
            .collect()
    }

    /// Total number of specified entries.
    pub fn specified_entries(&self) -> usize {
        self.entries
            .iter()
            .flat_map(|row| row.iter())
            .filter(|e| !e.is_unspecified())
            .count()
    }

    /// `true` if every entry specifies a next state.
    pub fn is_completely_specified(&self) -> bool {
        self.entries
            .iter()
            .flat_map(|row| row.iter())
            .all(|e| e.next.is_some())
    }

    /// The output associated with a stable state: the output of its first
    /// stable entry, if any entry specifies one.
    pub fn stable_output(&self, state: StateId) -> Option<&Bits> {
        self.stable_columns(state)
            .into_iter()
            .find_map(|c| self.output(state, c))
    }

    /// Enumerate every stable-state transition of the table.
    ///
    /// For each state `s` stable under column `a` and every other column `b`
    /// whose entry `(s, b)` specifies a next state `t` with `t` stable under
    /// `b`, a [`StableTransition`] is produced. Transitions with `a == b` are
    /// omitted; self-loops (`t == s`, `a != b`) are included because they still
    /// traverse an input transition space.
    pub fn stable_transitions(&self) -> Vec<StableTransition> {
        let mut out = Vec::new();
        for s in self.states() {
            for a in self.stable_columns(s) {
                for b in 0..self.num_columns() {
                    if a == b {
                        continue;
                    }
                    let Some(t) = self.next_state(s, b) else {
                        continue;
                    };
                    if self.is_stable(t, b) {
                        out.push(StableTransition {
                            from_state: s,
                            from_input: Bits::from_index(self.num_inputs, a),
                            to_state: t,
                            to_input: Bits::from_index(self.num_inputs, b),
                        });
                    }
                }
            }
        }
        out
    }

    /// Stable-state transitions in which more than one input bit changes.
    pub fn multiple_input_change_transitions(&self) -> Vec<StableTransition> {
        self.stable_transitions()
            .into_iter()
            .filter(StableTransition::is_multiple_input_change)
            .collect()
    }

    /// Produce a new table containing only the given states (in the given
    /// order), dropping entries that reference removed states.
    ///
    /// Used by state minimization when collapsing equivalence/compatibility
    /// classes.
    ///
    /// # Panics
    ///
    /// Panics if `keep` references an out-of-range state.
    pub fn restrict_to_states(&self, keep: &[StateId]) -> FlowTable {
        let names = keep
            .iter()
            .map(|&s| self.state_names[s.0].clone())
            .collect();
        let mut table = FlowTable::new(self.name.clone(), self.num_inputs, self.num_outputs, names)
            .expect("non-empty restriction of a valid table");
        for (new_idx, &old) in keep.iter().enumerate() {
            for c in 0..self.num_columns() {
                let entry = self.entry(old, c);
                let mapped_next = entry
                    .next
                    .and_then(|t| keep.iter().position(|&k| k == t).map(StateId));
                table.entries[new_idx][c] = Entry {
                    next: mapped_next,
                    output: entry.output.clone(),
                };
            }
        }
        table
    }
}

impl fmt::Display for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flow table {} ({} inputs, {} outputs, {} states)",
            self.name,
            self.num_inputs,
            self.num_outputs,
            self.num_states()
        )?;
        write!(f, "{:>10}", "")?;
        for c in 0..self.num_columns() {
            write!(
                f,
                " {:^10}",
                Bits::from_index(self.num_inputs, c).to_string()
            )?;
        }
        writeln!(f)?;
        for s in self.states() {
            write!(f, "{:>10}", self.state_name(s))?;
            for c in 0..self.num_columns() {
                let e = self.entry(s, c);
                let cell = match (&e.next, &e.output) {
                    (None, None) => "-".to_string(),
                    (Some(t), out) => {
                        let marker = if *t == s { "*" } else { "" };
                        let out_str = out.as_ref().map(|o| format!(",{o}")).unwrap_or_default();
                        format!("{}{}{}", self.state_name(*t), marker, out_str)
                    }
                    (None, Some(out)) => format!("-,{out}"),
                };
                write!(f, " {cell:^10}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowTableBuilder;

    fn toy() -> FlowTable {
        // Two states, one input, one output: a simple toggle-ish machine.
        let mut b = FlowTableBuilder::new("toy", 1, 1);
        b.state("A").state("B");
        b.stable("A", "0", "0").unwrap();
        b.stable("B", "1", "1").unwrap();
        b.transition("A", "1", "B").unwrap();
        b.transition("B", "0", "A").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dimensions_and_lookup() {
        let t = toy();
        assert_eq!(t.num_states(), 2);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.state_name(StateId(0)), "A");
        assert_eq!(t.state_by_name("B"), Some(StateId(1)));
        assert_eq!(t.state_by_name("Z"), None);
    }

    #[test]
    fn stability_detection() {
        let t = toy();
        let a = t.state_by_name("A").unwrap();
        let b = t.state_by_name("B").unwrap();
        assert!(t.is_stable(a, 0));
        assert!(!t.is_stable(a, 1));
        assert_eq!(t.stable_columns(b), vec![1]);
        assert_eq!(t.stable_states(0), vec![a]);
    }

    #[test]
    fn stable_transitions_enumerated() {
        let t = toy();
        let trans = t.stable_transitions();
        assert_eq!(trans.len(), 2);
        assert!(trans.iter().all(|tr| tr.input_distance() == 1));
        assert!(t.multiple_input_change_transitions().is_empty());
    }

    #[test]
    fn duplicate_state_rejected() {
        let err = FlowTable::new("dup", 1, 1, vec!["A".into(), "A".into()]);
        assert!(matches!(err, Err(FlowError::DuplicateState(_))));
    }

    #[test]
    fn empty_table_rejected() {
        assert!(matches!(
            FlowTable::new("e", 1, 1, vec![]),
            Err(FlowError::EmptyTable)
        ));
        assert!(matches!(
            FlowTable::new("e", 0, 1, vec!["A".into()]),
            Err(FlowError::EmptyTable)
        ));
    }

    #[test]
    fn set_entry_validates_coordinates() {
        let mut t = toy();
        let a = StateId(0);
        assert!(matches!(
            t.set_entry(a, 5, None, None),
            Err(FlowError::ColumnOutOfRange { .. })
        ));
        assert!(matches!(
            t.set_entry(a, 0, None, Some(Bits::parse("01").unwrap())),
            Err(FlowError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn restriction_remaps_states() {
        let t = toy();
        let only_a = t.restrict_to_states(&[StateId(0)]);
        assert_eq!(only_a.num_states(), 1);
        // The A->B transition now dangles and is dropped.
        assert_eq!(only_a.next_state(StateId(0), 1), None);
        assert!(only_a.is_stable(StateId(0), 0));
    }

    #[test]
    fn display_is_nonempty() {
        let t = toy();
        let s = t.to_string();
        assert!(s.contains("toy"));
        assert!(s.contains('A'));
    }
}
