use std::fmt;

use crate::FlowError;

/// A fixed-width vector of bits.
///
/// `Bits` is used for input vectors (flow-table columns), output vectors and
/// state codes. Bit 0 is the **most significant** position, matching the
/// minterm-index convention of `fantom_boolean`.
///
/// # Example
///
/// ```
/// use fantom_flow::Bits;
///
/// # fn main() -> Result<(), fantom_flow::FlowError> {
/// let a = Bits::parse("0110")?;
/// let b = Bits::from_index(4, 0b0101);
/// assert_eq!(a.hamming_distance(&b), 2);
/// assert_eq!(b.to_string(), "0101");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bits {
    bits: Vec<bool>,
}

impl Bits {
    /// An all-zero vector of the given width.
    pub fn zeros(width: usize) -> Self {
        Bits {
            bits: vec![false; width],
        }
    }

    /// Build from an explicit bool vector (index 0 = most significant).
    pub fn from_bools(bits: Vec<bool>) -> Self {
        Bits { bits }
    }

    /// Build the `width`-bit vector whose unsigned value is `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit into `width` bits.
    pub fn from_index(width: usize, index: usize) -> Self {
        assert!(
            width >= usize::BITS as usize || index < (1 << width),
            "index does not fit width"
        );
        let bits = (0..width)
            .map(|i| (index >> (width - 1 - i)) & 1 == 1)
            .collect();
        Bits { bits }
    }

    /// Parse a string of `0`/`1` characters.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidBitString`] for any other character.
    pub fn parse(s: &str) -> Result<Self, FlowError> {
        let mut bits = Vec::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '0' => bits.push(false),
                '1' => bits.push(true),
                _ => return Err(FlowError::InvalidBitString(s.to_string())),
            }
        }
        Ok(Bits { bits })
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The bit at position `i` (0 = most significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Set the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        self.bits[i] = value;
    }

    /// Return a copy with bit `i` flipped.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn with_flipped(&self, i: usize) -> Bits {
        let mut out = self.clone();
        out.bits[i] = !out.bits[i];
        out
    }

    /// The unsigned integer value of the vector (bit 0 most significant).
    pub fn index(&self) -> usize {
        self.bits
            .iter()
            .fold(0, |acc, &b| (acc << 1) | usize::from(b))
    }

    /// Number of positions where the two vectors differ.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn hamming_distance(&self, other: &Bits) -> usize {
        assert_eq!(self.width(), other.width(), "width mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Indices of the positions where the two vectors differ.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn differing_positions(&self, other: &Bits) -> Vec<usize> {
        assert_eq!(self.width(), other.width(), "width mismatch");
        (0..self.width())
            .filter(|&i| self.bits[i] != other.bits[i])
            .collect()
    }

    /// Iterate over the bits, most significant first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// View the bits as a slice of booleans.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// All vectors lying in the transition subcube spanned by `from` and `to`:
    /// vectors that agree with `from` on every position where `from == to` and
    /// take any combination on the differing positions. The result includes
    /// both end points.
    ///
    /// This is the "input transition space" traversed during a multiple-input
    /// change from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn transition_cube(from: &Bits, to: &Bits) -> Vec<Bits> {
        let diffs = from.differing_positions(to);
        let mut out = Vec::with_capacity(1 << diffs.len());
        for combo in 0..(1usize << diffs.len()) {
            let mut v = from.clone();
            for (j, &pos) in diffs.iter().enumerate() {
                if (combo >> j) & 1 == 1 {
                    v.bits[pos] = to.bits[pos];
                }
            }
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Concatenate two bit vectors (`self` first).
    pub fn concat(&self, other: &Bits) -> Bits {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&other.bits);
        Bits { bits }
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl From<Vec<bool>> for Bits {
    fn from(bits: Vec<bool>) -> Self {
        Bits::from_bools(bits)
    }
}

impl AsRef<[bool]> for Bits {
    fn as_ref(&self) -> &[bool] {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for idx in 0..16 {
            let b = Bits::from_index(4, idx);
            assert_eq!(b.index(), idx);
            assert_eq!(b.width(), 4);
        }
    }

    #[test]
    fn parse_and_display() {
        let b = Bits::parse("1011").unwrap();
        assert_eq!(b.to_string(), "1011");
        assert!(Bits::parse("10x1").is_err());
    }

    #[test]
    fn hamming_and_differing_positions() {
        let a = Bits::parse("1100").unwrap();
        let b = Bits::parse("1010").unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.differing_positions(&b), vec![1, 2]);
    }

    #[test]
    fn transition_cube_spans_differing_bits() {
        let a = Bits::parse("00").unwrap();
        let b = Bits::parse("11").unwrap();
        let cube = Bits::transition_cube(&a, &b);
        assert_eq!(cube.len(), 4);
        assert!(cube.contains(&a));
        assert!(cube.contains(&b));

        let c = Bits::parse("01").unwrap();
        let small = Bits::transition_cube(&a, &c);
        assert_eq!(small.len(), 2);
    }

    #[test]
    fn flip_and_set() {
        let a = Bits::parse("000").unwrap();
        let b = a.with_flipped(1);
        assert_eq!(b.to_string(), "010");
        let mut c = b.clone();
        c.set_bit(0, true);
        assert_eq!(c.to_string(), "110");
    }

    #[test]
    fn concat_widths_add() {
        let a = Bits::parse("10").unwrap();
        let b = Bits::parse("011").unwrap();
        assert_eq!(a.concat(&b).to_string(), "10011");
    }
}
