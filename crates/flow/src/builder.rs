use crate::{Bits, FlowError, FlowTable, StateId};

/// Ergonomic construction of [`FlowTable`]s.
///
/// States are declared with [`FlowTableBuilder::state`]; stable entries with
/// [`FlowTableBuilder::stable`] (which records the state's output under that
/// column) and unstable entries with [`FlowTableBuilder::transition`].
/// Unmentioned entries remain unspecified (don't-care), producing an
/// incompletely specified flow table.
///
/// # Example
///
/// ```
/// use fantom_flow::FlowTableBuilder;
///
/// # fn main() -> Result<(), fantom_flow::FlowError> {
/// let mut b = FlowTableBuilder::new("toggle", 1, 1);
/// b.state("off").state("on");
/// b.stable("off", "0", "0")?;
/// b.stable("on", "1", "1")?;
/// b.transition("off", "1", "on")?;
/// b.transition("on", "0", "off")?;
/// let table = b.build()?;
/// assert_eq!(table.num_states(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FlowTableBuilder {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    state_names: Vec<String>,
    ops: Vec<Op>,
}

#[derive(Debug, Clone)]
enum Op {
    Stable {
        state: String,
        input: String,
        output: String,
    },
    Transition {
        state: String,
        input: String,
        next: String,
        output: Option<String>,
    },
}

impl FlowTableBuilder {
    /// Start a builder for a table with the given input/output widths.
    pub fn new(name: impl Into<String>, num_inputs: usize, num_outputs: usize) -> Self {
        FlowTableBuilder {
            name: name.into(),
            num_inputs,
            num_outputs,
            state_names: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Declare a state. States are numbered in declaration order.
    pub fn state(&mut self, name: impl Into<String>) -> &mut Self {
        self.state_names.push(name.into());
        self
    }

    /// Declare several states at once.
    pub fn states<I, S>(&mut self, names: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for n in names {
            self.state_names.push(n.into());
        }
        self
    }

    /// Record that `state` is stable under input `input` with output `output`.
    ///
    /// # Errors
    ///
    /// Returns an error if the bit strings have the wrong width (checked at
    /// [`FlowTableBuilder::build`] time for unknown state names).
    pub fn stable(
        &mut self,
        state: &str,
        input: &str,
        output: &str,
    ) -> Result<&mut Self, FlowError> {
        self.check_width(input, self.num_inputs)?;
        self.check_width(output, self.num_outputs)?;
        self.ops.push(Op::Stable {
            state: state.to_string(),
            input: input.to_string(),
            output: output.to_string(),
        });
        Ok(self)
    }

    /// Record an unstable entry: from `state` under `input`, the machine moves
    /// to `next`. The entry's output is left unspecified.
    ///
    /// # Errors
    ///
    /// Returns an error if the input string has the wrong width.
    pub fn transition(
        &mut self,
        state: &str,
        input: &str,
        next: &str,
    ) -> Result<&mut Self, FlowError> {
        self.check_width(input, self.num_inputs)?;
        self.ops.push(Op::Transition {
            state: state.to_string(),
            input: input.to_string(),
            next: next.to_string(),
            output: None,
        });
        Ok(self)
    }

    /// Record an unstable entry with an explicit output vector.
    ///
    /// # Errors
    ///
    /// Returns an error if either bit string has the wrong width.
    pub fn transition_with_output(
        &mut self,
        state: &str,
        input: &str,
        next: &str,
        output: &str,
    ) -> Result<&mut Self, FlowError> {
        self.check_width(input, self.num_inputs)?;
        self.check_width(output, self.num_outputs)?;
        self.ops.push(Op::Transition {
            state: state.to_string(),
            input: input.to_string(),
            next: next.to_string(),
            output: Some(output.to_string()),
        });
        Ok(self)
    }

    fn check_width(&self, s: &str, expected: usize) -> Result<(), FlowError> {
        if s.len() != expected {
            return Err(FlowError::WidthMismatch {
                expected,
                found: s.len(),
            });
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Result<StateId, FlowError> {
        self.state_names
            .iter()
            .position(|n| n == name)
            .map(StateId)
            .ok_or_else(|| FlowError::UnknownState(name.to_string()))
    }

    /// Construct the flow table.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown state names, duplicate states, malformed
    /// bit strings or an empty table.
    pub fn build(&self) -> Result<FlowTable, FlowError> {
        let mut table = FlowTable::new(
            self.name.clone(),
            self.num_inputs,
            self.num_outputs,
            self.state_names.clone(),
        )?;
        for op in &self.ops {
            match op {
                Op::Stable {
                    state,
                    input,
                    output,
                } => {
                    let s = self.lookup(state)?;
                    let col = Bits::parse(input)?.index();
                    let out = Bits::parse(output)?;
                    table.set_entry(s, col, Some(s), Some(out))?;
                }
                Op::Transition {
                    state,
                    input,
                    next,
                    output,
                } => {
                    let s = self.lookup(state)?;
                    let t = self.lookup(next)?;
                    let col = Bits::parse(input)?.index();
                    let out = output.as_deref().map(Bits::parse).transpose()?;
                    table.set_entry(s, col, Some(t), out)?;
                }
            }
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_expected_entries() {
        let mut b = FlowTableBuilder::new("t", 2, 1);
        b.states(["A", "B"]);
        b.stable("A", "00", "0").unwrap();
        b.stable("B", "11", "1").unwrap();
        b.transition("A", "11", "B").unwrap();
        b.transition_with_output("B", "00", "A", "0").unwrap();
        let t = b.build().unwrap();

        let a = t.state_by_name("A").unwrap();
        let b_id = t.state_by_name("B").unwrap();
        assert!(t.is_stable(a, 0));
        assert_eq!(t.next_state(a, 3), Some(b_id));
        assert_eq!(t.output(b_id, 0), Some(&Bits::parse("0").unwrap()));
        // Unmentioned entries stay unspecified.
        assert!(t.entry(a, 1).is_unspecified());
    }

    #[test]
    fn unknown_state_rejected_at_build() {
        let mut b = FlowTableBuilder::new("t", 1, 1);
        b.state("A");
        b.transition("A", "1", "GHOST").unwrap();
        assert!(matches!(b.build(), Err(FlowError::UnknownState(_))));
    }

    #[test]
    fn width_errors_are_immediate() {
        let mut b = FlowTableBuilder::new("t", 2, 1);
        b.state("A");
        assert!(b.stable("A", "0", "0").is_err());
        assert!(b.stable("A", "00", "01").is_err());
        assert!(b.transition("A", "000", "A").is_err());
    }
}
