//! Structural checks on flow tables.
//!
//! SEANCE requires its input flow tables to be *normal mode* (each unstable
//! entry leads directly to a state stable under the same column) and assumes
//! they are *strongly connected* (every stable state reachable from every
//! other). These checks are exposed individually and as a combined
//! [`ValidationReport`].

use std::collections::VecDeque;

use crate::{FlowTable, StateId};

/// A violation of the normal-mode requirement: the entry at `(state, column)`
/// leads to a state that is not stable under `column` (or is unspecified while
/// an output is given).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalModeViolation {
    /// Row of the offending entry.
    pub state: StateId,
    /// Column of the offending entry.
    pub column: usize,
    /// Destination named by the entry, if any.
    pub destination: Option<StateId>,
}

/// Summary of all structural checks for a flow table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Normal-mode violations, empty when the table is normal mode.
    pub normal_mode_violations: Vec<NormalModeViolation>,
    /// Whether the state graph is strongly connected.
    pub strongly_connected: bool,
    /// States that have no stable column at all.
    pub states_without_stable_column: Vec<StateId>,
    /// Whether every entry specifies a next state.
    pub completely_specified: bool,
    /// Number of stable-state transitions with multiple-input changes.
    pub multiple_input_change_transitions: usize,
}

impl ValidationReport {
    /// `true` when the table satisfies every requirement SEANCE places on its
    /// input (normal mode, strong connectivity, at least one stable column per
    /// state). Complete specification is *not* required.
    pub fn is_acceptable(&self) -> bool {
        self.normal_mode_violations.is_empty()
            && self.strongly_connected
            && self.states_without_stable_column.is_empty()
    }
}

/// Compute all normal-mode violations of `table`.
pub fn normal_mode_violations(table: &FlowTable) -> Vec<NormalModeViolation> {
    let mut out = Vec::new();
    for s in table.states() {
        for c in 0..table.num_columns() {
            let entry = table.entry(s, c);
            match entry.next {
                Some(t) if t != s && !table.is_stable(t, c) => {
                    out.push(NormalModeViolation {
                        state: s,
                        column: c,
                        destination: Some(t),
                    });
                }
                _ => {}
            }
        }
    }
    out
}

/// `true` if `table` satisfies the normal-mode requirement.
pub fn is_normal_mode(table: &FlowTable) -> bool {
    normal_mode_violations(table).is_empty()
}

/// `true` if the directed state graph (an edge `s → t` for every specified
/// entry leading from `s` to `t ≠ s`) is strongly connected.
pub fn is_strongly_connected(table: &FlowTable) -> bool {
    let n = table.num_states();
    if n <= 1 {
        return true;
    }
    let forward = |s: StateId| -> Vec<StateId> {
        (0..table.num_columns())
            .filter_map(|c| table.next_state(s, c))
            .filter(|&t| t != s)
            .collect()
    };
    let reachable_from = |start: usize, reverse: bool| -> Vec<bool> {
        let mut seen = vec![false; n];
        seen[start] = true;
        let mut queue = VecDeque::from([StateId(start)]);
        while let Some(u) = queue.pop_front() {
            for v in table.states() {
                let edge = if reverse {
                    forward(v).contains(&u)
                } else {
                    forward(u).contains(&v)
                };
                if edge && !seen[v.0] {
                    seen[v.0] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    };
    reachable_from(0, false).iter().all(|&b| b) && reachable_from(0, true).iter().all(|&b| b)
}

/// States of `table` that are stable under no input column.
pub fn states_without_stable_column(table: &FlowTable) -> Vec<StateId> {
    table
        .states()
        .filter(|&s| table.stable_columns(s).is_empty())
        .collect()
}

/// Run every structural check and collect a [`ValidationReport`].
pub fn validate(table: &FlowTable) -> ValidationReport {
    ValidationReport {
        normal_mode_violations: normal_mode_violations(table),
        strongly_connected: is_strongly_connected(table),
        states_without_stable_column: states_without_stable_column(table),
        completely_specified: table.is_completely_specified(),
        multiple_input_change_transitions: table.multiple_input_change_transitions().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowTableBuilder;

    fn good() -> FlowTable {
        let mut b = FlowTableBuilder::new("good", 1, 1);
        b.states(["A", "B"]);
        b.stable("A", "0", "0").unwrap();
        b.stable("B", "1", "1").unwrap();
        b.transition("A", "1", "B").unwrap();
        b.transition("B", "0", "A").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn good_table_passes_all_checks() {
        let t = good();
        let report = validate(&t);
        assert!(report.is_acceptable());
        assert!(report.completely_specified);
        assert!(report.normal_mode_violations.is_empty());
    }

    #[test]
    fn non_normal_mode_detected() {
        // A -> B under column 1, but B is NOT stable under column 1.
        let mut b = FlowTableBuilder::new("bad", 1, 1);
        b.states(["A", "B"]);
        b.stable("A", "0", "0").unwrap();
        b.stable("B", "0", "1").unwrap();
        b.transition("A", "1", "B").unwrap();
        b.transition("B", "1", "A").unwrap();
        let t = b.build().unwrap();
        let violations = normal_mode_violations(&t);
        assert_eq!(violations.len(), 2);
        assert!(!is_normal_mode(&t));
    }

    #[test]
    fn disconnected_table_detected() {
        let mut b = FlowTableBuilder::new("disc", 1, 1);
        b.states(["A", "B"]);
        b.stable("A", "0", "0").unwrap();
        b.stable("A", "1", "0").unwrap();
        b.stable("B", "0", "1").unwrap();
        b.stable("B", "1", "1").unwrap();
        let t = b.build().unwrap();
        assert!(!is_strongly_connected(&t));
        assert!(!validate(&t).is_acceptable());
    }

    #[test]
    fn state_without_stable_column_detected() {
        let mut b = FlowTableBuilder::new("nostable", 1, 1);
        b.states(["A", "B"]);
        b.stable("A", "0", "0").unwrap();
        b.stable("A", "1", "0").unwrap();
        b.transition("B", "0", "A").unwrap();
        b.transition("B", "1", "A").unwrap();
        let t = b.build().unwrap();
        assert_eq!(states_without_stable_column(&t), vec![StateId(1)]);
    }

    #[test]
    fn single_state_table_is_strongly_connected() {
        let mut b = FlowTableBuilder::new("one", 1, 1);
        b.state("A");
        b.stable("A", "0", "0").unwrap();
        b.stable("A", "1", "0").unwrap();
        let t = b.build().unwrap();
        assert!(is_strongly_connected(&t));
    }
}
