//! Canonical forms of flow tables up to relabeling.
//!
//! Two flow tables are *isomorphic* when one can be turned into the other by
//! renaming states (permuting rows), permuting input bits (which permutes the
//! input columns accordingly) and permuting output bits. Isomorphic tables
//! synthesize to the same machine up to the very same renaming, so a synthesis
//! service that recognizes isomorphism can answer a resubmitted controller
//! from a cache instead of the engine (see `seance::service`).
//!
//! [`canonicalize`] computes a **canonical signature**: a byte string that is
//! identical for isomorphic tables and (collision aside) distinct otherwise,
//! together with the relabeling that maps the submitted table onto its
//! canonical form. The algorithm is classical partition refinement with
//! bounded individualization:
//!
//! 1. input-bit and output-bit permutations are enumerated outright (their
//!    count is `num_inputs!·num_outputs!`, tiny for realistic controllers);
//! 2. for each such labeling, states are ordered by iterated color
//!    refinement — a state's color hashes its row behaviour and the colors of
//!    its successors — and remaining ties are broken by individualizing each
//!    member of the first tied class and recursing;
//! 3. the lexicographically smallest serialized table over all explored
//!    labelings is the canonical form.
//!
//! Every step explores an isomorphism-invariant candidate set, so the minimum
//! is well defined on isomorphism classes. When the enumeration or the
//! individualization search would exceed the [`CanonicalOptions`] budgets the
//! table falls back to **exact-form** hashing (identity relabeling, a marker
//! byte that never collides with canonical signatures): only structurally
//! identical submissions then match, which is always sound — the cache merely
//! loses hit opportunities, never correctness.

use crate::{Bits, FlowTable};

/// Budgets for [`canonicalize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonicalOptions {
    /// Cap on the number of enumerated input/output-bit labelings
    /// (`num_inputs!·num_outputs!`). Above the cap the table is hashed in
    /// exact form.
    pub max_labelings: usize,
    /// Cap on the total number of refinement runs spent breaking state-color
    /// ties (search-tree nodes across all labelings). Exhausting it falls
    /// back to exact form.
    pub max_refinements: usize,
}

impl Default for CanonicalOptions {
    fn default() -> Self {
        CanonicalOptions {
            max_labelings: 1024,
            max_refinements: 4096,
        }
    }
}

/// The result of [`canonicalize`]: the canonical signature plus the
/// relabeling that carries the submitted table onto its canonical form.
///
/// All maps go **original → canonical**: state `i` of the submitted table is
/// row `state_map[i]` of the canonical table, input bit `i` is canonical input
/// bit `input_map[i]`, output bit `b` is canonical output bit `output_map[b]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canonicalization {
    /// Canonical byte signature — equal for isomorphic tables.
    pub signature: Vec<u8>,
    /// `true` if a budget was exceeded and the signature is the exact
    /// (identity-relabeling) form: only structurally identical tables match.
    pub exact: bool,
    /// Original state index → canonical row index.
    pub state_map: Vec<usize>,
    /// Original input bit position → canonical input bit position.
    pub input_map: Vec<usize>,
    /// Original output bit position → canonical output bit position.
    pub output_map: Vec<usize>,
}

/// Compute the canonical form of `table` under the given budgets.
pub fn canonicalize(table: &FlowTable, options: &CanonicalOptions) -> Canonicalization {
    let ni = table.num_inputs();
    let no = table.num_outputs();
    let labelings = factorial(ni).saturating_mul(factorial(no.max(1)));
    if labelings > options.max_labelings {
        return exact_form(table);
    }

    // (signature, state order, input perm, output perm) of the best labeling.
    type Best = (Vec<u8>, Vec<usize>, Vec<usize>, Vec<usize>);
    let mut budget = options.max_refinements;
    let mut best: Option<Best> = None;
    for input_perm in permutations(ni) {
        let col_map = column_map(ni, &input_perm);
        for output_perm in permutations(no) {
            let Some((sig, order)) = best_signature(table, &col_map, &output_perm, &mut budget)
            else {
                return exact_form(table); // refinement budget exhausted
            };
            let better = best.as_ref().map_or(true, |(b, _, _, _)| sig < *b);
            if better {
                best = Some((sig, order, input_perm.clone(), output_perm));
            }
        }
    }

    let (signature, order, input_map, output_map) = best.expect("at least one labeling explored");
    // `order` lists original states in canonical row order; invert it.
    let mut state_map = vec![0usize; order.len()];
    for (row, &orig) in order.iter().enumerate() {
        state_map[orig] = row;
    }
    Canonicalization {
        signature,
        exact: false,
        state_map,
        input_map,
        output_map,
    }
}

/// Apply a relabeling to a table: state `i` becomes row `state_map[i]` (its
/// name travels with it), input bit `i` moves to position `input_map[i]`
/// (permuting the input columns accordingly), output bit `b` moves to
/// position `output_map[b]`. All three maps must be permutations of the
/// respective dimension.
///
/// Relabeling is invertible: applying [`inverse_permutation`]s of the same
/// maps restores the original table.
///
/// # Panics
///
/// Panics if a map's length does not match its dimension or is not a
/// permutation.
pub fn relabel(
    table: &FlowTable,
    state_map: &[usize],
    input_map: &[usize],
    output_map: &[usize],
    name: &str,
) -> FlowTable {
    let names = permuted_names(table, state_map);
    relabel_with_names(table, state_map, input_map, output_map, name, names)
}

/// The canonical table of a [`Canonicalization`]: `table` relabeled by the
/// canonical maps, with rows renamed `s0, s1, …` and the table renamed
/// `"canonical"` so that any two isomorphic submissions produce **equal**
/// canonical tables (state names are not part of the isomorphism).
pub fn canonical_table(table: &FlowTable, c: &Canonicalization) -> FlowTable {
    let names = (0..table.num_states()).map(|i| format!("s{i}")).collect();
    relabel_with_names(
        table,
        &c.state_map,
        &c.input_map,
        &c.output_map,
        "canonical",
        names,
    )
}

/// The inverse of a permutation given as an `original → new` map.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..perm.len()`.
pub fn inverse_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        assert!(p < perm.len() && inv[p] == usize::MAX, "not a permutation");
        inv[p] = i;
    }
    inv
}

fn permuted_names(table: &FlowTable, state_map: &[usize]) -> Vec<String> {
    assert_eq!(state_map.len(), table.num_states());
    let mut names = vec![String::new(); table.num_states()];
    for s in table.states() {
        names[state_map[s.index()]] = table.state_name(s).to_string();
    }
    names
}

fn relabel_with_names(
    table: &FlowTable,
    state_map: &[usize],
    input_map: &[usize],
    output_map: &[usize],
    name: &str,
    names: Vec<String>,
) -> FlowTable {
    let ni = table.num_inputs();
    let no = table.num_outputs();
    assert_eq!(input_map.len(), ni);
    assert_eq!(output_map.len(), no);
    let mut out = FlowTable::new(name, ni, no, names).expect("valid relabeled table");
    for s in table.states() {
        for c in 0..table.num_columns() {
            let entry = table.entry(s, c);
            if entry.is_unspecified() {
                continue;
            }
            let bits = Bits::from_index(ni, c);
            let mut new_bits = Bits::zeros(ni);
            for (i, &target) in input_map.iter().enumerate() {
                new_bits.set_bit(target, bits.bit(i));
            }
            let next = entry.next.map(|t| crate::StateId(state_map[t.index()]));
            let output = entry.output.as_ref().map(|o| {
                let mut p = Bits::zeros(no);
                for (b, &target) in output_map.iter().enumerate() {
                    p.set_bit(target, o.bit(b));
                }
                p
            });
            out.set_entry(
                crate::StateId(state_map[s.index()]),
                new_bits.index(),
                next,
                output,
            )
            .expect("relabeled coordinates in range");
        }
    }
    out
}

/// Exact-form fallback: identity relabeling, signature prefixed by a marker
/// byte disjoint from canonical signatures.
fn exact_form(table: &FlowTable) -> Canonicalization {
    let ns = table.num_states();
    let ni = table.num_inputs();
    let no = table.num_outputs();
    let identity_states: Vec<usize> = (0..ns).collect();
    let col_map: Vec<usize> = (0..table.num_columns()).collect();
    let out_perm: Vec<usize> = (0..no).collect();
    let mut signature = vec![1u8];
    serialize_into(table, &identity_states, &col_map, &out_perm, &mut signature);
    Canonicalization {
        signature,
        exact: true,
        state_map: identity_states,
        input_map: (0..ni).collect(),
        output_map: out_perm,
    }
}

/// The lexicographically smallest signature of `table` for a fixed input/
/// output labeling, over all state orders generated by refinement and
/// individualization, plus the state order that produced it (canonical row →
/// original state). `None` when the refinement budget runs out.
fn best_signature(
    table: &FlowTable,
    col_map: &[usize],
    output_perm: &[usize],
    budget: &mut usize,
) -> Option<(Vec<u8>, Vec<usize>)> {
    let colors = initial_colors(table, col_map, output_perm);
    let mut best: Option<(Vec<u8>, Vec<usize>)> = None;
    search(table, col_map, output_perm, colors, budget, &mut best)?;
    best
}

/// Refine `colors`, then either serialize (discrete partition) or branch on
/// the first tied class. Returns `None` exactly when the budget ran out (a
/// signal distinct from "no better signature found").
fn search(
    table: &FlowTable,
    col_map: &[usize],
    output_perm: &[usize],
    mut colors: Vec<u64>,
    budget: &mut usize,
    best: &mut Option<(Vec<u8>, Vec<usize>)>,
) -> Option<()> {
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    refine(table, col_map, &mut colors);

    // Order states by color; ties (equal colors) form the classes.
    let n = colors.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&s| (colors[s], s));

    // First class with more than one member, in color order.
    let tied = order.windows(2).position(|w| colors[w[0]] == colors[w[1]]);
    match tied {
        None => {
            let mut sig = vec![0u8];
            serialize_into(table, &order, col_map, output_perm, &mut sig);
            if best.as_ref().map_or(true, |(b, _)| sig < *b) {
                *best = Some((sig, order));
            }
        }
        Some(i) => {
            let class_color = colors[order[i]];
            let members: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&s| colors[s] == class_color)
                .collect();
            for m in members {
                let mut branched = colors.clone();
                // Individualize `m` with a color no refinement hash produces
                // deterministically relative to the class (mixing a constant
                // keeps the branch set isomorphism-invariant).
                branched[m] = mix(branched[m], 0x9e37_79b9_7f4a_7c15);
                search(table, col_map, output_perm, branched, budget, best)?;
            }
        }
    }
    Some(())
}

/// Initial state colors: a hash of each row's per-column local behaviour
/// (next specified, stability, output presence and permuted output value),
/// independent of state identity.
fn initial_colors(table: &FlowTable, col_map: &[usize], output_perm: &[usize]) -> Vec<u64> {
    table
        .states()
        .map(|s| {
            let mut h = 0x243f_6a88_85a3_08d3u64;
            for &c in col_map {
                let entry = table.entry(s, c);
                h = mix(h, u64::from(entry.next.is_some()));
                h = mix(h, u64::from(entry.next == Some(s)));
                match &entry.output {
                    None => h = mix(h, u64::MAX),
                    Some(o) => h = mix(h, permuted_output_value(o, output_perm)),
                }
            }
            h
        })
        .collect()
}

/// Iterate color refinement to a fixpoint: a state's new color hashes its old
/// color and the old colors of its successors in canonical column order.
fn refine(table: &FlowTable, col_map: &[usize], colors: &mut Vec<u64>) {
    let n = colors.len();
    let mut next = vec![0u64; n];
    loop {
        let before = distinct_count(colors);
        if before == n {
            return;
        }
        for s in table.states() {
            let mut h = colors[s.index()];
            for &c in col_map {
                match table.next_state(s, c) {
                    None => h = mix(h, u64::MAX - 1),
                    Some(t) => h = mix(h, colors[t.index()]),
                }
            }
            next[s.index()] = h;
        }
        std::mem::swap(colors, &mut next);
        if distinct_count(colors) == before {
            return;
        }
    }
}

fn distinct_count(colors: &[u64]) -> usize {
    let mut sorted: Vec<u64> = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Serialize the table under a complete labeling: states in `order`
/// (canonical row → original state), columns in `col_map` order, outputs
/// permuted by `output_perm`.
fn serialize_into(
    table: &FlowTable,
    order: &[usize],
    col_map: &[usize],
    output_perm: &[usize],
    out: &mut Vec<u8>,
) {
    let mut pos = vec![0usize; order.len()];
    for (row, &orig) in order.iter().enumerate() {
        pos[orig] = row;
    }
    push_u32(out, table.num_inputs() as u32);
    push_u32(out, table.num_outputs() as u32);
    push_u32(out, table.num_states() as u32);
    for &orig in order {
        let s = crate::StateId(orig);
        for &c in col_map {
            let entry = table.entry(s, c);
            match entry.next {
                None => push_u32(out, 0),
                Some(t) => push_u32(out, pos[t.index()] as u32 + 1),
            }
            match &entry.output {
                None => out.push(0),
                Some(o) => {
                    out.push(1);
                    push_u64(out, permuted_output_value(o, output_perm));
                }
            }
        }
    }
}

/// The unsigned value of an output vector after moving bit `b` to position
/// `output_perm[b]`.
fn permuted_output_value(bits: &Bits, output_perm: &[usize]) -> u64 {
    let w = bits.width();
    let mut v = 0u64;
    for (b, &target) in output_perm.iter().enumerate() {
        if bits.bit(b) {
            v |= 1u64 << (w - 1 - target);
        }
    }
    v
}

/// Canonical column → original column for an input-bit permutation: the
/// canonical column's bit at position `input_perm[i]` is the original
/// column's bit `i`.
fn column_map(num_inputs: usize, input_perm: &[usize]) -> Vec<usize> {
    let columns = 1usize << num_inputs;
    (0..columns)
        .map(|cc| {
            let bits = Bits::from_index(num_inputs, cc);
            let mut orig = Bits::zeros(num_inputs);
            for (i, &source) in input_perm.iter().enumerate() {
                orig.set_bit(i, bits.bit(source));
            }
            orig.index()
        })
        .collect()
}

/// All permutations of `0..n` (lexicographic order); `n = 0` yields the empty
/// permutation.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    fn rec(n: usize, cur: &mut Vec<usize>, used: &mut [bool], out: &mut Vec<Vec<usize>>) {
        if cur.len() == n {
            out.push(cur.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                rec(n, cur, used, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    rec(n, &mut cur, &mut used, &mut out);
    out
}

fn factorial(n: usize) -> usize {
    (2..=n).fold(1usize, |acc, k| acc.saturating_mul(k))
}

fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn canonical_table_is_invariant_under_relabeling() {
        let t = benchmarks::lion();
        let opts = CanonicalOptions::default();
        let c = canonicalize(&t, &opts);
        assert!(!c.exact);

        // A hand-picked relabeling of lion (2 inputs, 1 output, 4 states).
        let relabeled = relabel(&t, &[2, 0, 3, 1], &[1, 0], &[0], "lion-r");
        let c2 = canonicalize(&relabeled, &opts);
        assert_eq!(c.signature, c2.signature);
        assert_eq!(canonical_table(&t, &c), canonical_table(&relabeled, &c2));
    }

    #[test]
    fn relabel_round_trips_through_inverse() {
        let t = benchmarks::traffic();
        let sm = [1, 0, 3, 2];
        let im = [1, 0];
        let om: Vec<usize> = (0..t.num_outputs()).collect();
        let r = relabel(&t, &sm, &im, &om, t.name());
        let back = relabel(
            &r,
            &inverse_permutation(&sm),
            &inverse_permutation(&im),
            &inverse_permutation(&om),
            t.name(),
        );
        assert_eq!(t, back);
    }

    #[test]
    fn distinct_corpus_machines_have_distinct_signatures() {
        let opts = CanonicalOptions::default();
        let sigs: Vec<Vec<u8>> = benchmarks::all()
            .iter()
            .map(|t| canonicalize(t, &opts).signature)
            .collect();
        for i in 0..sigs.len() {
            for j in i + 1..sigs.len() {
                assert_ne!(sigs[i], sigs[j], "machines {i} and {j}");
            }
        }
    }

    #[test]
    fn budget_exhaustion_falls_back_to_exact_form() {
        let t = benchmarks::lion();
        let c = canonicalize(
            &t,
            &CanonicalOptions {
                max_labelings: 0,
                max_refinements: 0,
            },
        );
        assert!(c.exact);
        assert_eq!(c.signature[0], 1);
        assert_eq!(c.state_map, (0..t.num_states()).collect::<Vec<_>>());
    }
}
