//! KISS2 reading and writing.
//!
//! The MCNC finite-state-machine benchmarks (Lisanke 1987) are distributed in
//! the KISS2 text format. Each transition line reads
//!
//! ```text
//! <input> <current-state> <next-state> <output>
//! ```
//!
//! where `<input>` and `<output>` are bit strings that may contain `-`
//! (don't-care) positions. SEANCE interprets a KISS2 description as a Huffman
//! flow table: an entry whose next state equals its current state is a stable
//! entry.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{Bits, Entry, FlowError, FlowTable, StateId};

/// Parse KISS2 text into a [`FlowTable`].
///
/// Unrecognized dot-directives are ignored. Input fields containing `-` are
/// expanded to every matching column. Output fields containing `-` leave the
/// entry's output unspecified; a next-state field of `-` leaves the next state
/// unspecified.
///
/// # Errors
///
/// Returns [`FlowError::KissParse`] for malformed lines and propagates
/// flow-table construction errors.
///
/// # Example
///
/// ```
/// use fantom_flow::kiss;
///
/// # fn main() -> Result<(), fantom_flow::FlowError> {
/// let text = "\
/// .i 1
/// .o 1
/// .s 2
/// .p 4
/// 0 off off 0
/// 1 off on  1
/// 1 on  on  1
/// 0 on  off 0
/// .e
/// ";
/// let table = kiss::parse(text, "toggle")?;
/// assert_eq!(table.num_states(), 2);
/// assert_eq!(table.num_inputs(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str, name: &str) -> Result<FlowTable, FlowError> {
    let mut num_inputs: Option<usize> = None;
    let mut num_outputs: Option<usize> = None;
    let mut transitions: Vec<(usize, String, String, String, String)> = Vec::new();
    let mut state_order: Vec<String> = Vec::new();
    let mut reset: Option<String> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let directive = parts.next().unwrap_or("");
            let value = parts.next();
            match directive {
                "i" => num_inputs = parse_count(value, lineno)?,
                "o" => num_outputs = parse_count(value, lineno)?,
                "s" | "p" => { /* informational; recomputed from the body */ }
                "r" => reset = value.map(|v| v.to_string()),
                "e" | "end" => break,
                _ => { /* ignore unknown directives (e.g. .ilb, .ob) */ }
            }
            continue;
        }

        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(FlowError::KissParse {
                line: lineno,
                message: format!("expected 4 fields, found {}", fields.len()),
            });
        }
        let (input, current, next, output) = (fields[0], fields[1], fields[2], fields[3]);
        for st in [current, next] {
            if st != "-" && !state_order.contains(&st.to_string()) {
                state_order.push(st.to_string());
            }
        }
        transitions.push((
            lineno,
            input.to_string(),
            current.to_string(),
            next.to_string(),
            output.to_string(),
        ));
    }

    let num_inputs = num_inputs.ok_or(FlowError::KissParse {
        line: 0,
        message: "missing .i directive".to_string(),
    })?;
    let num_outputs = num_outputs.ok_or(FlowError::KissParse {
        line: 0,
        message: "missing .o directive".to_string(),
    })?;

    // Put the reset state first if one was declared.
    if let Some(reset) = reset {
        if let Some(pos) = state_order.iter().position(|s| *s == reset) {
            state_order.swap(0, pos);
        }
    }

    let mut table = FlowTable::new(name, num_inputs, num_outputs, state_order.clone())?;
    let index: BTreeMap<String, StateId> = state_order
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), StateId(i)))
        .collect();

    for (lineno, input, current, next, output) in transitions {
        if input.len() != num_inputs {
            return Err(FlowError::KissParse {
                line: lineno,
                message: format!("input field {input:?} does not match .i {num_inputs}"),
            });
        }
        if output.len() != num_outputs {
            return Err(FlowError::KissParse {
                line: lineno,
                message: format!("output field {output:?} does not match .o {num_outputs}"),
            });
        }
        if current == "-" {
            return Err(FlowError::KissParse {
                line: lineno,
                message: "current-state field may not be '-'".to_string(),
            });
        }
        let s = index[&current];
        let next_id = if next == "-" {
            None
        } else {
            Some(index[&next])
        };
        let out = if output.contains('-') {
            None
        } else {
            Some(Bits::parse(&output)?)
        };
        for column in expand_input(&input, lineno)? {
            table.set_entry(s, column, next_id, out.clone())?;
        }
    }
    Ok(table)
}

fn parse_count(value: Option<&str>, line: usize) -> Result<Option<usize>, FlowError> {
    match value {
        Some(v) => v
            .parse::<usize>()
            .map(Some)
            .map_err(|_| FlowError::KissParse {
                line,
                message: format!("invalid count {v:?}"),
            }),
        None => Err(FlowError::KissParse {
            line,
            message: "missing directive value".to_string(),
        }),
    }
}

fn expand_input(input: &str, line: usize) -> Result<Vec<usize>, FlowError> {
    let mut columns = vec![0usize];
    for c in input.chars() {
        let next: Vec<usize> = match c {
            '0' => columns.iter().map(|v| v << 1).collect(),
            '1' => columns.iter().map(|v| (v << 1) | 1).collect(),
            '-' => columns
                .iter()
                .flat_map(|v| [v << 1, (v << 1) | 1])
                .collect(),
            other => {
                return Err(FlowError::KissParse {
                    line,
                    message: format!("invalid input character {other:?}"),
                })
            }
        };
        columns = next;
    }
    Ok(columns)
}

/// Serialize a [`FlowTable`] to KISS2 text, one line per specified entry.
pub fn write(table: &FlowTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", table.name());
    let _ = writeln!(out, ".i {}", table.num_inputs());
    let _ = writeln!(out, ".o {}", table.num_outputs());
    let _ = writeln!(out, ".s {}", table.num_states());
    let _ = writeln!(out, ".p {}", table.specified_entries());
    if table.num_states() > 0 {
        let _ = writeln!(out, ".r {}", table.state_name(StateId(0)));
    }
    for s in table.states() {
        for c in 0..table.num_columns() {
            let entry: &Entry = table.entry(s, c);
            if entry.is_unspecified() {
                continue;
            }
            let input = Bits::from_index(table.num_inputs(), c);
            let next = entry
                .next
                .map(|t| table.state_name(t).to_string())
                .unwrap_or_else(|| "-".to_string());
            let output = entry
                .output
                .as_ref()
                .map(Bits::to_string)
                .unwrap_or_else(|| "-".repeat(table.num_outputs()));
            let _ = writeln!(out, "{} {} {} {}", input, table.state_name(s), next, output);
        }
    }
    let _ = writeln!(out, ".e");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowTableBuilder;

    #[test]
    fn parse_simple_machine() {
        let text = "\
.i 2
.o 1
.s 2
.p 4
00 A A 0
11 A B 1
11 B B 1
00 B A 0
.e
";
        let t = parse(text, "simple").unwrap();
        assert_eq!(t.num_states(), 2);
        assert_eq!(t.num_inputs(), 2);
        let a = t.state_by_name("A").unwrap();
        let b = t.state_by_name("B").unwrap();
        assert!(t.is_stable(a, 0));
        assert_eq!(t.next_state(a, 3), Some(b));
    }

    #[test]
    fn dash_input_expands_to_all_columns() {
        let text = "\
.i 2
.o 1
-0 A A 0
01 A A 1
11 A A 1
";
        let t = parse(text, "dash").unwrap();
        let a = t.state_by_name("A").unwrap();
        assert!(t.is_stable(a, 0)); // 00
        assert!(t.is_stable(a, 2)); // 10
        assert!(t.is_stable(a, 1));
        assert!(t.is_stable(a, 3));
    }

    #[test]
    fn dash_output_and_next_are_unspecified() {
        let text = "\
.i 1
.o 2
0 A A 1-
1 A - 01
";
        let t = parse(text, "x").unwrap();
        let a = t.state_by_name("A").unwrap();
        assert_eq!(t.output(a, 0), None);
        assert_eq!(t.next_state(a, 1), None);
        assert_eq!(t.output(a, 1), Some(&Bits::parse("01").unwrap()));
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let text = ".i 1\n.o 1\n0 A A\n";
        match parse(text, "bad") {
            Err(FlowError::KissParse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse(".o 1\n0 A A 0\n", "noi").is_err());
    }

    #[test]
    fn reset_state_is_moved_first() {
        let text = "\
.i 1
.o 1
.r B
0 A A 0
1 A B 1
1 B B 1
0 B A 0
";
        let t = parse(text, "reset").unwrap();
        assert_eq!(t.state_name(StateId(0)), "B");
    }

    #[test]
    fn write_parse_round_trip_preserves_structure() {
        let mut b = FlowTableBuilder::new("rt", 2, 1);
        b.states(["P", "Q"]);
        b.stable("P", "00", "0").unwrap();
        b.stable("Q", "11", "1").unwrap();
        b.transition("P", "11", "Q").unwrap();
        b.transition("Q", "00", "P").unwrap();
        let t = b.build().unwrap();

        let text = write(&t);
        let back = parse(&text, "rt").unwrap();
        assert_eq!(back.num_states(), t.num_states());
        assert_eq!(back.num_inputs(), t.num_inputs());
        for s in t.states() {
            let name = t.state_name(s);
            let s2 = back.state_by_name(name).unwrap();
            for c in 0..t.num_columns() {
                let next_name = t.next_state(s, c).map(|x| t.state_name(x).to_string());
                let next_name2 = back
                    .next_state(s2, c)
                    .map(|x| back.state_name(x).to_string());
                assert_eq!(next_name, next_name2, "state {name} column {c}");
                assert_eq!(t.output(s, c), back.output(s2, c));
            }
        }
    }
}
