//! Property-based tests for the flow-table substrate: bit-vector laws, the
//! KISS2 round trip, and structural invariants of builder-generated tables.

use fantom_flow::{kiss, validate, Bits, FlowTable, StateId};
use proptest::prelude::*;

fn arb_bits(width: usize) -> impl Strategy<Value = Bits> {
    proptest::collection::vec(any::<bool>(), width).prop_map(Bits::from_bools)
}

/// A random (not necessarily normal-mode) flow table, for exercising the
/// KISS2 round trip and the validators.
fn arb_table() -> impl Strategy<Value = FlowTable> {
    (2usize..6, 1usize..3, 1usize..3)
        .prop_flat_map(|(states, inputs, outputs)| {
            let columns = 1usize << inputs;
            (
                Just((states, inputs, outputs)),
                proptest::collection::vec(
                    proptest::option::of((
                        0..states,
                        proptest::collection::vec(any::<bool>(), outputs),
                    )),
                    states * columns,
                ),
            )
        })
        .prop_map(|((states, inputs, outputs), entries)| {
            let names: Vec<String> = (0..states).map(|i| format!("q{i}")).collect();
            let mut table = FlowTable::new("random", inputs, outputs, names).expect("non-empty");
            let columns = 1usize << inputs;
            for s in 0..states {
                for c in 0..columns {
                    if let Some((next, out)) = &entries[s * columns + c] {
                        table
                            .set_entry(
                                StateId(s),
                                c,
                                Some(StateId(*next)),
                                Some(Bits::from_bools(out.clone())),
                            )
                            .expect("valid coordinates");
                    }
                }
            }
            table
        })
}

proptest! {
    /// Index → bits → index round-trips for any width up to 12.
    #[test]
    fn bits_index_round_trip(width in 1usize..12, index in 0usize..4096) {
        let index = index % (1 << width);
        let bits = Bits::from_index(width, index);
        prop_assert_eq!(bits.index(), index);
        prop_assert_eq!(bits.width(), width);
    }

    /// Hamming distance is symmetric and equals the number of differing positions.
    #[test]
    fn hamming_distance_laws(a in arb_bits(6), b in arb_bits(6)) {
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        prop_assert_eq!(a.hamming_distance(&b), a.differing_positions(&b).len());
        prop_assert_eq!(a.hamming_distance(&a), 0);
    }

    /// The transition cube contains exactly 2^distance vectors, includes both
    /// end points, and every member agrees with the end points on the
    /// invariant positions.
    #[test]
    fn transition_cube_structure(a in arb_bits(5), b in arb_bits(5)) {
        let cube = Bits::transition_cube(&a, &b);
        prop_assert_eq!(cube.len(), 1 << a.hamming_distance(&b));
        prop_assert!(cube.contains(&a));
        prop_assert!(cube.contains(&b));
        for v in &cube {
            for i in 0..a.width() {
                if a.bit(i) == b.bit(i) {
                    prop_assert_eq!(v.bit(i), a.bit(i));
                }
            }
        }
    }

    /// Writing a table to KISS2 and parsing it back preserves every specified
    /// entry (next states by name, outputs bit-for-bit).
    #[test]
    fn kiss_round_trip_preserves_entries(table in arb_table()) {
        // A table with no specified entries serialises to a body-less KISS2
        // file, which has no states to parse back.
        prop_assume!(table.specified_entries() > 0);
        let text = kiss::write(&table);
        let back = kiss::parse(&text, table.name()).expect("generated KISS2 parses");
        prop_assert_eq!(back.num_inputs(), table.num_inputs());
        prop_assert_eq!(back.num_outputs(), table.num_outputs());
        for s in table.states() {
            // States with no specified entries may be dropped by the writer;
            // they carry no behaviour.
            let Some(s2) = back.state_by_name(table.state_name(s)) else {
                let empty = (0..table.num_columns()).all(|c| table.entry(s, c).is_unspecified());
                prop_assert!(empty, "non-empty state lost in round trip");
                continue;
            };
            for c in 0..table.num_columns() {
                let next_a = table.next_state(s, c).map(|t| table.state_name(t).to_string());
                let next_b = back.next_state(s2, c).map(|t| back.state_name(t).to_string());
                prop_assert_eq!(next_a, next_b);
                prop_assert_eq!(table.output(s, c), back.output(s2, c));
            }
        }
    }

    /// The validators never panic and their reports are internally consistent.
    #[test]
    fn validation_report_is_consistent(table in arb_table()) {
        let report = validate::validate(&table);
        prop_assert_eq!(
            report.normal_mode_violations.is_empty(),
            validate::is_normal_mode(&table)
        );
        prop_assert_eq!(report.strongly_connected, validate::is_strongly_connected(&table));
        if report.is_acceptable() {
            prop_assert!(report.normal_mode_violations.is_empty());
            prop_assert!(report.strongly_connected);
            prop_assert!(report.states_without_stable_column.is_empty());
        }
    }

    /// Restricting a table to a subset of its states keeps all surviving
    /// entries intact.
    #[test]
    fn restriction_preserves_surviving_entries(table in arb_table(), keep_mask in any::<u8>()) {
        let keep: Vec<StateId> = table
            .states()
            .filter(|s| (keep_mask >> (s.index() % 8)) & 1 == 1)
            .collect();
        prop_assume!(!keep.is_empty());
        let restricted = table.restrict_to_states(&keep);
        prop_assert_eq!(restricted.num_states(), keep.len());
        for (new_idx, &old) in keep.iter().enumerate() {
            for c in 0..table.num_columns() {
                if let Some(next) = table.next_state(old, c) {
                    if let Some(pos) = keep.iter().position(|&k| k == next) {
                        prop_assert_eq!(restricted.next_state(StateId(new_idx), c), Some(StateId(pos)));
                    } else {
                        prop_assert_eq!(restricted.next_state(StateId(new_idx), c), None);
                    }
                }
                prop_assert_eq!(table.output(old, c), restricted.output(StateId(new_idx), c));
            }
        }
    }
}
