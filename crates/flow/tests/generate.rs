//! Property tests for the seeded flow-table generator: determinism (same
//! options ⇒ byte-identical KISS2 text, pinned against a golden string so
//! drift across platforms or refactors is caught, not just same-process
//! purity), validity at every knob-grid point, and the structural shape
//! promises the knobs make (MIC presence, dc-density monotonicity, grid
//! naming).

use fantom_flow::generate::{generate, generate_grid, GeneratorOptions};
use fantom_flow::{kiss, validate};
use proptest::prelude::*;

fn arb_options() -> impl Strategy<Value = GeneratorOptions> {
    (
        (0u64..1 << 48, 2usize..16, 2usize..5),
        (1usize..4, 0usize..=100, 1usize..5),
        (1usize..7, 0usize..3, 0usize..3),
    )
        .prop_map(
            |((seed, states, inputs), (outputs, dc, fan_in), (chain_depth, mic, redundant))| {
                GeneratorOptions {
                    seed,
                    states,
                    inputs,
                    outputs,
                    dc_density: dc as f64 / 100.0,
                    fan_in,
                    chain_depth,
                    mic_stable_columns: mic,
                    redundant_clusters: redundant,
                }
            },
        )
}

proptest! {
    /// Every sampled grid point generates a valid synthesis input: normal
    /// mode, strongly connected, a stable column per state, the requested
    /// dimensions.
    #[test]
    fn every_grid_point_is_acceptable(options in arb_options()) {
        let table = generate(&options);
        let report = validate::validate(&table);
        prop_assert!(report.is_acceptable(), "{options:?}: {report:?}");
        let n = options.normalized();
        prop_assert_eq!(table.num_states(), n.states);
        prop_assert_eq!(table.num_inputs(), n.inputs);
        prop_assert_eq!(table.num_outputs(), n.outputs);
    }

    /// Same options ⇒ byte-identical KISS2 text; and the text survives a
    /// parse → write round trip unchanged.
    #[test]
    fn same_options_give_byte_identical_kiss(options in arb_options()) {
        let table = generate(&options);
        let a = kiss::write(&table);
        let b = kiss::write(&generate(&options));
        prop_assert_eq!(&a, &b);
        // The text parses back to a table of the same shape and content
        // (parse may renumber states by first textual appearance, so compare
        // structurally, not textually).
        let reparsed = kiss::parse(&a, table.name()).expect("generator KISS parses");
        prop_assert_eq!(reparsed.num_states(), table.num_states());
        prop_assert_eq!(reparsed.num_inputs(), table.num_inputs());
        prop_assert_eq!(reparsed.num_outputs(), table.num_outputs());
        prop_assert_eq!(reparsed.specified_entries(), table.specified_entries());
    }

    /// The seed matters: two distant seeds at the same shape give different
    /// tables (collisions are possible in principle, so compare a pair of
    /// fixed distant seeds rather than arbitrary ones).
    #[test]
    fn distinct_seeds_decorrelate(states in 6usize..14) {
        let a = GeneratorOptions { seed: 1, states, ..GeneratorOptions::default() };
        let b = GeneratorOptions { seed: 0xDEAD_BEEF, states, ..GeneratorOptions::default() };
        prop_assert_ne!(kiss::write(&generate(&a)), kiss::write(&generate(&b)));
    }

    /// `dc_density` steers the specified-entry count: a fully dense request
    /// never specifies fewer cells than a fully sparse one of the same shape.
    #[test]
    fn dc_density_is_monotone_at_the_extremes(seed in 0u64..1 << 32, states in 4usize..12) {
        let dense = generate(&GeneratorOptions {
            seed, states, dc_density: 0.0, ..GeneratorOptions::default()
        });
        let sparse = generate(&GeneratorOptions {
            seed, states, dc_density: 1.0, ..GeneratorOptions::default()
        });
        prop_assert!(dense.specified_entries() >= sparse.specified_entries());
    }

    /// A chain depth of 1 makes every home-walk step a multi-bit jump, so the
    /// table always contains multiple-input-change transitions.
    #[test]
    fn chain_depth_one_forces_mic_transitions(seed in 0u64..1 << 32, states in 3usize..12) {
        let table = generate(&GeneratorOptions {
            seed, states, chain_depth: 1, ..GeneratorOptions::default()
        });
        prop_assert!(!table.multiple_input_change_transitions().is_empty());
    }
}

/// The golden pin: the exact KISS2 text of one small generated machine.
/// Guards cross-platform / cross-version byte-identity — any change to the
/// generator's draw order or the vendored SplitMix stream shows up here as a
/// diff, which is a deliberate compatibility break of the corpus contract
/// (regenerate `tests/fuzz_regressions/` and `benchmarks/` when accepting
/// one).
#[test]
fn golden_default_shape_is_pinned() {
    let table = generate(&GeneratorOptions {
        states: 4,
        ..GeneratorOptions::default()
    });
    let expected = "\
# gen_s4_i2_o1_d40_f2_c3_m1_r0_x5eedf10c
.i 2
.o 1
.s 4
.p 11
.r S0
00 S0 S1 1
10 S0 S0 1
00 S1 S1 1
01 S1 S3 1
10 S1 S2 1
00 S2 S1 0
01 S2 S3 0
10 S2 S2 0
00 S3 S3 1
01 S3 S3 1
10 S3 S0 1
.e
";
    assert_eq!(kiss::write(&table), expected);
}

/// The grid helper instantiates exactly the lattice, each point with its own
/// stream and a unique, shape-encoding name.
#[test]
fn grid_lattice_is_complete_and_valid() {
    let tables = generate_grid(&GeneratorOptions::default(), &[4, 8, 12], &[0.2, 0.5, 0.8]);
    assert_eq!(tables.len(), 9);
    let mut names: Vec<&str> = tables.iter().map(|t| t.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 9);
    for table in &tables {
        assert!(
            validate::validate(table).is_acceptable(),
            "{}",
            table.name()
        );
    }
}
