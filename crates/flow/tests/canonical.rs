//! Property-based tests for the canonical-form layer: the signature is
//! invariant under state/input-bit/output-bit relabeling, relabeling
//! round-trips through its inverse maps, and non-isomorphic corpus machines
//! get distinct signatures.

use fantom_flow::canonical::{
    canonical_table, canonicalize, inverse_permutation, relabel, CanonicalOptions,
};
use fantom_flow::{benchmarks, Bits, FlowTable, StateId};
use proptest::prelude::*;

/// A random flow table (same construction as `tests/properties.rs`):
/// entries, next states and outputs are arbitrary, including fully
/// unspecified rows — canonicalization must not require validity.
fn arb_table() -> impl Strategy<Value = FlowTable> {
    (2usize..6, 1usize..3, 1usize..3)
        .prop_flat_map(|(states, inputs, outputs)| {
            let columns = 1usize << inputs;
            (
                Just((states, inputs, outputs)),
                proptest::collection::vec(
                    proptest::option::of((
                        0..states,
                        proptest::collection::vec(any::<bool>(), outputs),
                    )),
                    states * columns,
                ),
            )
        })
        .prop_map(|((states, inputs, outputs), entries)| {
            let names: Vec<String> = (0..states).map(|i| format!("q{i}")).collect();
            let mut table = FlowTable::new("random", inputs, outputs, names).expect("non-empty");
            let columns = 1usize << inputs;
            for s in 0..states {
                for c in 0..columns {
                    if let Some((next, out)) = &entries[s * columns + c] {
                        table
                            .set_entry(
                                StateId(s),
                                c,
                                Some(StateId(*next)),
                                Some(Bits::from_bools(out.clone())),
                            )
                            .expect("valid coordinates");
                    }
                }
            }
            table
        })
}

/// Derive a permutation of `0..n` from random sort keys: indices sorted by
/// key, ties broken by index, which is a uniform-ish shuffle and — unlike
/// `prop_shuffle` — keeps the strategy independent of `n`.
fn permutation_from_keys(keys: &[u64], n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    perm.sort_by_key(|&i| (keys[i % keys.len()].wrapping_add(i as u64), i));
    perm
}

fn arb_keys() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 8)
}

proptest! {
    /// Isomorphic tables canonicalize to the same signature, the same
    /// exactness, and byte-equal canonical tables.
    #[test]
    fn signature_is_relabeling_invariant(
        table in arb_table(),
        sk in arb_keys(),
        ik in arb_keys(),
        ok in arb_keys(),
    ) {
        let sm = permutation_from_keys(&sk, table.num_states());
        let im = permutation_from_keys(&ik, table.num_inputs());
        let om = permutation_from_keys(&ok, table.num_outputs());
        let relabeled = relabel(&table, &sm, &im, &om, "relabeled");

        let opts = CanonicalOptions::default();
        let a = canonicalize(&table, &opts);
        let b = canonicalize(&relabeled, &opts);
        prop_assert_eq!(a.exact, b.exact);
        if !a.exact {
            prop_assert_eq!(&a.signature, &b.signature);
            prop_assert_eq!(canonical_table(&table, &a), canonical_table(&relabeled, &b));
        }
    }

    /// Relabeling by a permutation triple and then by the inverse triple is
    /// the identity.
    #[test]
    fn relabel_round_trips_through_inverses(
        table in arb_table(),
        sk in arb_keys(),
        ik in arb_keys(),
        ok in arb_keys(),
    ) {
        let sm = permutation_from_keys(&sk, table.num_states());
        let im = permutation_from_keys(&ik, table.num_inputs());
        let om = permutation_from_keys(&ok, table.num_outputs());
        let there = relabel(&table, &sm, &im, &om, table.name());
        let back = relabel(
            &there,
            &inverse_permutation(&sm),
            &inverse_permutation(&im),
            &inverse_permutation(&om),
            table.name(),
        );
        prop_assert_eq!(back, table);
    }

    /// Canonicalization is a pure function of the table.
    #[test]
    fn canonicalization_is_deterministic(table in arb_table()) {
        let opts = CanonicalOptions::default();
        let a = canonicalize(&table, &opts);
        let b = canonicalize(&table, &opts);
        prop_assert_eq!(a.signature, b.signature);
        prop_assert_eq!(a.exact, b.exact);
        prop_assert_eq!(a.state_map, b.state_map);
        prop_assert_eq!(a.input_map, b.input_map);
        prop_assert_eq!(a.output_map, b.output_map);
    }
}

/// Every pair of distinct corpus machines — small suite and the large
/// synthetic suite — hashes to a distinct signature, and every relabeling of
/// a corpus machine still separates from every *other* machine.
#[test]
fn corpus_machines_have_pairwise_distinct_signatures() {
    let mut tables = benchmarks::all();
    tables.extend(benchmarks::large_suite());
    let opts = CanonicalOptions::default();
    let sigs: Vec<_> = tables.iter().map(|t| canonicalize(t, &opts)).collect();
    for i in 0..tables.len() {
        for j in (i + 1)..tables.len() {
            assert_ne!(
                sigs[i].signature,
                sigs[j].signature,
                "{} vs {}",
                tables[i].name(),
                tables[j].name()
            );
        }
    }
}

/// A relabeled corpus machine matches its original and no other machine.
#[test]
fn relabeled_corpus_machine_matches_only_its_original() {
    let tables = benchmarks::all();
    let opts = CanonicalOptions::default();
    let sigs: Vec<_> = tables.iter().map(|t| canonicalize(t, &opts)).collect();
    for (i, t) in tables.iter().enumerate() {
        let sm: Vec<usize> = (0..t.num_states()).rev().collect();
        let im: Vec<usize> = (0..t.num_inputs()).rev().collect();
        let om: Vec<usize> = (0..t.num_outputs()).rev().collect();
        let r = relabel(t, &sm, &im, &om, "shuffled");
        let rs = canonicalize(&r, &opts);
        for (j, s) in sigs.iter().enumerate() {
            if i == j {
                assert_eq!(
                    rs.signature,
                    s.signature,
                    "{} lost under relabeling",
                    t.name()
                );
            } else {
                assert_ne!(
                    rs.signature,
                    s.signature,
                    "{} collides with {}",
                    t.name(),
                    tables[j].name()
                );
            }
        }
    }
}
