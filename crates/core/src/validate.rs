//! Validation of synthesized FANTOM machines.
//!
//! Two complementary kinds of checks are provided:
//!
//! * **static checks** ([`verify_hold_property`], [`verify_fsv_marks_hazards`],
//!   [`verify_equations_implement_table`]) — exhaustive evaluations of the
//!   factored equations that establish the paper's structural claims
//!   (hazardous minterms are held while `fsv = 0`, `fsv` marks exactly the
//!   hazard states, the machine still implements the flow table);
//! * **delay-accurate simulation** ([`simulate_transition`],
//!   [`validate_machine`]) — the emitted netlist is driven through every
//!   multiple-input-change stable transition with skewed input edges and
//!   randomized gate delays, and the final state, final outputs and the
//!   glitch behaviour of the invariant state variables are checked.

use fantom_flow::StableTransition;
use fantom_sim::{analysis, DelayModel, DelayStyle, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::emit::{emit, FantomNetlist, DEFAULT_LOOP_STAGES};
use crate::SynthesisResult;

/// Result of simulating a single stable-state transition.
#[derive(Debug, Clone)]
pub struct TransitionCheck {
    /// The transition that was exercised.
    pub transition: StableTransition,
    /// Whether the circuit reached quiescence within the event budget.
    pub settled: bool,
    /// Whether the final state code equals the destination state's code.
    pub final_state_correct: bool,
    /// Whether the final (combinational) outputs match the destination
    /// state's specified output bits.
    pub outputs_correct: bool,
    /// Number of spurious transitions observed on state variables that should
    /// have remained invariant across the transition.
    pub invariant_glitches: usize,
    /// Largest number of transitions observed on any changing state variable.
    pub changing_variable_transitions: usize,
    /// Whether the latched outputs (captured by the `SSD ∧ ¬fsv` stage) ended
    /// at the correct value.
    pub latched_outputs_correct: bool,
}

impl TransitionCheck {
    /// `true` if the transition behaved correctly in every respect checked.
    pub fn passed(&self) -> bool {
        self.settled
            && self.final_state_correct
            && self.outputs_correct
            && self.invariant_glitches == 0
    }
}

/// Aggregate of the simulation checks over a whole machine.
#[derive(Debug, Clone)]
pub struct ValidationSummary {
    /// Every individual transition check.
    pub checks: Vec<TransitionCheck>,
}

impl ValidationSummary {
    /// Whether every simulated transition settled.
    pub fn all_settled(&self) -> bool {
        self.checks.iter().all(|c| c.settled)
    }

    /// Whether every simulated transition reached the correct final state.
    pub fn all_final_states_correct(&self) -> bool {
        self.checks.iter().all(|c| c.final_state_correct)
    }

    /// Whether every simulated transition produced the correct final outputs.
    pub fn all_outputs_correct(&self) -> bool {
        self.checks.iter().all(|c| c.outputs_correct)
    }

    /// Total glitches observed on invariant state variables.
    pub fn total_invariant_glitches(&self) -> usize {
        self.checks.iter().map(|c| c.invariant_glitches).sum()
    }

    /// Number of transitions simulated.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// `true` if no transitions were simulated.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }
}

/// Static check: at every hazard-list minterm, the factored next-state
/// expression with `fsv = 0` holds the variable at its present value.
///
/// # Errors
///
/// Returns a description of the first violated minterm.
pub fn verify_hold_property(result: &SynthesisResult) -> Result<(), String> {
    let spec = &result.spec;
    let vars = spec.num_vars();
    for (var, hl) in result.hazards.hl.iter().enumerate() {
        for m in hl.iter() {
            let (_, code) = spec.decompose(m);
            let mut bits: Vec<bool> = (0..vars).map(|i| (m >> (vars - 1 - i)) & 1 == 1).collect();
            bits.push(false); // fsv = 0
            let value = result.factored.y_exprs[var].eval(&bits);
            if value != code.bit(var) {
                return Err(format!(
                    "Y{} does not hold its present value at hazard minterm {m} while fsv = 0",
                    var + 1
                ));
            }
        }
    }
    Ok(())
}

/// Static check: the factored `fsv` expression is 1 on every hazard-list state
/// and 0 on every other occupied total state.
///
/// # Errors
///
/// Returns a description of the first violated minterm.
pub fn verify_fsv_marks_hazards(result: &SynthesisResult) -> Result<(), String> {
    let spec = &result.spec;
    let vars = spec.num_vars();
    for m in 0..(1u64 << vars) {
        if result.equations.fsv_function.is_dc(m) {
            continue;
        }
        let bits: Vec<bool> = (0..vars).map(|i| (m >> (vars - 1 - i)) & 1 == 1).collect();
        let value = result.factored.fsv_expr.eval(&bits);
        let expected = result.hazards.fl.contains(m);
        if value != expected {
            return Err(format!(
                "fsv is {value} at minterm {m}, expected {expected}"
            ));
        }
    }
    Ok(())
}

/// Static check: with `fsv` driven by its own equation, the factored
/// next-state expressions reproduce the specified flow-table behaviour at
/// every specified total state.
///
/// # Errors
///
/// Returns a description of the first violated minterm.
pub fn verify_equations_implement_table(result: &SynthesisResult) -> Result<(), String> {
    let spec = &result.spec;
    let vars = spec.num_vars();
    let base = spec
        .next_state_functions()
        .map_err(|e| format!("could not rebuild next-state functions: {e}"))?;
    for m in 0..(1u64 << vars) {
        let bits: Vec<bool> = (0..vars).map(|i| (m >> (vars - 1 - i)) & 1 == 1).collect();
        let fsv_value = result.factored.fsv_expr.eval(&bits);
        let mut ext = bits.clone();
        ext.push(fsv_value);
        for (var, base_fn) in base.iter().enumerate() {
            if base_fn.is_dc(m) {
                continue;
            }
            let value = result.factored.y_exprs[var].eval(&ext);
            let expected = base_fn.is_on(m);
            // At a hazard minterm for this variable the fsv=0 half holds the
            // present value; with fsv asserted the table value applies.
            let held = result.hazards.is_hazardous_for(var, m) && !fsv_value;
            if !held && value != expected {
                return Err(format!(
                    "Y{} computes {value} at minterm {m} (fsv = {fsv_value}), expected {expected}",
                    var + 1
                ));
            }
        }
    }
    Ok(())
}

/// Simulate one stable-state transition of the emitted machine with skewed
/// input edges and the given delay seed.
pub fn simulate_transition(
    result: &SynthesisResult,
    machine: &FantomNetlist,
    transition: &StableTransition,
    seed: u64,
) -> TransitionCheck {
    let spec = &result.spec;
    // Gate delays are large compared with the input skew: in the FANTOM
    // architecture the internal inputs are launched together by FFX, so the
    // bit-to-bit skew is a (small) clock-to-output mismatch while every gate
    // contributes a full delay. Intermediate input columns are still exposed
    // to the logic through unequal path delays — exactly the M-hazard
    // mechanism fsv protects against.
    let delay = DelayModel::Random {
        min: 4,
        max: 9,
        seed,
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);

    // Loop-delay assumption (Sections 2.2 and 3 of the paper): the feedback
    // path is slower than every combinational settling path, and under the
    // speed-independent abstraction a revoked gate-output change never
    // appears, so the feedback buffers absorb combinational pulses. Each loop
    // buffer therefore gets a delay larger than the worst-case settling time
    // of the combinational logic.
    let loop_delay = (result.depth.total_depth as u64 + 4) * delay.max_delay() * 2;
    let mut builder = Simulator::builder(&machine.netlist)
        .delay_model(delay)
        .style(DelayStyle::Inertial)
        .event_budget(100_000);
    for gates in &machine.loop_gates {
        for &g in gates {
            builder = builder.gate_delay(g, loop_delay);
        }
    }
    let mut sim = builder.build();

    // Establish the initial stable total state with a delay-free fixpoint so
    // the experiment starts from a quiescent circuit.
    let from_code = spec.code(transition.from_state).clone();
    let mut fixed: Vec<(fantom_sim::NetId, bool)> = Vec::new();
    for (i, &net) in machine.x.iter().enumerate() {
        fixed.push((net, transition.from_input.bit(i)));
    }
    for (i, &net) in machine.y.iter().enumerate() {
        fixed.push((net, from_code.bit(i)));
    }
    let settled_init = sim.initialize_consistent(&fixed).is_ok() && sim.run_until_quiet().is_ok();

    // Monitor the nets of interest.
    for &net in machine
        .y
        .iter()
        .chain(&machine.z)
        .chain([&machine.fsv, &machine.ssd])
    {
        sim.monitor(net);
    }
    let t0 = sim.time() + 1;

    // Apply the multiple-input change. In the FANTOM architecture the internal
    // inputs are launched together by FFX, so the bit-to-bit skew is a small
    // clock-to-output mismatch compared with a gate delay; intermediate input
    // columns are still exposed to the logic through unequal path delays —
    // exactly the M-hazard mechanism fsv protects against.
    for (i, &net) in machine.x.iter().enumerate() {
        if transition.from_input.bit(i) != transition.to_input.bit(i) {
            let skew: u64 = rng.gen_range(0..=1);
            sim.schedule_input(net, transition.to_input.bit(i), 1 + skew);
        }
    }
    let settled = settled_init && sim.run_until_quiet().is_ok();

    // Final-state and output checks.
    let to_code = spec.code(transition.to_state).clone();
    let final_state_correct = machine
        .y
        .iter()
        .enumerate()
        .all(|(i, &net)| sim.value(net) == to_code.bit(i));

    let expected_output = spec
        .table()
        .output(transition.to_state, transition.to_input.index())
        .cloned();
    let outputs_correct = match &expected_output {
        Some(out) => machine
            .z
            .iter()
            .enumerate()
            .all(|(i, &net)| sim.value(net) == out.bit(i)),
        None => true,
    };
    let latched_outputs_correct = match &expected_output {
        Some(out) => machine
            .z_latched
            .iter()
            .enumerate()
            .all(|(i, &net)| sim.value(net) == out.bit(i)),
        None => true,
    };

    // Glitch accounting on the state variables.
    let mut invariant_glitches = 0;
    let mut changing_max = 0;
    for (i, &net) in machine.y.iter().enumerate() {
        let wave = sim.waveform(net).expect("monitored");
        let transitions = analysis::transitions_since(wave, t0);
        if from_code.bit(i) == to_code.bit(i) {
            invariant_glitches += transitions;
        } else {
            changing_max = changing_max.max(transitions);
        }
    }

    TransitionCheck {
        transition: transition.clone(),
        settled,
        final_state_correct,
        outputs_correct,
        invariant_glitches,
        changing_variable_transitions: changing_max,
        latched_outputs_correct,
    }
}

/// Simulate every multiple-input-change stable transition of the machine with
/// each of the given delay seeds.
pub fn validate_machine(result: &SynthesisResult, seeds: &[u64]) -> ValidationSummary {
    // A single feedback buffer per state variable; `simulate_transition`
    // raises its delay to enforce the loop-delay assumption.
    let machine = emit(result, DEFAULT_LOOP_STAGES.min(1));
    let mut checks = Vec::new();
    for transition in result.reduced_table.multiple_input_change_transitions() {
        for &seed in seeds {
            checks.push(simulate_transition(result, &machine, &transition, seed));
        }
    }
    ValidationSummary { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SynthesisOptions};
    use fantom_flow::benchmarks;

    #[test]
    fn static_properties_hold_for_every_benchmark() {
        for table in benchmarks::all() {
            let result = synthesize(&table, &SynthesisOptions::default()).unwrap();
            verify_hold_property(&result).unwrap_or_else(|e| panic!("{}: {e}", table.name()));
            verify_fsv_marks_hazards(&result).unwrap_or_else(|e| panic!("{}: {e}", table.name()));
            verify_equations_implement_table(&result)
                .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        }
    }

    #[test]
    fn lion_transitions_settle_to_the_correct_state() {
        let options = SynthesisOptions {
            minimize_states: false,
            ..SynthesisOptions::default()
        };
        let result = synthesize(&benchmarks::lion(), &options).unwrap();
        let summary = validate_machine(&result, &[1, 2]);
        assert!(!summary.is_empty());
        assert!(summary.all_settled());
        assert!(summary.all_final_states_correct());
        assert!(summary.all_outputs_correct());
    }

    #[test]
    fn invariant_state_variables_do_not_glitch_on_lion() {
        let options = SynthesisOptions {
            minimize_states: false,
            ..SynthesisOptions::default()
        };
        let result = synthesize(&benchmarks::lion(), &options).unwrap();
        let summary = validate_machine(&result, &[7]);
        assert_eq!(summary.total_invariant_glitches(), 0);
    }
}
