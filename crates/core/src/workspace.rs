//! Reusable per-worker scratch for repeated synthesis calls.
//!
//! A synthesis service worker runs the sparse pipeline over a stream of
//! machines. The pipeline's hottest inner loops — the consensus-augmentation
//! engines of Step 7 — were given double-buffered accumulators in their own
//! module ([`fantom_boolean::hazard::ConsensusScratch`]) so that no per-pair
//! allocation survives; a [`Workspace`] lifts that reuse across *calls*: one
//! workspace owned by one worker serves every machine the worker processes,
//! so a hot server stops allocating in those loops entirely after the first
//! few machines have warmed the buffers up.
//!
//! Pass a workspace to [`synthesize_sparse_with`](crate::synthesize_sparse_with)
//! (or let [`synthesize_sparse`](crate::synthesize_sparse) allocate a
//! throwaway one per call). Workspaces are plain owned data: not `Sync`, one
//! per worker thread, never shared.

use fantom_assign::AssignScratch;
use fantom_boolean::hazard::ConsensusScratch;

/// Scratch buffers reused across synthesis calls by a single worker.
#[derive(Default)]
pub struct Workspace {
    /// Buffers for the Step 7 consensus-augmentation engines (`fsv` and the
    /// serial per-bit `Yₙ` closures; threaded closures use thread-local
    /// scratch since they run concurrently).
    pub(crate) consensus: ConsensusScratch,
    /// Buffers for the Step 3 assignment engine: the shared dichotomy index,
    /// candidate-growth state, dedup set and selection structures.
    pub(crate) assign: AssignScratch,
}

impl Workspace {
    /// A fresh workspace with empty (unallocated) buffers.
    pub fn new() -> Self {
        Workspace::default()
    }
}
