//! Depth metrics — the quantities reported in Table 1 of the paper.
//!
//! *Depth* is the number of gate levels of a logic equation. The paper
//! measures the complexity of a synthesized FANTOM machine by the depth of the
//! `fsv` equation, the depth of the deepest next-state (`Y`) equation, and the
//! *total depth*: the number of logic levels traversed, in the worst
//! (hazard-detected) case, before the network reaches stability and `VOM` can
//! assert — one pass through the next-state logic, one through the `fsv`
//! logic, plus the VOM gate itself.

use crate::factoring::FactoredEquations;
use crate::outputs::OutputEquations;
use fantom_boolean::Expr;

/// Depth (and size) summary of a synthesized machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthReport {
    /// Levels of logic in the `fsv` equation.
    pub fsv_depth: usize,
    /// Levels of logic in the deepest next-state equation.
    pub y_depth: usize,
    /// Worst-case levels to reach stability (assertion of `VOM`):
    /// `y_depth + fsv_depth + 1`.
    pub total_depth: usize,
    /// Levels of logic in the deepest output equation.
    pub z_depth: usize,
    /// Levels of logic in the `SSD` equation.
    pub ssd_depth: usize,
}

/// Compute the depth report from the factored equations and the output stage.
pub fn report(factored: &FactoredEquations, outputs: &OutputEquations) -> DepthReport {
    report_parts(factored, &outputs.z_exprs, &outputs.ssd_expr)
}

/// Depth report from the raw output expressions; shared by the dense
/// ([`report`]) and sparse (cover-based) pipelines.
pub fn report_parts(
    factored: &FactoredEquations,
    z_exprs: &[Expr],
    ssd_expr: &Expr,
) -> DepthReport {
    let fsv_depth = factored.fsv_depth();
    let y_depth = factored.y_depth();
    DepthReport {
        fsv_depth,
        y_depth,
        total_depth: fsv_depth + y_depth + 1,
        z_depth: z_exprs.iter().map(Expr::depth).max().unwrap_or(0),
        ssd_depth: ssd_expr.depth(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factoring::{factor, FactoringOptions};
    use crate::{fsv, hazard, outputs, SpecifiedTable};
    use fantom_assign::assign;
    use fantom_flow::benchmarks;

    #[test]
    fn total_depth_is_sum_plus_one() {
        for table in benchmarks::paper_suite() {
            let assignment = assign(&table);
            let spec = SpecifiedTable::new(table, assignment).unwrap();
            let analysis = hazard::analyze(&spec);
            let eqs = fsv::generate(&spec, &analysis).unwrap();
            let factored = factor(&spec, &eqs, FactoringOptions::default());
            let out = outputs::generate(&spec).unwrap();
            let d = report(&factored, &out);
            assert_eq!(d.total_depth, d.fsv_depth + d.y_depth + 1);
            assert!(
                d.y_depth >= 1,
                "{} has trivial next-state logic",
                spec.table().name()
            );
        }
    }
}
