//! Gate-level emission of the full FANTOM machine (Figure 1 of the paper).
//!
//! The synthesized equations are instantiated as a `fantom_sim::Netlist`:
//!
//! * the next-state logic `Y` (a function of `x`, `y` and `fsv`),
//! * the fantom state variable `fsv` and the stable-state detector `SSD`
//!   (functions of `x` and `y`),
//! * the output logic `Z`,
//! * the feedback loop closing `Y → y` through a chain of buffers that models
//!   the loop-delay assumption (the maximum line delay must be smaller than
//!   the minimum loop delay),
//! * the output capture stage: a `capture = SSD ∧ ¬fsv` gate standing in for
//!   the `VOM` condition, clocking rising-edge flip-flops that latch `Z`
//!   (`FFZ` in the paper's block diagram).
//!
//! External handshake signals (`G`, `VI`, `VOM` chaining between stages) are
//! environment-level and are exercised by the validation harness rather than
//! instantiated as gates.

use fantom_boolean::{Cover, Expr};
use fantom_flow::FlowTable;
use fantom_sim::{GateKind, NetId, Netlist};

use crate::factoring::FactoredEquations;
use crate::spec::SpecifiedTable;
use crate::{SparseSynthesisResult, SynthesisResult};

/// Borrowed view of the pieces of a synthesis result the emitter (and the
/// campaign driver) needs, independent of whether the dense or the sparse
/// pipeline produced them.
#[derive(Debug, Clone, Copy)]
pub struct MachineParts<'a> {
    /// Machine name.
    pub name: &'a str,
    /// The flow table that was synthesized (post-reduction).
    pub table: &'a FlowTable,
    /// The table paired with its USTT assignment.
    pub spec: &'a SpecifiedTable,
    /// Factored, hazard-free `fsv` / next-state equations (Step 7).
    pub factored: &'a FactoredEquations,
    /// Output expressions `Z₁ … Z_k` (Step 4).
    pub z_exprs: &'a [Expr],
    /// Stable-state-detector expression (Step 4).
    pub ssd_expr: &'a Expr,
    /// Covers behind `z_exprs`, for analytical hazard verdicts.
    pub z_covers: &'a [Cover],
    /// Cover behind `ssd_expr`, for analytical hazard verdicts.
    pub ssd_cover: &'a Cover,
    /// Total combinational depth (sizes the loop-delay assumption).
    pub total_depth: usize,
}

impl<'a> From<&'a SynthesisResult> for MachineParts<'a> {
    fn from(result: &'a SynthesisResult) -> Self {
        MachineParts {
            name: &result.name,
            table: &result.reduced_table,
            spec: &result.spec,
            factored: &result.factored,
            z_exprs: &result.outputs.z_exprs,
            ssd_expr: &result.outputs.ssd_expr,
            z_covers: &result.outputs.z_covers,
            ssd_cover: &result.outputs.ssd_cover,
            total_depth: result.depth.total_depth,
        }
    }
}

impl<'a> From<&'a SparseSynthesisResult> for MachineParts<'a> {
    fn from(result: &'a SparseSynthesisResult) -> Self {
        MachineParts {
            name: &result.name,
            table: &result.reduced_table,
            spec: &result.spec,
            factored: &result.factored,
            z_exprs: &result.outputs.z_exprs,
            ssd_expr: &result.outputs.ssd_expr,
            z_covers: &result.outputs.z_covers,
            ssd_cover: &result.outputs.ssd_cover,
            total_depth: result.depth.total_depth,
        }
    }
}

/// The emitted FANTOM machine with its port map.
#[derive(Debug, Clone)]
pub struct FantomNetlist {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// External/internal input nets `x₁ … x_j` (primary inputs).
    pub x: Vec<NetId>,
    /// Present-state nets `y₁ … y_n` (outputs of the feedback buffers).
    pub y: Vec<NetId>,
    /// Combinational next-state nets `Y₁ … Y_n` (before the feedback buffers).
    pub y_next: Vec<NetId>,
    /// Combinational output nets `Z₁ … Z_k`.
    pub z: Vec<NetId>,
    /// Latched output nets (captured when the machine signals stability).
    pub z_latched: Vec<NetId>,
    /// The fantom state variable net.
    pub fsv: NetId,
    /// The stable-state detector net.
    pub ssd: NetId,
    /// The output-capture condition net (`SSD ∧ ¬fsv`).
    pub capture: NetId,
    /// Number of buffer stages in each feedback loop.
    pub loop_stages: usize,
    /// Gate indices of the feedback buffers, one vector per state variable.
    /// Simulation harnesses use these to enforce the loop-delay assumption
    /// (the feedback must be slower than any combinational settling path).
    pub loop_gates: Vec<Vec<usize>>,
}

/// Default number of feedback buffer stages; large enough that the loop delay
/// exceeds any single combinational path under the randomized delay models
/// used by the validation harness.
pub const DEFAULT_LOOP_STAGES: usize = 6;

/// Instantiate the FANTOM machine for a dense-pipeline synthesis result.
///
/// `loop_stages` buffers are inserted in every `Y → y` feedback path; pass
/// [`DEFAULT_LOOP_STAGES`] unless an experiment needs to vary the loop delay.
pub fn emit(result: &SynthesisResult, loop_stages: usize) -> FantomNetlist {
    emit_parts(&MachineParts::from(result), loop_stages)
}

/// Instantiate the FANTOM machine from a [`MachineParts`] view (works for
/// dense and sparse pipeline results alike).
pub fn emit_parts(result: &MachineParts<'_>, loop_stages: usize) -> FantomNetlist {
    let spec = result.spec;
    let j = spec.num_inputs();
    let n = spec.num_state_vars();
    let k = spec.num_outputs();
    let stages = loop_stages.max(1);

    let mut netlist = Netlist::new();
    let x: Vec<NetId> = (1..=j)
        .map(|i| netlist.add_primary_input(format!("x{i}")))
        .collect();
    let y: Vec<NetId> = (1..=n).map(|i| netlist.add_net(format!("y{i}"))).collect();

    // Variable ordering (x, y) for fsv / SSD / Z.
    let mut xy: Vec<NetId> = x.clone();
    xy.extend(y.iter().copied());

    let fsv = netlist.add_net("fsv");
    let fsv_out = netlist.add_expr(&result.factored.fsv_expr, &xy, "fsv");
    netlist.add_gate(GateKind::Buf, vec![fsv_out], fsv);

    let ssd = netlist.add_net("ssd");
    let ssd_out = netlist.add_expr(result.ssd_expr, &xy, "ssd");
    netlist.add_gate(GateKind::Buf, vec![ssd_out], ssd);

    // Variable ordering (x, y, fsv) for the next-state logic.
    let mut xyf = xy.clone();
    xyf.push(fsv);

    let mut y_next = Vec::with_capacity(n);
    for (i, expr) in result.factored.y_exprs.iter().enumerate() {
        let out = netlist.add_net(format!("Y{}", i + 1));
        let logic = netlist.add_expr(expr, &xyf, &format!("Y{}", i + 1));
        netlist.add_gate(GateKind::Buf, vec![logic], out);
        y_next.push(out);
    }

    // Feedback loops: Y_i -> (buffer chain) -> y_i.
    let mut loop_gates: Vec<Vec<usize>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut gates = Vec::with_capacity(stages);
        let mut prev = y_next[i];
        for stage in 0..stages - 1 {
            let mid = netlist.add_net(format!("loop{}_{stage}", i + 1));
            gates.push(netlist.add_gate(GateKind::Buf, vec![prev], mid));
            prev = mid;
        }
        gates.push(netlist.add_gate(GateKind::Buf, vec![prev], y[i]));
        loop_gates.push(gates);
    }

    // Output logic and capture stage.
    let mut z = Vec::with_capacity(k);
    for (i, expr) in result.z_exprs.iter().enumerate() {
        let out = netlist.add_net(format!("z{}", i + 1));
        let logic = netlist.add_expr(expr, &xy, &format!("z{}", i + 1));
        netlist.add_gate(GateKind::Buf, vec![logic], out);
        z.push(out);
    }

    let not_fsv = netlist.add_net("fsv_n");
    netlist.add_gate(GateKind::Not, vec![fsv], not_fsv);
    let capture = netlist.add_net("capture");
    netlist.add_gate(GateKind::And, vec![ssd, not_fsv], capture);

    let mut z_latched = Vec::with_capacity(k);
    for (i, &zi) in z.iter().enumerate() {
        let q = netlist.add_net(format!("zl{}", i + 1));
        netlist.add_dff(capture, zi, q);
        z_latched.push(q);
    }

    FantomNetlist {
        netlist,
        x,
        y,
        y_next,
        z,
        z_latched,
        fsv,
        ssd,
        capture,
        loop_stages: stages,
        loop_gates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SynthesisOptions};
    use fantom_flow::benchmarks;

    #[test]
    fn emitted_netlist_has_expected_ports() {
        let result = synthesize(&benchmarks::lion(), &SynthesisOptions::default()).unwrap();
        let machine = emit(&result, DEFAULT_LOOP_STAGES);
        assert_eq!(machine.x.len(), 2);
        assert_eq!(machine.y.len(), result.spec.num_state_vars());
        assert_eq!(machine.z.len(), 1);
        assert_eq!(machine.z_latched.len(), 1);
        assert!(machine.netlist.num_gates() > 10);
        assert_eq!(machine.netlist.dffs().len(), 1);
        assert_eq!(machine.netlist.primary_inputs().len(), 2);
    }

    #[test]
    fn loop_stage_count_is_respected() {
        let result = synthesize(&benchmarks::lion(), &SynthesisOptions::default()).unwrap();
        let small = emit(&result, 1);
        let large = emit(&result, 8);
        assert!(large.netlist.num_gates() > small.netlist.num_gates());
        assert_eq!(large.loop_stages, 8);
        // Requesting zero stages is clamped to one buffer.
        assert_eq!(emit(&result, 0).loop_stages, 1);
    }

    #[test]
    fn every_benchmark_emits_a_netlist() {
        for table in benchmarks::paper_suite() {
            let result = synthesize(&table, &SynthesisOptions::default()).unwrap();
            let machine = emit(&result, DEFAULT_LOOP_STAGES);
            assert!(machine.netlist.num_gates() > 0, "{}", table.name());
            assert!(machine.netlist.net_by_name("fsv").is_some());
            assert!(machine.netlist.net_by_name("capture").is_some());
        }
    }
}
