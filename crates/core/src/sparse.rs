//! The end-to-end SEANCE pipeline in **sparse cover form**.
//!
//! [`synthesize_sparse`] runs the same seven steps as
//! [`synthesize`](crate::synthesize), but every Boolean object is a packed
//! cube cover ([`fantom_boolean::CoverFunction`]) instead of a dense `2^n`
//! truth table: transition subcubes enter as cubes, the off-sets are derived
//! by recursive sharp/complement, primes come from expansion against off
//! covers, and hazard freedom is established by cube-pair-wise consensus
//! augmentation. Cost therefore scales with the *specification size* (states
//! × columns) rather than the variable count, which is what lets machines
//! with 24+ total variables — far beyond
//! [`MAX_DENSE_VARS`](fantom_boolean::MAX_DENSE_VARS) — synthesize in
//! milliseconds where the dense pipeline cannot even allocate its bitsets.
//!
//! For machines within the dense limit the two pipelines agree point-for-
//! point on every generated function (see the differential tests in
//! `fsv.rs`, `outputs.rs` and `tests/sparse_pipeline.rs`).

use fantom_assign::{assign_in, StateAssignment};
use fantom_flow::{validate, FlowTable};
use fantom_minimize::reduce_with_options;

use crate::depth::{self, DepthReport};
use crate::factoring::{factor_covers_with, FactoredEquations, FactoringOptions};
use crate::fsv::{self, CoverEquations};
use crate::hazard::{self, HazardAnalysis};
use crate::outputs::{self, CoverOutputEquations};
use crate::pipeline::SynthesisOptions;
use crate::workspace::Workspace;
use crate::{SpecifiedTable, SynthesisError};

/// Everything produced by a sparse run of the SEANCE pipeline.
#[derive(Debug, Clone)]
pub struct SparseSynthesisResult {
    /// Benchmark / machine name (taken from the input table).
    pub name: String,
    /// The table actually synthesized (after Step 2, if enabled).
    pub reduced_table: FlowTable,
    /// The USTT state assignment of Step 3.
    pub assignment: StateAssignment,
    /// The reduced table paired with its assignment.
    pub spec: SpecifiedTable,
    /// Output-stage equations of Step 4, cover form.
    pub outputs: CoverOutputEquations,
    /// Hazard analysis of Step 5.
    pub hazards: HazardAnalysis,
    /// `fsv` / next-state equations of Step 6, cover form.
    pub equations: CoverEquations,
    /// Factored, hazard-free equations of Step 7.
    pub factored: FactoredEquations,
    /// Depth metrics (Table 1).
    pub depth: DepthReport,
    /// Options the pipeline ran with.
    pub options: SynthesisOptions,
}

impl SparseSynthesisResult {
    /// Human-readable rendering of every synthesized equation.
    pub fn render_equations(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let names = self.spec.var_names();
        let ext = self.spec.var_names_extended();
        let _ = writeln!(out, "machine {}", self.name);
        let _ = writeln!(out, "fsv  = {}", self.factored.fsv_expr.render(&names));
        for (i, y) in self.factored.y_exprs.iter().enumerate() {
            let _ = writeln!(out, "Y{}   = {}", i + 1, y.render(&ext));
        }
        for (i, z) in self.outputs.z_exprs.iter().enumerate() {
            let _ = writeln!(out, "Z{}   = {}", i + 1, z.render(&names));
        }
        let _ = writeln!(out, "SSD  = {}", self.outputs.ssd_expr.render(&names));
        out
    }

    /// Total literal count of the factored next-state expressions.
    pub fn y_literals(&self) -> usize {
        self.factored.y_literals()
    }
}

/// Run the complete SEANCE pipeline on `table` in sparse cover form.
///
/// # Errors
///
/// Returns an error if the table fails validation, the machine exceeds
/// [`MAX_TOTAL_VARS`](crate::spec::MAX_TOTAL_VARS), or the state assignment
/// cannot be verified.
pub fn synthesize_sparse(
    table: &FlowTable,
    options: &SynthesisOptions,
) -> Result<SparseSynthesisResult, SynthesisError> {
    synthesize_sparse_with(table, options, &mut Workspace::new())
}

/// [`synthesize_sparse`] with a caller-provided [`Workspace`]: the scratch
/// buffers of the pipeline's hot loops are reused across calls instead of
/// reallocated, which is how the batch service keeps a hot worker from
/// allocating per machine. Results are identical to [`synthesize_sparse`].
///
/// # Errors
///
/// Same failure modes as [`synthesize_sparse`].
pub fn synthesize_sparse_with(
    table: &FlowTable,
    options: &SynthesisOptions,
    workspace: &mut Workspace,
) -> Result<SparseSynthesisResult, SynthesisError> {
    // Step 1: flow-table preparation.
    if options.validate_input {
        let report = validate::validate(table);
        if !report.is_acceptable() {
            return Err(SynthesisError::InvalidFlowTable(format!(
                "{}: normal-mode violations: {}, strongly connected: {}, states without stable column: {}",
                table.name(),
                report.normal_mode_violations.len(),
                report.strongly_connected,
                report.states_without_stable_column.len()
            )));
        }
    }

    // Step 2: table reduction. As in the dense pipeline, the reduction is
    // accepted only when it is itself an acceptable synthesis input.
    let reduced_table = if options.minimize_states {
        let reduction = reduce_with_options(table, &options.reduction);
        if validate::is_normal_mode(&reduction.table)
            && validate::is_strongly_connected(&reduction.table)
        {
            reduction.table
        } else {
            table.clone()
        }
    } else {
        table.clone()
    };

    // Step 3: USTT state assignment.
    let assignment = assign_in(&reduced_table, &options.assignment, &mut workspace.assign);
    assignment.verify(&reduced_table)?;
    let spec = SpecifiedTable::new(reduced_table.clone(), assignment.clone())?;

    // Step 4: output determination (cover form).
    let outputs = outputs::generate_covers(&spec)?;

    // Step 5: hazard search (already sparse: it walks transitions, not the
    // space, and stores hash-backed hazard lists).
    let hazards = hazard::analyze(&spec);

    // Step 6: fsv and next-state equations (cover form).
    let equations = fsv::generate_covers(&spec, &hazards)?;

    // Step 7: hazard factoring by consensus augmentation.
    let factored = factor_covers_with(
        &spec,
        &equations,
        FactoringOptions {
            fsv_all_primes: options.fsv_all_primes,
            hazard_factoring: options.hazard_factoring,
            parallel_y: options.parallel_factoring,
        },
        &mut workspace.consensus,
    );

    let depth = depth::report_parts(&factored, &outputs.z_exprs, &outputs.ssd_expr);

    Ok(SparseSynthesisResult {
        name: table.name().to_string(),
        reduced_table,
        assignment,
        spec,
        outputs,
        hazards,
        equations,
        factored,
        depth,
        options: *options,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fantom_flow::benchmarks;

    #[test]
    fn sparse_pipeline_runs_on_every_small_benchmark() {
        for table in benchmarks::all() {
            let result = synthesize_sparse(&table, &SynthesisOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
            assert_eq!(result.name, table.name());
            assert!(result.depth.total_depth >= 1);
            assert_eq!(
                result.depth.total_depth,
                result.depth.fsv_depth + result.depth.y_depth + 1
            );
            // Covers implement their cover functions.
            assert!(result
                .equations
                .fsv
                .implemented_by(&result.equations.fsv_cover));
            for (f, c) in result.equations.y.iter().zip(&result.factored.y_covers) {
                assert!(f.implemented_by(c), "{}", table.name());
            }
        }
    }

    #[test]
    fn sparse_covers_implement_the_dense_functions() {
        // The sparse pipeline may pick different (equally valid) covers than
        // the dense one, but on machines where both run, every sparse cover
        // must implement the corresponding dense function exactly.
        for table in benchmarks::paper_suite() {
            let dense = crate::synthesize(&table, &SynthesisOptions::default()).unwrap();
            let sparse = synthesize_sparse(&table, &SynthesisOptions::default()).unwrap();
            let name = table.name();
            assert!(
                dense
                    .equations
                    .fsv_function
                    .implemented_by(&sparse.factored.fsv_cover),
                "{name}: sparse fsv cover"
            );
            for (f, c) in dense
                .equations
                .y_functions
                .iter()
                .zip(&sparse.factored.y_covers)
            {
                assert!(f.implemented_by(c), "{name}: sparse Y cover");
            }
            for (f, c) in dense
                .outputs
                .z_functions
                .iter()
                .zip(&sparse.outputs.z_covers)
            {
                assert!(f.implemented_by(c), "{name}: sparse Z cover");
            }
            assert!(
                dense
                    .outputs
                    .ssd_function
                    .implemented_by(&sparse.outputs.ssd_cover),
                "{name}: sparse SSD cover"
            );
            assert_eq!(
                dense.hazards.hazard_state_count(),
                sparse.hazards.hazard_state_count(),
                "{name}: hazard counts"
            );
        }
    }
}
