//! The end-to-end SEANCE synthesis pipeline (the flow chart of Figure 3).

use fantom_assign::{assign_with_options, AssignmentOptions, StateAssignment};
use fantom_flow::{validate, FlowTable};
use fantom_minimize::{reduce_with_options, ReductionOptions};

use crate::depth::{self, DepthReport};
use crate::factoring::{factor, FactoredEquations, FactoringOptions};
use crate::fsv::{self, FsvEquations};
use crate::hazard::{self, HazardAnalysis};
use crate::outputs::{self, OutputEquations};
use crate::{SpecifiedTable, SynthesisError};

/// Options controlling the synthesis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthesisOptions {
    /// Run Step 2 (table reduction / state minimization).
    pub minimize_states: bool,
    /// Run the hazard-factoring part of Step 7 (consensus terms, factoring on
    /// the state variable, first-level gates). Disabling it yields the plain
    /// two-level machine used by the ablation experiments.
    pub hazard_factoring: bool,
    /// Expand `fsv` to all of its prime implicants in Step 7.
    pub fsv_all_primes: bool,
    /// Require the input flow table to pass validation (normal mode, strong
    /// connectivity, a stable column per state). Disable only for experiments
    /// on deliberately malformed tables.
    pub validate_input: bool,
    /// Budgets for Step 2: compatible-enumeration and cover-selection caps.
    /// The default is exact for the small benchmark corpus;
    /// [`ReductionOptions::bounded`] keeps reduction millisecond-scale on
    /// 40-state machines at the cost of merge optimality.
    pub reduction: ReductionOptions,
    /// Budgets for Step 3: candidate-partition generation, exact-cover search
    /// and local-search refinement caps for the Tracey assignment. The
    /// default searches hard for short codes on small machines;
    /// [`AssignmentOptions::bounded`] trims the search on 40-state-class
    /// machines at a small cost in code width.
    pub assignment: AssignmentOptions,
    /// Run the independent per-bit `Yₙ` consensus closures of the sparse
    /// Step 7 on scoped threads (merged in bit order, so the result is
    /// byte-identical to a single-threaded run). Costs nothing on a
    /// single-core host beyond thread spawns; disable for strictly
    /// single-threaded environments.
    pub parallel_factoring: bool,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            minimize_states: true,
            hazard_factoring: true,
            fsv_all_primes: true,
            validate_input: true,
            reduction: ReductionOptions::default(),
            assignment: AssignmentOptions::default(),
            parallel_factoring: true,
        }
    }
}

impl SynthesisOptions {
    /// Options for the ablation run: no hazard factoring, essential-SOP `fsv`.
    pub fn without_factoring() -> Self {
        SynthesisOptions {
            hazard_factoring: false,
            fsv_all_primes: false,
            ..Self::default()
        }
    }

    /// Options for batch workers of the synthesis service
    /// ([`crate::synthesize_many`]): identical to the defaults except that
    /// the per-bit `Yₙ` fan-out of Step 7 stays on the worker's own thread —
    /// the service already shards whole machines across every core, so inner
    /// threading would only oversubscribe the host. `parallel_y` is
    /// byte-identical to the serial run by construction, so this changes no
    /// output, only scheduling.
    pub fn for_service() -> Self {
        SynthesisOptions {
            parallel_factoring: false,
            ..Self::default()
        }
    }

    /// Options for large machines synthesized through the sparse pipeline:
    /// Step 2 (state minimization) runs under the
    /// [`ReductionOptions::bounded`] budgets — unbounded maximal-compatible
    /// enumeration is exponential in the state count on unspecified-heavy
    /// tables, so enumeration and cover selection are capped and degrade to
    /// the greedy pair-merging cover instead of skipping reduction entirely
    /// — and Step 3 (Tracey assignment) runs under the
    /// [`AssignmentOptions::bounded`] budgets. All hazard-freedom steps stay
    /// enabled.
    pub fn for_large_machines() -> Self {
        SynthesisOptions {
            reduction: ReductionOptions::bounded(),
            assignment: AssignmentOptions::bounded(),
            ..Self::default()
        }
    }
}

/// Everything produced by a run of the SEANCE pipeline.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// Benchmark / machine name (taken from the input table).
    pub name: String,
    /// The input flow table as given.
    pub original_table: FlowTable,
    /// The table actually synthesized (after Step 2, if enabled).
    pub reduced_table: FlowTable,
    /// The USTT state assignment of Step 3.
    pub assignment: StateAssignment,
    /// The reduced table paired with its assignment.
    pub spec: SpecifiedTable,
    /// Output-stage equations of Step 4.
    pub outputs: OutputEquations,
    /// Hazard analysis of Step 5.
    pub hazards: HazardAnalysis,
    /// `fsv` / next-state equations of Step 6.
    pub equations: FsvEquations,
    /// Factored, hazard-free equations of Step 7.
    pub factored: FactoredEquations,
    /// Depth metrics (Table 1).
    pub depth: DepthReport,
    /// Options the pipeline ran with.
    pub options: SynthesisOptions,
}

impl SynthesisResult {
    /// Human-readable rendering of every synthesized equation.
    pub fn render_equations(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let names = self.spec.var_names();
        let ext = self.spec.var_names_extended();
        let _ = writeln!(out, "machine {}", self.name);
        let _ = writeln!(out, "fsv  = {}", self.factored.fsv_expr.render(&names));
        for (i, y) in self.factored.y_exprs.iter().enumerate() {
            let _ = writeln!(out, "Y{}   = {}", i + 1, y.render(&ext));
        }
        for (i, z) in self.outputs.z_exprs.iter().enumerate() {
            let _ = writeln!(out, "Z{}   = {}", i + 1, z.render(&names));
        }
        let _ = writeln!(out, "SSD  = {}", self.outputs.ssd_expr.render(&names));
        out
    }

    /// Summary statistics of the synthesized machine.
    pub fn stats(&self) -> SynthesisStats {
        SynthesisStats {
            states_before: self.original_table.num_states(),
            states_after: self.reduced_table.num_states(),
            state_vars: self.spec.num_state_vars(),
            hazard_states: self.hazards.hazard_state_count(),
            mic_transitions: self.reduced_table.multiple_input_change_transitions().len(),
            fsv_product_terms: self.factored.fsv_cover.cube_count(),
            y_literals: self.factored.y_literals(),
            z_literals: self.outputs.z_literals(),
            gate_count: self.factored.gate_count(),
        }
    }
}

/// Size statistics of a synthesis result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthesisStats {
    /// States before table reduction.
    pub states_before: usize,
    /// States after table reduction.
    pub states_after: usize,
    /// State variables used by the assignment.
    pub state_vars: usize,
    /// Hazardous total states found by the hazard search.
    pub hazard_states: usize,
    /// Multiple-input-change stable transitions in the synthesized table.
    pub mic_transitions: usize,
    /// Product terms of the (expanded) `fsv` cover.
    pub fsv_product_terms: usize,
    /// Literals across the factored next-state expressions.
    pub y_literals: usize,
    /// Literals across the output covers.
    pub z_literals: usize,
    /// Gates in the fsv + next-state logic.
    pub gate_count: usize,
}

/// Run the complete SEANCE pipeline on `table`.
///
/// # Errors
///
/// Returns an error if the table fails validation, the machine is too large
/// for the dense representation, or the state assignment cannot be verified.
pub fn synthesize(
    table: &FlowTable,
    options: &SynthesisOptions,
) -> Result<SynthesisResult, SynthesisError> {
    // Step 1: flow-table preparation.
    if options.validate_input {
        let report = validate::validate(table);
        if !report.is_acceptable() {
            return Err(SynthesisError::InvalidFlowTable(format!(
                "{}: normal-mode violations: {}, strongly connected: {}, states without stable column: {}",
                table.name(),
                report.normal_mode_violations.len(),
                report.strongly_connected,
                report.states_without_stable_column.len()
            )));
        }
    }

    // Step 2: table reduction. The reduced machine must itself be an
    // acceptable synthesis input (normal mode and strongly connected);
    // otherwise fall back to the original table — covers with overlapping
    // classes can occasionally leave a merged class unreachable.
    let reduced_table = if options.minimize_states {
        let reduction = reduce_with_options(table, &options.reduction);
        if validate::is_normal_mode(&reduction.table)
            && validate::is_strongly_connected(&reduction.table)
        {
            reduction.table
        } else {
            table.clone()
        }
    } else {
        table.clone()
    };

    // Step 3: USTT state assignment.
    let assignment = assign_with_options(&reduced_table, &options.assignment);
    assignment.verify(&reduced_table)?;
    let spec = SpecifiedTable::new(reduced_table.clone(), assignment.clone())?;

    // The dense pipeline materialises 2^n truth tables over the extended
    // (x, y, fsv) space; refuse early rather than thrash on machines beyond
    // the dense limit (use `synthesize_sparse` for those).
    if spec.num_vars_extended() > fantom_boolean::MAX_DENSE_VARS {
        return Err(SynthesisError::MachineTooLarge {
            total_vars: spec.num_vars_extended(),
            limit: fantom_boolean::MAX_DENSE_VARS,
        });
    }

    // Step 4: output determination.
    let outputs = outputs::generate(&spec)?;

    // Step 5: hazard search.
    let hazards = hazard::analyze(&spec);

    // Step 6: fsv and next-state equations.
    let equations = fsv::generate(&spec, &hazards)?;

    // Step 7: hazard factoring.
    let factored = factor(
        &spec,
        &equations,
        FactoringOptions {
            fsv_all_primes: options.fsv_all_primes,
            hazard_factoring: options.hazard_factoring,
            parallel_y: options.parallel_factoring,
        },
    );

    let depth = depth::report(&factored, &outputs);

    Ok(SynthesisResult {
        name: table.name().to_string(),
        original_table: table.clone(),
        reduced_table,
        assignment,
        spec,
        outputs,
        hazards,
        equations,
        factored,
        depth,
        options: *options,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fantom_flow::benchmarks;

    #[test]
    fn pipeline_runs_on_every_benchmark() {
        for table in benchmarks::all() {
            let result = synthesize(&table, &SynthesisOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
            assert_eq!(result.name, table.name());
            assert!(result.depth.total_depth >= 1);
            assert!(result.spec.num_state_vars() >= 1);
            assert_eq!(
                result.depth.total_depth,
                result.depth.fsv_depth + result.depth.y_depth + 1
            );
        }
    }

    #[test]
    fn pipeline_without_reduction_keeps_canonical_state_counts() {
        let options = SynthesisOptions {
            minimize_states: false,
            ..SynthesisOptions::default()
        };
        for (table, expected_states) in benchmarks::paper_suite()
            .into_iter()
            .zip([4usize, 4, 4, 9, 11])
        {
            let result = synthesize(&table, &options).unwrap();
            assert_eq!(
                result.reduced_table.num_states(),
                expected_states,
                "{}",
                result.name
            );
            assert!(result.spec.num_state_vars() >= 2);
            assert!(result.depth.total_depth >= 3);
        }
    }

    #[test]
    fn invalid_tables_are_rejected() {
        use fantom_flow::FlowTableBuilder;
        let mut b = FlowTableBuilder::new("broken", 1, 1);
        b.states(["A", "B"]);
        b.stable("A", "0", "0").unwrap();
        b.stable("B", "0", "1").unwrap();
        b.transition("A", "1", "B").unwrap(); // B not stable under column 1
        b.transition("B", "1", "A").unwrap();
        let table = b.build().unwrap();
        assert!(matches!(
            synthesize(&table, &SynthesisOptions::default()),
            Err(SynthesisError::InvalidFlowTable(_))
        ));
    }

    #[test]
    fn minimization_collapses_redundant_states() {
        let table = benchmarks::redundant_traffic();
        let result = synthesize(&table, &SynthesisOptions::default()).unwrap();
        assert!(result.reduced_table.num_states() < table.num_states());
        let unreduced = synthesize(
            &table,
            &SynthesisOptions {
                minimize_states: false,
                ..SynthesisOptions::default()
            },
        )
        .unwrap();
        assert_eq!(unreduced.reduced_table.num_states(), table.num_states());
    }

    #[test]
    fn ablation_without_factoring_is_never_deeper() {
        for table in benchmarks::paper_suite() {
            let full = synthesize(&table, &SynthesisOptions::default()).unwrap();
            let ablated = synthesize(&table, &SynthesisOptions::without_factoring()).unwrap();
            assert!(ablated.depth.y_depth <= full.depth.y_depth);
            assert!(ablated.depth.total_depth <= full.depth.total_depth);
        }
    }

    #[test]
    fn stats_and_rendering_are_consistent() {
        let table = benchmarks::test_example();
        let options = SynthesisOptions {
            minimize_states: false,
            ..SynthesisOptions::default()
        };
        let result = synthesize(&table, &options).unwrap();
        let stats = result.stats();
        assert_eq!(stats.states_before, 4);
        assert_eq!(stats.states_after, 4);
        assert!(stats.state_vars >= 2);
        let text = result.render_equations();
        assert!(text.contains("fsv"));
        assert!(text.contains("Y1"));
        assert!(text.contains("SSD"));
    }

    #[test]
    fn hazardous_benchmarks_get_nonzero_fsv_depth() {
        let options = SynthesisOptions {
            minimize_states: false,
            ..SynthesisOptions::default()
        };
        let result = synthesize(&benchmarks::lion(), &options).unwrap();
        assert!(!result.hazards.is_hazard_free());
        assert!(result.depth.fsv_depth >= 2);
        assert_eq!(
            result.depth.total_depth,
            result.depth.fsv_depth + result.depth.y_depth + 1
        );
    }
}
