//! Step 7 of SEANCE: hazard factoring (the paper's Figure 5) and the
//! first-level-gate expansion of `fsv`.
//!
//! The goals of this step, following Armstrong–Friedman–Menon (1968) and
//! Hackbart–Dietmeyer (1971), are:
//!
//! * **`fsv`** is expanded to *all* of its prime implicants (removing logic
//!   hazards) and converted to first-level-gate form: a first-level gate may
//!   receive only true (uncomplemented) input and state variables, so a
//!   product term with complemented literals becomes an AND–NOR pair.
//! * **`Yₙ`** is reduced to an essential SOP, made free of static hazards by
//!   adding the missing consensus primes, factored on its own state variable
//!   (`Yₙ = yₙ·Rₙ + …` — the latching terms are grouped so the hazardous
//!   `LᵢRᵢ` products of the paper are replaced by a single gated structure),
//!   and finally converted to first-level-gate form.
//!
//! The resulting expressions are what the depth metrics of Table 1 are
//! measured on.

use fantom_boolean::hazard::ConsensusScratch;
use fantom_boolean::{all_primes_cover, hazard, Cover, Expr, Literal};

use crate::fsv::{CoverEquations, FsvEquations};
use crate::SpecifiedTable;

/// The factored, hazard-free equations produced by Step 7.
#[derive(Debug, Clone)]
pub struct FactoredEquations {
    /// All-prime-implicant cover of `fsv`.
    pub fsv_cover: Cover,
    /// First-level-gate expression of `fsv`.
    pub fsv_expr: Expr,
    /// Hazard-free (consensus-augmented) cover of each next-state function.
    pub y_covers: Vec<Cover>,
    /// Factored first-level-gate expression of each next-state function.
    pub y_exprs: Vec<Expr>,
}

impl FactoredEquations {
    /// Depth (logic levels) of the `fsv` expression.
    pub fn fsv_depth(&self) -> usize {
        self.fsv_expr.depth()
    }

    /// Depth of the deepest next-state expression.
    pub fn y_depth(&self) -> usize {
        self.y_exprs.iter().map(Expr::depth).max().unwrap_or(0)
    }

    /// Total literal count of the factored next-state expressions.
    pub fn y_literals(&self) -> usize {
        self.y_exprs.iter().map(Expr::literal_count).sum()
    }

    /// Total gate count of the factored equations (fsv plus next-state logic).
    pub fn gate_count(&self) -> usize {
        self.fsv_expr.gate_count() + self.y_exprs.iter().map(Expr::gate_count).sum::<usize>()
    }
}

/// Options controlling Step 7 (used by the ablation experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactoringOptions {
    /// Expand `fsv` to all prime implicants (hazard-free). When `false` the
    /// essential cover from Step 6 is used directly.
    pub fsv_all_primes: bool,
    /// Add consensus terms to the next-state covers and factor them on their
    /// own state variable with first-level gates. When `false` the plain
    /// two-level essential SOP expression is used.
    pub hazard_factoring: bool,
    /// Fan the per-bit `Yₙ` consensus closures of [`factor_covers`] out
    /// across scoped threads (the closures are independent: each reads only
    /// its own `Yₙ` cover function). Results are merged in bit order, so the
    /// output is **byte-identical** to the single-threaded run — the knob
    /// only trades wall-clock for cores. No effect on the dense [`factor`].
    pub parallel_y: bool,
}

impl Default for FactoringOptions {
    fn default() -> Self {
        FactoringOptions {
            fsv_all_primes: true,
            hazard_factoring: true,
            parallel_y: true,
        }
    }
}

/// Run Step 7 on the equations of Step 6.
pub fn factor(
    spec: &SpecifiedTable,
    equations: &FsvEquations,
    options: FactoringOptions,
) -> FactoredEquations {
    let fsv_cover = if options.fsv_all_primes {
        all_primes_cover(&equations.fsv_function)
    } else {
        equations.fsv_cover.clone()
    };
    let fsv_expr = if options.hazard_factoring {
        Expr::first_level_gates(&fsv_cover)
    } else {
        Expr::from_cover(&fsv_cover)
    };

    let mut y_covers = Vec::with_capacity(equations.y_covers.len());
    let mut y_exprs = Vec::with_capacity(equations.y_covers.len());
    for (var, cover) in equations.y_covers.iter().enumerate() {
        if options.hazard_factoring {
            let hazard_free = hazard::add_consensus_terms(&equations.y_functions[var], cover);
            let self_var = spec.num_inputs() + var;
            let expr = factor_next_state(&hazard_free, self_var);
            y_covers.push(hazard_free);
            y_exprs.push(expr);
        } else {
            y_covers.push(cover.clone());
            y_exprs.push(Expr::from_cover(cover));
        }
    }

    FactoredEquations {
        fsv_cover,
        fsv_expr,
        y_covers,
        y_exprs,
    }
}

/// Run Step 7 on cover-form equations ([`CoverEquations`]) — the sparse
/// counterpart of [`factor`], for machines beyond the dense variable limit.
///
/// Hazard freedom is established by **targeted consensus augmentation**
/// ([`hazard::add_consensus_terms_on_pairs`]) rather than by expanding to
/// *all* prime implicants: the complete sum of a mostly-unspecified function
/// over a large space can be exponentially large, while an asynchronous
/// machine only ever occupies specified total states — so exactly the
/// on-set/on-set single-input adjacencies need single-cube coverage, and
/// closing those costs a pass quadratic in the on-cover. With
/// `fsv_all_primes` disabled the essential `fsv` cover is used unaugmented,
/// mirroring the dense option.
///
/// The per-bit `Yₙ` closures are mutually independent, so with
/// [`FactoringOptions::parallel_y`] they run on scoped threads (the `fsv`
/// closure rides on the calling thread meanwhile) and are merged back in
/// bit order — the result is byte-identical to the sequential run.
pub fn factor_covers(
    spec: &SpecifiedTable,
    equations: &CoverEquations,
    options: FactoringOptions,
) -> FactoredEquations {
    factor_covers_with(spec, equations, options, &mut ConsensusScratch::default())
}

/// [`factor_covers`] with caller-provided consensus scratch buffers, for
/// workers that factor a stream of machines (see
/// [`Workspace`](crate::Workspace)). The scratch serves the `fsv` closure and
/// the serial per-bit path; with [`FactoringOptions::parallel_y`] the spawned
/// per-bit closures use thread-local scratch (they run concurrently), while
/// the `fsv` closure on the calling thread still reuses the caller's.
pub fn factor_covers_with(
    spec: &SpecifiedTable,
    equations: &CoverEquations,
    options: FactoringOptions,
    scratch: &mut ConsensusScratch,
) -> FactoredEquations {
    let nvars = equations.y_covers.len();
    let mut y_results: Vec<Option<(Cover, Expr)>> = (0..nvars).map(|_| None).collect();
    let fsv_result;

    // Threading pays only when the consensus closures dominate: with hazard
    // factoring off each per-bit job is a clone, cheaper than a spawn.
    if options.parallel_y && options.hazard_factoring && nvars > 1 {
        fsv_result = std::thread::scope(|s| {
            let handles: Vec<_> = (0..nvars)
                .map(|var| {
                    s.spawn(move || {
                        let mut local = ConsensusScratch::default();
                        consensus_y(spec, equations, var, options, &mut local)
                    })
                })
                .collect();
            let fsv = factor_fsv(equations, options, scratch); // overlap with the workers
            for (slot, handle) in y_results.iter_mut().zip(handles) {
                *slot = Some(handle.join().expect("Y consensus worker panicked"));
            }
            fsv
        });
    } else {
        fsv_result = factor_fsv(equations, options, scratch);
        for (var, slot) in y_results.iter_mut().enumerate() {
            *slot = Some(consensus_y(spec, equations, var, options, scratch));
        }
    }

    let (fsv_cover, fsv_expr) = fsv_result;
    let mut y_covers = Vec::with_capacity(nvars);
    let mut y_exprs = Vec::with_capacity(nvars);
    for slot in y_results {
        let (cover, expr) = slot.expect("every Y slot filled");
        y_covers.push(cover);
        y_exprs.push(expr);
    }

    FactoredEquations {
        fsv_cover,
        fsv_expr,
        y_covers,
        y_exprs,
    }
}

/// The `fsv` part of [`factor_covers`]: consensus augmentation (when
/// enabled) plus first-level-gate conversion.
fn factor_fsv(
    equations: &CoverEquations,
    options: FactoringOptions,
    scratch: &mut ConsensusScratch,
) -> (Cover, Expr) {
    let fsv_cover = if options.fsv_all_primes {
        hazard::add_consensus_terms_on_pairs_with(
            equations.fsv.on_cover(),
            equations.fsv.off_cover(),
            &equations.fsv_cover,
            scratch,
        )
    } else {
        equations.fsv_cover.clone()
    };
    let fsv_expr = if options.hazard_factoring {
        Expr::first_level_gates(&fsv_cover)
    } else {
        Expr::from_cover(&fsv_cover)
    };
    (fsv_cover, fsv_expr)
}

/// The per-bit `Yₙ` closure of [`factor_covers`]: consensus augmentation of
/// one next-state cover plus latch factoring. Reads only `var`'s slice of
/// the equations — the independence that makes the threaded fan-out safe.
fn consensus_y(
    spec: &SpecifiedTable,
    equations: &CoverEquations,
    var: usize,
    options: FactoringOptions,
    scratch: &mut ConsensusScratch,
) -> (Cover, Expr) {
    let cover = &equations.y_covers[var];
    if options.hazard_factoring {
        let hazard_free = hazard::add_consensus_terms_on_pairs_with(
            equations.y[var].on_cover(),
            equations.y[var].off_cover(),
            cover,
            scratch,
        );
        let self_var = spec.num_inputs() + var;
        let expr = factor_next_state(&hazard_free, self_var);
        (hazard_free, expr)
    } else {
        (cover.clone(), Expr::from_cover(cover))
    }
}

/// Factor a next-state cover on its own state variable and convert it to
/// first-level-gate form.
///
/// Product terms containing the positive literal `yₙ` are grouped as
/// `yₙ·(r₁ + r₂ + …)` where each `rᵢ` is the residue of the term; the
/// remaining terms are emitted individually. Every term is realised with
/// first-level gates (complemented literals gathered under a NOR).
pub fn factor_next_state(cover: &Cover, self_var: usize) -> Expr {
    let mut residue_terms: Vec<Expr> = Vec::new();
    let mut terms: Vec<Expr> = Vec::with_capacity(cover.cube_count() + 1);
    for cube in cover.cubes() {
        if cube.literal(self_var) == Literal::One {
            // Free the latching variable; the packed cube copy is a word copy.
            let residue = cube.with_literal(self_var, Literal::DontCare);
            residue_terms.push(Expr::first_level_term(&residue));
        } else {
            terms.push(Expr::first_level_term(cube));
        }
    }
    if !residue_terms.is_empty() {
        terms.push(Expr::and(vec![
            Expr::var(self_var),
            Expr::or(residue_terms),
        ]));
    }
    Expr::or(terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fsv, hazard as hazard_search};
    use fantom_assign::assign;
    use fantom_flow::benchmarks;

    fn setup(table: fantom_flow::FlowTable) -> (SpecifiedTable, FsvEquations) {
        let assignment = assign(&table);
        let spec = SpecifiedTable::new(table, assignment).unwrap();
        let analysis = hazard_search::analyze(&spec);
        let eqs = fsv::generate(&spec, &analysis).unwrap();
        (spec, eqs)
    }

    fn eval_expr(expr: &Expr, vars: usize, minterm: u64) -> bool {
        let bits: Vec<bool> = (0..vars)
            .map(|i| (minterm >> (vars - 1 - i)) & 1 == 1)
            .collect();
        expr.eval(&bits)
    }

    #[test]
    fn factored_y_expressions_preserve_the_specified_function() {
        for table in benchmarks::paper_suite() {
            let (spec, eqs) = setup(table);
            let factored = factor(&spec, &eqs, FactoringOptions::default());
            let vars = spec.num_vars_extended();
            for (var, f) in eqs.y_functions.iter().enumerate() {
                for m in 0..f.space_size() {
                    if f.is_dc(m) {
                        continue;
                    }
                    assert_eq!(
                        eval_expr(&factored.y_exprs[var], vars, m),
                        f.is_on(m),
                        "{}: Y{} differs at minterm {m}",
                        spec.table().name(),
                        var + 1
                    );
                }
            }
        }
    }

    #[test]
    fn factored_fsv_preserves_the_fsv_function() {
        for table in benchmarks::paper_suite() {
            let (spec, eqs) = setup(table);
            let factored = factor(&spec, &eqs, FactoringOptions::default());
            let vars = spec.num_vars();
            for m in 0..eqs.fsv_function.space_size() {
                if eqs.fsv_function.is_dc(m) {
                    continue;
                }
                assert_eq!(
                    eval_expr(&factored.fsv_expr, vars, m),
                    eqs.fsv_function.is_on(m)
                );
            }
        }
    }

    /// Static hazards are only meaningful between adjacent minterms that both
    /// belong to the *specified* on-set; transitions through don't-care points
    /// are unconstrained by the original function.
    fn no_on_set_hazards(cover: &fantom_boolean::Cover, f: &fantom_boolean::Function) -> bool {
        hazard::static_hazards(cover)
            .into_iter()
            .all(|h| !(f.is_on(h.from) && f.is_on(h.to)))
    }

    #[test]
    fn fsv_all_primes_cover_has_no_on_set_static_hazards() {
        for table in benchmarks::paper_suite() {
            let (spec, eqs) = setup(table);
            let factored = factor(&spec, &eqs, FactoringOptions::default());
            assert!(
                no_on_set_hazards(&factored.fsv_cover, &eqs.fsv_function),
                "{}",
                spec.table().name()
            );
        }
    }

    #[test]
    fn y_covers_have_no_on_set_static_hazards_after_factoring() {
        for table in benchmarks::paper_suite() {
            let (spec, eqs) = setup(table);
            let factored = factor(&spec, &eqs, FactoringOptions::default());
            for (cover, f) in factored.y_covers.iter().zip(&eqs.y_functions) {
                assert!(no_on_set_hazards(cover, f), "{}", spec.table().name());
            }
        }
    }

    #[test]
    fn first_level_gates_have_no_complemented_inputs() {
        fn no_nots(e: &Expr) -> bool {
            match e {
                Expr::Not(_) => false,
                Expr::And(ops) | Expr::Or(ops) | Expr::Nor(ops) | Expr::Nand(ops) => {
                    ops.iter().all(no_nots)
                }
                _ => true,
            }
        }
        for table in benchmarks::paper_suite() {
            let (spec, eqs) = setup(table);
            let factored = factor(&spec, &eqs, FactoringOptions::default());
            assert!(no_nots(&factored.fsv_expr));
            for y in &factored.y_exprs {
                assert!(no_nots(y));
            }
        }
    }

    #[test]
    fn disabling_factoring_gives_shallower_or_equal_two_level_forms() {
        for table in benchmarks::paper_suite() {
            let (spec, eqs) = setup(table);
            let with = factor(&spec, &eqs, FactoringOptions::default());
            let without = factor(
                &spec,
                &eqs,
                FactoringOptions {
                    fsv_all_primes: false,
                    hazard_factoring: false,
                    ..FactoringOptions::default()
                },
            );
            assert!(without.y_depth() <= with.y_depth());
            assert!(without.fsv_depth() <= with.fsv_depth());
        }
    }

    #[test]
    fn factor_next_state_groups_latching_terms() {
        // Y = y1·x1 + y1·x2 + x1·x2' over vars [x1, x2, y1] (self_var = 2).
        let cover = Cover::parse(3, "1-1 -11 10-").unwrap();
        let expr = factor_next_state(&cover, 2);
        // Function must be preserved.
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|i| (m >> (2 - i)) & 1 == 1).collect();
            assert_eq!(expr.eval(&bits), cover.covers_minterm(m));
        }
        // The latching variable should appear exactly once (factored out).
        fn count_var(e: &Expr, v: usize) -> usize {
            match e {
                Expr::Var(i) => usize::from(*i == v),
                Expr::Not(inner) => count_var(inner, v),
                Expr::And(ops) | Expr::Or(ops) | Expr::Nor(ops) | Expr::Nand(ops) => {
                    ops.iter().map(|o| count_var(o, v)).sum()
                }
                Expr::Const(_) => 0,
            }
        }
        assert_eq!(count_var(&expr, 2), 1);
    }
}
