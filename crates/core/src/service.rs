//! Synthesis as a service: batched [`synthesize_many`] with a worker pool,
//! per-worker reusable [`Workspace`]s and a canonical-form result cache.
//!
//! A synthesis server sees *batches* of flow tables, and most of the traffic
//! is not new: controllers are resubmitted with renamed states, reordered
//! input bits or shuffled output bits. This module turns those observations
//! into throughput:
//!
//! * **Sharding.** [`SynthesisService::synthesize_many`] spreads the
//!   machines of a batch across a pool of `std::thread::scope` workers that
//!   claim work from a shared atomic counter — a self-balancing queue, so a
//!   worker that drew a large machine does not stall the rest of the batch.
//!   Results are merged back in submission order, making the output
//!   **deterministic**: the outcome vector is byte-for-byte identical for
//!   any worker count (see `tests/service.rs`).
//! * **Workspace reuse.** Each worker owns a [`Workspace`] threaded through
//!   [`synthesize_sparse_with`] into the Step 7
//!   consensus engines, so a hot worker stops allocating in the pipeline's
//!   hottest loops after the first few machines.
//! * **Canonical-form caching.** Each submission is canonicalized up to
//!   state/input-bit/output-bit relabeling
//!   ([`fantom_flow::canonical`]); the canonical table is synthesized **once**
//!   and the cached canonical result is *relabeled* onto every isomorphic
//!   submission. Both the machine that populated an entry and every later
//!   hit therefore return exactly the same (relabeled) equations, which is
//!   what keeps the batch deterministic even when isomorphic machines race.
//!
//! ## Cache semantics
//!
//! With [`ServiceOptions::cache`] enabled, every cacheable submission is
//! answered *through* its canonical form: state names in the returned
//! [`ServiceResult::reduced_table`] are the canonical row labels (`s0, s1,
//! …`, possibly merged by Step 2), while input/output bit order is mapped
//! back to the submission's. A submission whose canonicalization exceeds the
//! [`CanonicalOptions`] budgets is hashed in exact form — it still caches,
//! but only structurally identical resubmissions hit. Synthesis *errors* are
//! never cached; a cached entry is only served after its stored canonical
//! table is compared against the submission's (hash collisions degrade to a
//! direct synthesis, never to a wrong answer). With the cache disabled every
//! table goes straight to [`synthesize_sparse_with`] under its original
//! labeling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use fantom_assign::StateAssignment;
use fantom_boolean::collections::HashMap;
use fantom_boolean::{Cover, CoverFunction, Cube, Expr, Literal};
use fantom_flow::canonical::{self, CanonicalOptions, Canonicalization};
use fantom_flow::{validate, FlowTable};

use crate::depth::DepthReport;
use crate::factoring::FactoredEquations;
use crate::outputs::CoverOutputEquations;
use crate::pipeline::SynthesisOptions;
use crate::sparse::{synthesize_sparse_with, SparseSynthesisResult};
use crate::workspace::Workspace;
use crate::SynthesisError;

/// Options for the batch synthesis service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceOptions {
    /// Pipeline options applied to every machine of a batch. Defaults to
    /// [`SynthesisOptions::for_service`] — the standard pipeline with the
    /// inner per-bit factoring fan-out disabled, since the pool already
    /// saturates the cores with whole machines.
    pub synthesis: SynthesisOptions,
    /// Number of pool workers; `0` uses the host's available parallelism.
    pub parallelism: usize,
    /// Answer isomorphic submissions from the canonical-form result cache.
    pub cache: bool,
    /// Budgets for the canonicalization (see [`CanonicalOptions`]).
    pub canonical: CanonicalOptions,
    /// Upper bound on cached canonical results; `0` (the default) keeps the
    /// cache unbounded. When an insertion would exceed the bound, the
    /// least-recently-touched entry is evicted. Eviction only affects hit
    /// rate, never results: hits and misses return byte-identical equations
    /// for the same submission (see `tests/service.rs`).
    pub max_cache_entries: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            synthesis: SynthesisOptions::for_service(),
            parallelism: 0,
            cache: true,
            canonical: CanonicalOptions::default(),
            max_cache_entries: 0,
        }
    }
}

/// How a request was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Synthesized through the engine and stored in the cache.
    Miss,
    /// Answered by relabeling a cached canonical result.
    Hit,
    /// Answered by the engine without touching the cache (cache disabled, or
    /// a signature collision forced a direct run).
    Uncached,
}

/// Everything the service returns for one machine.
///
/// This is the transport-friendly subset of
/// [`SparseSynthesisResult`]: the relabelable
/// equations and metrics, without the intermediate spec/hazard structures.
#[derive(Debug, Clone)]
pub struct ServiceResult {
    /// The submitted machine's name.
    pub name: String,
    /// State count of the submitted table (before Step 2 reduction).
    pub states_before: usize,
    /// The table actually synthesized, with input columns and output bits
    /// mapped back to the submission's labeling. State names are canonical
    /// row labels when the result went through the cache.
    pub reduced_table: FlowTable,
    /// The USTT state assignment of Step 3.
    pub assignment: StateAssignment,
    /// Output-stage equations of Step 4, in the submission's labeling.
    pub outputs: CoverOutputEquations,
    /// Factored, hazard-free equations of Step 7, in the submission's
    /// labeling.
    pub factored: FactoredEquations,
    /// Depth metrics (relabeling-invariant).
    pub depth: DepthReport,
    /// Number of distinct hazardous total states found by Step 5
    /// (relabeling-invariant).
    pub hazard_state_count: usize,
    /// How this result was produced.
    pub cache: CacheStatus,
}

impl ServiceResult {
    /// Total literal count of the factored next-state expressions.
    pub fn y_literals(&self) -> usize {
        self.factored.y_literals()
    }

    /// Human-readable rendering of every synthesized equation.
    pub fn render_equations(&self) -> String {
        use std::fmt::Write as _;
        let ni = self.reduced_table.num_inputs();
        let nv = self.assignment.num_vars();
        let names: Vec<String> = (1..=ni)
            .map(|i| format!("x{i}"))
            .chain((1..=nv).map(|i| format!("y{i}")))
            .collect();
        let mut ext = names.clone();
        ext.push("fsv".to_string());
        let mut out = String::new();
        let _ = writeln!(out, "machine {}", self.name);
        let _ = writeln!(out, "fsv  = {}", self.factored.fsv_expr.render(&names));
        for (i, y) in self.factored.y_exprs.iter().enumerate() {
            let _ = writeln!(out, "Y{}   = {}", i + 1, y.render(&ext));
        }
        for (i, z) in self.outputs.z_exprs.iter().enumerate() {
            let _ = writeln!(out, "Z{}   = {}", i + 1, z.render(&names));
        }
        let _ = writeln!(out, "SSD  = {}", self.outputs.ssd_expr.render(&names));
        out
    }

    /// One-line summary in the service's report format. Deliberately
    /// excludes the cache status so reports are byte-identical across worker
    /// counts and cache temperatures.
    pub fn report_line(&self) -> String {
        format!(
            "report {} status=ok states={}->{} state_vars={} depth={} fsv_depth={} y_depth={} y_literals={} z_literals={} hazard_states={}",
            self.name,
            self.states_before,
            self.reduced_table.num_states(),
            self.assignment.num_vars(),
            self.depth.total_depth,
            self.depth.fsv_depth,
            self.depth.y_depth,
            self.y_literals(),
            self.outputs.z_literals(),
            self.hazard_state_count,
        )
    }
}

/// The outcome of one machine of a batch: the machine's name plus either its
/// [`ServiceResult`] or the synthesis error.
#[derive(Debug)]
pub struct SynthesisOutcome {
    /// The submitted machine's name.
    pub name: String,
    /// The synthesis result or the error that stopped it.
    pub result: Result<ServiceResult, SynthesisError>,
}

impl SynthesisOutcome {
    /// One-line summary in the service's report format.
    pub fn report_line(&self) -> String {
        match &self.result {
            Ok(r) => r.report_line(),
            Err(e) => format!(
                "report {} status=error message={:?}",
                self.name,
                e.to_string()
            ),
        }
    }
}

/// Cache counters of a [`SynthesisService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered by relabeling a cached canonical result.
    pub hits: usize,
    /// Requests that synthesized a canonical form and stored it.
    pub misses: usize,
    /// Number of cached canonical results.
    pub entries: usize,
}

/// A canonical result stored in the cache (everything in canonical-space
/// labeling).
struct CanonicalResult {
    canonical_table: FlowTable,
    states_before: usize,
    reduced_table: FlowTable,
    assignment: StateAssignment,
    outputs: CoverOutputEquations,
    factored: FactoredEquations,
    depth: DepthReport,
    hazard_state_count: usize,
}

/// One cache slot: racing isomorphic submissions serialize on the slot lock
/// (the loser of the race finds the entry filled and hits), while unrelated
/// signatures never contend beyond the brief map-level get-or-insert.
#[derive(Default)]
struct CacheSlot {
    entry: Mutex<Option<Arc<CanonicalResult>>>,
    /// Recency stamp for LRU eviction, updated on every map-level touch.
    last_used: AtomicUsize,
}

/// A long-lived synthesis service: a batch entry point plus a canonical-form
/// result cache that persists across batches.
pub struct SynthesisService {
    options: ServiceOptions,
    cache: Mutex<HashMap<Vec<u8>, Arc<CacheSlot>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    stamp: AtomicUsize,
}

impl SynthesisService {
    /// Create a service with an empty cache.
    pub fn new(options: ServiceOptions) -> Self {
        SynthesisService {
            options,
            cache: Mutex::new(HashMap::default()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            stamp: AtomicUsize::new(0),
        }
    }

    /// The options the service runs with.
    pub fn options(&self) -> &ServiceOptions {
        &self.options
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        let entries = self
            .cache
            .lock()
            .expect("cache lock")
            .values()
            .filter(|slot| slot.entry.lock().expect("slot lock").is_some())
            .count();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Synthesize a batch of machines, sharded across the worker pool.
    ///
    /// The returned vector is in submission order and is deterministic: it
    /// does not depend on the worker count or on which worker populated a
    /// cache entry first.
    pub fn synthesize_many(&self, tables: &[FlowTable]) -> Vec<SynthesisOutcome> {
        let n = tables.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = effective_parallelism(self.options.parallelism).min(n);
        if workers <= 1 {
            let mut ws = Workspace::new();
            return tables.iter().map(|t| self.process(t, &mut ws)).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SynthesisOutcome>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut ws = Workspace::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let outcome = self.process(&tables[i], &mut ws);
                        *slots[i].lock().expect("slot lock") = Some(outcome);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot lock")
                    .expect("every slot filled")
            })
            .collect()
    }

    /// Process one machine on the calling worker.
    fn process(&self, table: &FlowTable, ws: &mut Workspace) -> SynthesisOutcome {
        SynthesisOutcome {
            name: table.name().to_string(),
            result: self.process_inner(table, ws),
        }
    }

    fn process_inner(
        &self,
        table: &FlowTable,
        ws: &mut Workspace,
    ) -> Result<ServiceResult, SynthesisError> {
        let states_before = table.num_states();
        if !self.options.cache {
            let r = synthesize_sparse_with(table, &self.options.synthesis, ws)?;
            return Ok(from_sparse(r, states_before, CacheStatus::Uncached));
        }

        // Validate up front so failures carry the submitted table's name;
        // validity is isomorphism-invariant, so the canonical run below
        // passes the same check.
        if self.options.synthesis.validate_input {
            let report = validate::validate(table);
            if !report.is_acceptable() {
                return Err(SynthesisError::InvalidFlowTable(format!(
                    "{}: normal-mode violations: {}, strongly connected: {}, states without stable column: {}",
                    table.name(),
                    report.normal_mode_violations.len(),
                    report.strongly_connected,
                    report.states_without_stable_column.len()
                )));
            }
        }

        let canon = canonical::canonicalize(table, &self.options.canonical);
        let ctable = canonical::canonical_table(table, &canon);
        let slot = {
            let mut map = self.cache.lock().expect("cache lock");
            let slot = map
                .entry(canon.signature.clone())
                .or_insert_with(|| Arc::new(CacheSlot::default()))
                .clone();
            slot.last_used.store(
                self.stamp.fetch_add(1, Ordering::Relaxed) + 1,
                Ordering::Relaxed,
            );
            let max = self.options.max_cache_entries;
            if max > 0 && map.len() > max {
                // Evict the least-recently-touched other signature. Workers
                // already holding an `Arc` to the victim slot finish their
                // lookup unharmed; the map merely forgets the entry.
                let victim = map
                    .iter()
                    .filter(|(sig, _)| sig.as_slice() != canon.signature.as_slice())
                    .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                    .map(|(sig, _)| sig.clone());
                if let Some(victim) = victim {
                    map.remove(&victim);
                }
            }
            slot
        };

        let mut entry = slot.entry.lock().expect("slot lock");
        let (core, status) = match entry.as_ref() {
            Some(cached) if cached.canonical_table == ctable => {
                (Arc::clone(cached), CacheStatus::Hit)
            }
            Some(_) => {
                // Signature collision between non-isomorphic tables: fall
                // back to a direct, uncached run under the original labels.
                drop(entry);
                let r = synthesize_sparse_with(table, &self.options.synthesis, ws)?;
                return Ok(from_sparse(r, states_before, CacheStatus::Uncached));
            }
            None => {
                // Errors are returned, not cached: the slot stays empty and
                // a later isomorphic submission re-derives the same error.
                let r = synthesize_sparse_with(&ctable, &self.options.synthesis, ws)?;
                let core = Arc::new(canonical_core(ctable, states_before, r));
                *entry = Some(Arc::clone(&core));
                (core, CacheStatus::Miss)
            }
        };
        drop(entry);

        match status {
            CacheStatus::Hit => {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            CacheStatus::Miss => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            CacheStatus::Uncached => {}
        }
        Ok(relabel_result(&core, &canon, table.name(), status))
    }
}

/// Synthesize a batch with a one-shot service (the cache still deduplicates
/// isomorphic machines *within* the batch). Keep a [`SynthesisService`] for
/// a cache that persists across batches.
pub fn synthesize_many(tables: &[FlowTable], options: &ServiceOptions) -> Vec<SynthesisOutcome> {
    SynthesisService::new(*options).synthesize_many(tables)
}

fn effective_parallelism(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Package a direct (uncached) sparse run as a service result.
fn from_sparse(
    r: SparseSynthesisResult,
    states_before: usize,
    cache: CacheStatus,
) -> ServiceResult {
    ServiceResult {
        name: r.name,
        states_before,
        reduced_table: r.reduced_table,
        assignment: r.assignment,
        outputs: r.outputs,
        factored: r.factored,
        depth: r.depth,
        hazard_state_count: r.hazards.hazard_state_count(),
        cache: CacheStatus::Uncached,
    }
    .with_cache(cache)
}

impl ServiceResult {
    fn with_cache(mut self, cache: CacheStatus) -> Self {
        self.cache = cache;
        self
    }
}

/// Package the sparse run of a canonical table as a cache entry.
fn canonical_core(
    canonical_table: FlowTable,
    states_before: usize,
    r: SparseSynthesisResult,
) -> CanonicalResult {
    CanonicalResult {
        canonical_table,
        states_before,
        reduced_table: r.reduced_table,
        assignment: r.assignment,
        outputs: r.outputs,
        factored: r.factored,
        depth: r.depth,
        hazard_state_count: r.hazards.hazard_state_count(),
    }
}

/// Map a canonical result back onto a submission's labeling: input variable
/// positions and output bit order are carried through every cover and
/// expression by the inverse canonical maps; state variables (and `fsv`)
/// keep their positions, so the assignment and the y-ordering are unchanged.
fn relabel_result(
    core: &CanonicalResult,
    canon: &Canonicalization,
    name: &str,
    status: CacheStatus,
) -> ServiceResult {
    let ni = canon.input_map.len();
    let inv_in = canonical::inverse_permutation(&canon.input_map);
    let inv_out = canonical::inverse_permutation(&canon.output_map);
    let identity: Vec<usize> = (0..core.reduced_table.num_states()).collect();
    let reduced_table = canonical::relabel(&core.reduced_table, &identity, &inv_in, &inv_out, name);

    let no = canon.output_map.len();
    let z: Vec<CoverFunction> = (0..no)
        .map(|rb| permute_cover_function(&core.outputs.z[canon.output_map[rb]], &inv_in, ni))
        .collect();
    let z_covers: Vec<Cover> = (0..no)
        .map(|rb| permute_cover(&core.outputs.z_covers[canon.output_map[rb]], &inv_in, ni))
        .collect();
    let z_exprs: Vec<Expr> = (0..no)
        .map(|rb| permute_expr(&core.outputs.z_exprs[canon.output_map[rb]], &inv_in, ni))
        .collect();
    let outputs = CoverOutputEquations {
        z,
        z_covers,
        z_exprs,
        ssd: permute_cover_function(&core.outputs.ssd, &inv_in, ni),
        ssd_cover: permute_cover(&core.outputs.ssd_cover, &inv_in, ni),
        ssd_expr: permute_expr(&core.outputs.ssd_expr, &inv_in, ni),
    };
    let factored = FactoredEquations {
        fsv_cover: permute_cover(&core.factored.fsv_cover, &inv_in, ni),
        fsv_expr: permute_expr(&core.factored.fsv_expr, &inv_in, ni),
        y_covers: core
            .factored
            .y_covers
            .iter()
            .map(|c| permute_cover(c, &inv_in, ni))
            .collect(),
        y_exprs: core
            .factored
            .y_exprs
            .iter()
            .map(|e| permute_expr(e, &inv_in, ni))
            .collect(),
    };

    ServiceResult {
        name: name.to_string(),
        states_before: core.states_before,
        reduced_table,
        assignment: core.assignment.clone(),
        outputs,
        factored,
        depth: core.depth,
        hazard_state_count: core.hazard_state_count,
        cache: status,
    }
}

/// Move canonical input-variable position `v` to request position
/// `inv_in[v]`; positions at and beyond `ni` (state variables, `fsv`) stay.
fn permute_cube(cube: &Cube, inv_in: &[usize], ni: usize) -> Cube {
    let mut lits: Vec<Literal> = cube.literals().collect();
    for (v, &target) in inv_in.iter().enumerate().take(ni) {
        lits[target] = cube.literal(v);
    }
    Cube::new(lits)
}

fn permute_cover(cover: &Cover, inv_in: &[usize], ni: usize) -> Cover {
    Cover::from_cubes(
        cover.num_vars(),
        cover.iter().map(|c| permute_cube(c, inv_in, ni)).collect(),
    )
}

fn permute_cover_function(cf: &CoverFunction, inv_in: &[usize], ni: usize) -> CoverFunction {
    CoverFunction::from_on_off(
        permute_cover(cf.on_cover(), inv_in, ni),
        permute_cover(cf.off_cover(), inv_in, ni),
    )
    .expect("permuting variables preserves on/off disjointness")
}

fn permute_expr(expr: &Expr, inv_in: &[usize], ni: usize) -> Expr {
    match expr {
        Expr::Var(i) => Expr::Var(if *i < ni { inv_in[*i] } else { *i }),
        Expr::Not(inner) => Expr::Not(Box::new(permute_expr(inner, inv_in, ni))),
        Expr::And(ops) => Expr::And(ops.iter().map(|e| permute_expr(e, inv_in, ni)).collect()),
        Expr::Or(ops) => Expr::Or(ops.iter().map(|e| permute_expr(e, inv_in, ni)).collect()),
        Expr::Nor(ops) => Expr::Nor(ops.iter().map(|e| permute_expr(e, inv_in, ni)).collect()),
        Expr::Nand(ops) => Expr::Nand(ops.iter().map(|e| permute_expr(e, inv_in, ni)).collect()),
        Expr::Const(c) => Expr::Const(*c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fantom_flow::benchmarks;

    #[test]
    fn batch_matches_sequential_sparse_reports() {
        // Cache off, one worker: the service is a plain sequential loop.
        let tables = benchmarks::all();
        let options = ServiceOptions {
            parallelism: 1,
            cache: false,
            ..ServiceOptions::default()
        };
        let outcomes = synthesize_many(&tables, &options);
        assert_eq!(outcomes.len(), tables.len());
        for (t, o) in tables.iter().zip(&outcomes) {
            assert_eq!(t.name(), o.name);
            let r = o.result.as_ref().expect("corpus machines synthesize");
            let direct =
                crate::synthesize_sparse(t, &options.synthesis).expect("direct run succeeds");
            assert_eq!(r.render_equations(), direct.render_equations());
            assert_eq!(r.cache, CacheStatus::Uncached);
        }
    }

    #[test]
    fn within_batch_isomorphic_machines_hit_the_cache() {
        let lion = benchmarks::lion();
        let relabeled =
            fantom_flow::canonical::relabel(&lion, &[1, 0, 3, 2], &[1, 0], &[0], "lion2");
        let service = SynthesisService::new(ServiceOptions {
            parallelism: 1,
            ..ServiceOptions::default()
        });
        let outcomes = service.synthesize_many(&[lion, relabeled]);
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn bounded_cache_evicts_down_to_the_configured_size() {
        let service = SynthesisService::new(ServiceOptions {
            parallelism: 1,
            max_cache_entries: 2,
            ..ServiceOptions::default()
        });
        let batch = benchmarks::all();
        assert!(batch.len() > 2);
        let outcomes = service.synthesize_many(&batch);
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        let stats = service.cache_stats();
        assert!(stats.entries <= 2, "entries = {}", stats.entries);
        assert_eq!(stats.misses, batch.len());

        // The most recently used entry survives: resubmitting the last
        // machine hits without a new miss.
        let again = service.synthesize_many(&batch[batch.len() - 1..]);
        assert!(again[0].result.is_ok());
        assert_eq!(service.cache_stats().hits, 1);
    }

    #[test]
    fn invalid_tables_report_errors_without_poisoning_the_batch() {
        use fantom_flow::FlowTableBuilder;
        let mut b = FlowTableBuilder::new("bad", 1, 1);
        b.state("A").state("B");
        // A is never stable and the machine is not strongly connected.
        b.transition("A", "0", "B").unwrap();
        b.stable("B", "0", "1").unwrap();
        let bad = b.build().unwrap();

        let batch = vec![benchmarks::lion(), bad, benchmarks::traffic()];
        let outcomes = synthesize_many(&batch, &ServiceOptions::default());
        assert!(outcomes[0].result.is_ok());
        assert!(outcomes[1].result.is_err());
        assert!(outcomes[1].report_line().contains("status=error"));
        assert!(outcomes[1].report_line().contains("bad"));
        assert!(outcomes[2].result.is_ok());
    }
}
