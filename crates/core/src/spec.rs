//! Specified flow tables: a flow table together with a USTT state assignment,
//! and the Boolean functions (next-state `Y`, output `Z`, stable-state
//! detector `SSD`) it induces.
//!
//! ## Variable ordering
//!
//! Throughout the crate the combinational functions are defined over the
//! variable vector `(x₁ … x_j, y₁ … y_n [, fsv])`: the external inputs first
//! (most significant minterm bits), then the state variables, then — for the
//! doubled space of Step 6 — the fantom state variable as the least
//! significant bit.
//!
//! ## Single-transition-time filling
//!
//! A USTT machine lets every state variable involved in a transition change
//! simultaneously; while the variables race, the machine's code passes through
//! intermediate points of the transition subcube. For the machine to settle
//! correctly no matter the order of changes, the next-state functions must map
//! *every* code of the subcube spanned by the source and destination codes to
//! the destination code. [`SpecifiedTable::next_state_functions`] performs this
//! filling; the race-freedom of the Tracey assignment guarantees the
//! requirements of different transitions never conflict.

use fantom_assign::StateAssignment;
use fantom_boolean::{Cover, CoverFunction, Cube, Function, Literal};
use fantom_flow::{Bits, FlowTable, StableTransition, StateId};

use crate::SynthesisError;

/// Maximum `(x, y, fsv)` variable count any representation supports: total
/// states must index a `u64` minterm space. The dense pipeline additionally
/// requires `num_vars_extended ≤` [`fantom_boolean::MAX_DENSE_VARS`]; the
/// sparse (cover-based) pipeline runs anywhere below this bound.
pub const MAX_TOTAL_VARS: usize = 48;

/// A flow table with a state assignment attached.
#[derive(Debug, Clone)]
pub struct SpecifiedTable {
    table: FlowTable,
    assignment: StateAssignment,
}

impl SpecifiedTable {
    /// Pair a flow table with a state assignment.
    ///
    /// # Errors
    ///
    /// Returns an error if the assignment has the wrong number of codes or the
    /// machine exceeds [`MAX_TOTAL_VARS`]. Machines above the dense-function
    /// limit construct fine — the dense `*_functions` accessors will fail for
    /// them, the cover-based `*_cover_functions` accessors will not.
    pub fn new(table: FlowTable, assignment: StateAssignment) -> Result<Self, SynthesisError> {
        if assignment.num_states() != table.num_states() {
            return Err(SynthesisError::InvalidFlowTable(format!(
                "assignment has {} codes for {} states",
                assignment.num_states(),
                table.num_states()
            )));
        }
        let total = table.num_inputs() + assignment.num_vars() + 1;
        if total > MAX_TOTAL_VARS {
            return Err(SynthesisError::MachineTooLarge {
                total_vars: total,
                limit: MAX_TOTAL_VARS,
            });
        }
        Ok(SpecifiedTable { table, assignment })
    }

    /// The underlying flow table.
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// The state assignment.
    pub fn assignment(&self) -> &StateAssignment {
        &self.assignment
    }

    /// Number of external input bits `j`.
    pub fn num_inputs(&self) -> usize {
        self.table.num_inputs()
    }

    /// Number of state variables `n`.
    pub fn num_state_vars(&self) -> usize {
        self.assignment.num_vars()
    }

    /// Number of external output bits `k`.
    pub fn num_outputs(&self) -> usize {
        self.table.num_outputs()
    }

    /// Number of variables of the `(x, y)` space.
    pub fn num_vars(&self) -> usize {
        self.num_inputs() + self.num_state_vars()
    }

    /// Number of variables of the `(x, y, fsv)` space.
    pub fn num_vars_extended(&self) -> usize {
        self.num_vars() + 1
    }

    /// The code assigned to a state.
    pub fn code(&self, state: StateId) -> &Bits {
        self.assignment.code(state)
    }

    /// Minterm index of the total state `(input column, state code)` in the
    /// `(x, y)` space.
    pub fn minterm(&self, column: usize, code: &Bits) -> u64 {
        let n = self.num_state_vars();
        ((column as u64) << n) | code.index() as u64
    }

    /// Minterm index in the `(x, y, fsv)` space.
    pub fn minterm_extended(&self, column: usize, code: &Bits, fsv: bool) -> u64 {
        (self.minterm(column, code) << 1) | u64::from(fsv)
    }

    /// Decompose an `(x, y)` minterm into its input column and state code.
    pub fn decompose(&self, minterm: u64) -> (usize, Bits) {
        let n = self.num_state_vars();
        let column = (minterm >> n) as usize;
        let code = Bits::from_index(n, (minterm & ((1 << n) - 1)) as usize);
        (column, code)
    }

    /// Variable names `x1..xj, y1..yn` for rendering equations over `(x, y)`.
    pub fn var_names(&self) -> Vec<String> {
        let mut names: Vec<String> = (1..=self.num_inputs()).map(|i| format!("x{i}")).collect();
        names.extend((1..=self.num_state_vars()).map(|i| format!("y{i}")));
        names
    }

    /// Variable names including `fsv` for the extended space.
    pub fn var_names_extended(&self) -> Vec<String> {
        let mut names = self.var_names();
        names.push("fsv".to_string());
        names
    }

    /// The stable-state transitions of the underlying table.
    pub fn stable_transitions(&self) -> Vec<StableTransition> {
        self.table.stable_transitions()
    }

    /// Next-state functions `Y₁ … Y_n` over the `(x, y)` space with
    /// single-transition-time subcube filling (see module docs). Codes that do
    /// not participate in any specified entry are don't-cares.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidFlowTable`] if two transitions demand
    /// conflicting values for the same total state — this indicates the
    /// assignment is not race-free.
    pub fn next_state_functions(&self) -> Result<Vec<Function>, SynthesisError> {
        let n = self.num_state_vars();
        let vars = self.num_vars();
        let mut functions: Vec<Function> = (0..n)
            .map(|_| all_dont_care(vars))
            .collect::<Result<_, _>>()?;
        // Track which minterms have been pinned, to detect conflicts.
        let mut pinned: Vec<Option<u64>> = vec![None; 1 << vars];

        for s in self.table.states() {
            for c in 0..self.table.num_columns() {
                let Some(t) = self.table.next_state(s, c) else {
                    continue;
                };
                let dest = self.code(t).clone();
                for code in Bits::transition_cube(self.code(s), &dest) {
                    let m = self.minterm(c, &code);
                    let dest_index = dest.index() as u64;
                    if let Some(prev) = pinned[m as usize] {
                        if prev != dest_index {
                            return Err(SynthesisError::InvalidFlowTable(format!(
                                "conflicting next-state requirements at column {c}, code {code}: \
                                 the state assignment is not race-free"
                            )));
                        }
                    }
                    pinned[m as usize] = Some(dest_index);
                    for (bit, f) in functions.iter_mut().enumerate() {
                        if dest.bit(bit) {
                            f.set_on(m);
                        } else {
                            f.set_off(m);
                        }
                    }
                }
            }
        }
        Ok(functions)
    }

    /// Output functions `Z₁ … Z_k` over the `(x, y)` space. Outputs are pinned
    /// only at total states whose entry specifies an output; everything else
    /// (transition intermediates, unused codes, unspecified entries) is a
    /// don't-care, which is what lets the self-synchronized output stage obey
    /// the single-output-change principle.
    ///
    /// # Errors
    ///
    /// Returns an error only if the machine exceeds the dense-function limit.
    pub fn output_functions(&self) -> Result<Vec<Function>, SynthesisError> {
        let k = self.num_outputs();
        let vars = self.num_vars();
        let mut functions: Vec<Function> = (0..k)
            .map(|_| all_dont_care(vars))
            .collect::<Result<_, _>>()?;
        for s in self.table.states() {
            for c in 0..self.table.num_columns() {
                let Some(out) = self.table.output(s, c) else {
                    continue;
                };
                let m = self.minterm(c, self.code(s));
                for (bit, f) in functions.iter_mut().enumerate() {
                    if out.bit(bit) {
                        f.set_on(m);
                    } else {
                        f.set_off(m);
                    }
                }
            }
        }
        Ok(functions)
    }

    /// The stable-state-detector function `SSD` over the `(x, y)` space:
    /// 1 on every stable total state, 0 on every specified unstable total
    /// state and on the interior of every transition subcube, don't-care
    /// elsewhere.
    ///
    /// # Errors
    ///
    /// Returns an error only if the machine exceeds the dense-function limit.
    pub fn ssd_function(&self) -> Result<Function, SynthesisError> {
        let vars = self.num_vars();
        let mut f = all_dont_care(vars)?;
        for s in self.table.states() {
            for c in 0..self.table.num_columns() {
                let Some(t) = self.table.next_state(s, c) else {
                    continue;
                };
                if t == s {
                    f.set_on(self.minterm(c, self.code(s)));
                } else {
                    // The whole racing subcube is unstable except the
                    // destination point.
                    let dest = self.code(t).clone();
                    for code in Bits::transition_cube(self.code(s), &dest) {
                        if code != dest {
                            f.set_off(self.minterm(c, &code));
                        }
                    }
                    f.set_on(self.minterm(c, &dest));
                }
            }
        }
        Ok(f)
    }

    /// The total-state cube of an input column together with a state-code
    /// transition subcube: the input bits are bound to `column`, state bits on
    /// which `from` and `to` agree are bound, racing bits are free. With
    /// `from == to` this is the single total-state point.
    pub fn total_state_cube(&self, column: usize, from: &Bits, to: &Bits) -> Cube {
        let j = self.num_inputs();
        let n = self.num_state_vars();
        let mut lits = Vec::with_capacity(self.num_vars());
        for i in 0..j {
            let bit = (column >> (j - 1 - i)) & 1 == 1;
            lits.push(if bit { Literal::One } else { Literal::Zero });
        }
        for v in 0..n {
            if from.bit(v) == to.bit(v) {
                lits.push(if from.bit(v) {
                    Literal::One
                } else {
                    Literal::Zero
                });
            } else {
                lits.push(Literal::DontCare);
            }
        }
        Cube::new(lits)
    }

    /// The total-state point cube of `(column, code)`.
    pub fn total_state_point(&self, column: usize, code: &Bits) -> Cube {
        self.total_state_cube(column, code, code)
    }

    /// All `(x, y)` total states the machine can occupy — every specified
    /// entry's transition subcube — as a cube cover (one cube per specified
    /// entry, possibly overlapping). The sparse counterpart of enumerating
    /// occupied minterms.
    pub fn occupied_cover(&self) -> Cover {
        let mut cubes = Vec::new();
        for s in self.table.states() {
            for c in 0..self.table.num_columns() {
                let Some(t) = self.table.next_state(s, c) else {
                    continue;
                };
                cubes.push(self.total_state_cube(c, self.code(s), self.code(t)));
            }
        }
        Cover::from_cubes(self.num_vars(), cubes)
    }

    /// Next-state functions `Y₁ … Y_n` in sparse cover form: each specified
    /// entry contributes its whole transition subcube (single-transition-time
    /// filling) to the on- or off-cover of every state variable according to
    /// the destination code, and everything never pinned stays an implicit
    /// don't-care. Equivalent to [`SpecifiedTable::next_state_functions`]
    /// point-for-point, but the cost scales with the number of specified
    /// entries instead of `2^n`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidFlowTable`] if two transitions demand
    /// conflicting values for the same total state (detected as an on/off
    /// cover overlap) — this indicates the assignment is not race-free.
    pub fn next_state_cover_functions(&self) -> Result<Vec<CoverFunction>, SynthesisError> {
        let n = self.num_state_vars();
        let vars = self.num_vars();
        let mut on: Vec<Vec<Cube>> = vec![Vec::new(); n];
        let mut off: Vec<Vec<Cube>> = vec![Vec::new(); n];
        for s in self.table.states() {
            for c in 0..self.table.num_columns() {
                let Some(t) = self.table.next_state(s, c) else {
                    continue;
                };
                let cube = self.total_state_cube(c, self.code(s), self.code(t));
                let dest = self.code(t);
                for var in 0..n {
                    if dest.bit(var) {
                        on[var].push(cube.clone());
                    } else {
                        off[var].push(cube.clone());
                    }
                }
            }
        }
        on.into_iter()
            .zip(off)
            .map(|(on, off)| {
                CoverFunction::from_on_off(
                    Cover::from_cubes(vars, on),
                    Cover::from_cubes(vars, off),
                )
                .map_err(|e| {
                    SynthesisError::InvalidFlowTable(format!(
                        "conflicting next-state requirements ({e}): \
                         the state assignment is not race-free"
                    ))
                })
            })
            .collect()
    }

    /// Output functions `Z₁ … Z_k` in sparse cover form (see
    /// [`SpecifiedTable::output_functions`] for the pinning rules: only total
    /// states with a specified output are bound).
    ///
    /// # Errors
    ///
    /// Returns an error only if an output is specified inconsistently (never
    /// the case for well-formed tables).
    pub fn output_cover_functions(&self) -> Result<Vec<CoverFunction>, SynthesisError> {
        let k = self.num_outputs();
        let vars = self.num_vars();
        let mut on: Vec<Vec<Cube>> = vec![Vec::new(); k];
        let mut off: Vec<Vec<Cube>> = vec![Vec::new(); k];
        for s in self.table.states() {
            for c in 0..self.table.num_columns() {
                let Some(out) = self.table.output(s, c) else {
                    continue;
                };
                let point = self.total_state_point(c, self.code(s));
                for bit in 0..k {
                    if out.bit(bit) {
                        on[bit].push(point.clone());
                    } else {
                        off[bit].push(point.clone());
                    }
                }
            }
        }
        on.into_iter()
            .zip(off)
            .map(|(on, off)| {
                CoverFunction::from_on_off(
                    Cover::from_cubes(vars, on),
                    Cover::from_cubes(vars, off),
                )
                .map_err(|e| SynthesisError::InvalidFlowTable(format!("inconsistent outputs: {e}")))
            })
            .collect()
    }

    /// The stable-state-detector `SSD` in sparse cover form: on at stable
    /// points and transition destinations, off on the rest of each racing
    /// subcube (computed by disjoint sharp of the subcube against its
    /// destination point), implicit don't-care elsewhere.
    ///
    /// # Errors
    ///
    /// Returns an error only on an inconsistent specification (never the case
    /// for validated tables).
    pub fn ssd_cover_function(&self) -> Result<CoverFunction, SynthesisError> {
        let vars = self.num_vars();
        let mut on: Vec<Cube> = Vec::new();
        let mut off: Vec<Cube> = Vec::new();
        for s in self.table.states() {
            for c in 0..self.table.num_columns() {
                let Some(t) = self.table.next_state(s, c) else {
                    continue;
                };
                let dest_point = self.total_state_point(c, self.code(t));
                if t == s {
                    on.push(dest_point);
                } else {
                    let subcube = self.total_state_cube(c, self.code(s), self.code(t));
                    off.extend(subcube.sharp(&dest_point));
                    on.push(dest_point);
                }
            }
        }
        // A destination point may also appear inside another entry's racing
        // subcube; carve the on-points out of the off cover so the partition
        // stays consistent (the dense path resolves this by set_on ordering).
        let mut off_cover = Cover::from_cubes(vars, off);
        for p in &on {
            off_cover = off_cover.sharp_cube(p);
        }
        off_cover.remove_contained_cubes();
        CoverFunction::from_on_off(Cover::from_cubes(vars, on), off_cover)
            .map_err(|e| SynthesisError::InvalidFlowTable(format!("inconsistent SSD: {e}")))
    }
}

fn all_dont_care(vars: usize) -> Result<Function, SynthesisError> {
    let mut f = Function::constant_false(vars)?;
    for m in 0..(1u64 << vars) {
        f.set_dc(m);
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fantom_assign::assign;
    use fantom_flow::benchmarks;

    fn spec(table: FlowTable) -> SpecifiedTable {
        let assignment = assign(&table);
        SpecifiedTable::new(table, assignment).unwrap()
    }

    #[test]
    fn minterm_round_trip() {
        let s = spec(benchmarks::lion());
        for c in 0..s.table().num_columns() {
            for code_idx in 0..(1 << s.num_state_vars()) {
                let code = Bits::from_index(s.num_state_vars(), code_idx);
                let m = s.minterm(c, &code);
                assert_eq!(s.decompose(m), (c, code));
            }
        }
    }

    #[test]
    fn next_state_functions_fix_stable_points() {
        let s = spec(benchmarks::lion());
        let y = s.next_state_functions().unwrap();
        for state in s.table().states() {
            for c in s.table().stable_columns(state) {
                let m = s.minterm(c, s.code(state));
                for (bit, f) in y.iter().enumerate() {
                    let expected = s.code(state).bit(bit);
                    assert_eq!(f.is_on(m), expected, "stable point must hold its own code");
                    assert_eq!(f.is_off(m), !expected);
                }
            }
        }
    }

    #[test]
    fn next_state_functions_fill_transition_subcubes() {
        let s = spec(benchmarks::test_example());
        let y = s.next_state_functions().unwrap();
        for tr in s.stable_transitions() {
            let col = tr.to_input.index();
            let from = s.code(tr.from_state).clone();
            let to = s.code(tr.to_state).clone();
            for code in Bits::transition_cube(&from, &to) {
                let m = s.minterm(col, &code);
                for (bit, f) in y.iter().enumerate() {
                    assert_eq!(
                        f.is_on(m),
                        to.bit(bit),
                        "subcube point {code} at column {col} must map to destination"
                    );
                }
            }
        }
    }

    #[test]
    fn output_functions_respect_specified_outputs() {
        let s = spec(benchmarks::traffic());
        let z = s.output_functions().unwrap();
        for state in s.table().states() {
            for c in 0..s.table().num_columns() {
                if let Some(out) = s.table().output(state, c) {
                    let m = s.minterm(c, s.code(state));
                    for (bit, f) in z.iter().enumerate() {
                        assert_eq!(f.is_on(m), out.bit(bit));
                    }
                }
            }
        }
    }

    #[test]
    fn ssd_is_on_exactly_at_stable_points_where_specified() {
        let s = spec(benchmarks::lion());
        let ssd = s.ssd_function().unwrap();
        for state in s.table().states() {
            for c in 0..s.table().num_columns() {
                let m = s.minterm(c, s.code(state));
                match s.table().next_state(state, c) {
                    Some(t) if t == state => assert!(ssd.is_on(m)),
                    Some(_) => assert!(ssd.is_off(m)),
                    None => {}
                }
            }
        }
    }

    #[test]
    fn wrong_assignment_size_is_rejected() {
        let table = benchmarks::lion();
        let other = assign(&benchmarks::lion9());
        assert!(matches!(
            SpecifiedTable::new(table, other),
            Err(SynthesisError::InvalidFlowTable(_))
        ));
    }

    #[test]
    fn all_benchmarks_build_specified_tables() {
        for table in benchmarks::all() {
            let s = spec(table);
            assert!(s.next_state_functions().is_ok());
            assert!(s.output_functions().is_ok());
            assert!(s.ssd_function().is_ok());
        }
    }
}
