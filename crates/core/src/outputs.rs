//! Step 4 of SEANCE: output (`Z`) and stable-state-detector (`SSD`) equations.
//!
//! Both families of equations are reduced to an *essential* sum-of-products
//! with Quine–McCluskey: because the FANTOM architecture self-synchronizes at
//! the outputs (the `VOM` gating), transient output hazards cannot be
//! captured, so it is not necessary to include every prime implicant in `Z`.
//! Likewise `SSD` may glitch during a multiple-input change — the loop-delay
//! assumption guarantees it settles before `fsv` does — so it too is reduced
//! to an essential cover.

use fantom_boolean::{minimize_function, Cover, CoverFunction, Expr, Function};

use crate::{SpecifiedTable, SynthesisError};

/// The output-stage equations produced by Step 4.
#[derive(Debug, Clone)]
pub struct OutputEquations {
    /// Dense functions for each output bit over the `(x, y)` space.
    pub z_functions: Vec<Function>,
    /// Essential SOP cover for each output bit.
    pub z_covers: Vec<Cover>,
    /// Two-level expression for each output bit.
    pub z_exprs: Vec<Expr>,
    /// Dense function for the stable-state detector.
    pub ssd_function: Function,
    /// Essential SOP cover for the stable-state detector.
    pub ssd_cover: Cover,
    /// Two-level expression for the stable-state detector.
    pub ssd_expr: Expr,
}

impl OutputEquations {
    /// Total number of product terms across the output equations.
    pub fn z_product_terms(&self) -> usize {
        self.z_covers.iter().map(Cover::cube_count).sum()
    }

    /// Total literal count across the output equations.
    pub fn z_literals(&self) -> usize {
        self.z_covers.iter().map(Cover::literal_count).sum()
    }
}

/// Generate the `Z` and `SSD` equations for a specified flow table.
///
/// # Errors
///
/// Propagates dense-function construction errors (machine too large).
pub fn generate(spec: &SpecifiedTable) -> Result<OutputEquations, SynthesisError> {
    let z_functions = spec.output_functions()?;
    let z_covers: Vec<Cover> = z_functions.iter().map(minimize_function).collect();
    let z_exprs: Vec<Expr> = z_covers.iter().map(Expr::from_cover).collect();

    let ssd_function = spec.ssd_function()?;
    let ssd_cover = minimize_function(&ssd_function);
    let ssd_expr = Expr::from_cover(&ssd_cover);

    Ok(OutputEquations {
        z_functions,
        z_covers,
        z_exprs,
        ssd_function,
        ssd_cover,
        ssd_expr,
    })
}

/// The Step 4 equations in sparse cover form.
#[derive(Debug, Clone)]
pub struct CoverOutputEquations {
    /// Cover-represented functions for each output bit over `(x, y)`.
    pub z: Vec<CoverFunction>,
    /// Essential SOP cover for each output bit.
    pub z_covers: Vec<Cover>,
    /// Two-level expression for each output bit.
    pub z_exprs: Vec<Expr>,
    /// Cover-represented stable-state detector.
    pub ssd: CoverFunction,
    /// Essential SOP cover for the stable-state detector.
    pub ssd_cover: Cover,
    /// Two-level expression for the stable-state detector.
    pub ssd_expr: Expr,
}

impl CoverOutputEquations {
    /// Total number of product terms across the output equations.
    pub fn z_product_terms(&self) -> usize {
        self.z_covers.iter().map(Cover::cube_count).sum()
    }

    /// Total literal count across the output equations.
    pub fn z_literals(&self) -> usize {
        self.z_covers.iter().map(Cover::literal_count).sum()
    }
}

/// Generate the `Z` and `SSD` equations in cover form — the sparse
/// counterpart of [`generate`], for machines beyond the dense variable limit.
///
/// # Errors
///
/// Propagates cover-construction errors from the specified table.
pub fn generate_covers(spec: &SpecifiedTable) -> Result<CoverOutputEquations, SynthesisError> {
    let z = spec.output_cover_functions()?;
    let z_covers: Vec<Cover> = z.iter().map(CoverFunction::minimize).collect();
    let z_exprs: Vec<Expr> = z_covers.iter().map(Expr::from_cover).collect();

    let ssd = spec.ssd_cover_function()?;
    let ssd_cover = ssd.minimize();
    let ssd_expr = Expr::from_cover(&ssd_cover);

    Ok(CoverOutputEquations {
        z,
        z_covers,
        z_exprs,
        ssd,
        ssd_cover,
        ssd_expr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fantom_assign::assign;
    use fantom_flow::benchmarks;

    fn spec_for(table: fantom_flow::FlowTable) -> SpecifiedTable {
        let assignment = assign(&table);
        SpecifiedTable::new(table, assignment).unwrap()
    }

    #[test]
    fn z_covers_implement_their_functions() {
        for table in benchmarks::all() {
            let spec = spec_for(table);
            let eqs = generate(&spec).unwrap();
            for (f, c) in eqs.z_functions.iter().zip(&eqs.z_covers) {
                assert!(c.equivalent_to(f));
            }
            assert!(eqs.ssd_cover.equivalent_to(&eqs.ssd_function));
        }
    }

    #[test]
    fn ssd_asserts_at_every_stable_state() {
        let table = benchmarks::lion();
        let spec = spec_for(table);
        let eqs = generate(&spec).unwrap();
        for s in spec.table().states() {
            for c in spec.table().stable_columns(s) {
                let m = spec.minterm(c, spec.code(s));
                assert!(
                    eqs.ssd_cover.covers_minterm(m),
                    "SSD must be 1 at stable ({s}, {c})"
                );
            }
        }
    }

    #[test]
    fn ssd_deasserts_at_unstable_specified_states() {
        let table = benchmarks::test_example();
        let spec = spec_for(table);
        let eqs = generate(&spec).unwrap();
        for s in spec.table().states() {
            for c in 0..spec.table().num_columns() {
                if let Some(t) = spec.table().next_state(s, c) {
                    if t != s {
                        let m = spec.minterm(c, spec.code(s));
                        assert!(!eqs.ssd_cover.covers_minterm(m));
                    }
                }
            }
        }
    }

    #[test]
    fn z_expressions_evaluate_like_covers() {
        let table = benchmarks::traffic();
        let spec = spec_for(table);
        let eqs = generate(&spec).unwrap();
        let vars = spec.num_vars();
        for (cover, expr) in eqs.z_covers.iter().zip(&eqs.z_exprs) {
            for m in 0..(1u64 << vars) {
                let bits: Vec<bool> = (0..vars).map(|i| (m >> (vars - 1 - i)) & 1 == 1).collect();
                assert_eq!(cover.covers_minterm(m), expr.eval(&bits));
            }
        }
    }

    #[test]
    fn cover_outputs_match_dense_outputs_pointwise() {
        for table in benchmarks::all() {
            let spec = spec_for(table);
            let dense = generate(&spec).unwrap();
            let sparse = generate_covers(&spec).unwrap();
            let name = spec.table().name().to_string();
            for (df, sf) in dense.z_functions.iter().zip(&sparse.z) {
                for m in 0..df.space_size() {
                    assert_eq!(sf.is_on(m), df.is_on(m), "{name} Z on {m}");
                    assert_eq!(sf.is_off(m), df.is_off(m), "{name} Z off {m}");
                }
            }
            for (df, c) in dense.z_functions.iter().zip(&sparse.z_covers) {
                assert!(df.implemented_by(c), "{name} Z cover");
            }
            for m in 0..dense.ssd_function.space_size() {
                assert_eq!(
                    sparse.ssd.is_on(m),
                    dense.ssd_function.is_on(m),
                    "{name} ssd {m}"
                );
                assert_eq!(
                    sparse.ssd.is_off(m),
                    dense.ssd_function.is_off(m),
                    "{name} ssd off {m}"
                );
            }
            assert!(
                dense.ssd_function.implemented_by(&sparse.ssd_cover),
                "{name} ssd cover"
            );
        }
    }

    #[test]
    fn product_term_and_literal_counters() {
        let spec = spec_for(benchmarks::lion());
        let eqs = generate(&spec).unwrap();
        assert!(eqs.z_product_terms() >= 1);
        assert!(eqs.z_literals() >= eqs.z_product_terms());
    }
}
