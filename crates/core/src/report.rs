//! Table-1-style reporting.

use std::fmt;

use crate::SynthesisResult;

/// One row of the paper's Table 1: the benchmark name and the depth metrics of
/// the synthesized FANTOM machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Depth of the `fsv` equation.
    pub fsv_depth: usize,
    /// Depth of the deepest next-state equation.
    pub y_depth: usize,
    /// Worst-case depth to `VOM` assertion.
    pub total_depth: usize,
    /// Number of state variables used by the assignment.
    pub state_vars: usize,
    /// Number of hazardous total states found (size of `FL`).
    pub hazard_states: usize,
}

impl Table1Row {
    /// Header line matching [`Table1Row`]'s `Display` format.
    pub fn header() -> String {
        format!(
            "{:<14} {:>9} {:>8} {:>11} {:>10} {:>13}",
            "Benchmark", "fsv Depth", "Y Depth", "Total Depth", "State Vars", "Hazard States"
        )
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>9} {:>8} {:>11} {:>10} {:>13}",
            self.benchmark,
            self.fsv_depth,
            self.y_depth,
            self.total_depth,
            self.state_vars,
            self.hazard_states
        )
    }
}

/// Extract the Table-1 row of a synthesis result.
pub fn table1_row(result: &SynthesisResult) -> Table1Row {
    Table1Row {
        benchmark: result.name.clone(),
        fsv_depth: result.depth.fsv_depth,
        y_depth: result.depth.y_depth,
        total_depth: result.depth.total_depth,
        state_vars: result.spec.num_state_vars(),
        hazard_states: result.hazards.hazard_state_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SynthesisOptions};
    use fantom_flow::benchmarks;

    #[test]
    fn row_reflects_result_and_formats() {
        let table = benchmarks::lion();
        let result = synthesize(&table, &SynthesisOptions::default()).unwrap();
        let row = table1_row(&result);
        assert_eq!(row.benchmark, "lion");
        assert_eq!(row.total_depth, result.depth.total_depth);
        let text = format!("{}\n{row}", Table1Row::header());
        assert!(text.contains("lion"));
        assert!(text.contains("Total Depth"));
    }
}
