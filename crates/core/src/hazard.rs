//! Step 5 of SEANCE: the function-hazard search (the paper's Figure 4).
//!
//! For every stable-state transition whose input vectors differ in more than
//! one bit, the machine may momentarily observe any input vector inside the
//! transition subcube. If, at such an intermediate vector, the flow table
//! would drive a state variable that is supposed to remain invariant across
//! the transition, that total state is a *function hazard*: depending on stray
//! delays the variable could glitch and the machine could commit to a wrong
//! state or emit a wrong output.
//!
//! The search records, for every state variable `Yₙ`, the hazard list `HLₙ`
//! of total states (input vector, present-state code) at which `Yₙ` must be
//! held, and the combined list `FL` used to generate the fantom state
//! variable.

use fantom_boolean::SparseMintermSet;
use fantom_flow::{Bits, StableTransition};

use crate::SpecifiedTable;

/// One hazardous intermediate point discovered by the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HazardSite {
    /// The stable-state transition being traversed.
    pub transition: StableTransition,
    /// The intermediate input vector at which the hazard occurs.
    pub intermediate_input: Bits,
    /// Indices of the state variables that would spuriously change.
    pub variables: Vec<usize>,
    /// The minterm (over the `(x, y)` space) of the hazardous total state.
    pub minterm: u64,
}

/// The result of the hazard search.
///
/// The hazard lists are hash-backed [`SparseMintermSet`]s over the `(x, y)`
/// total state space: the lists hold only the handful of hazardous total
/// states, so their size is independent of the `2^n` space — which lets the
/// same search serve machines far beyond the dense-function variable limit.
#[derive(Debug, Clone)]
pub struct HazardAnalysis {
    /// Hazard list per state variable: minterms of the `(x, y)` space at which
    /// that variable must be held while `fsv = 0`.
    pub hl: Vec<SparseMintermSet>,
    /// The fantom-variable list: union of all per-variable hazard lists; `fsv`
    /// is asserted exactly on these total states.
    pub fl: SparseMintermSet,
    /// Every hazardous intermediate point, for reporting and validation.
    pub sites: Vec<HazardSite>,
}

impl HazardAnalysis {
    /// Number of distinct hazardous total states.
    pub fn hazard_state_count(&self) -> usize {
        self.fl.len()
    }

    /// `true` if the machine has no function hazards (every multiple-input
    /// change is already safe), in which case `fsv` is constant 0.
    pub fn is_hazard_free(&self) -> bool {
        self.fl.is_empty()
    }

    /// Whether `minterm` is in the hazard list of state variable `var`.
    pub fn is_hazardous_for(&self, var: usize, minterm: u64) -> bool {
        self.hl.get(var).is_some_and(|set| set.contains(minterm))
    }
}

/// Run the hazard search of Figure 4 over every stable-state transition of the
/// specified table.
///
/// Unlike the paper's pseudo-code, which reports the first non-invariant
/// variable, this implementation records *every* state variable that would
/// spuriously change at an intermediate point; for a USTT assignment in which
/// each transition changes a single variable the two behaviours coincide.
pub fn analyze(spec: &SpecifiedTable) -> HazardAnalysis {
    let n = spec.num_state_vars();
    let mut hl: Vec<SparseMintermSet> = vec![SparseMintermSet::new(); n];
    let mut fl = SparseMintermSet::new();
    let mut sites = Vec::new();

    for transition in spec.stable_transitions() {
        if !transition.is_multiple_input_change() {
            continue;
        }
        let from_code = spec.code(transition.from_state).clone();
        let to_code = spec.code(transition.to_state).clone();

        for intermediate in Bits::transition_cube(&transition.from_input, &transition.to_input) {
            if intermediate == transition.from_input || intermediate == transition.to_input {
                continue;
            }
            let column = intermediate.index();
            let Some(u) = spec.table().next_state(transition.from_state, column) else {
                continue;
            };
            let u_code = spec.code(u);
            let mut variables = Vec::new();
            for var in 0..n {
                let invariant = from_code.bit(var) == to_code.bit(var);
                if invariant && u_code.bit(var) != from_code.bit(var) {
                    variables.push(var);
                }
            }
            if variables.is_empty() {
                continue;
            }
            let minterm = spec.minterm(column, &from_code);
            for &var in &variables {
                hl[var].insert(minterm);
            }
            fl.insert(minterm);
            sites.push(HazardSite {
                transition: transition.clone(),
                intermediate_input: intermediate,
                variables,
                minterm,
            });
        }
    }

    HazardAnalysis { hl, fl, sites }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fantom_assign::assign;
    use fantom_flow::benchmarks;

    fn spec_for(table: fantom_flow::FlowTable) -> SpecifiedTable {
        let assignment = assign(&table);
        SpecifiedTable::new(table, assignment).unwrap()
    }

    #[test]
    fn hazard_lists_are_consistent_with_fl() {
        use std::collections::BTreeSet;
        for table in benchmarks::all() {
            let spec = spec_for(table);
            let analysis = analyze(&spec);
            let union: BTreeSet<u64> = analysis.hl.iter().flat_map(|s| s.iter()).collect();
            let fl: BTreeSet<u64> = analysis.fl.iter().collect();
            assert_eq!(union, fl, "{}", spec.table().name());
        }
    }

    #[test]
    fn hazard_sites_only_on_multiple_input_changes() {
        for table in benchmarks::all() {
            let spec = spec_for(table);
            let analysis = analyze(&spec);
            for site in &analysis.sites {
                assert!(site.transition.is_multiple_input_change());
                assert!(!site.variables.is_empty());
                // The intermediate input is strictly inside the transition cube.
                assert_ne!(site.intermediate_input, site.transition.from_input);
                assert_ne!(site.intermediate_input, site.transition.to_input);
            }
        }
    }

    #[test]
    fn hazard_variables_are_really_invariant_and_disturbed() {
        for table in benchmarks::all() {
            let spec = spec_for(table);
            let analysis = analyze(&spec);
            for site in &analysis.sites {
                let from = spec.code(site.transition.from_state);
                let to = spec.code(site.transition.to_state);
                let column = site.intermediate_input.index();
                let u = spec
                    .table()
                    .next_state(site.transition.from_state, column)
                    .expect("hazard site requires a specified entry");
                let u_code = spec.code(u);
                for &var in &site.variables {
                    assert_eq!(from.bit(var), to.bit(var), "variable must be invariant");
                    assert_ne!(u_code.bit(var), from.bit(var), "variable must be disturbed");
                }
            }
        }
    }

    #[test]
    fn paper_style_benchmarks_do_have_hazards() {
        // The whole point of FANTOM: realistic machines with multiple-input
        // changes have function hazards to neutralise.
        let hazardous = benchmarks::paper_suite()
            .into_iter()
            .filter(|t| {
                let spec = spec_for(t.clone());
                !analyze(&spec).is_hazard_free()
            })
            .count();
        assert!(
            hazardous >= 3,
            "expected most paper benchmarks to exhibit function hazards"
        );
    }

    #[test]
    fn single_input_change_machine_is_hazard_free() {
        // A machine whose every transition changes one input bit has no
        // function hazards by construction.
        use fantom_flow::FlowTableBuilder;
        let mut b = FlowTableBuilder::new("sic", 1, 1);
        b.states(["A", "B"]);
        b.stable("A", "0", "0").unwrap();
        b.stable("B", "1", "1").unwrap();
        b.transition("A", "1", "B").unwrap();
        b.transition("B", "0", "A").unwrap();
        let table = b.build().unwrap();
        let spec = spec_for(table);
        let analysis = analyze(&spec);
        assert!(analysis.is_hazard_free());
        assert_eq!(analysis.hazard_state_count(), 0);
    }
}
