//! Baseline synthesis styles used for the Section 7 comparison.
//!
//! The paper contrasts FANTOM with two families of approaches:
//!
//! * **Classical Huffman synthesis** restricted to single-input changes: the
//!   same flow table and USTT assignment, next-state logic expanded to all
//!   prime implicants (hazard-free for single-input changes) — but *without*
//!   the fantom variable, so every function hazard found by the Step-5 search
//!   is left unprotected. [`huffman_baseline`] measures its size and depth and
//!   reports the count of unprotected hazards.
//! * **STG-style input expansion**: signal-transition-graph methods avoid
//!   multiple-input-change hazards by expanding the *input space* so the graph
//!   is traversed one bit (arc) at a time, which inflates the specification.
//!   [`stg_expansion_estimate`] quantifies that inflation for a flow table:
//!   how many single-bit steps and how many extra intermediate states would be
//!   needed. FANTOM instead expands the *state-variable space* by a single
//!   variable (`fsv`).

use fantom_assign::assign;
use fantom_boolean::{all_primes_cover, Cover, Expr};
use fantom_flow::FlowTable;

use crate::{hazard, outputs, SpecifiedTable, SynthesisError};

/// Size and depth of a classical (no-`fsv`) Huffman implementation.
#[derive(Debug, Clone)]
pub struct HuffmanBaseline {
    /// Machine name.
    pub name: String,
    /// Number of state variables.
    pub state_vars: usize,
    /// All-prime-implicant covers of the next-state functions over `(x, y)`.
    pub y_covers: Vec<Cover>,
    /// Two-level expressions of the next-state functions.
    pub y_exprs: Vec<Expr>,
    /// Depth of the deepest next-state equation.
    pub y_depth: usize,
    /// Total literal count of the next-state covers.
    pub y_literals: usize,
    /// Total product terms of the next-state covers.
    pub y_product_terms: usize,
    /// Output-stage literal count.
    pub z_literals: usize,
    /// Function hazards (hazardous total states) left unprotected because the
    /// baseline has no fantom variable.
    pub unprotected_hazard_states: usize,
    /// Worst-case depth to stability (one pass through the next-state logic).
    pub total_depth: usize,
}

/// Synthesize the classical Huffman baseline for `table`.
///
/// # Errors
///
/// Propagates validation, assignment and dense-function errors.
pub fn huffman_baseline(table: &FlowTable) -> Result<HuffmanBaseline, SynthesisError> {
    let assignment = assign(table);
    assignment.verify(table)?;
    let spec = SpecifiedTable::new(table.clone(), assignment)?;

    let base = spec.next_state_functions()?;
    let y_covers: Vec<Cover> = base.iter().map(all_primes_cover).collect();
    let y_exprs: Vec<Expr> = y_covers.iter().map(Expr::from_cover).collect();
    let out = outputs::generate(&spec)?;
    let hazards = hazard::analyze(&spec);

    let y_depth = y_exprs.iter().map(Expr::depth).max().unwrap_or(0);
    Ok(HuffmanBaseline {
        name: table.name().to_string(),
        state_vars: spec.num_state_vars(),
        y_literals: y_covers.iter().map(Cover::literal_count).sum(),
        y_product_terms: y_covers.iter().map(Cover::cube_count).sum(),
        z_literals: out.z_literals(),
        unprotected_hazard_states: hazards.hazard_state_count(),
        total_depth: y_depth + 1,
        y_depth,
        y_covers,
        y_exprs,
    })
}

/// Cost estimate of handling the same machine with STG-style single-bit input
/// expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StgExpansionEstimate {
    /// Stable-state transitions in the original specification.
    pub original_transitions: usize,
    /// Transitions that change more than one input bit.
    pub multiple_input_transitions: usize,
    /// Single-bit steps after expanding every multiple-input change into a
    /// sequence of single-bit arcs.
    pub expanded_steps: usize,
    /// Intermediate specification states introduced by the expansion
    /// (one per extra step of every expanded transition).
    pub extra_states: usize,
    /// Input-space expansion factor: expanded steps per original transition
    /// (×100, i.e. a percentage).
    pub expansion_percent: usize,
}

/// Estimate the specification blow-up of the STG-style approach for `table`.
pub fn stg_expansion_estimate(table: &FlowTable) -> StgExpansionEstimate {
    let transitions = table.stable_transitions();
    let original_transitions = transitions.len();
    let mut expanded_steps = 0usize;
    let mut extra_states = 0usize;
    let mut multiple_input_transitions = 0usize;
    for t in &transitions {
        let d = t.input_distance().max(1);
        expanded_steps += d;
        if d > 1 {
            multiple_input_transitions += 1;
            extra_states += d - 1;
        }
    }
    let expansion_percent = (expanded_steps * 100)
        .checked_div(original_transitions)
        .unwrap_or(100);
    StgExpansionEstimate {
        original_transitions,
        multiple_input_transitions,
        expanded_steps,
        extra_states,
        expansion_percent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SynthesisOptions};
    use fantom_flow::benchmarks;

    #[test]
    fn baseline_runs_on_every_benchmark() {
        for table in benchmarks::all() {
            let baseline =
                huffman_baseline(&table).unwrap_or_else(|e| panic!("{}: {e}", table.name()));
            assert!(baseline.y_depth >= 1);
            assert_eq!(baseline.total_depth, baseline.y_depth + 1);
            assert!(baseline.y_product_terms >= 1);
        }
    }

    #[test]
    fn baseline_leaves_hazards_unprotected_where_fantom_finds_them() {
        for table in benchmarks::paper_suite() {
            let result = synthesize(&table, &SynthesisOptions::default()).unwrap();
            let baseline = huffman_baseline(&result.reduced_table).unwrap();
            assert_eq!(
                baseline.unprotected_hazard_states,
                result.hazards.hazard_state_count(),
                "{}",
                table.name()
            );
        }
    }

    #[test]
    fn fantom_total_depth_exceeds_baseline_depth() {
        // The paper is explicit that FANTOM trades depth (slower worst-case
        // response) for hazard freedom; the baseline must therefore be
        // shallower or equal.
        for table in benchmarks::paper_suite() {
            let result = synthesize(&table, &SynthesisOptions::default()).unwrap();
            let baseline = huffman_baseline(&result.reduced_table).unwrap();
            assert!(
                baseline.total_depth <= result.depth.total_depth,
                "{}: baseline {} vs fantom {}",
                table.name(),
                baseline.total_depth,
                result.depth.total_depth
            );
        }
    }

    #[test]
    fn stg_estimate_counts_multiple_input_changes() {
        let table = benchmarks::lion();
        let est = stg_expansion_estimate(&table);
        assert!(est.multiple_input_transitions > 0);
        assert!(est.expanded_steps > est.original_transitions);
        assert!(est.extra_states > 0);
        assert!(est.expansion_percent > 100);
    }

    #[test]
    fn stg_estimate_is_neutral_for_single_input_change_machines() {
        use fantom_flow::FlowTableBuilder;
        let mut b = FlowTableBuilder::new("sic", 1, 1);
        b.states(["A", "B"]);
        b.stable("A", "0", "0").unwrap();
        b.stable("B", "1", "1").unwrap();
        b.transition("A", "1", "B").unwrap();
        b.transition("B", "0", "A").unwrap();
        let est = stg_expansion_estimate(&b.build().unwrap());
        assert_eq!(est.multiple_input_transitions, 0);
        assert_eq!(est.extra_states, 0);
        assert_eq!(est.expansion_percent, 100);
    }
}
