//! Step 6 of SEANCE: the fantom state variable (`fsv`) and the next-state
//! (`Y`) equations over the doubled state space.
//!
//! `fsv` is a purely combinational function of the inputs and the present
//! state — it is *not* a function of itself and therefore cannot latch, which
//! is why the paper calls it a "fantom" variable. It asserts exactly on the
//! hazardous total states found by the hazard search.
//!
//! Each next-state equation is generated over the `(x, y, fsv)` space:
//!
//! * in the `fsv = 0` half-space, every minterm on the variable's hazard list
//!   is **complemented** — the variable is held at its present value, so the
//!   momentary exposure of an intermediate input vector cannot glitch it;
//! * in the `fsv = 1` half-space, the minterms are taken unchanged from the
//!   specified flow table — once `fsv` has marked the state, the transition
//!   proceeds normally (this is what limits a FANTOM machine to at most two
//!   state changes per input change).

use fantom_boolean::{minimize_function, Cover, CoverFunction, Cube, Function, Literal};
use fantom_flow::Bits;

use crate::hazard::HazardAnalysis;
use crate::{SpecifiedTable, SynthesisError};

/// The equations produced by Step 6.
#[derive(Debug, Clone)]
pub struct FsvEquations {
    /// The `fsv` function over the `(x, y)` space.
    pub fsv_function: Function,
    /// Essential SOP cover of `fsv` (before the all-primes expansion of Step 7).
    pub fsv_cover: Cover,
    /// Next-state functions over the `(x, y, fsv)` space.
    pub y_functions: Vec<Function>,
    /// Essential SOP cover of each next-state function.
    pub y_covers: Vec<Cover>,
}

impl FsvEquations {
    /// Number of product terms in the (essential) `fsv` cover.
    pub fn fsv_product_terms(&self) -> usize {
        self.fsv_cover.cube_count()
    }

    /// Total number of product terms across the next-state covers.
    pub fn y_product_terms(&self) -> usize {
        self.y_covers.iter().map(Cover::cube_count).sum()
    }

    /// Total literal count across the next-state covers.
    pub fn y_literals(&self) -> usize {
        self.y_covers.iter().map(Cover::literal_count).sum()
    }
}

/// Generate the `fsv` and `Y` equations.
///
/// # Errors
///
/// Propagates dense-function construction errors and the race-freedom check of
/// [`SpecifiedTable::next_state_functions`].
pub fn generate(
    spec: &SpecifiedTable,
    hazards: &HazardAnalysis,
) -> Result<FsvEquations, SynthesisError> {
    let fsv_function = fsv_function(spec, hazards)?;
    let fsv_cover = minimize_function(&fsv_function);

    let mut base = spec.next_state_functions()?;
    constrain_unspecified_intermediates(spec, &mut base);
    let mut y_functions = Vec::with_capacity(base.len());
    for (var, base_fn) in base.iter().enumerate() {
        y_functions.push(extend_next_state(spec, hazards, var, base_fn)?);
    }
    let y_covers: Vec<Cover> = y_functions.iter().map(minimize_function).collect();

    Ok(FsvEquations {
        fsv_function,
        fsv_cover,
        y_functions,
        y_covers,
    })
}

/// Build the `fsv` function: 1 on every hazard-list state, 0 on every other
/// total state the machine can actually occupy (specified entries and the
/// interiors of their transition subcubes), don't-care on unused codes.
pub fn fsv_function(
    spec: &SpecifiedTable,
    hazards: &HazardAnalysis,
) -> Result<Function, SynthesisError> {
    let vars = spec.num_vars();
    let mut f = Function::constant_dc(vars)?;
    for m in occupied_minterms(spec) {
        f.set_off(m);
    }
    for m in hazards.fl.iter() {
        f.set_on(m);
    }
    Ok(f)
}

/// Complete the don't-cares that sit inside the input transition space of a
/// multiple-input-change transition but whose flow-table entry is unspecified:
/// the invariant state variables are pinned to their present value there.
///
/// The paper's hazard search (Figure 4) only inspects *specified* intermediate
/// entries; for an incompletely specified table the free minimization of an
/// unspecified intermediate entry could otherwise re-introduce exactly the
/// function hazard that `fsv` exists to remove. Pinning the invariant
/// variables is a legal completion of the don't-care (the entry is
/// unconstrained by the specification) and costs nothing at run time.
fn constrain_unspecified_intermediates(spec: &SpecifiedTable, base: &mut [Function]) {
    for transition in spec.stable_transitions() {
        if !transition.is_multiple_input_change() {
            continue;
        }
        let from_code = spec.code(transition.from_state).clone();
        let to_code = spec.code(transition.to_state).clone();
        for intermediate in Bits::transition_cube(&transition.from_input, &transition.to_input) {
            if intermediate == transition.from_input || intermediate == transition.to_input {
                continue;
            }
            let column = intermediate.index();
            if spec
                .table()
                .next_state(transition.from_state, column)
                .is_some()
            {
                continue;
            }
            let m = spec.minterm(column, &from_code);
            for (var, f) in base.iter_mut().enumerate() {
                if from_code.bit(var) == to_code.bit(var) && f.is_dc(m) {
                    if from_code.bit(var) {
                        f.set_on(m);
                    } else {
                        f.set_off(m);
                    }
                }
            }
        }
    }
}

/// All `(x, y)` minterms the machine can occupy: every specified entry's total
/// state plus the interior of every transition subcube.
fn occupied_minterms(spec: &SpecifiedTable) -> Vec<u64> {
    let mut out = Vec::new();
    for s in spec.table().states() {
        for c in 0..spec.table().num_columns() {
            let Some(t) = spec.table().next_state(s, c) else {
                continue;
            };
            let from = spec.code(s).clone();
            let to = spec.code(t).clone();
            for code in Bits::transition_cube(&from, &to) {
                out.push(spec.minterm(c, &code));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Extend a next-state function into the `(x, y, fsv)` space, complementing
/// hazard-list minterms in the `fsv = 0` half.
fn extend_next_state(
    spec: &SpecifiedTable,
    hazards: &HazardAnalysis,
    var: usize,
    base: &Function,
) -> Result<Function, SynthesisError> {
    let vars = spec.num_vars_extended();
    let mut f = Function::constant_false(vars)?;
    // The loop below probes the hazard list for every minterm of the space;
    // materialise the (tiny) sparse list as a dense bitset first so each
    // probe is a word-indexed load instead of a hash lookup.
    let hl = fantom_boolean::MintermSet::from_minterms(
        base.space_size(),
        hazards.hl.get(var).into_iter().flatten(),
    );
    for m in 0..base.space_size() {
        let fsv0 = m << 1;
        let fsv1 = (m << 1) | 1;
        let hazardous = hl.contains(m);
        if base.is_dc(m) {
            f.set_dc(fsv0);
            f.set_dc(fsv1);
            continue;
        }
        let value = base.is_on(m);
        // fsv = 1 half: unchanged.
        if value {
            f.set_on(fsv1);
        } else {
            f.set_off(fsv1);
        }
        // fsv = 0 half: complement on the hazard list (hold the present value).
        let held = if hazardous { !value } else { value };
        if held {
            f.set_on(fsv0);
        } else {
            f.set_off(fsv0);
        }
    }
    Ok(f)
}

/// The Step 6 equations in sparse cover form, for machines beyond the dense
/// variable limit (and as a faster path for cube-specified machines).
#[derive(Debug, Clone)]
pub struct CoverEquations {
    /// The `fsv` function over the `(x, y)` space, cover-represented.
    pub fsv: CoverFunction,
    /// Essential SOP cover of `fsv`.
    pub fsv_cover: Cover,
    /// Next-state functions over the `(x, y, fsv)` space, cover-represented.
    pub y: Vec<CoverFunction>,
    /// Essential SOP cover of each next-state function.
    pub y_covers: Vec<Cover>,
}

impl CoverEquations {
    /// Number of product terms in the (essential) `fsv` cover.
    pub fn fsv_product_terms(&self) -> usize {
        self.fsv_cover.cube_count()
    }

    /// Total number of product terms across the next-state covers.
    pub fn y_product_terms(&self) -> usize {
        self.y_covers.iter().map(Cover::cube_count).sum()
    }

    /// Total literal count across the next-state covers.
    pub fn y_literals(&self) -> usize {
        self.y_covers.iter().map(Cover::literal_count).sum()
    }
}

/// Generate the `fsv` and `Y` equations entirely in cover form — the sparse
/// counterpart of [`generate`]. No step enumerates the `2^n` space: the
/// occupied region, hazard lists and transition subcubes all enter as cubes.
///
/// # Errors
///
/// Propagates cover-construction errors and the race-freedom check of
/// [`SpecifiedTable::next_state_cover_functions`].
pub fn generate_covers(
    spec: &SpecifiedTable,
    hazards: &HazardAnalysis,
) -> Result<CoverEquations, SynthesisError> {
    let fsv = fsv_cover_function(spec, hazards)?;
    let fsv_cover = fsv.minimize();

    let mut base = spec.next_state_cover_functions()?;
    constrain_unspecified_intermediates_covers(spec, &mut base);
    let y: Vec<CoverFunction> = base
        .iter()
        .enumerate()
        .map(|(var, base_fn)| extend_next_state_cover(spec, hazards, var, base_fn))
        .collect();
    let y_covers: Vec<Cover> = y.iter().map(CoverFunction::minimize).collect();

    Ok(CoverEquations {
        fsv,
        fsv_cover,
        y,
        y_covers,
    })
}

/// Build the `fsv` function in cover form: on at every hazard-list total
/// state, off on the rest of the occupied region (derived by disjoint sharp
/// of the occupied cover against the hazard points), implicit don't-care on
/// unused codes. The sparse counterpart of [`fsv_function`].
///
/// # Errors
///
/// Propagates cover-construction errors (never expected for a consistent
/// hazard analysis).
pub fn fsv_cover_function(
    spec: &SpecifiedTable,
    hazards: &HazardAnalysis,
) -> Result<CoverFunction, SynthesisError> {
    let vars = spec.num_vars();
    let on = Cover::from_cubes(
        vars,
        hazards
            .fl
            .iter()
            .map(|m| Cube::from_minterm(vars, m).expect("hazard minterm in range"))
            .collect(),
    );
    let off = spec.occupied_cover().sharp(&on);
    CoverFunction::from_on_off(on, off)
        .map_err(|e| SynthesisError::InvalidFlowTable(format!("inconsistent fsv covers: {e}")))
}

/// Cover-form analog of [`constrain_unspecified_intermediates`]: pin the
/// invariant state variables at unspecified intermediate points by pushing
/// the point cubes into the relevant on/off covers.
fn constrain_unspecified_intermediates_covers(spec: &SpecifiedTable, base: &mut [CoverFunction]) {
    for transition in spec.stable_transitions() {
        if !transition.is_multiple_input_change() {
            continue;
        }
        let from_code = spec.code(transition.from_state).clone();
        let to_code = spec.code(transition.to_state).clone();
        for intermediate in Bits::transition_cube(&transition.from_input, &transition.to_input) {
            if intermediate == transition.from_input || intermediate == transition.to_input {
                continue;
            }
            let column = intermediate.index();
            if spec
                .table()
                .next_state(transition.from_state, column)
                .is_some()
            {
                continue;
            }
            let m = spec.minterm(column, &from_code);
            let point = spec.total_state_point(column, &from_code);
            for (var, f) in base.iter_mut().enumerate() {
                if from_code.bit(var) == to_code.bit(var) && f.is_dc(m) {
                    if from_code.bit(var) {
                        f.push_on(point.clone());
                    } else {
                        f.push_off(point.clone());
                    }
                }
            }
        }
    }
}

/// Append a literal for the new least-significant `fsv` variable to a cube
/// over the `(x, y)` space, producing a cube over `(x, y, fsv)`.
fn extend_cube(cube: &Cube, fsv: Literal) -> Cube {
    Cube::new(cube.literals().chain(std::iter::once(fsv)).collect())
}

/// Extend a next-state cover function into the `(x, y, fsv)` space,
/// complementing hazard-list minterms in the `fsv = 0` half — the sparse
/// counterpart of [`extend_next_state`]. The `fsv = 1` half carries the base
/// covers unchanged; in the `fsv = 0` half the hazard points are carved out
/// of the base covers by disjoint sharp and re-pinned to the held (present)
/// value.
fn extend_next_state_cover(
    spec: &SpecifiedTable,
    hazards: &HazardAnalysis,
    var: usize,
    base: &CoverFunction,
) -> CoverFunction {
    let vars = spec.num_vars();
    let ext_vars = spec.num_vars_extended();
    let hazard_points: Vec<u64> = hazards
        .hl
        .get(var)
        .map(|s| s.iter().collect())
        .unwrap_or_default();
    let hp_cover = Cover::from_cubes(
        vars,
        hazard_points
            .iter()
            .map(|&m| Cube::from_minterm(vars, m).expect("hazard minterm in range"))
            .collect(),
    );

    let mut on: Vec<Cube> = Vec::new();
    let mut off: Vec<Cube> = Vec::new();
    // fsv = 1 half: the base function unchanged.
    on.extend(base.on_cover().iter().map(|c| extend_cube(c, Literal::One)));
    off.extend(
        base.off_cover()
            .iter()
            .map(|c| extend_cube(c, Literal::One)),
    );
    // fsv = 0 half: base minus the hazard points ...
    on.extend(
        base.on_cover()
            .sharp(&hp_cover)
            .iter()
            .map(|c| extend_cube(c, Literal::Zero)),
    );
    off.extend(
        base.off_cover()
            .sharp(&hp_cover)
            .iter()
            .map(|c| extend_cube(c, Literal::Zero)),
    );
    // ... with each hazard point held at its present (complemented) value.
    for &m in &hazard_points {
        let point = Cube::from_minterm(vars, m).expect("hazard minterm in range");
        if base.is_on(m) {
            off.push(extend_cube(&point, Literal::Zero));
        } else if base.is_off(m) {
            on.push(extend_cube(&point, Literal::Zero));
        }
        // A don't-care hazard point stays don't-care in both halves.
    }
    CoverFunction::from_on_off(
        Cover::from_cubes(ext_vars, on),
        Cover::from_cubes(ext_vars, off),
    )
    .expect("hazard carving keeps the extended covers disjoint")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hazard;
    use fantom_assign::assign;
    use fantom_flow::benchmarks;

    fn setup(table: fantom_flow::FlowTable) -> (SpecifiedTable, HazardAnalysis) {
        let assignment = assign(&table);
        let spec = SpecifiedTable::new(table, assignment).unwrap();
        let analysis = hazard::analyze(&spec);
        (spec, analysis)
    }

    #[test]
    fn fsv_is_one_exactly_on_hazard_states_among_occupied() {
        for table in benchmarks::all() {
            let (spec, analysis) = setup(table);
            let eqs = generate(&spec, &analysis).unwrap();
            for m in occupied_minterms(&spec) {
                let expected = analysis.fl.contains(m);
                assert_eq!(
                    eqs.fsv_cover.covers_minterm(m),
                    expected,
                    "{}: fsv wrong at minterm {m}",
                    spec.table().name()
                );
            }
        }
    }

    #[test]
    fn fsv_cover_implements_fsv_function() {
        for table in benchmarks::paper_suite() {
            let (spec, analysis) = setup(table);
            let eqs = generate(&spec, &analysis).unwrap();
            assert!(eqs.fsv_cover.equivalent_to(&eqs.fsv_function));
        }
    }

    #[test]
    fn y_covers_implement_their_functions() {
        for table in benchmarks::paper_suite() {
            let (spec, analysis) = setup(table);
            let eqs = generate(&spec, &analysis).unwrap();
            for (f, c) in eqs.y_functions.iter().zip(&eqs.y_covers) {
                assert!(c.equivalent_to(f), "{}", spec.table().name());
            }
        }
    }

    #[test]
    fn fsv_zero_half_holds_hazardous_variables() {
        for table in benchmarks::paper_suite() {
            let (spec, analysis) = setup(table);
            let eqs = generate(&spec, &analysis).unwrap();
            for (var, hl) in analysis.hl.iter().enumerate() {
                for m in hl.iter() {
                    let (_, code) = spec.decompose(m);
                    let present = code.bit(var);
                    let fsv0 = m << 1;
                    assert_eq!(
                        eqs.y_functions[var].is_on(fsv0),
                        present,
                        "{}: Y{} must hold its present value at hazard minterm {m}",
                        spec.table().name(),
                        var + 1
                    );
                }
            }
        }
    }

    #[test]
    fn fsv_one_half_matches_the_specified_table() {
        for table in benchmarks::paper_suite() {
            let (spec, analysis) = setup(table);
            let eqs = generate(&spec, &analysis).unwrap();
            let base = spec.next_state_functions().unwrap();
            for (var, base_fn) in base.iter().enumerate() {
                for m in 0..base_fn.space_size() {
                    if base_fn.is_dc(m) {
                        continue;
                    }
                    let fsv1 = (m << 1) | 1;
                    assert_eq!(eqs.y_functions[var].is_on(fsv1), base_fn.is_on(m));
                }
            }
        }
    }

    #[test]
    fn cover_equations_match_dense_equations_pointwise() {
        for table in benchmarks::all() {
            let (spec, analysis) = setup(table);
            let dense = generate(&spec, &analysis).unwrap();
            let sparse = generate_covers(&spec, &analysis).unwrap();
            let name = spec.table().name();
            // fsv partition identical.
            for m in 0..dense.fsv_function.space_size() {
                assert_eq!(
                    sparse.fsv.is_on(m),
                    dense.fsv_function.is_on(m),
                    "{name} fsv on {m}"
                );
                assert_eq!(
                    sparse.fsv.is_off(m),
                    dense.fsv_function.is_off(m),
                    "{name} fsv off {m}"
                );
            }
            assert!(sparse.fsv.implemented_by(&sparse.fsv_cover));
            assert!(dense.fsv_function.implemented_by(&sparse.fsv_cover));
            // Next-state partitions identical, covers valid for both forms.
            for (var, (df, sf)) in dense.y_functions.iter().zip(&sparse.y).enumerate() {
                for m in 0..df.space_size() {
                    assert_eq!(sf.is_on(m), df.is_on(m), "{name} Y{var} on {m}");
                    assert_eq!(sf.is_off(m), df.is_off(m), "{name} Y{var} off {m}");
                }
                assert!(df.implemented_by(&sparse.y_covers[var]), "{name} Y{var}");
            }
        }
    }

    #[test]
    fn hazard_free_machine_has_constant_zero_fsv() {
        use fantom_flow::FlowTableBuilder;
        let mut b = FlowTableBuilder::new("sic", 1, 1);
        b.states(["A", "B"]);
        b.stable("A", "0", "0").unwrap();
        b.stable("B", "1", "1").unwrap();
        b.transition("A", "1", "B").unwrap();
        b.transition("B", "0", "A").unwrap();
        let (spec, analysis) = setup(b.build().unwrap());
        let eqs = generate(&spec, &analysis).unwrap();
        assert!(eqs.fsv_cover.is_empty());
    }
}
