//! SEANCE — synthesis of multiple-input change, hazard-free asynchronous
//! finite state machines targeting the FANTOM architecture.
//!
//! This crate is a reproduction of the synthesis system described in
//! *"Synthesis of Multiple-Input Change Asynchronous Finite State Machines"*
//! (Ladd & Birmingham, DAC 1991). Given a (possibly incompletely specified)
//! normal-mode Huffman flow table, the [`synthesize`] pipeline performs the
//! seven steps of the SEANCE procedure:
//!
//! 1. flow-table preparation and validation (`fantom_flow`),
//! 2. table reduction / state minimization (`fantom_minimize`),
//! 3. USTT (Tracey) state assignment (`fantom_assign`),
//! 4. output (`Z`) and stable-state-detector (`SSD`) equation generation
//!    ([`outputs`]),
//! 5. function-hazard search over every multiple-input-change stable-state
//!    transition ([`hazard`], the paper's Figure 4),
//! 6. generation of the fantom state variable (`fsv`) and next-state (`Y`)
//!    equations over the doubled state space ([`fsv`]),
//! 7. hazard factoring into first-level-gate (AND / AND–NOR) form
//!    ([`factoring`], the paper's Figure 5).
//!
//! The result ([`SynthesisResult`]) carries every equation, the depth metrics
//! reported in Table 1 of the paper ([`depth::DepthReport`]), and can be
//! turned into a gate-level netlist of the full FANTOM machine ([`emit`]) for
//! delay-accurate validation ([`validate`]). Baseline synthesis styles used in
//! the paper's Section 7 comparison live in [`baseline`].
//!
//! Two interchangeable engines run the pipeline: [`synthesize`] over dense
//! `2^n` truth tables (small machines, at most
//! [`MAX_DENSE_VARS`](fantom_boolean::MAX_DENSE_VARS) extended variables) and
//! [`synthesize_sparse`] over packed cube covers ([`sparse`]), whose cost
//! scales with the specification size instead of the variable count. Step 2
//! runs under the [`ReductionOptions`] budgets;
//! [`SynthesisOptions::for_large_machines`] picks bounded reduction for
//! 40-state-class machines.
//!
//! # Quickstart
//!
//! ```
//! use fantom_flow::benchmarks;
//! use seance::{synthesize, SynthesisOptions};
//!
//! # fn main() -> Result<(), seance::SynthesisError> {
//! let table = benchmarks::lion();
//! let result = synthesize(&table, &SynthesisOptions::default())?;
//! println!("fsv depth {}", result.depth.fsv_depth);
//! println!("Y depth   {}", result.depth.y_depth);
//! println!("total     {}", result.depth.total_depth);
//! assert!(result.depth.total_depth >= result.depth.fsv_depth);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod campaign;
pub mod depth;
pub mod emit;
mod error;
pub mod factoring;
pub mod fsv;
pub mod fuzz;
pub mod hazard;
pub mod outputs;
pub mod pipeline;
pub mod report;
pub mod service;
pub mod sparse;
pub mod spec;
pub mod validate;
mod workspace;

pub use campaign::{
    run_campaign, run_campaign_parts, run_campaign_sparse, AnalyticVerdicts, CampaignOptions,
    CampaignReport,
};
pub use error::SynthesisError;
pub use fantom_assign::AssignmentOptions;
pub use fantom_minimize::ReductionOptions;
pub use pipeline::{synthesize, SynthesisOptions, SynthesisResult};
pub use report::{table1_row, Table1Row};
pub use service::{synthesize_many, ServiceOptions, SynthesisOutcome, SynthesisService};
pub use sparse::{synthesize_sparse, synthesize_sparse_with, SparseSynthesisResult};
pub use spec::{SpecifiedTable, MAX_TOTAL_VARS};
pub use workspace::Workspace;
