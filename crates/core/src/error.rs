use std::fmt;

use fantom_assign::AssignmentError;
use fantom_boolean::BooleanError;
use fantom_flow::FlowError;

/// Errors produced by the SEANCE synthesis pipeline.
#[derive(Debug)]
pub enum SynthesisError {
    /// The input flow table failed validation (normal mode, connectivity or
    /// stable-column requirements).
    InvalidFlowTable(String),
    /// The state assignment could not be verified as race-free.
    Assignment(AssignmentError),
    /// A Boolean-layer error (function too large, malformed cube, ...).
    Boolean(BooleanError),
    /// A flow-table-layer error.
    Flow(FlowError),
    /// The machine is too large for the dense function representation
    /// (inputs + state variables + fsv exceed the supported limit).
    MachineTooLarge {
        /// Input bits plus state variables plus one (for fsv).
        total_vars: usize,
        /// Maximum supported variable count.
        limit: usize,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InvalidFlowTable(msg) => write!(f, "invalid flow table: {msg}"),
            SynthesisError::Assignment(e) => write!(f, "state assignment error: {e}"),
            SynthesisError::Boolean(e) => write!(f, "boolean layer error: {e}"),
            SynthesisError::Flow(e) => write!(f, "flow table error: {e}"),
            SynthesisError::MachineTooLarge { total_vars, limit } => {
                write!(
                    f,
                    "machine needs {total_vars} variables, above the supported limit of {limit}"
                )
            }
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::Assignment(e) => Some(e),
            SynthesisError::Boolean(e) => Some(e),
            SynthesisError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AssignmentError> for SynthesisError {
    fn from(e: AssignmentError) -> Self {
        SynthesisError::Assignment(e)
    }
}

impl From<BooleanError> for SynthesisError {
    fn from(e: BooleanError) -> Self {
        SynthesisError::Boolean(e)
    }
}

impl From<FlowError> for SynthesisError {
    fn from(e: FlowError) -> Self {
        SynthesisError::Flow(e)
    }
}
