//! Monte-Carlo hazard-validation campaigns over synthesized FANTOM machines.
//!
//! A campaign takes a synthesis result, emits the gate-level machine and
//! drives it through its stable-state transitions (single- *and*
//! multiple-input-change) under many sampled delay assignments — unit,
//! all-minimum, all-maximum and seeded-random styles, round-robin per
//! assignment — checking three things against each other:
//!
//! * **observed behaviour** — settling, final state/output correctness, and
//!   glitch counts on the invariant state variables, windowed per step;
//! * **analytical verdicts** — `fantom_boolean::hazard::is_static_hazard_free`
//!   on the factored `fsv`/`Y` covers (and informationally on `Z`/`SSD`):
//!   a variable whose cover is analytically hazard-free must never glitch on
//!   a protected transition;
//! * **a zero-delay differential oracle** — the dirty-flag propagation
//!   engine of `fantom_sim::campaign` predicts the settled fixpoint, and the
//!   event-driven simulator must agree wherever the machine's behaviour is
//!   delay-independent.
//!
//! ## Protected vs. unprotected transitions
//!
//! The paper's glitch-freedom guarantee covers transitions whose
//! *intermediate* input columns are specified: during a multiple-input
//! change the inputs pass transiently through every column between the
//! source and destination vectors, and only when the flow table sends all of
//! those columns to the destination state is the trajectory pinned down
//! (don't-care intermediate entries leave the synthesizer free to implement
//! anything there). The campaign therefore classifies each transition:
//! **protected** transitions (all intermediate columns specified to reach the
//! destination) carry the strict zero-glitch / correct-final-state
//! assertions, while **unprotected** ones (common in the don't-care-heavy
//! large suite) are still simulated and counted, but divergences are
//! informational. Single-input changes have no intermediate columns and are
//! always protected.
//!
//! All randomness derives from `(campaign seed, assignment, step)` via
//! split-mix streams, so a report is byte-identical for any worker count —
//! the worker pool reuses the claim-counter pattern of
//! [`crate::synthesize_many`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fantom_boolean::hazard::is_static_hazard_free;
use fantom_flow::{Bits, FlowTable, StableTransition};
use fantom_sim::analysis;
use fantom_sim::campaign::{derive_seed, DelaySweep, Harness, OracleVerdict};
use fantom_sim::{DelayModel, DelayStyle, NetId, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::emit::{emit_parts, FantomNetlist, MachineParts};
use crate::{SparseSynthesisResult, SynthesisResult};

/// Configuration of a validation campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignOptions {
    /// Number of sampled delay assignments (trials).
    pub assignments: usize,
    /// Campaign seed; every delay draw and input skew derives from it.
    pub seed: u64,
    /// Smallest sampled gate delay.
    pub delay_min: u64,
    /// Largest sampled gate delay.
    pub delay_max: u64,
    /// Input-change steps per assignment; `0` exercises every stable
    /// transition of the table once per assignment.
    pub sequences_per_assignment: usize,
    /// Event budget per simulator run.
    pub event_budget: usize,
    /// Worker threads; `0` uses the host's available parallelism.
    pub workers: usize,
    /// Cross-check settled states against the zero-delay oracle.
    pub oracle: bool,
    /// Feedback buffer stages per state variable (the campaign raises their
    /// delay to enforce the loop-delay assumption regardless).
    pub loop_stages: usize,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            assignments: 64,
            seed: 0x5EAC_CE01,
            delay_min: 4,
            delay_max: 9,
            sequences_per_assignment: 0,
            event_budget: 200_000,
            workers: 0,
            oracle: true,
            loop_stages: 1,
        }
    }
}

/// Analytical hazard verdicts for every synthesized cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyticVerdicts {
    /// The factored `fsv` cover is static-hazard-free.
    pub fsv_hazard_free: bool,
    /// Per state variable: the factored `Y` cover is static-hazard-free.
    pub y_hazard_free: Vec<bool>,
    /// The `SSD` cover is static-hazard-free (informational; `SSD` is not
    /// hazard-factored — its consumers tolerate pulses).
    pub ssd_hazard_free: bool,
    /// Per output: the `Z` cover is static-hazard-free (informational; `Z`
    /// is latched by the capture stage).
    pub z_hazard_free: Vec<bool>,
}

/// Aggregated result of a campaign. All counters are exact and
/// deterministic for a given `(machine, options)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Machine name.
    pub machine: String,
    /// Delay assignments exercised.
    pub assignments: usize,
    /// Input-change steps simulated.
    pub steps: u64,
    /// Steps on protected transitions (strict checks apply).
    pub protected_steps: u64,
    /// Steps on unprotected transitions (informational checks).
    pub unprotected_steps: u64,
    /// Simulator events processed across the whole campaign.
    pub events: u64,
    /// Steps whose initial fixpoint could not be established.
    pub init_failures: u64,
    /// Protected steps that did not settle within the event budget.
    pub protected_settle_failures: u64,
    /// Unprotected steps that did not settle (informational: a race may
    /// legitimately cycle through unspecified entries).
    pub unprotected_settle_failures: u64,
    /// Protected steps ending in the wrong state code.
    pub wrong_final_state: u64,
    /// Protected steps ending with wrong (specified) output bits.
    pub wrong_final_output: u64,
    /// Glitches on invariant state variables during protected steps.
    pub protected_invariant_glitches: u64,
    /// Same, broken down per state variable (cross-checked against
    /// [`AnalyticVerdicts::y_hazard_free`]).
    pub protected_glitches_per_var: Vec<u64>,
    /// Glitches on invariant state variables during unprotected steps
    /// (informational).
    pub unprotected_invariant_glitches: u64,
    /// Same, broken down per state variable (informational — unprotected
    /// trajectories may pass through unspecified entries).
    pub unprotected_glitches_per_var: Vec<u64>,
    /// Glitches per output variable on steps whose specified output bit is
    /// invariant (informational — `Z` is latched by the capture stage, so
    /// pulses here are tolerated but worth surfacing).
    pub output_glitches_per_var: Vec<u64>,
    /// Extra transitions (beyond the single USTT change) on changing state
    /// variables during protected steps.
    pub excess_state_changes: u64,
    /// Protected steps where the zero-delay oracle disagreed with the
    /// settled simulator state.
    pub protected_oracle_disagreements: u64,
    /// Unprotected steps where the oracle disagreed (informational: races
    /// may resolve differently than the zero-delay interleaving).
    pub unprotected_oracle_disagreements: u64,
    /// Steps where the oracle found no zero-delay fixpoint.
    pub oracle_unstable: u64,
    /// Analytical hazard verdicts the observations are checked against.
    pub analytic: AnalyticVerdicts,
}

impl CampaignReport {
    /// `true` when every strict (protected-transition) check passed and no
    /// analytically hazard-free state variable ever glitched.
    pub fn is_clean(&self) -> bool {
        self.init_failures == 0
            && self.protected_settle_failures == 0
            && self.wrong_final_state == 0
            && self.wrong_final_output == 0
            && self.excess_state_changes == 0
            && self.protected_oracle_disagreements == 0
            && self
                .analytic
                .y_hazard_free
                .iter()
                .zip(&self.protected_glitches_per_var)
                .all(|(&hazard_free, &glitches)| !hazard_free || glitches == 0)
    }

    /// Deterministic multi-line rendering (byte-identical for a fixed seed
    /// and machine regardless of worker count — see `tests/campaign.rs`).
    pub fn render(&self) -> String {
        let fmt_bools = |v: &[bool]| {
            v.iter()
                .map(|b| if *b { "1" } else { "0" })
                .collect::<String>()
        };
        let fmt_counts = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        format!(
            "campaign {}\n\
             assignments={} steps={} protected={} unprotected={} events={}\n\
             init_failures={} settle_failures={}/{} wrong_state={} wrong_output={}\n\
             invariant_glitches={}/{} per_var=[{}] excess_changes={}\n\
             unprotected_per_var=[{}] output_per_var=[{}]\n\
             oracle_disagreements={}/{} oracle_unstable={}\n\
             analytic fsv={} y={} ssd={} z={}\n\
             clean={}\n",
            self.machine,
            self.assignments,
            self.steps,
            self.protected_steps,
            self.unprotected_steps,
            self.events,
            self.init_failures,
            self.protected_settle_failures,
            self.unprotected_settle_failures,
            self.wrong_final_state,
            self.wrong_final_output,
            self.protected_invariant_glitches,
            self.unprotected_invariant_glitches,
            fmt_counts(&self.protected_glitches_per_var),
            self.excess_state_changes,
            fmt_counts(&self.unprotected_glitches_per_var),
            fmt_counts(&self.output_glitches_per_var),
            self.protected_oracle_disagreements,
            self.unprotected_oracle_disagreements,
            self.oracle_unstable,
            u8::from(self.analytic.fsv_hazard_free),
            fmt_bools(&self.analytic.y_hazard_free),
            u8::from(self.analytic.ssd_hazard_free),
            fmt_bools(&self.analytic.z_hazard_free),
            self.is_clean(),
        )
    }
}

/// Per-assignment counters, merged in assignment order.
#[derive(Debug, Clone)]
struct Counters {
    steps: u64,
    protected_steps: u64,
    unprotected_steps: u64,
    events: u64,
    init_failures: u64,
    protected_settle_failures: u64,
    unprotected_settle_failures: u64,
    wrong_final_state: u64,
    wrong_final_output: u64,
    protected_invariant_glitches: u64,
    protected_glitches_per_var: Vec<u64>,
    unprotected_invariant_glitches: u64,
    unprotected_glitches_per_var: Vec<u64>,
    output_glitches_per_var: Vec<u64>,
    excess_state_changes: u64,
    protected_oracle_disagreements: u64,
    unprotected_oracle_disagreements: u64,
    oracle_unstable: u64,
}

impl Counters {
    fn new(num_vars: usize, num_outputs: usize) -> Self {
        Counters {
            steps: 0,
            protected_steps: 0,
            unprotected_steps: 0,
            events: 0,
            init_failures: 0,
            protected_settle_failures: 0,
            unprotected_settle_failures: 0,
            wrong_final_state: 0,
            wrong_final_output: 0,
            protected_invariant_glitches: 0,
            protected_glitches_per_var: vec![0; num_vars],
            unprotected_invariant_glitches: 0,
            unprotected_glitches_per_var: vec![0; num_vars],
            output_glitches_per_var: vec![0; num_outputs],
            excess_state_changes: 0,
            protected_oracle_disagreements: 0,
            unprotected_oracle_disagreements: 0,
            oracle_unstable: 0,
        }
    }

    fn merge(&mut self, other: &Counters) {
        self.steps += other.steps;
        self.protected_steps += other.protected_steps;
        self.unprotected_steps += other.unprotected_steps;
        self.events += other.events;
        self.init_failures += other.init_failures;
        self.protected_settle_failures += other.protected_settle_failures;
        self.unprotected_settle_failures += other.unprotected_settle_failures;
        self.wrong_final_state += other.wrong_final_state;
        self.wrong_final_output += other.wrong_final_output;
        self.protected_invariant_glitches += other.protected_invariant_glitches;
        for (a, b) in self
            .protected_glitches_per_var
            .iter_mut()
            .zip(&other.protected_glitches_per_var)
        {
            *a += b;
        }
        self.unprotected_invariant_glitches += other.unprotected_invariant_glitches;
        for (a, b) in self
            .unprotected_glitches_per_var
            .iter_mut()
            .zip(&other.unprotected_glitches_per_var)
        {
            *a += b;
        }
        for (a, b) in self
            .output_glitches_per_var
            .iter_mut()
            .zip(&other.output_glitches_per_var)
        {
            *a += b;
        }
        self.excess_state_changes += other.excess_state_changes;
        self.protected_oracle_disagreements += other.protected_oracle_disagreements;
        self.unprotected_oracle_disagreements += other.unprotected_oracle_disagreements;
        self.oracle_unstable += other.oracle_unstable;
    }
}

/// Run a campaign over a dense-pipeline synthesis result.
pub fn run_campaign(result: &SynthesisResult, options: &CampaignOptions) -> CampaignReport {
    run_campaign_parts(&MachineParts::from(result), options)
}

/// Run a campaign over a sparse-pipeline synthesis result.
pub fn run_campaign_sparse(
    result: &SparseSynthesisResult,
    options: &CampaignOptions,
) -> CampaignReport {
    run_campaign_parts(&MachineParts::from(result), options)
}

/// Run a campaign from a [`MachineParts`] view.
pub fn run_campaign_parts(parts: &MachineParts<'_>, options: &CampaignOptions) -> CampaignReport {
    let machine = emit_parts(parts, options.loop_stages.max(1));
    let transitions = parts.table.stable_transitions();
    let protected: Vec<bool> = transitions
        .iter()
        .map(|t| is_protected(parts.table, t))
        .collect();
    let analytic = analytic_verdicts(parts);
    let num_vars = machine.y.len();
    let num_outputs = machine.z.len();

    let n = options.assignments;
    let mut merged = Counters::new(num_vars, num_outputs);
    if n > 0 && !transitions.is_empty() {
        let workers = effective_workers(options.workers).min(n);
        if workers <= 1 {
            for a in 0..n {
                let c = run_assignment(parts, &machine, &transitions, &protected, options, a);
                merged.merge(&c);
            }
        } else {
            // Claim-counter pool (the `synthesize_many` pattern): workers
            // pull assignment indices from a shared atomic; per-assignment
            // counters land in submission-order slots, so the merge below is
            // independent of scheduling.
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<Counters>>> = (0..n).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let a = next.fetch_add(1, Ordering::Relaxed);
                        if a >= n {
                            break;
                        }
                        let c =
                            run_assignment(parts, &machine, &transitions, &protected, options, a);
                        *slots[a].lock().expect("slot lock") = Some(c);
                    });
                }
            });
            for slot in slots {
                let c = slot
                    .into_inner()
                    .expect("slot lock")
                    .expect("every slot filled");
                merged.merge(&c);
            }
        }
    }

    CampaignReport {
        machine: parts.name.to_string(),
        assignments: n,
        steps: merged.steps,
        protected_steps: merged.protected_steps,
        unprotected_steps: merged.unprotected_steps,
        events: merged.events,
        init_failures: merged.init_failures,
        protected_settle_failures: merged.protected_settle_failures,
        unprotected_settle_failures: merged.unprotected_settle_failures,
        wrong_final_state: merged.wrong_final_state,
        wrong_final_output: merged.wrong_final_output,
        protected_invariant_glitches: merged.protected_invariant_glitches,
        protected_glitches_per_var: merged.protected_glitches_per_var,
        unprotected_invariant_glitches: merged.unprotected_invariant_glitches,
        unprotected_glitches_per_var: merged.unprotected_glitches_per_var,
        output_glitches_per_var: merged.output_glitches_per_var,
        excess_state_changes: merged.excess_state_changes,
        protected_oracle_disagreements: merged.protected_oracle_disagreements,
        unprotected_oracle_disagreements: merged.unprotected_oracle_disagreements,
        oracle_unstable: merged.oracle_unstable,
        analytic,
    }
}

fn effective_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// A transition is *protected* when every intermediate input column of the
/// multiple-input change is specified to lead to the destination state (see
/// the module docs). Single-input changes are trivially protected.
fn is_protected(table: &FlowTable, t: &StableTransition) -> bool {
    let width = t.from_input.width();
    let diffs: Vec<usize> = (0..width)
        .filter(|&i| t.from_input.bit(i) != t.to_input.bit(i))
        .collect();
    for mask in 0..(1u64 << diffs.len()) {
        let mut bits: Vec<bool> = (0..width).map(|i| t.from_input.bit(i)).collect();
        for (k, &pos) in diffs.iter().enumerate() {
            if (mask >> k) & 1 == 1 {
                bits[pos] = t.to_input.bit(pos);
            }
        }
        let col = Bits::from_bools(bits).index();
        if col == t.from_input.index() {
            continue;
        }
        if table.next_state(t.from_state, col) != Some(t.to_state) {
            return false;
        }
    }
    true
}

fn analytic_verdicts(parts: &MachineParts<'_>) -> AnalyticVerdicts {
    AnalyticVerdicts {
        fsv_hazard_free: is_static_hazard_free(&parts.factored.fsv_cover),
        y_hazard_free: parts
            .factored
            .y_covers
            .iter()
            .map(is_static_hazard_free)
            .collect(),
        ssd_hazard_free: is_static_hazard_free(parts.ssd_cover),
        z_hazard_free: parts.z_covers.iter().map(is_static_hazard_free).collect(),
    }
}

/// Smallest delay the model can assign — bounds the admissible input skew
/// (the paper requires input skew below a gate delay).
fn min_gate_delay(model: &DelayModel) -> u64 {
    match model {
        DelayModel::Unit => 1,
        DelayModel::Fixed(d) => (*d).max(1),
        DelayModel::Random { min, .. } => (*min).max(1),
    }
}

/// Run one delay assignment: build the simulator once, drive the selected
/// transitions through it, and count what happened.
fn run_assignment(
    parts: &MachineParts<'_>,
    machine: &FantomNetlist,
    transitions: &[StableTransition],
    protected: &[bool],
    options: &CampaignOptions,
    assignment: usize,
) -> Counters {
    let sweep = DelaySweep {
        min: options.delay_min,
        max: options.delay_max,
    };
    let model = sweep.model_for_trial(options.seed, assignment);
    // Loop-delay assumption, sized exactly as the validation harness does.
    let loop_delay = (parts.total_depth as u64 + 4) * model.max_delay() * 2;
    let build = || {
        let mut b = Simulator::builder(&machine.netlist)
            .delay_model(model.clone())
            .style(DelayStyle::Inertial)
            .event_budget(options.event_budget);
        for gates in &machine.loop_gates {
            for &g in gates {
                b = b.gate_delay(g, loop_delay);
            }
        }
        for &net in machine
            .y
            .iter()
            .chain(&machine.z)
            .chain([&machine.fsv, &machine.ssd])
        {
            b = b.monitor(net);
        }
        b.build()
    };

    let mut counters = Counters::new(machine.y.len(), machine.z.len());
    let mut harness = Harness::new(build(), options.oracle);

    let all = options.sequences_per_assignment == 0
        || options.sequences_per_assignment >= transitions.len();
    let step_count = if all {
        transitions.len()
    } else {
        options.sequences_per_assignment
    };
    let skew_max = 1.min(min_gate_delay(&model) - 1);

    for step_no in 0..step_count {
        let ti = if all {
            step_no
        } else {
            (derive_seed(
                options.seed ^ 0x7261_6E64,
                ((assignment as u64) << 24) | step_no as u64,
            ) % transitions.len() as u64) as usize
        };
        let t = &transitions[ti];
        let prot = protected[ti];
        let from_code = parts.spec.code(t.from_state).clone();
        let to_code = parts.spec.code(t.to_state).clone();

        // Per-step RNG stream, independent of worker scheduling.
        let mut rng = StdRng::seed_from_u64(derive_seed(
            options.seed ^ 0x5EED_CAFE,
            ((assignment as u64) << 24) | step_no as u64,
        ));

        let mut fixed: Vec<(NetId, bool)> = Vec::with_capacity(machine.x.len() + machine.y.len());
        for (i, &net) in machine.x.iter().enumerate() {
            fixed.push((net, t.from_input.bit(i)));
        }
        for (i, &net) in machine.y.iter().enumerate() {
            fixed.push((net, from_code.bit(i)));
        }
        if harness.init(&fixed).is_err() {
            counters.init_failures += 1;
            counters.events += harness.sim().events_processed();
            harness = Harness::new(build(), options.oracle);
            continue;
        }

        let changes: Vec<(NetId, bool, u64)> = machine
            .x
            .iter()
            .enumerate()
            .filter(|&(i, _)| t.from_input.bit(i) != t.to_input.bit(i))
            .map(|(i, &net)| {
                let skew = if skew_max > 0 {
                    rng.gen_range(0..=skew_max)
                } else {
                    0
                };
                (net, t.to_input.bit(i), 1 + skew)
            })
            .collect();
        let outcome = harness.step(&changes);
        counters.steps += 1;
        if prot {
            counters.protected_steps += 1;
        } else {
            counters.unprotected_steps += 1;
        }

        if outcome.error.is_some() {
            if prot {
                counters.protected_settle_failures += 1;
            } else {
                counters.unprotected_settle_failures += 1;
            }
            counters.events += harness.sim().events_processed();
            harness = Harness::new(build(), options.oracle);
            continue;
        }

        // Glitch accounting, windowed to this step.
        for (i, &net) in machine.y.iter().enumerate() {
            let wave = harness.sim().waveform(net).expect("monitored");
            let changes_seen = analysis::transitions_since(wave, outcome.start_time) as u64;
            if from_code.bit(i) == to_code.bit(i) {
                if prot {
                    counters.protected_invariant_glitches += changes_seen;
                    counters.protected_glitches_per_var[i] += changes_seen;
                } else {
                    counters.unprotected_invariant_glitches += changes_seen;
                    counters.unprotected_glitches_per_var[i] += changes_seen;
                }
            } else if prot && changes_seen > 1 {
                counters.excess_state_changes += changes_seen - 1;
            }
        }

        // Output-variable glitch histogram: counted where the specified
        // output bit is invariant across the step (both endpoint entries
        // specified and equal); informational, like the Z analytic verdicts.
        let from_out = parts.table.output(t.from_state, t.from_input.index());
        let to_out = parts.table.output(t.to_state, t.to_input.index());
        if let (Some(from_out), Some(to_out)) = (&from_out, &to_out) {
            for (i, &net) in machine.z.iter().enumerate() {
                if from_out.bit(i) == to_out.bit(i) {
                    let wave = harness.sim().waveform(net).expect("monitored");
                    counters.output_glitches_per_var[i] +=
                        analysis::transitions_since(wave, outcome.start_time) as u64;
                }
            }
        }

        if prot {
            let state_ok = machine
                .y
                .iter()
                .enumerate()
                .all(|(i, &net)| harness.sim().value(net) == to_code.bit(i));
            if !state_ok {
                counters.wrong_final_state += 1;
            }
            if let Some(out) = parts.table.output(t.to_state, t.to_input.index()) {
                let out_ok = machine
                    .z
                    .iter()
                    .enumerate()
                    .all(|(i, &net)| harness.sim().value(net) == out.bit(i));
                if !out_ok {
                    counters.wrong_final_output += 1;
                }
            }
        }

        match outcome.oracle {
            OracleVerdict::Disagreed { .. } => {
                if prot {
                    counters.protected_oracle_disagreements += 1;
                } else {
                    counters.unprotected_oracle_disagreements += 1;
                }
            }
            OracleVerdict::Unstable { .. } => counters.oracle_unstable += 1,
            OracleVerdict::Agreed | OracleVerdict::Skipped => {}
        }
    }
    counters.events += harness.sim().events_processed();
    counters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SynthesisOptions};
    use fantom_flow::benchmarks;

    fn small_options() -> CampaignOptions {
        CampaignOptions {
            assignments: 8,
            workers: 1,
            ..CampaignOptions::default()
        }
    }

    #[test]
    fn lion_campaign_is_clean() {
        let options = SynthesisOptions {
            minimize_states: false,
            ..SynthesisOptions::default()
        };
        let result = synthesize(&benchmarks::lion(), &options).unwrap();
        let report = run_campaign(&result, &small_options());
        assert!(report.steps > 0);
        assert!(report.protected_steps > 0);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn single_input_changes_are_always_protected() {
        let table = benchmarks::lion();
        for t in table.stable_transitions() {
            if t.input_distance() == 1 {
                assert!(is_protected(&table, &t));
            }
        }
    }

    #[test]
    fn report_rendering_is_stable() {
        let options = SynthesisOptions {
            minimize_states: false,
            ..SynthesisOptions::default()
        };
        let result = synthesize(&benchmarks::lion(), &options).unwrap();
        let a = run_campaign(&result, &small_options()).render();
        let b = run_campaign(&result, &small_options()).render();
        assert_eq!(a, b);
        assert!(a.starts_with("campaign lion\n"));
    }

    #[test]
    fn sparse_entry_point_matches_machine_shape() {
        let result =
            crate::synthesize_sparse(&benchmarks::traffic(), &SynthesisOptions::default()).unwrap();
        let report = run_campaign_sparse(&result, &small_options());
        assert_eq!(report.machine, "traffic");
        assert!(report.steps > 0);
    }
}
