//! Differential fuzzing of the two synthesis pipelines.
//!
//! The fuzz loop closes the circle the rest of the crate only samples:
//! [`fantom_flow::generate`] draws a random-but-valid flow-table shape, both
//! engines synthesize it under identical options, and the results are held
//! against each other pointwise — every sparse cover must implement the dense
//! pipeline's exact function, hazard counts must agree — before the winner is
//! validated end to end by a Monte-Carlo delay campaign
//! ([`crate::run_campaign_sparse`]). Any discrepancy is a bug in one of the
//! engines by construction, because the generator only emits tables that pass
//! [`fantom_flow::validate`].
//!
//! Failing tables are [`shrink`]-minimized by greedy row deletion, input-column
//! projection and don't-care re-introduction while the failure reproduces, so
//! a fuzz finding lands as a small human-readable KISS2 table ready to check
//! into `tests/fuzz_regressions/`.
//!
//! Every case is keyed `(seed, case index)` through the same SplitMix
//! derivation the generator uses, so case `k` of seed `s` is the same machine
//! on every platform regardless of how many cases a wall-clock budget admits.
//!
//! # Example
//!
//! ```
//! use seance::fuzz::{run_fuzz, FuzzOptions};
//!
//! let report = run_fuzz(&FuzzOptions {
//!     max_cases: 2,
//!     budget: std::time::Duration::from_secs(60),
//!     ..FuzzOptions::default()
//! });
//! assert_eq!(report.cases, 2);
//! assert!(report.is_clean(), "{}", report.render());
//! ```

use std::time::{Duration, Instant};

use fantom_flow::generate::{generate, GeneratorOptions};
use fantom_flow::{kiss, validate, FlowTable, StateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{
    run_campaign_sparse, synthesize, synthesize_sparse, CampaignOptions, SynthesisError,
    SynthesisOptions,
};

/// Configuration of a fuzz run.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzOptions {
    /// Base seed; case `k` draws its generator shape from the SplitMix stream
    /// `(seed, k)`.
    pub seed: u64,
    /// Wall-clock budget. The loop stops before starting a case that would
    /// begin past the budget; the cases that do run are identical for a given
    /// seed no matter where the clock cuts off.
    pub budget: Duration,
    /// Hard case cap; `0` means budget-only.
    pub max_cases: usize,
    /// Delay assignments per validation campaign. Small values keep the loop
    /// fast; every assignment still exercises every stable transition of the
    /// machine once.
    pub campaign_assignments: usize,
    /// Shrink failing tables before reporting them.
    pub shrink: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0x5EED_FA22,
            budget: Duration::from_secs(60),
            max_cases: 0,
            campaign_assignments: 4,
            shrink: true,
        }
    }
}

/// One confirmed discrepancy, with the shrunk reproducer.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Case index within the run (reproduce with the run seed and this index).
    pub case: usize,
    /// Generator shape that produced the failing table.
    pub options: GeneratorOptions,
    /// What failed: a differential mismatch or an unclean campaign.
    pub message: String,
    /// The original failing table, as KISS2 text.
    pub table_kiss: String,
    /// The shrunk reproducer (equal to `table_kiss` when shrinking is off or
    /// no move preserved the failure), as KISS2 text.
    pub shrunk_kiss: String,
}

/// Aggregate result of [`run_fuzz`].
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases generated and checked.
    pub cases: usize,
    /// Cases where the machine fit the dense engine, so the full pointwise
    /// differential ran (the rest were campaign-validated only).
    pub differential_cases: usize,
    /// Campaigns run (one per case that synthesized).
    pub campaign_cases: usize,
    /// Confirmed failures, shrunk reproducers included.
    pub failures: Vec<FuzzFailure>,
    /// Wall-clock time consumed.
    pub elapsed: Duration,
}

impl FuzzReport {
    /// `true` when no case produced a differential or campaign mismatch.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable summary; failure reproducers are printed in full so a
    /// CI log alone suffices to pin a regression test.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fuzz: {} cases ({} differential, {} campaigns) in {:.1}s — {}\n",
            self.cases,
            self.differential_cases,
            self.campaign_cases,
            self.elapsed.as_secs_f64(),
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} FAILURES", self.failures.len())
            }
        );
        for f in &self.failures {
            out.push_str(&format!(
                "\ncase {} ({:?}):\n  {}\nshrunk reproducer:\n{}\n",
                f.case, f.options, f.message, f.shrunk_kiss
            ));
        }
        out
    }
}

/// Synthesis options used for every fuzz case: bounded Step 2/3 budgets (the
/// large-machine profile, so reduction is exercised without exponential
/// blow-ups on unlucky shapes) and no all-primes `fsv` expansion (the dense
/// Quine–McCluskey pass over the doubled space is the one cost that scales
/// with `2^n` rather than the specification; the differential compares
/// functions against covers either way).
pub fn fuzz_synthesis_options() -> SynthesisOptions {
    SynthesisOptions {
        fsv_all_primes: false,
        ..SynthesisOptions::for_large_machines()
    }
}

/// SplitMix64 finalizer (same derivation as `fantom_sim::campaign::derive_seed`
/// and `fantom_flow::generate`'s stream keying).
fn derive_stream(base: u64, stream: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sample the generator shape for case `case` of `seed`. Pure function of its
/// arguments: the sampled knobs are independent of every other case.
pub fn sample_options(seed: u64, case: usize) -> GeneratorOptions {
    let mut rng = StdRng::seed_from_u64(derive_stream(seed, case as u64));
    GeneratorOptions {
        states: rng.gen_range(3..=14),
        inputs: rng.gen_range(2..=4),
        outputs: rng.gen_range(1..=3),
        dc_density: rng.gen_range(0u32..=100) as f64 / 100.0,
        fan_in: rng.gen_range(1..=4),
        chain_depth: rng.gen_range(1..=5),
        mic_stable_columns: rng.gen_range(0..=2),
        redundant_clusters: rng.gen_range(0..=2),
        seed: rng.gen_range(0..u64::MAX),
    }
}

/// Outcome bookkeeping for one clean case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseOutcome {
    /// The dense engine accepted the machine, so the pointwise differential
    /// ran (not just the campaign).
    pub differential: bool,
}

/// Run the full fuzz check on one table: sparse synthesis, the dense/sparse
/// pointwise differential (when the machine fits the dense engine), and a
/// validation campaign on the sparse result.
///
/// # Errors
///
/// Returns a description of the first discrepancy found: a pipeline that
/// failed on a generator-certified-valid table, a sparse cover that does not
/// implement the dense function, disagreeing hazard counts, or an unclean
/// campaign report.
pub fn check_table(table: &FlowTable, campaign_assignments: usize) -> Result<CaseOutcome, String> {
    let options = fuzz_synthesis_options();
    let sparse = synthesize_sparse(table, &options)
        .map_err(|e| format!("sparse synthesis failed on a valid table: {e}"))?;

    let mut differential = false;
    match synthesize(table, &options) {
        Ok(dense) => {
            differential = true;
            if !dense
                .equations
                .fsv_function
                .implemented_by(&sparse.factored.fsv_cover)
            {
                return Err("sparse fsv cover does not implement the dense fsv function".into());
            }
            if dense.equations.y_functions.len() != sparse.factored.y_covers.len() {
                return Err(format!(
                    "Y function counts disagree: dense {}, sparse {}",
                    dense.equations.y_functions.len(),
                    sparse.factored.y_covers.len()
                ));
            }
            for (i, (f, c)) in dense
                .equations
                .y_functions
                .iter()
                .zip(&sparse.factored.y_covers)
                .enumerate()
            {
                if !f.implemented_by(c) {
                    return Err(format!(
                        "sparse Y{} cover does not implement the dense function",
                        i + 1
                    ));
                }
            }
            if dense.outputs.z_functions.len() != sparse.outputs.z_covers.len() {
                return Err(format!(
                    "Z function counts disagree: dense {}, sparse {}",
                    dense.outputs.z_functions.len(),
                    sparse.outputs.z_covers.len()
                ));
            }
            for (i, (f, c)) in dense
                .outputs
                .z_functions
                .iter()
                .zip(&sparse.outputs.z_covers)
                .enumerate()
            {
                if !f.implemented_by(c) {
                    return Err(format!(
                        "sparse Z{} cover does not implement the dense function",
                        i + 1
                    ));
                }
            }
            if dense.hazards.hazard_state_count() != sparse.hazards.hazard_state_count() {
                return Err(format!(
                    "hazard state counts disagree: dense {}, sparse {}",
                    dense.hazards.hazard_state_count(),
                    sparse.hazards.hazard_state_count()
                ));
            }
        }
        // Too many extended variables for 2^n truth tables: the differential
        // is skipped, the campaign below still validates the sparse result.
        Err(SynthesisError::MachineTooLarge { .. }) => {}
        Err(e) => {
            return Err(format!(
                "dense synthesis failed where sparse succeeded: {e}"
            ));
        }
    }

    let report = run_campaign_sparse(
        &sparse,
        &CampaignOptions {
            assignments: campaign_assignments.max(1),
            ..CampaignOptions::default()
        },
    );
    if !report.is_clean() {
        return Err(format!("campaign not clean:\n{}", report.render()));
    }
    Ok(CaseOutcome { differential })
}

/// The campaign half of [`check_table`] alone: sparse synthesis plus the
/// validation campaign, no dense differential. For machines where the dense
/// `2^n` tabulation is *feasible but slow* (debug-build replay of the larger
/// grid shapes) — [`check_table`] already skips infeasible ones on its own.
///
/// # Errors
///
/// Returns a description of the failure: sparse synthesis rejecting a valid
/// table, or an unclean campaign report.
pub fn check_table_campaign_only(
    table: &FlowTable,
    campaign_assignments: usize,
) -> Result<(), String> {
    let sparse = synthesize_sparse(table, &fuzz_synthesis_options())
        .map_err(|e| format!("sparse synthesis failed on a valid table: {e}"))?;
    let report = run_campaign_sparse(
        &sparse,
        &CampaignOptions {
            assignments: campaign_assignments.max(1),
            ..CampaignOptions::default()
        },
    );
    if !report.is_clean() {
        return Err(format!("campaign not clean:\n{}", report.render()));
    }
    Ok(())
}

/// Project input variable `var` of `table` to the constant `value`: the
/// result has one fewer input bit and keeps exactly the columns where bit
/// `var` equals `value`. Returns `None` when the table has only one input.
fn project_input(table: &FlowTable, var: usize, value: bool) -> Option<FlowTable> {
    if table.num_inputs() < 2 || var >= table.num_inputs() {
        return None;
    }
    let names = (0..table.num_states())
        .map(|i| table.state_name(StateId(i)).to_string())
        .collect();
    let mut out = FlowTable::new(
        table.name().to_string(),
        table.num_inputs() - 1,
        table.num_outputs(),
        names,
    )
    .ok()?;
    let below = (1usize << var) - 1;
    for new_col in 0..out.num_columns() {
        // Re-insert bit `var` = `value` to find the source column.
        let old_col = (new_col & below) | ((new_col & !below) << 1) | (usize::from(value) << var);
        for s in 0..table.num_states() {
            let entry = table.entry(StateId(s), old_col).clone();
            out.set_entry(StateId(s), new_col, entry.next, entry.output)
                .expect("projected cell in range");
        }
    }
    Some(out)
}

/// Greedily minimize `table` while `still_fails` holds (and the table stays a
/// valid synthesis input). Moves, tried to fixpoint in order: row deletion,
/// input-variable projection (both polarities), and re-introduction of
/// don't-cares at specified transient entries. The result is the smallest
/// table on the greedy path — not a global minimum, but in practice a few
/// rows and columns.
pub fn shrink(table: &FlowTable, still_fails: &mut dyn FnMut(&FlowTable) -> bool) -> FlowTable {
    let mut current = table.clone();
    loop {
        let mut improved = false;

        // Row deletion, one state at a time.
        let mut s = 0;
        while current.num_states() > 2 && s < current.num_states() {
            let keep: Vec<StateId> = (0..current.num_states())
                .filter(|&i| i != s)
                .map(StateId)
                .collect();
            let candidate = current.restrict_to_states(&keep);
            if validate::validate(&candidate).is_acceptable() && still_fails(&candidate) {
                current = candidate;
                improved = true;
            } else {
                s += 1;
            }
        }

        // Input-variable projection, both polarities.
        let mut v = 0;
        while current.num_inputs() > 2 && v < current.num_inputs() {
            let mut projected = false;
            for value in [false, true] {
                if let Some(candidate) = project_input(&current, v, value) {
                    if validate::validate(&candidate).is_acceptable() && still_fails(&candidate) {
                        current = candidate;
                        projected = true;
                        improved = true;
                        break;
                    }
                }
            }
            if !projected {
                v += 1;
            }
        }

        // Don't-care re-introduction: unspecify transient entries one by one.
        for s in 0..current.num_states() {
            for c in 0..current.num_columns() {
                let entry = current.entry(StateId(s), c);
                if entry.is_unspecified() || current.is_stable(StateId(s), c) {
                    continue;
                }
                let mut candidate = current.clone();
                candidate
                    .set_entry(StateId(s), c, None, None)
                    .expect("cell in range");
                if validate::validate(&candidate).is_acceptable() && still_fails(&candidate) {
                    current = candidate;
                    improved = true;
                }
            }
        }

        if !improved {
            return current;
        }
    }
}

/// Run the fuzz loop: generate, check, shrink failures, aggregate.
///
/// Case `k` is a pure function of `(options.seed, k)`; the wall-clock budget
/// only decides how many cases run, never what any case contains.
pub fn run_fuzz(options: &FuzzOptions) -> FuzzReport {
    let start = Instant::now();
    let mut report = FuzzReport {
        cases: 0,
        differential_cases: 0,
        campaign_cases: 0,
        failures: Vec::new(),
        elapsed: Duration::ZERO,
    };
    loop {
        if options.max_cases > 0 && report.cases >= options.max_cases {
            break;
        }
        if options.max_cases == 0 && start.elapsed() >= options.budget {
            break;
        }
        if options.max_cases > 0 && start.elapsed() >= options.budget {
            break;
        }
        let case = report.cases;
        let generator = sample_options(options.seed, case);
        let table = generate(&generator);
        match check_table(&table, options.campaign_assignments) {
            Ok(outcome) => {
                if outcome.differential {
                    report.differential_cases += 1;
                }
                report.campaign_cases += 1;
            }
            Err(message) => {
                let assignments = options.campaign_assignments;
                let shrunk = if options.shrink {
                    shrink(&table, &mut |t| check_table(t, assignments).is_err())
                } else {
                    table.clone()
                };
                report.failures.push(FuzzFailure {
                    case,
                    options: generator,
                    message,
                    table_kiss: kiss::write(&table),
                    shrunk_kiss: kiss::write(&shrunk),
                });
            }
        }
        report.cases += 1;
    }
    report.elapsed = start.elapsed();
    report
}

/// The pinned regression corpus: ten deterministic shapes spanning the knob
/// grid, each shrunk to the smallest table that still contains a
/// multiple-input-change transition (the structural property all the
/// interesting pipeline behavior hangs off). With no outstanding fuzz
/// failures these are "all-clean" pins: `tests/fuzz_regressions.rs` replays
/// the checked-in KISS text of every one through [`check_table`], and
/// `examples/fuzz.rs --emit-corpus` regenerates the files byte-identically.
pub fn regression_corpus() -> Vec<FlowTable> {
    let shapes = [
        // (states, inputs, outputs, dc%, fan_in, chain, mic, redundant)
        (
            4usize, 2usize, 1usize, 20u32, 2usize, 3usize, 1usize, 0usize,
        ),
        (6, 2, 1, 50, 2, 2, 1, 0),
        (8, 2, 2, 40, 2, 3, 1, 1),
        (8, 3, 1, 60, 3, 4, 2, 0),
        (10, 3, 2, 30, 2, 1, 0, 1),
        (10, 4, 1, 70, 4, 5, 2, 0),
        (12, 2, 1, 80, 1, 3, 1, 2),
        (12, 3, 3, 50, 2, 2, 1, 1),
        (14, 4, 2, 40, 3, 4, 2, 2),
        (14, 2, 1, 10, 2, 6, 0, 0),
    ];
    shapes
        .iter()
        .enumerate()
        .map(
            |(i, &(states, inputs, outputs, dc, fan_in, chain, mic, redundant))| {
                let options = GeneratorOptions {
                    seed: derive_stream(0x5EED_C0DE, i as u64),
                    states,
                    inputs,
                    outputs,
                    dc_density: dc as f64 / 100.0,
                    fan_in,
                    chain_depth: chain,
                    mic_stable_columns: mic,
                    redundant_clusters: redundant,
                };
                let table = generate(&options);
                let mut shrunk = shrink(&table, &mut |t| {
                    !t.multiple_input_change_transitions().is_empty()
                });
                shrunk.set_name(format!("fuzz_pin_{i:02}"));
                shrunk
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_options_are_deterministic_per_case() {
        assert_eq!(sample_options(7, 3), sample_options(7, 3));
        assert_ne!(sample_options(7, 3), sample_options(7, 4));
        assert_ne!(sample_options(7, 3), sample_options(8, 3));
    }

    #[test]
    fn a_few_cases_run_clean() {
        let report = run_fuzz(&FuzzOptions {
            max_cases: 3,
            ..FuzzOptions::default()
        });
        assert_eq!(report.cases, 3);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.campaign_cases, 3);
    }

    #[test]
    fn shrink_reaches_a_small_mic_table() {
        let table = generate(&GeneratorOptions {
            states: 12,
            inputs: 3,
            ..GeneratorOptions::default()
        });
        let shrunk = shrink(&table, &mut |t| {
            !t.multiple_input_change_transitions().is_empty()
        });
        assert!(shrunk.num_states() <= table.num_states());
        assert!(validate::validate(&shrunk).is_acceptable());
        assert!(!shrunk.multiple_input_change_transitions().is_empty());
    }

    #[test]
    fn projection_preserves_entries() {
        let table = generate(&GeneratorOptions {
            inputs: 3,
            ..GeneratorOptions::default()
        });
        let projected = project_input(&table, 1, true).expect("3 inputs project");
        assert_eq!(projected.num_inputs(), 2);
        for s in 0..table.num_states() {
            for new_col in 0..projected.num_columns() {
                let old_col = (new_col & 1) | ((new_col & !1usize) << 1) | (1 << 1);
                assert_eq!(
                    projected.entry(StateId(s), new_col),
                    table.entry(StateId(s), old_col)
                );
            }
        }
    }
}
