//! Multi-level logic expressions.
//!
//! SEANCE reports its results (Table 1 of the paper) as the *depth* — the
//! number of gate levels — of the `fsv` and next-state (`Y`) equations after
//! factoring. This module provides the expression tree those equations are
//! built from, the depth/literal metrics, evaluation, and the *first-level
//! gate* transformation of Armstrong, Friedman & Menon (1968): product terms
//! with complemented inputs are rewritten as AND–NOR structures so that the
//! first gate level sees only true (uncomplemented) input and state variables.

use std::fmt;

use crate::{Cover, Cube, Literal};

/// A multi-level Boolean expression over variables identified by index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Constant `0` or `1`.
    Const(bool),
    /// A variable reference (uncomplemented).
    Var(usize),
    /// Logical complement of a sub-expression.
    Not(Box<Expr>),
    /// Conjunction of the sub-expressions.
    And(Vec<Expr>),
    /// Disjunction of the sub-expressions.
    Or(Vec<Expr>),
    /// Complemented disjunction (a single NOR gate).
    Nor(Vec<Expr>),
    /// Complemented conjunction (a single NAND gate).
    Nand(Vec<Expr>),
}

impl Expr {
    /// The constant-0 expression.
    pub fn zero() -> Self {
        Expr::Const(false)
    }

    /// The constant-1 expression.
    pub fn one() -> Self {
        Expr::Const(true)
    }

    /// A single positive literal.
    pub fn var(index: usize) -> Self {
        Expr::Var(index)
    }

    /// A single negative literal (`NOT x`).
    pub fn not_var(index: usize) -> Self {
        Expr::Not(Box::new(Expr::Var(index)))
    }

    /// An n-ary AND, flattening trivial cases (empty → 1, single → operand).
    pub fn and(mut operands: Vec<Expr>) -> Self {
        match operands.len() {
            0 => Expr::one(),
            1 => operands.pop().expect("length checked"),
            _ => Expr::And(operands),
        }
    }

    /// An n-ary OR, flattening trivial cases (empty → 0, single → operand).
    pub fn or(mut operands: Vec<Expr>) -> Self {
        match operands.len() {
            0 => Expr::zero(),
            1 => operands.pop().expect("length checked"),
            _ => Expr::Or(operands),
        }
    }

    /// An n-ary NOR gate. An empty NOR is the constant 1.
    pub fn nor(operands: Vec<Expr>) -> Self {
        if operands.is_empty() {
            Expr::one()
        } else {
            Expr::Nor(operands)
        }
    }

    /// Build the natural two-level (AND–OR) expression of a sum-of-products
    /// cover. Complemented literals are represented with [`Expr::Not`] directly
    /// on the variable (depth 0 contribution — complemented inputs are assumed
    /// available, as in the paper's architecture before first-level-gate
    /// conversion).
    pub fn from_cover(cover: &Cover) -> Self {
        let terms: Vec<Expr> = cover.cubes().iter().map(Self::from_cube).collect();
        Expr::or(terms)
    }

    /// Build the product-term expression of a single cube.
    pub fn from_cube(cube: &Cube) -> Self {
        let mut factors = Vec::new();
        for (var, lit) in cube.literals().enumerate() {
            match lit {
                Literal::One => factors.push(Expr::var(var)),
                Literal::Zero => factors.push(Expr::not_var(var)),
                Literal::DontCare => {}
            }
        }
        Expr::and(factors)
    }

    /// Build the *first-level gate* form of a sum-of-products cover:
    /// each product term with complemented literals `x·y'·z'` becomes
    /// `AND(x, NOR(y, z))`, so every first-level gate input is a true variable.
    ///
    /// This is the conversion applied to `fsv` and the factored next-state
    /// equations in Step 7 of SEANCE.
    pub fn first_level_gates(cover: &Cover) -> Self {
        let terms: Vec<Expr> = cover.cubes().iter().map(Self::first_level_term).collect();
        Expr::or(terms)
    }

    /// First-level-gate form of a single product term.
    pub fn first_level_term(cube: &Cube) -> Self {
        let mut positive = Vec::new();
        let mut negative = Vec::new();
        for (var, lit) in cube.literals().enumerate() {
            match lit {
                Literal::One => positive.push(Expr::var(var)),
                Literal::Zero => negative.push(Expr::var(var)),
                Literal::DontCare => {}
            }
        }
        if negative.is_empty() {
            Expr::and(positive)
        } else if positive.is_empty() {
            Expr::nor(negative)
        } else {
            positive.push(Expr::nor(negative));
            Expr::and(positive)
        }
    }

    /// Number of gate levels of the expression.
    ///
    /// Variables and constants are level 0. AND, OR, NOR and NAND gates add
    /// one level. A NOT directly on a variable is counted as level 0 (the
    /// complemented input is assumed available from the source flip-flop, as
    /// in the FANTOM architecture); a NOT on a larger sub-expression adds one
    /// level (an explicit inverter).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Not(inner) => match **inner {
                Expr::Var(_) | Expr::Const(_) => 0,
                _ => 1 + inner.depth(),
            },
            Expr::And(ops) | Expr::Or(ops) | Expr::Nor(ops) | Expr::Nand(ops) => {
                1 + ops.iter().map(Expr::depth).max().unwrap_or(0)
            }
        }
    }

    /// Number of literal occurrences (variable references) in the expression.
    pub fn literal_count(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Var(_) => 1,
            Expr::Not(inner) => inner.literal_count(),
            Expr::And(ops) | Expr::Or(ops) | Expr::Nor(ops) | Expr::Nand(ops) => {
                ops.iter().map(Expr::literal_count).sum()
            }
        }
    }

    /// Number of gates (AND/OR/NOR/NAND nodes plus non-trivial inverters).
    pub fn gate_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Not(inner) => match **inner {
                Expr::Var(_) | Expr::Const(_) => 0,
                _ => 1 + inner.gate_count(),
            },
            Expr::And(ops) | Expr::Or(ops) | Expr::Nor(ops) | Expr::Nand(ops) => {
                1 + ops.iter().map(Expr::gate_count).sum::<usize>()
            }
        }
    }

    /// Evaluate the expression on a concrete assignment
    /// (index 0 = variable 0; missing indices are an error).
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index is out of bounds of `bits`.
    pub fn eval(&self, bits: &[bool]) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(i) => bits[*i],
            Expr::Not(inner) => !inner.eval(bits),
            Expr::And(ops) => ops.iter().all(|e| e.eval(bits)),
            Expr::Or(ops) => ops.iter().any(|e| e.eval(bits)),
            Expr::Nor(ops) => !ops.iter().any(|e| e.eval(bits)),
            Expr::Nand(ops) => !ops.iter().all(|e| e.eval(bits)),
        }
    }

    /// Largest variable index referenced, or `None` for constant expressions.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            Expr::Const(_) => None,
            Expr::Var(i) => Some(*i),
            Expr::Not(inner) => inner.max_var(),
            Expr::And(ops) | Expr::Or(ops) | Expr::Nor(ops) | Expr::Nand(ops) => {
                ops.iter().filter_map(Expr::max_var).max()
            }
        }
    }

    /// Render the expression with the given variable names.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index has no name.
    pub fn render(&self, names: &[String]) -> String {
        match self {
            Expr::Const(false) => "0".to_string(),
            Expr::Const(true) => "1".to_string(),
            Expr::Var(i) => names[*i].clone(),
            Expr::Not(inner) => match **inner {
                Expr::Var(i) => format!("{}'", names[i]),
                _ => format!("({})'", inner.render(names)),
            },
            Expr::And(ops) => {
                let parts: Vec<String> = ops.iter().map(|e| e.render_factor(names)).collect();
                parts.join("·")
            }
            Expr::Or(ops) => {
                let parts: Vec<String> = ops.iter().map(|e| e.render(names)).collect();
                parts.join(" + ")
            }
            Expr::Nor(ops) => {
                let parts: Vec<String> = ops.iter().map(|e| e.render(names)).collect();
                format!("NOR({})", parts.join(", "))
            }
            Expr::Nand(ops) => {
                let parts: Vec<String> = ops.iter().map(|e| e.render(names)).collect();
                format!("NAND({})", parts.join(", "))
            }
        }
    }

    fn render_factor(&self, names: &[String]) -> String {
        match self {
            Expr::Or(_) => format!("({})", self.render(names)),
            _ => self.render(names),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.max_var().map_or(0, |m| m + 1);
        let names: Vec<String> = (0..max).map(|i| format!("v{i}")).collect();
        write!(f, "{}", self.render(&names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(m: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (m >> (n - 1 - i)) & 1 == 1).collect()
    }

    #[test]
    fn sop_expression_matches_cover() {
        let cover = Cover::parse(3, "1-0 011").unwrap();
        let expr = Expr::from_cover(&cover);
        for m in 0..8u64 {
            assert_eq!(
                expr.eval(&bits(m, 3)),
                cover.covers_minterm(m),
                "minterm {m}"
            );
        }
        assert_eq!(expr.depth(), 2); // AND then OR
    }

    #[test]
    fn first_level_gates_preserve_function() {
        let cover = Cover::parse(4, "1-00 01-1 0-0-").unwrap();
        let two_level = Expr::from_cover(&cover);
        let flg = Expr::first_level_gates(&cover);
        for m in 0..16u64 {
            let b = bits(m, 4);
            assert_eq!(two_level.eval(&b), flg.eval(&b), "minterm {m}");
        }
    }

    #[test]
    fn first_level_gates_have_no_complemented_inputs() {
        fn check_no_complement(e: &Expr) {
            match e {
                Expr::Not(_) => panic!("complemented input found in first-level-gate form"),
                Expr::And(ops) | Expr::Or(ops) | Expr::Nor(ops) | Expr::Nand(ops) => {
                    ops.iter().for_each(check_no_complement)
                }
                _ => {}
            }
        }
        let cover = Cover::parse(3, "0-0 10- 111").unwrap();
        check_no_complement(&Expr::first_level_gates(&cover));
    }

    #[test]
    fn depth_counts_levels() {
        // Pure positive term: depth 1.
        assert_eq!(
            Expr::first_level_term(&Cube::parse("11-").unwrap()).depth(),
            1
        );
        // Mixed term: AND(x, NOR(y)) -> depth 2.
        assert_eq!(
            Expr::first_level_term(&Cube::parse("10-").unwrap()).depth(),
            2
        );
        // Complemented literal on a variable costs nothing in the two-level form.
        assert_eq!(Expr::from_cube(&Cube::parse("10-").unwrap()).depth(), 1);
        // NOT of a composite adds a level.
        let e = Expr::Not(Box::new(Expr::and(vec![Expr::var(0), Expr::var(1)])));
        assert_eq!(e.depth(), 2);
    }

    #[test]
    fn literal_and_gate_counts() {
        let cover = Cover::parse(3, "1-0 011").unwrap();
        let expr = Expr::from_cover(&cover);
        assert_eq!(expr.literal_count(), 5);
        assert_eq!(expr.gate_count(), 3); // two ANDs + one OR

        let flg = Expr::first_level_gates(&cover);
        assert_eq!(flg.literal_count(), 5);
    }

    #[test]
    fn render_uses_names() {
        let e = Expr::or(vec![
            Expr::and(vec![Expr::var(0), Expr::not_var(1)]),
            Expr::var(2),
        ]);
        let names = vec!["x1".to_string(), "x2".to_string(), "y1".to_string()];
        assert_eq!(e.render(&names), "x1·x2' + y1");
    }

    #[test]
    fn trivial_constructors_collapse() {
        assert_eq!(Expr::and(vec![]), Expr::one());
        assert_eq!(Expr::or(vec![]), Expr::zero());
        assert_eq!(Expr::and(vec![Expr::var(3)]), Expr::var(3));
        assert_eq!(Expr::or(vec![Expr::var(2)]), Expr::var(2));
        assert_eq!(Expr::nor(vec![]), Expr::one());
    }

    #[test]
    fn empty_cover_is_constant_zero() {
        let expr = Expr::from_cover(&Cover::empty(3));
        assert_eq!(expr, Expr::zero());
        assert_eq!(expr.depth(), 0);
    }
}
