//! Quine–McCluskey prime-implicant generation.
//!
//! SEANCE relies on two-level minimization in three places: the output (`Z`)
//! equations, the stable-state-detector (`SSD`) equation (Step 4) and the
//! `fsv` / next-state equations (Steps 6–7). The paper explicitly names the
//! Quine–McCluskey procedure; this module implements the tabulation method
//! over the dense [`Function`] representation.
//!
//! The tabulation works directly on the packed `(mask, value)` word encoding
//! that [`Cube::from_mask_value`] consumes; buckets are keyed by the packed
//! words through the workspace [`fxhash`](crate::fxhash) hasher, and the
//! dedup sets are reused across merge passes instead of being rebuilt.

use crate::collections::{HashMap, HashSet};
use crate::{Cube, Function};

/// Compact tabulation cube: `mask` has a 1 for every bound position (bit 0 =
/// variable n-1, i.e. the minterm LSB), `value` holds the bound values.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Pc {
    mask: u64,
    value: u64,
}

/// Compute all prime implicants of `f` (cubes maximal within `on ∪ dc` that
/// intersect the on-set or don't-care set).
///
/// The classic tabulation is used: minterms of `on ∪ dc` are grouped by
/// popcount and repeatedly merged along single-bit adjacencies; cubes that are
/// never merged into a larger cube are prime.
///
/// # Example
///
/// ```
/// use fantom_boolean::{quine, Function};
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// // f = Σ m(0,1,2,3) over 2 vars is the constant 1: a single prime "--".
/// let f = Function::from_on_set(2, &[0, 1, 2, 3])?;
/// let primes = quine::prime_implicants(&f);
/// assert_eq!(primes.len(), 1);
/// assert!(primes[0].is_universe());
/// # Ok(())
/// # }
/// ```
pub fn prime_implicants(f: &Function) -> Vec<Cube> {
    let n = f.num_vars();
    let full_mask: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut current: Vec<Pc> = (0..f.space_size())
        .filter(|&m| !f.is_off(m))
        .map(|m| Pc {
            mask: full_mask,
            value: m,
        })
        .collect();

    let mut primes: Vec<Pc> = Vec::new();
    let mut seen_primes: HashSet<(u64, u64)> = HashSet::default();
    // Scratch state reused across merge passes (no per-pass rebuild).
    let mut groups: HashMap<(u64, u32), Vec<usize>> = HashMap::default();
    let mut next_seen: HashSet<(u64, u64)> = HashSet::default();
    let mut merged_flag: Vec<bool> = Vec::new();

    while !current.is_empty() {
        // Group cubes by (mask, popcount of value) so only mergeable pairs are
        // compared: a merge requires identical masks and values differing in a
        // single bit. Keys from different passes are disjoint (each pass drops
        // one mask bit), so drop them wholesale; `clear` keeps the map's table
        // allocation across passes.
        groups.clear();
        for (i, pc) in current.iter().enumerate() {
            groups
                .entry((pc.mask, pc.value.count_ones()))
                .or_default()
                .push(i);
        }

        merged_flag.clear();
        merged_flag.resize(current.len(), false);
        next_seen.clear();
        let mut next: Vec<Pc> = Vec::new();

        for (&(mask, ones), idxs) in &groups {
            let Some(upper) = groups.get(&(mask, ones + 1)) else {
                continue;
            };
            for &i in idxs {
                for &j in upper {
                    let diff = current[i].value ^ current[j].value;
                    if diff.count_ones() == 1 {
                        merged_flag[i] = true;
                        merged_flag[j] = true;
                        let merged = Pc {
                            mask: mask & !diff,
                            value: current[i].value & !diff,
                        };
                        if next_seen.insert((merged.mask, merged.value)) {
                            next.push(merged);
                        }
                    }
                }
            }
        }

        for (i, pc) in current.iter().enumerate() {
            if !merged_flag[i] && seen_primes.insert((pc.mask, pc.value)) {
                primes.push(*pc);
            }
        }
        current = next;
    }

    // Convert back to positional (packed) cubes, keeping only primes that
    // cover at least one on-set minterm; primes covering exclusively
    // don't-cares are useless to any cover.
    let mut out: Vec<Cube> = primes
        .iter()
        .map(|pc| Cube::from_mask_value(n, pc.mask, pc.value))
        .filter(|p| f.cube_intersects_on(p))
        .collect();
    out.sort();
    out
}

/// Compute a set of prime implicants sufficient to cover the on-set of `f` by
/// *expansion*: each on-set minterm is greedily widened, one variable at a
/// time, as far as the off-set allows. Every returned cube is prime (maximal),
/// but unlike [`prime_implicants`] the set is not exhaustive — primes that
/// cover only don't-care minterms, or that are not reachable by the fixed
/// expansion order, are omitted.
///
/// This is the generation step used by [`crate::minimize_function`]: for the
/// sparse, don't-care-heavy functions produced by flow-table synthesis the
/// full tabulation can enumerate an exponential number of primes, while the
/// expansion touches only `|on| × vars × |off|` combinations.
pub fn expand_primes(f: &Function) -> Vec<Cube> {
    let n = f.num_vars();
    // Precompute the off-set as packed minterm cubes: each widening test is
    // then a word-parallel containment check instead of a per-literal loop.
    let off_cubes: Vec<Cube> = f
        .off_minterms()
        .map(|m| Cube::from_minterm(n, m).expect("minterm within range"))
        .collect();
    let mut out: Vec<Cube> = Vec::new();
    // Dedup through an incremental CoverIndex: a prime produced by the fixed
    // expansion order can only be *contained* in an earlier one by being
    // *equal* to it (a strictly contained result would have kept widening
    // along the earlier prime's free variables), so the word-parallel
    // single-cube-coverage query is an exact duplicate test — and unlike a
    // hash set it also absorbs any future non-maximal entries for free.
    let mut seen = crate::index::CoverIndex::new(n);
    let mut cand: Vec<u64> = Vec::new();
    for m in f.on_minterms() {
        let mut cube = Cube::from_minterm(n, m).expect("minterm within range");
        for var in 0..n {
            let widened = cube.with_literal(var, crate::Literal::DontCare);
            if !off_cubes.iter().any(|o| widened.covers(o)) {
                cube = widened;
            }
        }
        if !seen.covering_candidates(&cube, &mut cand) {
            seen.push(&cube);
            out.push(cube);
        }
    }
    out.sort();
    out
}

/// Identify the essential prime implicants among `primes` with respect to `f`:
/// primes that are the *only* prime covering some on-set minterm.
pub fn essential_primes(f: &Function, primes: &[Cube]) -> Vec<Cube> {
    let mut essential: Vec<Cube> = Vec::new();
    for m in f.on_minterms() {
        let mut covering = primes.iter().filter(|p| p.contains_minterm(m));
        if let (Some(p), None) = (covering.next(), covering.next()) {
            if !essential.contains(p) {
                essential.push(p.clone());
            }
        }
    }
    essential
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cover;

    #[test]
    fn textbook_example_primes() {
        // Classic QM example: f(a,b,c,d) = Σ m(4,8,10,11,12,15) + d(9,14)
        let f = Function::from_on_dc(4, &[4, 8, 10, 11, 12, 15], &[9, 14]).unwrap();
        let primes = prime_implicants(&f);
        let strs: HashSet<String> = primes.iter().map(Cube::to_string).collect();
        let expected: HashSet<String> = ["-100", "1--0", "1-1-", "10--"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(strs, expected);
    }

    #[test]
    fn primes_are_implicants_and_maximal() {
        let f = Function::from_on_dc(4, &[0, 1, 2, 5, 6, 7, 8, 9, 10, 14], &[3]).unwrap();
        let primes = prime_implicants(&f);
        for p in &primes {
            // Implicant: never touches off-set.
            assert!(f.admits_cube(p), "prime {p} intersects the off-set");
            // Maximal: freeing any bound literal leaves the on∪dc region.
            for v in 0..4 {
                if p.literal(v) != crate::Literal::DontCare {
                    let widened = p.with_literal(v, crate::Literal::DontCare);
                    assert!(
                        !f.admits_cube(&widened),
                        "prime {p} is not maximal (can widen var {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn union_of_primes_covers_on_set() {
        let f = Function::from_on_dc(5, &[0, 3, 5, 9, 11, 17, 21, 29, 30], &[2, 12]).unwrap();
        let primes = prime_implicants(&f);
        let cover = Cover::from_cubes(5, primes);
        for m in f.on_minterms() {
            assert!(cover.covers_minterm(m), "minterm {m} not covered by primes");
        }
        assert!(f.implemented_by(&cover) || !cover.is_empty());
    }

    #[test]
    fn constant_zero_has_no_primes() {
        let f = Function::constant_false(3).unwrap();
        assert!(prime_implicants(&f).is_empty());
    }

    #[test]
    fn dc_only_primes_are_dropped() {
        // On-set empty but don't-cares present: no useful primes.
        let f = Function::from_on_dc(3, &[], &[0, 1, 2, 3]).unwrap();
        assert!(prime_implicants(&f).is_empty());
    }

    #[test]
    fn essential_primes_detected() {
        // f = Σ m(0,1,5,7): primes are 00-, -01, 1-1, -11... essential ones cover
        // minterms reachable by exactly one prime.
        let f = Function::from_on_set(3, &[0, 1, 5, 7]).unwrap();
        let primes = prime_implicants(&f);
        let ess = essential_primes(&f, &primes);
        // minterm 0 only covered by 00-, minterm 7 only by 1-1 or -11 depending
        // on the prime set; just check every essential is a prime and nonempty.
        assert!(!ess.is_empty());
        for e in &ess {
            assert!(primes.contains(e));
        }
    }

    #[test]
    fn expansion_primes_match_tabulation_semantics() {
        // Every expanded prime must be a true prime implicant, and together
        // they must cover the on-set.
        let f = Function::from_on_dc(6, &[0, 5, 9, 13, 21, 33, 40, 52, 63], &[1, 8, 20]).unwrap();
        let primes = expand_primes(&f);
        let cover = Cover::from_cubes(6, primes.clone());
        for m in f.on_minterms() {
            assert!(cover.covers_minterm(m));
        }
        for p in &primes {
            assert!(f.admits_cube(p));
            for v in 0..6 {
                if p.literal(v) != crate::Literal::DontCare {
                    assert!(!f.admits_cube(&p.with_literal(v, crate::Literal::DontCare)));
                }
            }
        }
    }
}
