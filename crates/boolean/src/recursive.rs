//! Sparse, cover-based Boolean algorithms in the *unate-recursive paradigm*.
//!
//! The dense [`Function`](crate::Function) representation tops out at
//! [`MAX_DENSE_VARS`](crate::MAX_DENSE_VARS) variables because every algorithm
//! over it walks the full `2^n` minterm space. This module provides the
//! operations the synthesis pipeline needs — prime-implicant generation and
//! complementation — directly on packed cube [`Cover`]s, with cost driven by
//! the *cover size* rather than the space size, following the classical
//! unate-recursive paradigm of espresso (Brayton et al., *Logic Minimization
//! Algorithms for VLSI Synthesis*, 1984):
//!
//! * **Binate select** ([`most_binate_variable`]): pick the splitting variable
//!   that appears in both phases in the most cubes (ties broken towards the
//!   most balanced phase counts, then the lowest index). Splitting on the most
//!   binate variable drives both cofactors towards unateness fastest.
//! * **Cofactor** ([`cofactor`]): the Shannon cofactor of a cover is computed
//!   cube-wise — cubes bound to the opposite phase drop out, all others free
//!   the variable ([`Cube::cofactor`]).
//! * **Unate leaf**: a cover in which no variable appears in both phases is
//!   *unate*. For a unate cover, removing single-cube-contained cubes leaves
//!   exactly the set of all prime implicants of the function (every prime of a
//!   unate function is essential, so any cover must mention each of them), so
//!   the recursion stops without further splitting.
//! * **Merge**: the primes of `F` are recovered from the primes of the two
//!   cofactors as `SCC(x'·P₀ ∪ x·P₁ ∪ (P₀ ⊓ P₁))` where `P₀ ⊓ P₁` is the set
//!   of pairwise intersections (the consensus terms across the split) and
//!   `SCC` removes single-cube-contained candidates.
//!
//! [`complement`] follows the same recursion with the complement recurrence
//! `¬F = x'·¬F₀ ∪ x·¬F₁` (a single-cube leaf is complemented by De Morgan
//! into a disjoint cover); [`Cover::sharp`] then gives cover *difference*
//! without ever touching minterms. Together these let
//! [`CoverFunction`](crate::CoverFunction) derive the off-set of an
//! incompletely specified function by recursive sharp/complement where the
//! dense path would enumerate `2^n` points.
//!
//! ## Which representation to use when
//!
//! * **Bitset [`Function`](crate::Function)** — exact, simple, O(1) point
//!   queries; the right tool up to ~16–20 variables and the differential
//!   *oracle* for everything in this module (see
//!   `crates/boolean/tests/recursive_properties.rs`).
//! * **Cube-cover [`CoverFunction`](crate::CoverFunction)** — the only viable
//!   representation beyond [`MAX_DENSE_VARS`](crate::MAX_DENSE_VARS); all
//!   costs scale with cover sizes. Prefer it whenever the function is *given*
//!   as cubes (flow-table transition subcubes, minimized covers), even at
//!   small sizes.

use crate::collections::HashMap;
use crate::{Cover, Cube, Literal};

/// Per-variable phase counts of a cover (how many cubes bind the variable to
/// zero / one).
fn phase_counts(cover: &Cover) -> Vec<(usize, usize)> {
    let mut counts = vec![(0usize, 0usize); cover.num_vars()];
    for cube in cover.cubes() {
        for (v, lit) in cube.literals().enumerate() {
            match lit {
                Literal::Zero => counts[v].0 += 1,
                Literal::One => counts[v].1 += 1,
                Literal::DontCare => {}
            }
        }
    }
    counts
}

/// The most binate variable of the cover: the variable bound in both phases
/// by the largest number of cubes, ties broken towards balanced phases, then
/// the lowest index. Returns `None` when the cover is unate (no variable
/// appears in both phases).
pub fn most_binate_variable(cover: &Cover) -> Option<usize> {
    let mut best: Option<(usize, usize, usize)> = None; // (total, min_phase, var)
    for (v, &(zeros, ones)) in phase_counts(cover).iter().enumerate() {
        if zeros == 0 || ones == 0 {
            continue;
        }
        let key = (zeros + ones, zeros.min(ones), v);
        // Ascending scan + strict `>` realises the lowest-index tie-break.
        let better = match best {
            None => true,
            Some((t, m, _)) => (key.0, key.1) > (t, m),
        };
        if better {
            best = Some(key);
        }
    }
    best.map(|(_, _, v)| v)
}

/// `true` if no variable of the cover appears in both phases.
pub fn is_unate(cover: &Cover) -> bool {
    most_binate_variable(cover).is_none()
}

/// The Shannon cofactor of a cover with respect to `var = value`, computed
/// cube-wise.
pub fn cofactor(cover: &Cover, var: usize, value: bool) -> Cover {
    Cover::from_cubes(
        cover.num_vars(),
        cover
            .cubes()
            .iter()
            .filter_map(|c| c.cofactor(var, value))
            .collect(),
    )
}

/// Remove single-cube-contained cubes, returning the survivors sorted.
fn scc(num_vars: usize, cubes: Vec<Cube>) -> Vec<Cube> {
    let mut cover = Cover::from_cubes(num_vars, cubes);
    cover.remove_contained_cubes();
    let mut out = cover.cubes().to_vec();
    out.sort();
    out
}

/// All prime implicants (the *complete sum*) of the function denoted by
/// `cover`, computed by the unate-recursive paradigm described in the module
/// docs. Any cover of the function yields the same result.
///
/// # Example
///
/// ```
/// use fantom_boolean::{recursive, Cover};
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// // f = ab + a'c has the consensus prime bc.
/// let cover = Cover::parse(3, "11- 0-1")?;
/// let primes = recursive::complete_sum(&cover);
/// let strs: Vec<String> = primes.iter().map(|c| c.to_string()).collect();
/// assert_eq!(strs, vec!["0-1", "11-", "-11"]);
/// # Ok(())
/// # }
/// ```
pub fn complete_sum(cover: &Cover) -> Vec<Cube> {
    let n = cover.num_vars();
    if cover.is_empty() {
        return Vec::new();
    }
    if cover.cubes().iter().any(Cube::is_universe) {
        return vec![Cube::universe(n)];
    }
    let Some(var) = most_binate_variable(cover) else {
        // Unate leaf: the SCC-minimal cubes are exactly the primes.
        return scc(n, cover.cubes().to_vec());
    };
    let p0 = complete_sum(&cofactor(cover, var, false));
    let p1 = complete_sum(&cofactor(cover, var, true));
    let mut candidates: Vec<Cube> = Vec::with_capacity(p0.len() + p1.len() + p0.len() * p1.len());
    for c in &p0 {
        candidates.push(c.with_literal(var, Literal::Zero));
    }
    for c in &p1 {
        candidates.push(c.with_literal(var, Literal::One));
    }
    // Cross-consensus: cofactor primes never mention `var`, so each pairwise
    // intersection is a var-free implicant; every var-free prime of F is
    // maximal among these.
    for a in &p0 {
        for b in &p1 {
            if let Some(c) = a.intersect(b) {
                candidates.push(c);
            }
        }
    }
    scc(n, candidates)
}

/// Complement a single cube by De Morgan into a disjoint cover: for each
/// bound position, one cube flips it while pinning the earlier bound
/// positions to their cube value.
fn complement_cube(cube: &Cube) -> Vec<Cube> {
    Cube::universe(cube.num_vars()).sharp(cube)
}

/// A cover of the complement `¬F`, computed by the recursive Shannon
/// recurrence `¬F = x'·¬F₀ ∪ x·¬F₁` with single-cube leaves complemented by
/// De Morgan. Cubes identical up to the phase of the splitting variable are
/// merged on the way back up, so structured covers stay compact.
///
/// # Example
///
/// ```
/// use fantom_boolean::{recursive, Cover};
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// let cover = Cover::parse(2, "1- -1")?;
/// let complement = recursive::complement(&cover);
/// assert_eq!(complement.to_string(), "00");
/// # Ok(())
/// # }
/// ```
pub fn complement(cover: &Cover) -> Cover {
    let n = cover.num_vars();
    if cover.is_empty() {
        return Cover::from_cubes(n, vec![Cube::universe(n)]);
    }
    if cover.cubes().iter().any(Cube::is_universe) {
        return Cover::empty(n);
    }
    if cover.cube_count() == 1 {
        return Cover::from_cubes(n, complement_cube(&cover.cubes()[0]));
    }
    // Split on the most binate variable; a unate cover still recurses, on the
    // variable bound in the most cubes (each cofactor then drops or shortens
    // cubes, so the recursion terminates).
    let var = most_binate_variable(cover).unwrap_or_else(|| {
        phase_counts(cover)
            .iter()
            .enumerate()
            .max_by_key(|(_, &(z, o))| z + o)
            .map(|(v, _)| v)
            .expect("non-empty cover has at least one variable")
    });
    let c0 = complement(&cofactor(cover, var, false));
    let c1 = complement(&cofactor(cover, var, true));
    // Merge: cubes present in both branches (up to the split variable) keep
    // the variable free instead of appearing twice.
    let mut out: Vec<Cube> = Vec::with_capacity(c0.cube_count() + c1.cube_count());
    let mut from_zero: HashMap<Cube, bool> = HashMap::default();
    for c in c0.cubes() {
        from_zero.insert(c.clone(), false);
    }
    for c in c1.cubes() {
        if let Some(used) = from_zero.get_mut(c) {
            *used = true;
            out.push(c.clone());
        } else {
            out.push(c.with_literal(var, Literal::One));
        }
    }
    for (c, used) in from_zero {
        if !used {
            out.push(c.with_literal(var, Literal::Zero));
        }
    }
    let mut cover = Cover::from_cubes(n, out);
    cover.remove_contained_cubes();
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{quine, Function};

    fn dense(cover: &Cover) -> Function {
        Function::from_cover(cover, None).unwrap()
    }

    #[test]
    fn cofactor_matches_dense_semantics() {
        let cover = Cover::parse(3, "11- 0-1 10-").unwrap();
        let f = dense(&cover);
        for var in 0..3 {
            for value in [false, true] {
                let cf = cofactor(&cover, var, value);
                // Evaluate the cofactor against the dense function restricted
                // to var = value: for every assignment of the other vars.
                for m in 0..8u64 {
                    let bit = (m >> (2 - var)) & 1 == 1;
                    if bit != value {
                        continue;
                    }
                    assert_eq!(cf.covers_minterm(m), f.is_on(m), "var {var}={value} m={m}");
                }
            }
        }
    }

    #[test]
    fn binate_selection() {
        // var 0 appears in both phases; var 2 only positive.
        let cover = Cover::parse(3, "1-1 0-1 11-").unwrap();
        assert_eq!(most_binate_variable(&cover), Some(0));
        assert!(!is_unate(&cover));
        let unate = Cover::parse(3, "1-1 -11").unwrap();
        assert_eq!(most_binate_variable(&unate), None);
        assert!(is_unate(&unate));
    }

    #[test]
    fn complete_sum_matches_quine_on_assorted_covers() {
        for text in [
            "11- 0-1",
            "1-- -11 001",
            "10-- -011 1-1- 0000",
            "1--- 0111 --00",
            "---- 10--",
        ] {
            let n = text.split_whitespace().next().unwrap().len();
            let cover = Cover::parse(n, text).unwrap();
            let f = dense(&cover);
            let mut expected = quine::prime_implicants(&f);
            expected.sort();
            let got = complete_sum(&cover);
            assert_eq!(got, expected, "cover {text}");
        }
    }

    #[test]
    fn complete_sum_of_unate_cover_is_scc() {
        let cover = Cover::parse(4, "1--- 11-- -1-1").unwrap();
        let primes = complete_sum(&cover);
        let strs: Vec<String> = primes.iter().map(Cube::to_string).collect();
        assert_eq!(strs, vec!["1---", "-1-1"]);
    }

    #[test]
    fn complement_matches_dense_complement() {
        for text in ["11- 0-1", "1-- -11 001", "10-- -011 1-1- 0000", "----"] {
            let n = text.split_whitespace().next().unwrap().len();
            let cover = Cover::parse(n, text).unwrap();
            let f = dense(&cover);
            let comp = complement(&cover);
            for m in 0..(1u64 << n) {
                assert_eq!(comp.covers_minterm(m), !f.is_on(m), "cover {text} m={m}");
            }
        }
        assert!(complement(&Cover::empty(3)).cubes()[0].is_universe());
        let full = Cover::parse(2, "--").unwrap();
        assert!(complement(&full).is_empty());
    }

    #[test]
    fn complement_is_involutive_pointwise() {
        let cover = Cover::parse(5, "1-0-- -11-1 00--0").unwrap();
        let twice = complement(&complement(&cover));
        for m in 0..32u64 {
            assert_eq!(twice.covers_minterm(m), cover.covers_minterm(m));
        }
    }
}
