use crate::{BooleanError, Cover, Cube};

/// Maximum variable count supported by the dense truth-table representation.
///
/// SEANCE operates on `inputs + state variables (+ fsv)`; the MCNC-style
/// benchmarks stay well below this bound.
pub const MAX_DENSE_VARS: usize = 24;

/// A (possibly incompletely specified) Boolean function over `n` variables,
/// stored densely as an on-set and a don't-care set.
///
/// Minterm index convention: variable 0 is the most significant bit.
///
/// # Example
///
/// ```
/// use fantom_boolean::Function;
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// let f = Function::from_on_dc(3, &[0, 1], &[7])?;
/// assert!(f.is_on(0));
/// assert!(f.is_dc(7));
/// assert!(f.is_off(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    num_vars: usize,
    on: Vec<u64>,
    dc: Vec<u64>,
}

fn bitset_len(num_vars: usize) -> usize {
    let bits = 1usize << num_vars;
    bits.div_ceil(64)
}

fn set(words: &mut [u64], idx: u64) {
    words[(idx / 64) as usize] |= 1 << (idx % 64);
}

fn get(words: &[u64], idx: u64) -> bool {
    (words[(idx / 64) as usize] >> (idx % 64)) & 1 == 1
}

impl Function {
    /// An everywhere-false (empty on-set, empty don't-care set) function.
    ///
    /// # Errors
    ///
    /// Returns [`BooleanError::TooManyVariables`] if `num_vars` exceeds
    /// [`MAX_DENSE_VARS`].
    pub fn constant_false(num_vars: usize) -> Result<Self, BooleanError> {
        if num_vars > MAX_DENSE_VARS {
            return Err(BooleanError::TooManyVariables(num_vars));
        }
        Ok(Function {
            num_vars,
            on: vec![0; bitset_len(num_vars)],
            dc: vec![0; bitset_len(num_vars)],
        })
    }

    /// An everywhere-don't-care function: the completely unspecified function
    /// over `num_vars` variables. Fills the don't-care bitset word-parallel
    /// instead of one `set_dc` call per minterm.
    ///
    /// # Errors
    ///
    /// Returns [`BooleanError::TooManyVariables`] if `num_vars` exceeds
    /// [`MAX_DENSE_VARS`].
    pub fn constant_dc(num_vars: usize) -> Result<Self, BooleanError> {
        let mut f = Self::constant_false(num_vars)?;
        let bits = f.space_size();
        for (i, w) in f.dc.iter_mut().enumerate() {
            let remaining = bits - (i as u64) * 64;
            *w = if remaining >= 64 {
                !0u64
            } else {
                (1u64 << remaining) - 1
            };
        }
        Ok(f)
    }

    /// Build a completely specified function from its on-set minterms.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_vars` is too large or a minterm is out of range.
    pub fn from_on_set(num_vars: usize, on: &[u64]) -> Result<Self, BooleanError> {
        Self::from_on_dc(num_vars, on, &[])
    }

    /// Build an incompletely specified function from on-set and don't-care minterms.
    ///
    /// A minterm listed in both sets is treated as a don't-care.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_vars` is too large or a minterm is out of range.
    pub fn from_on_dc(num_vars: usize, on: &[u64], dc: &[u64]) -> Result<Self, BooleanError> {
        let mut f = Self::constant_false(num_vars)?;
        let limit = 1u64 << num_vars;
        for &m in on {
            if m >= limit {
                return Err(BooleanError::MintermOutOfRange {
                    minterm: m,
                    num_vars,
                });
            }
            set(&mut f.on, m);
        }
        for &m in dc {
            if m >= limit {
                return Err(BooleanError::MintermOutOfRange {
                    minterm: m,
                    num_vars,
                });
            }
            set(&mut f.dc, m);
            // don't-care wins over on
            f.on[(m / 64) as usize] &= !(1 << (m % 64));
        }
        Ok(f)
    }

    /// Build a function from a cover (on-set) and an optional don't-care cover.
    ///
    /// # Errors
    ///
    /// Returns [`BooleanError::TooManyVariables`] if the cover width exceeds
    /// [`MAX_DENSE_VARS`].
    pub fn from_cover(on: &Cover, dc: Option<&Cover>) -> Result<Self, BooleanError> {
        let mut f = Self::constant_false(on.num_vars())?;
        for cube in on.cubes() {
            for m in cube.minterms() {
                set(&mut f.on, m);
            }
        }
        if let Some(dc) = dc {
            for cube in dc.cubes() {
                for m in cube.minterms() {
                    set(&mut f.dc, m);
                    f.on[(m / 64) as usize] &= !(1 << (m % 64));
                }
            }
        }
        Ok(f)
    }

    /// Number of variables the function is defined over.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of minterms in the space (`2^n`).
    pub fn space_size(&self) -> u64 {
        1u64 << self.num_vars
    }

    /// `true` if `minterm` belongs to the on-set.
    pub fn is_on(&self, minterm: u64) -> bool {
        get(&self.on, minterm)
    }

    /// `true` if `minterm` belongs to the don't-care set.
    pub fn is_dc(&self, minterm: u64) -> bool {
        get(&self.dc, minterm)
    }

    /// `true` if `minterm` belongs to the off-set.
    pub fn is_off(&self, minterm: u64) -> bool {
        !self.is_on(minterm) && !self.is_dc(minterm)
    }

    /// On-set minterms in increasing order, as a lazy word-skipping iterator
    /// over the backing bitset: whole zero words are skipped with a single
    /// compare and set bits are popped with `trailing_zeros`, so sparse
    /// functions over large spaces never pay the full `2^n` membership scan.
    pub fn on_minterms(&self) -> Minterms<'_> {
        Minterms::new(self, SetKind::On)
    }

    /// Don't-care minterms in increasing order (word-skipping iterator).
    pub fn dc_minterms(&self) -> Minterms<'_> {
        Minterms::new(self, SetKind::Dc)
    }

    /// Off-set minterms in increasing order (word-skipping iterator).
    pub fn off_minterms(&self) -> Minterms<'_> {
        Minterms::new(self, SetKind::Off)
    }

    /// Number of on-set minterms.
    pub fn on_count(&self) -> u64 {
        self.on.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Mark `minterm` as part of the on-set (clearing any don't-care mark).
    ///
    /// # Panics
    ///
    /// Panics if the minterm is out of range.
    pub fn set_on(&mut self, minterm: u64) {
        assert!(minterm < self.space_size(), "minterm out of range");
        set(&mut self.on, minterm);
        self.dc[(minterm / 64) as usize] &= !(1 << (minterm % 64));
    }

    /// Mark `minterm` as a don't-care (clearing any on-set mark).
    ///
    /// # Panics
    ///
    /// Panics if the minterm is out of range.
    pub fn set_dc(&mut self, minterm: u64) {
        assert!(minterm < self.space_size(), "minterm out of range");
        set(&mut self.dc, minterm);
        self.on[(minterm / 64) as usize] &= !(1 << (minterm % 64));
    }

    /// Mark `minterm` as part of the off-set.
    ///
    /// # Panics
    ///
    /// Panics if the minterm is out of range.
    pub fn set_off(&mut self, minterm: u64) {
        assert!(minterm < self.space_size(), "minterm out of range");
        self.on[(minterm / 64) as usize] &= !(1 << (minterm % 64));
        self.dc[(minterm / 64) as usize] &= !(1 << (minterm % 64));
    }

    /// Whether `cover` is a *valid implementation* of this function:
    /// it covers every on-set minterm and never intersects the off-set.
    ///
    /// Walks only the on- and off-sets through the word-skipping minterm
    /// iterators (don't-cares — the bulk of a flow-table function — are never
    /// visited), and pre-filters each membership scan with the cover's
    /// signature supercube: a minterm outside the signature is provably
    /// uncovered without touching a single cube.
    pub fn implemented_by(&self, cover: &Cover) -> bool {
        if cover.num_vars() != self.num_vars {
            return false;
        }
        let Some(signature) = cover.signature() else {
            // Empty cover: valid iff the on-set is empty.
            return self.on_minterms().next().is_none();
        };
        for m in self.on_minterms() {
            if !signature.contains_minterm(m) || !cover.covers_minterm(m) {
                return false;
            }
        }
        for m in self.off_minterms() {
            if signature.contains_minterm(m) && cover.covers_minterm(m) {
                return false;
            }
        }
        true
    }

    /// Alias of [`Function::implemented_by`] with cover-centric naming, used by
    /// minimization code and examples.
    pub fn equivalent_cover(&self, cover: &Cover) -> bool {
        self.implemented_by(cover)
    }

    /// Whether a single cube lies entirely within `on ∪ dc`.
    pub fn admits_cube(&self, cube: &Cube) -> bool {
        cube.minterms_iter().all(|m| !self.is_off(m))
    }

    /// Whether the cube covers at least one on-set minterm. Enumerates the
    /// cube's minterms lazily, so it exits on the first hit.
    pub fn cube_intersects_on(&self, cube: &Cube) -> bool {
        cube.minterms_iter().any(|m| self.is_on(m))
    }
}

impl Cover {
    /// Check that this cover implements `f` (covers its on-set, avoids its off-set).
    pub fn equivalent_to(&self, f: &Function) -> bool {
        f.implemented_by(self)
    }
}

/// Which of the three partition sets a [`Minterms`] iterator walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetKind {
    On,
    Dc,
    Off,
}

/// Word-skipping iterator over one partition set of a [`Function`]
/// (see [`Function::on_minterms`]). Yields minterms in increasing order.
#[derive(Debug, Clone)]
pub struct Minterms<'a> {
    function: &'a Function,
    kind: SetKind,
    /// Index of the word `bits` was loaded from.
    word_idx: usize,
    /// Remaining (unpopped) bits of the current word.
    bits: u64,
}

impl<'a> Minterms<'a> {
    fn new(function: &'a Function, kind: SetKind) -> Self {
        let mut iter = Minterms {
            function,
            kind,
            word_idx: 0,
            bits: 0,
        };
        iter.bits = iter.load(0);
        iter
    }

    /// The masked word at `idx` for this set, or 0 past the end.
    fn load(&self, idx: usize) -> u64 {
        let Some(&on) = self.function.on.get(idx) else {
            return 0;
        };
        let dc = self.function.dc[idx];
        match self.kind {
            SetKind::On => on,
            SetKind::Dc => dc,
            SetKind::Off => {
                // Bits past the space size are padding inside the last word
                // (only possible below 6 variables) and must not be reported.
                let valid = self.function.space_size() - (idx as u64) * 64;
                let mask = if valid >= 64 {
                    !0u64
                } else {
                    (1u64 << valid) - 1
                };
                !(on | dc) & mask
            }
        }
    }
}

impl Iterator for Minterms<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.bits == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.function.on.len() {
                return None;
            }
            self.bits = self.load(self.word_idx);
        }
        let bit = self.bits.trailing_zeros() as u64;
        self.bits &= self.bits - 1;
        Some((self.word_idx as u64) * 64 + bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let mut left = self.bits.count_ones() as usize;
        for idx in self.word_idx + 1..self.function.on.len() {
            left += self.load(idx).count_ones() as usize;
        }
        (left, Some(left))
    }
}

impl ExactSizeIterator for Minterms<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_dc_off_partition() {
        let f = Function::from_on_dc(3, &[0, 1, 2], &[6, 7]).unwrap();
        assert_eq!(f.on_minterms().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(f.dc_minterms().collect::<Vec<_>>(), vec![6, 7]);
        assert_eq!(f.off_minterms().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(f.on_count(), 3);
    }

    #[test]
    fn dc_overrides_on() {
        let f = Function::from_on_dc(2, &[1, 2], &[2]).unwrap();
        assert!(f.is_dc(2));
        assert!(!f.is_on(2));
    }

    #[test]
    fn rejects_out_of_range_minterms() {
        assert!(Function::from_on_set(2, &[4]).is_err());
        assert!(Function::from_on_dc(2, &[], &[5]).is_err());
    }

    #[test]
    fn rejects_too_many_variables() {
        assert!(Function::constant_false(MAX_DENSE_VARS + 1).is_err());
    }

    #[test]
    fn from_cover_matches_membership() {
        let cover = Cover::from_cubes(
            3,
            vec![Cube::parse("1--").unwrap(), Cube::parse("-01").unwrap()],
        );
        let f = Function::from_cover(&cover, None).unwrap();
        for m in 0..8u64 {
            assert_eq!(f.is_on(m), cover.covers_minterm(m), "minterm {m}");
        }
    }

    #[test]
    fn implemented_by_checks_both_directions() {
        let f = Function::from_on_dc(2, &[0, 1], &[2]).unwrap();
        // 0- covers {00,01}: valid (dc 10 not required).
        let good = Cover::from_cubes(2, vec![Cube::parse("0-").unwrap()]);
        assert!(f.implemented_by(&good));
        // -0 covers {00,10}: misses on-set minterm 01.
        let missing = Cover::from_cubes(2, vec![Cube::parse("-0").unwrap()]);
        assert!(!f.implemented_by(&missing));
        // universe covers off-set minterm 11.
        let over = Cover::from_cubes(2, vec![Cube::universe(2)]);
        assert!(!f.implemented_by(&over));
    }

    #[test]
    fn minterm_iterators_match_membership_scan() {
        // Exercise multi-word bitsets (8 vars = 4 words) with sparse sets, so
        // the word-skipping path actually skips.
        let on = [0u64, 63, 64, 130, 255];
        let dc = [1u64, 65, 192];
        let f = Function::from_on_dc(8, &on, &dc).unwrap();
        let scan = |pred: &dyn Fn(u64) -> bool| -> Vec<u64> {
            (0..f.space_size()).filter(|&m| pred(m)).collect()
        };
        assert_eq!(f.on_minterms().collect::<Vec<_>>(), scan(&|m| f.is_on(m)));
        assert_eq!(f.dc_minterms().collect::<Vec<_>>(), scan(&|m| f.is_dc(m)));
        assert_eq!(f.off_minterms().collect::<Vec<_>>(), scan(&|m| f.is_off(m)));
        assert_eq!(f.on_minterms().len(), on.len());
        // Sub-word spaces must mask the padding bits of the last word.
        let small = Function::from_on_dc(2, &[1], &[2]).unwrap();
        assert_eq!(small.off_minterms().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn mutators_update_partition() {
        let mut f = Function::constant_false(2).unwrap();
        f.set_on(3);
        assert!(f.is_on(3));
        f.set_dc(3);
        assert!(f.is_dc(3) && !f.is_on(3));
        f.set_off(3);
        assert!(f.is_off(3));
    }
}
