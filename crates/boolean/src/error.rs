use std::fmt;

/// Errors produced while constructing or manipulating Boolean objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BooleanError {
    /// A cube string or literal vector had an unexpected length.
    WidthMismatch {
        /// Width that was expected (number of variables).
        expected: usize,
        /// Width that was provided.
        found: usize,
    },
    /// A character other than `0`, `1` or `-` appeared in a cube string.
    InvalidCubeCharacter(char),
    /// A minterm index exceeded the space spanned by the variable count.
    MintermOutOfRange {
        /// The offending minterm index.
        minterm: u64,
        /// Number of variables of the target function.
        num_vars: usize,
    },
    /// More variables were requested than the dense representation supports.
    TooManyVariables(usize),
    /// The on- and off-set covers of a [`CoverFunction`](crate::CoverFunction)
    /// intersect, so they cannot partition the space.
    OverlappingCovers {
        /// The offending on-set cube (positional text form).
        on: String,
        /// The off-set cube it intersects.
        off: String,
    },
}

impl fmt::Display for BooleanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BooleanError::WidthMismatch { expected, found } => {
                write!(
                    f,
                    "cube width mismatch: expected {expected} variables, found {found}"
                )
            }
            BooleanError::InvalidCubeCharacter(c) => {
                write!(f, "invalid cube character {c:?}, expected '0', '1' or '-'")
            }
            BooleanError::MintermOutOfRange { minterm, num_vars } => {
                write!(f, "minterm {minterm} out of range for {num_vars} variables")
            }
            BooleanError::TooManyVariables(n) => {
                write!(
                    f,
                    "{n} variables exceed the supported dense-function limit of 24"
                )
            }
            BooleanError::OverlappingCovers { on, off } => {
                write!(
                    f,
                    "on-set cube {on} intersects off-set cube {off}: the covers do not partition the space"
                )
            }
        }
    }
}

impl std::error::Error for BooleanError {}
