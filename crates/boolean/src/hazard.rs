//! Static (single-input-change) hazard analysis of sum-of-products covers.
//!
//! A static-1 hazard exists for a SOP implementation when two adjacent input
//! vectors both produce 1 but no single product term covers both: during the
//! transition, the term holding the output high may turn off before the other
//! turns on, producing a momentary 0 glitch. Including *all* prime implicants
//! (equivalently, adding the consensus terms) removes every such hazard —
//! the classical result the paper leans on for its combinational logic
//! (Section 2.1) and for the `fsv` equation (Step 7).

use crate::{all_primes_cover, Cover, Cube, Function};

/// A potential static-1 hazard between two adjacent on-set vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticHazard {
    /// First minterm of the adjacent pair.
    pub from: u64,
    /// Second minterm of the adjacent pair (differs from `from` in one bit).
    pub to: u64,
    /// Index of the input variable whose change triggers the hazard.
    pub variable: usize,
}

/// Find all static-1 hazards of `cover` for single-input changes.
///
/// Both end points of each reported transition are covered by the cover, but
/// no single cube covers the pair, so a glitch is possible for some assignment
/// of gate delays.
///
/// # Example
///
/// ```
/// use fantom_boolean::{hazard, Cover};
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// // f = ab + a'c has the classic hazard on the a transition with b=c=1.
/// let cover = Cover::parse(3, "11- 0-1")?;
/// let hazards = hazard::static_hazards(&cover);
/// assert_eq!(hazards.len(), 1);
/// assert_eq!(hazards[0].variable, 0);
/// # Ok(())
/// # }
/// ```
pub fn static_hazards(cover: &Cover) -> Vec<StaticHazard> {
    let n = cover.num_vars();
    let mut hazards = Vec::new();
    let space = 1u64 << n;
    // `space` above already requires n < 64, so no wider-mask special case.
    let full_mask: u64 = space - 1;
    for m in 0..space {
        for var in 0..n {
            let bit = 1u64 << (n - 1 - var);
            if m & bit != 0 {
                continue; // visit each unordered pair once, from the 0 side
            }
            let other = m | bit;
            if !cover.covers_minterm(m) || !cover.covers_minterm(other) {
                continue;
            }
            // The pair's supercube binds every variable except `var`.
            let pair = Cube::from_mask_value(n, full_mask & !bit, m);
            if !cover.single_cube_covers(&pair) {
                hazards.push(StaticHazard {
                    from: m,
                    to: other,
                    variable: var,
                });
            }
        }
    }
    hazards
}

/// `true` if the cover has no static-1 hazard for any single-input change.
pub fn is_static_hazard_free(cover: &Cover) -> bool {
    static_hazards(cover).is_empty()
}

/// Produce a hazard-free cover for `f` by including **all** prime implicants
/// ("adding consensus gates", Unger 1969).
///
/// The result implements `f` and is free of static-1 hazards for single-input
/// changes within the specified (non-don't-care) part of the space.
pub fn hazard_free_cover(f: &Function) -> Cover {
    all_primes_cover(f)
}

/// Augment an existing cover with the missing prime implicants needed to make
/// it hazard-free, keeping the original (typically minimal) cubes first.
///
/// For every 1→1 adjacency not covered by a single product term, the pair's
/// supercube is expanded against the off-set into a prime implicant and added
/// to the cover (the classical "consensus gate").
pub fn add_consensus_terms(f: &Function, base: &Cover) -> Cover {
    let mut cover = base.clone();
    let n = f.num_vars();
    // Off-set as packed minterm cubes: each widening test below becomes a
    // word-parallel containment check.
    let off_cubes: Vec<Cube> = f
        .off_minterms()
        .into_iter()
        .map(|m| Cube::from_minterm(n, m).expect("within range"))
        .collect();
    loop {
        let hazards = static_hazards(&cover);
        let mut progress = false;
        for hz in hazards {
            let a = Cube::from_minterm(n, hz.from).expect("within range");
            let b = Cube::from_minterm(n, hz.to).expect("within range");
            let pair = a.supercube(&b);
            if cover.single_cube_covers(&pair) {
                continue; // already fixed by a previously added prime
            }
            if pair.minterms_iter().any(|m| f.is_off(m)) {
                // The adjacency involves an off-set point that the cover has
                // (legally) chosen to implement as 1 only through one of its
                // endpoints being a don't-care; it is unconstrained by `f`.
                continue;
            }
            // Expand the pair into a prime implicant of on ∪ dc.
            let mut grown = pair;
            for var in 0..n {
                let widened = grown.with_literal(var, crate::Literal::DontCare);
                if !off_cubes.iter().any(|o| widened.covers(o)) {
                    grown = widened;
                }
            }
            cover.push(grown);
            progress = true;
        }
        if !progress {
            return cover;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize_function;

    #[test]
    fn classic_mux_hazard_detected_and_fixed() {
        // f = a·b + a'·c (2:1 mux select a).
        let cover = Cover::parse(3, "11- 0-1").unwrap();
        let hz = static_hazards(&cover);
        assert_eq!(hz.len(), 1);
        assert_eq!((hz[0].from, hz[0].to), (0b011, 0b111));

        let f = Function::from_cover(&cover, None).unwrap();
        let fixed = hazard_free_cover(&f);
        assert!(is_static_hazard_free(&fixed));
        assert!(fixed.equivalent_to(&f));
        // The consensus term b·c must appear.
        assert!(fixed.cubes().iter().any(|c| c.to_string() == "-11"));
    }

    #[test]
    fn all_primes_cover_is_always_hazard_free() {
        for (on, dc) in [
            (vec![1u64, 3, 5, 7, 9, 11], vec![]),
            (vec![0, 2, 4, 6, 10, 14], vec![8u64, 12]),
            (vec![0, 1, 2, 3, 4, 5, 6, 7], vec![]),
        ] {
            let f = Function::from_on_dc(4, &on, &dc).unwrap();
            let cover = hazard_free_cover(&f);
            assert!(is_static_hazard_free(&cover), "on={on:?} dc={dc:?}");
            assert!(cover.equivalent_to(&f));
        }
    }

    #[test]
    fn minimal_cover_may_have_hazard_but_consensus_fixes_it() {
        let f = Function::from_on_set(3, &[3, 7, 4, 5]).unwrap();
        let min = minimize_function(&f);
        let fixed = add_consensus_terms(&f, &min);
        assert!(is_static_hazard_free(&fixed));
        assert!(fixed.equivalent_to(&f));
        // The original minimal cubes are still present.
        for c in min.cubes() {
            assert!(fixed.cubes().contains(c));
        }
    }

    #[test]
    fn hazard_free_cover_of_constant_zero_is_empty() {
        let f = Function::constant_false(3).unwrap();
        assert!(hazard_free_cover(&f).is_empty());
        assert!(is_static_hazard_free(&Cover::empty(3)));
    }

    #[test]
    fn single_cube_cover_has_no_hazards() {
        let cover = Cover::parse(4, "1-0-").unwrap();
        assert!(is_static_hazard_free(&cover));
    }
}
