//! Static (single-input-change) hazard analysis of sum-of-products covers.
//!
//! A static-1 hazard exists for a SOP implementation when two adjacent input
//! vectors both produce 1 but no single product term covers both: during the
//! transition, the term holding the output high may turn off before the other
//! turns on, producing a momentary 0 glitch. Including *all* prime implicants
//! (equivalently, adding the consensus terms) removes every such hazard —
//! the classical result the paper leans on for its combinational logic
//! (Section 2.1) and for the `fsv` equation (Step 7).
//!
//! ## Cube-pair-wise detection
//!
//! Hazards are found without walking the `2^n · n` adjacency graph. For a
//! variable `v`, a transition pair is a cube binding every variable except
//! `v`; it is hazardous iff both end points are covered but no `v`-free cube
//! of the cover contains it. Freeing `v` in a pair of cover cubes `(a, b)`
//! (with `a` admitting `v = 0` and `b` admitting `v = 1`) and intersecting
//! yields the *region* of pairs whose ends are covered by `a` and `b`; the
//! union of these regions over all cube pairs, minus (disjoint sharp) the
//! cubes that are already `v`-free, is exactly the set of hazardous pairs —
//! computed entirely with word-parallel cube operations, so the cost scales
//! with the square of the cover size instead of the space size.
//!
//! ## Indexed region engine
//!
//! The quadratic pair walk is driven by a [`CoverIndex`]: phase buckets
//! enumerate the lower/upper/free cubes of each variable without rescanning
//! the cover, duplicate pair regions (many cube pairs intersect to the same
//! region) are skipped through an [`fxhash`](crate::fxhash) set, already-
//! covered regions are rejected by an exact word-parallel
//! single-cube-coverage query before any subtraction runs, and the remaining
//! regions are sharped only against the free cubes the index proves can hit
//! them — ordered largest-first so likely hits come early — in
//! double-buffered accumulators that reuse their allocations across pairs.
//! The consensus engines ([`add_consensus_terms_cover`],
//! [`add_consensus_terms_on_pairs`]) keep the index **incrementally
//! up to date** as they push primes, so every coverage test reflects the
//! cover as it grows, at push cost linear in the variable count.

use crate::collections::HashSet;
use crate::cube::sharp_pieces;
use crate::index::{CoverIndex, IndexedCover};
use crate::{all_primes_cover, Cover, Cube, Function, Literal};

/// A potential static-1 hazard between two adjacent on-set vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticHazard {
    /// First minterm of the adjacent pair.
    pub from: u64,
    /// Second minterm of the adjacent pair (differs from `from` in one bit).
    pub to: u64,
    /// Index of the input variable whose change triggers the hazard.
    pub variable: usize,
}

/// A maximal bundle of hazardous transition pairs for one variable: every
/// sub-cube of `region` that binds all variables except `variable` is a
/// hazardous pair (both ends covered, no single product term covers both).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HazardRegion {
    /// The input variable whose change triggers the hazards.
    pub variable: usize,
    /// Cube with `variable` free; its `variable`-pairs are all hazardous.
    pub region: Cube,
}

impl HazardRegion {
    /// Number of hazardous transition pairs bundled in this region
    /// (`2^(free vars other than the hazard variable)`).
    pub fn pair_count(&self) -> u64 {
        self.region.minterm_count() / 2
    }
}

/// Reusable buffers for the indexed region engine: candidate bitsets,
/// candidate id lists, double-buffered sharp accumulators and the
/// region-dedup set. One instance serves a whole analysis — no per-pair
/// allocation survives in the hot loops.
#[derive(Default)]
struct RegionScratch {
    cand: Vec<u64>,
    ids: Vec<usize>,
    pieces: Vec<Cube>,
    next: Vec<Cube>,
    seen: HashSet<Cube>,
}

/// Reusable buffers for the consensus-augmentation engines
/// ([`add_consensus_terms_cover`], [`add_consensus_terms_on_pairs`]): the
/// static-hazard region engine's internal scratch plus the candidate
/// bitsets, id lists,
/// double-buffered sharp accumulators, phase-cube buffers and the region
/// dedup set of the augmentation loops themselves.
///
/// One instance can serve any number of consecutive calls (each call clears
/// what it uses but keeps the capacity), which is what lets a long-lived
/// synthesis worker stop allocating in the consensus hot loops — pass it to
/// the `_with` variants ([`add_consensus_terms_on_pairs_with`],
/// [`add_consensus_terms_cover_with`]). The plain entry points allocate a
/// fresh scratch per call.
#[derive(Default)]
pub struct ConsensusScratch {
    region: RegionScratch,
    regions: Vec<Cube>,
    cand: Vec<u64>,
    ids: Vec<usize>,
    pieces: Vec<Cube>,
    next: Vec<Cube>,
    survivors: Vec<Cube>,
    seen: HashSet<Cube>,
    lower: Vec<Cube>,
    upper: Vec<Cube>,
}

/// The hazardous regions of `cover` for variable `var`, appended to `out` as
/// a possibly **overlapping** cube list: for every pair of cover cubes whose
/// ends straddle `var`, the pair region (both cubes freed in `var` and
/// intersected) minus every `var`-free cube of the cover. Every hazardous
/// pair lies in at least one returned region and every returned region
/// contains only hazardous pairs, but a pair may appear in several regions.
///
/// `index` must index exactly `cover`. Phase buckets supply the
/// lower/upper/free cube lists, duplicate pair regions are skipped via the
/// scratch dedup set, covered regions are rejected by the exact indexed
/// coverage query, and surviving regions are sharped only against the free
/// cubes the index proves intersect them, largest subtrahends first.
fn overlapping_regions_indexed(
    cover: &Cover,
    index: &CoverIndex,
    var: usize,
    scratch: &mut RegionScratch,
    out: &mut Vec<Cube>,
) {
    let cubes = cover.cubes();
    let lower: Vec<Cube> = index
        .phase_ids(var, Literal::Zero)
        .map(|i| cubes[i].with_literal(var, Literal::DontCare))
        .collect();
    if lower.is_empty() {
        return;
    }
    let upper: Vec<Cube> = index
        .phase_ids(var, Literal::One)
        .map(|i| cubes[i].with_literal(var, Literal::DontCare))
        .collect();
    if upper.is_empty() {
        return;
    }
    // A var-free cube covering *either* end of a pair covers the whole pair
    // (the pair binds every other variable), so hazardous pairs can only have
    // their ends witnessed by Zero-/One-bound cubes — and any part of a pair
    // region that meets a var-free cube is covered and subtracted.
    scratch.seen.clear();
    for a in &lower {
        for b in &upper {
            let Some(q) = a.intersect(b) else { continue };
            if !scratch.seen.insert(q.clone()) {
                continue; // many pairs intersect to the same region
            }
            if index.covering_candidates(&q, &mut scratch.cand) {
                continue; // a var-free cube covers the whole region
            }
            scratch.pieces.clear();
            if index.free_intersecting_ids(var, &q, &mut scratch.cand, &mut scratch.ids) {
                scratch.ids.sort_by_key(|&i| cubes[i].literal_count()); // largest first
                scratch.pieces.push(q);
                for &i in &scratch.ids {
                    if !sharp_pieces(&mut scratch.pieces, &mut scratch.next, &cubes[i]) {
                        break;
                    }
                }
            } else {
                scratch.pieces.push(q);
            }
            out.append(&mut scratch.pieces);
        }
    }
}

/// Find all static-1 hazards of `cover` for single-input changes, bundled
/// into cube regions (see [`HazardRegion`]). Regions of the same variable are
/// pairwise disjoint, so each hazardous pair appears in exactly one region.
///
/// Disjointness costs a quadratic sharp pass over the raw overlapping
/// regions; callers that only need *some* covering of the hazards (the
/// consensus augmentation) or a yes/no answer ([`is_static_hazard_free`])
/// avoid it.
pub fn static_hazard_regions(cover: &Cover) -> Vec<HazardRegion> {
    let n = cover.num_vars();
    let index = CoverIndex::build(cover);
    let mut scratch = RegionScratch::default();
    let mut regions: Vec<Cube> = Vec::new();
    let mut out: Vec<HazardRegion> = Vec::new();
    for var in 0..n {
        regions.clear();
        overlapping_regions_indexed(cover, &index, var, &mut scratch, &mut regions);
        // Disjointness pass: each raw region is sharped against the part
        // already kept. The kept list is itself indexed so a region is only
        // sharped against the disjoint cubes that can actually overlap it.
        // The scratch buffers are idle between overlapping_regions_indexed
        // calls, so the pass reuses them.
        let mut disjoint: Vec<Cube> = Vec::new();
        let mut kept_index = CoverIndex::new(n);
        for q in regions.drain(..) {
            scratch.pieces.clear();
            scratch.pieces.push(q);
            if kept_index.intersecting_ids(&scratch.pieces[0], &mut scratch.cand, &mut scratch.ids)
            {
                for &i in &scratch.ids {
                    if !sharp_pieces(&mut scratch.pieces, &mut scratch.next, &disjoint[i]) {
                        break;
                    }
                }
            }
            for piece in scratch.pieces.drain(..) {
                kept_index.push(&piece);
                disjoint.push(piece);
            }
        }
        out.extend(disjoint.into_iter().map(|region| HazardRegion {
            variable: var,
            region,
        }));
    }
    out
}

/// Find all static-1 hazards of `cover` for single-input changes.
///
/// Both end points of each reported transition are covered by the cover, but
/// no single cube covers the pair, so a glitch is possible for some assignment
/// of gate delays. This enumerates the pairs of [`static_hazard_regions`];
/// prefer the regions (or [`is_static_hazard_free`]) when the pair list is
/// not needed, since a region bundles exponentially many pairs.
///
/// # Example
///
/// ```
/// use fantom_boolean::{hazard, Cover};
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// // f = ab + a'c has the classic hazard on the a transition with b=c=1.
/// let cover = Cover::parse(3, "11- 0-1")?;
/// let hazards = hazard::static_hazards(&cover);
/// assert_eq!(hazards.len(), 1);
/// assert_eq!(hazards[0].variable, 0);
/// # Ok(())
/// # }
/// ```
pub fn static_hazards(cover: &Cover) -> Vec<StaticHazard> {
    let n = cover.num_vars();
    let mut hazards: Vec<StaticHazard> = Vec::new();
    for hr in static_hazard_regions(cover) {
        let bit = 1u64 << (n - 1 - hr.variable);
        let zero_side = hr.region.with_literal(hr.variable, Literal::Zero);
        for m in zero_side.minterms_iter() {
            hazards.push(StaticHazard {
                from: m,
                to: m | bit,
                variable: hr.variable,
            });
        }
    }
    hazards.sort_by_key(|h| (h.from, h.variable));
    hazards
}

/// `true` if the cover has no static-1 hazard for any single-input change.
/// Scans the raw (overlapping) pair regions with early exit — no pair
/// enumeration and no disjointness pass.
pub fn is_static_hazard_free(cover: &Cover) -> bool {
    let index = CoverIndex::build(cover);
    let mut scratch = RegionScratch::default();
    let mut regions: Vec<Cube> = Vec::new();
    (0..cover.num_vars()).all(|var| {
        regions.clear();
        overlapping_regions_indexed(cover, &index, var, &mut scratch, &mut regions);
        regions.is_empty()
    })
}

/// Produce a hazard-free cover for `f` by including **all** prime implicants
/// ("adding consensus gates", Unger 1969).
///
/// The result implements `f` and is free of static-1 hazards for single-input
/// changes within the specified (non-don't-care) part of the space.
pub fn hazard_free_cover(f: &Function) -> Cover {
    all_primes_cover(f)
}

/// Augment an existing cover with the missing prime implicants needed to make
/// it hazard-free, keeping the original (typically minimal) cubes first.
///
/// For every 1→1 adjacency not covered by a single product term, the pair's
/// region is expanded against the off-set into a prime implicant and added to
/// the cover (the classical "consensus gate").
pub fn add_consensus_terms(f: &Function, base: &Cover) -> Cover {
    let n = f.num_vars();
    // Off-set as packed minterm cubes: each widening test below becomes a
    // word-parallel containment check.
    let off = Cover::from_cubes(
        n,
        f.off_minterms()
            .map(|m| Cube::from_minterm(n, m).expect("within range"))
            .collect(),
    );
    add_consensus_terms_cover(&off, base)
}

/// Cover-based variant of [`add_consensus_terms`]: the off-set is given as a
/// cube cover, so the augmentation runs entirely on cube operations and
/// scales to spaces far beyond the dense representation.
///
/// Hazard regions whose pairs touch the off-set are left alone — such a pair
/// has an end the cover (legally) implements as 1 only because the point is a
/// don't-care of the original function, so it is unconstrained. Every region
/// of pairs that lie inside `on ∪ dc` is widened against `off` into a prime
/// implicant and appended.
pub fn add_consensus_terms_cover(off: &Cover, base: &Cover) -> Cover {
    add_consensus_terms_cover_with(off, base, &mut ConsensusScratch::default())
}

/// [`add_consensus_terms_cover`] with caller-provided scratch buffers, for
/// workers that run many augmentations and want to amortize the allocations.
pub fn add_consensus_terms_cover_with(
    off: &Cover,
    base: &Cover,
    scratch: &mut ConsensusScratch,
) -> Cover {
    let n = base.num_vars();
    let mut cover = IndexedCover::build(base);
    let off_index = CoverIndex::build(off);
    let off_sizes: Vec<usize> = off.cubes().iter().map(Cube::literal_count).collect();
    let ConsensusScratch {
        region: region_scratch,
        regions,
        cand,
        ids,
        pieces: safe,
        next,
        ..
    } = scratch;
    loop {
        let mut progress = false;
        for var in 0..n {
            // Raw overlapping regions of the *current* cover: a pair
            // appearing in two regions is fixed by the first added prime and
            // skipped by the indexed coverage check on the second.
            regions.clear();
            overlapping_regions_indexed(cover.cover(), cover.index(), var, region_scratch, regions);
            for region in regions.drain(..) {
                // Remove every pair that intersects the off-set: a pair binds
                // all variables except `var`, so it meets an off cube `d` iff
                // it lies inside `d` freed in `var`. Those subtrahends are
                // var-free, so the safe pieces keep `var` free — and since
                // the region is already var-free, the off cubes whose freed
                // forms can hit it are exactly the ones the index reports as
                // intersecting the region itself.
                safe.clear();
                safe.push(region);
                if off_index.intersecting_ids(&safe[0], cand, ids) {
                    ids.sort_by_key(|&i| off_sizes[i]); // largest first: likely hits early
                    for &i in ids.iter() {
                        let freed = off.cubes()[i].with_literal(var, Literal::DontCare);
                        if !sharp_pieces(safe, next, &freed) {
                            break;
                        }
                    }
                }
                for piece in safe.drain(..) {
                    debug_assert_eq!(piece.literal(var), Literal::DontCare);
                    if cover.index().covering_candidates(&piece, cand) {
                        continue; // already fixed by a previously added prime
                    }
                    // Expand the region into a prime implicant of on ∪ dc.
                    let grown = expand_against_off(piece, n, &off_index, cand);
                    cover.push(grown);
                    progress = true;
                }
            }
        }
        if !progress {
            return cover.into_cover();
        }
    }
}

/// Expand `piece` into a prime implicant of `on ∪ dc` by freeing every bound
/// variable whose widened cube still avoids the off-set — each test a
/// word-parallel indexed intersection query through the `cand` scratch.
fn expand_against_off(piece: Cube, n: usize, off_index: &CoverIndex, cand: &mut Vec<u64>) -> Cube {
    let mut grown = piece;
    for v in 0..n {
        if grown.literal(v) == Literal::DontCare {
            continue;
        }
        let widened = grown.with_literal(v, Literal::DontCare);
        if !off_index.intersecting_candidates(&widened, cand) {
            grown = widened;
        }
    }
    grown
}

/// Augment `base` with the consensus primes needed so that no **on-set**
/// single-input-change adjacency is hazardous: for every pair of on-set
/// points differing in one variable, some single cube of the result covers
/// the pair.
///
/// This is the targeted variant the sparse synthesis pipeline uses: an
/// asynchronous machine only ever occupies *specified* total states, so the
/// 1→1 transitions it can actually exercise are exactly the on/on
/// adjacencies — don't-care points the implementation happens to cover are
/// unreachable. Cost is quadratic in the **on-cover** size (regions are built
/// from on-cube pairs), independent of how large the implementation cover or
/// the space grows, where [`add_consensus_terms_cover`] closes over every
/// covered adjacency and can enumerate a prime set exponentially larger.
///
/// A single pass suffices: the result only ever grows, so an on/on pair
/// fixed once stays fixed.
///
/// The cover's [`CoverIndex`] is maintained incrementally as primes are
/// pushed, so the `var`-free subtrahend set each pair region is sharped
/// against always includes the primes added earlier in the same pass —
/// there is no snapshot, and no full-cover rescan per piece: coverage is
/// decided by the exact word-parallel index query.
pub fn add_consensus_terms_on_pairs(on: &Cover, off: &Cover, base: &Cover) -> Cover {
    add_consensus_terms_on_pairs_with(on, off, base, &mut ConsensusScratch::default())
}

/// [`add_consensus_terms_on_pairs`] with caller-provided scratch buffers.
///
/// The hot loops of the augmentation allocate nothing once the scratch has
/// warmed up, so a worker that synthesizes a stream of machines can reuse one
/// [`ConsensusScratch`] across every call and drop the per-call allocation
/// cost entirely.
pub fn add_consensus_terms_on_pairs_with(
    on: &Cover,
    off: &Cover,
    base: &Cover,
    scratch: &mut ConsensusScratch,
) -> Cover {
    let n = base.num_vars();
    let mut cover = IndexedCover::build(base);
    let off_index = CoverIndex::build(off);
    let ConsensusScratch {
        cand,
        ids,
        pieces,
        next,
        survivors,
        seen,
        lower,
        upper,
        ..
    } = scratch;
    for var in 0..n {
        // Regions of pairs with both ends in the on-set: free `var` in every
        // on-cube admitting each phase and intersect across phases (a cube
        // free in `var` lands on both sides, covering the pairs inside it).
        lower.clear();
        lower.extend(
            on.cubes()
                .iter()
                .filter(|c| c.literal(var) != Literal::One)
                .map(|c| c.with_literal(var, Literal::DontCare)),
        );
        upper.clear();
        upper.extend(
            on.cubes()
                .iter()
                .filter(|c| c.literal(var) != Literal::Zero)
                .map(|c| c.with_literal(var, Literal::DontCare)),
        );
        seen.clear();
        for a in lower.iter() {
            for b in upper.iter() {
                let Some(q) = a.intersect(b) else { continue };
                if !seen.insert(q.clone()) {
                    continue; // distinct on-pairs often share their region
                }
                if cover.index().covering_candidates(&q, cand) {
                    continue; // a var-free cube already covers every pair
                }
                // Drop the pairs a single var-free cube already covers —
                // including the primes pushed earlier in this very pass,
                // which the incremental index tracks.
                pieces.clear();
                pieces.push(q);
                if cover
                    .index()
                    .free_intersecting_ids(var, &pieces[0], cand, ids)
                {
                    ids.sort_by_key(|&i| cover.cubes()[i].literal_count());
                    for &i in ids.iter() {
                        if !sharp_pieces(pieces, next, &cover.cubes()[i]) {
                            break;
                        }
                    }
                }
                std::mem::swap(pieces, survivors);
                for piece in survivors.drain(..) {
                    if cover.index().covering_candidates(&piece, cand) {
                        continue; // fixed by a prime grown from an earlier piece of q
                    }
                    // Both ends of every pair in the piece are on-set points,
                    // so the piece avoids the off-set; expand it to a prime.
                    let grown = expand_against_off(piece, n, &off_index, cand);
                    cover.push(grown);
                }
            }
        }
    }
    cover.into_cover()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize_function;

    #[test]
    fn classic_mux_hazard_detected_and_fixed() {
        // f = a·b + a'·c (2:1 mux select a).
        let cover = Cover::parse(3, "11- 0-1").unwrap();
        let hz = static_hazards(&cover);
        assert_eq!(hz.len(), 1);
        assert_eq!((hz[0].from, hz[0].to), (0b011, 0b111));

        let f = Function::from_cover(&cover, None).unwrap();
        let fixed = hazard_free_cover(&f);
        assert!(is_static_hazard_free(&fixed));
        assert!(fixed.equivalent_to(&f));
        // The consensus term b·c must appear.
        assert!(fixed.cubes().iter().any(|c| c.to_string() == "-11"));
    }

    /// Reference implementation: the dense `2^n · n` adjacency walk the
    /// region algorithm replaced.
    fn dense_static_hazards(cover: &Cover) -> Vec<StaticHazard> {
        let n = cover.num_vars();
        let mut hazards = Vec::new();
        let space = 1u64 << n;
        let full_mask: u64 = space - 1;
        for m in 0..space {
            for var in 0..n {
                let bit = 1u64 << (n - 1 - var);
                if m & bit != 0 {
                    continue;
                }
                let other = m | bit;
                if !cover.covers_minterm(m) || !cover.covers_minterm(other) {
                    continue;
                }
                let pair = Cube::from_mask_value(n, full_mask & !bit, m);
                if !cover.single_cube_covers(&pair) {
                    hazards.push(StaticHazard {
                        from: m,
                        to: other,
                        variable: var,
                    });
                }
            }
        }
        hazards.sort_by_key(|h| (h.from, h.variable));
        hazards
    }

    #[test]
    fn region_detection_matches_dense_scan() {
        for text in [
            "11- 0-1",
            "1-- -11",
            "1--- -11- --01 0-0-",
            "11--- --11- ---11 0---0",
            "10-1 01-1 1-00",
        ] {
            let n = text.split_whitespace().next().unwrap().len();
            let cover = Cover::parse(n, text).unwrap();
            assert_eq!(
                static_hazards(&cover),
                dense_static_hazards(&cover),
                "cover {text}"
            );
        }
    }

    #[test]
    fn regions_are_disjoint_per_variable() {
        let cover = Cover::parse(4, "11-- --11 1--1 0-1-").unwrap();
        let regions = static_hazard_regions(&cover);
        for (i, a) in regions.iter().enumerate() {
            assert_eq!(a.region.literal(a.variable), Literal::DontCare);
            for b in &regions[i + 1..] {
                if a.variable == b.variable {
                    assert!(a.region.intersect(&b.region).is_none());
                }
            }
        }
        let pairs: u64 = regions.iter().map(HazardRegion::pair_count).sum();
        assert_eq!(pairs as usize, static_hazards(&cover).len());
    }

    #[test]
    fn all_primes_cover_is_always_hazard_free() {
        for (on, dc) in [
            (vec![1u64, 3, 5, 7, 9, 11], vec![]),
            (vec![0, 2, 4, 6, 10, 14], vec![8u64, 12]),
            (vec![0, 1, 2, 3, 4, 5, 6, 7], vec![]),
        ] {
            let f = Function::from_on_dc(4, &on, &dc).unwrap();
            let cover = hazard_free_cover(&f);
            assert!(is_static_hazard_free(&cover), "on={on:?} dc={dc:?}");
            assert!(cover.equivalent_to(&f));
        }
    }

    #[test]
    fn minimal_cover_may_have_hazard_but_consensus_fixes_it() {
        let f = Function::from_on_set(3, &[3, 7, 4, 5]).unwrap();
        let min = minimize_function(&f);
        let fixed = add_consensus_terms(&f, &min);
        assert!(is_static_hazard_free(&fixed));
        assert!(fixed.equivalent_to(&f));
        // The original minimal cubes are still present.
        for c in min.cubes() {
            assert!(fixed.cubes().contains(c));
        }
    }

    #[test]
    fn consensus_terms_from_off_cover_match_dense_path() {
        let f = Function::from_on_dc(4, &[3, 7, 11, 12, 13], &[5, 15]).unwrap();
        let min = minimize_function(&f);
        let dense = add_consensus_terms(&f, &min);
        let off = Cover::from_cubes(
            4,
            f.off_minterms()
                .map(|m| Cube::from_minterm(4, m).unwrap())
                .collect(),
        );
        let sparse = add_consensus_terms_cover(&off, &min);
        assert_eq!(dense.cubes(), sparse.cubes());
        // All on/on adjacencies are hazard-free.
        for h in static_hazards(&sparse) {
            assert!(!(f.is_on(h.from) && f.is_on(h.to)));
        }
    }

    #[test]
    fn on_pair_consensus_fixes_every_on_adjacency() {
        use crate::CoverFunction;
        for (on, dc) in [
            (vec![3u64, 7, 4, 5], vec![]),
            (vec![0, 3, 5, 9, 11, 12], vec![1u64, 8]),
            (vec![2, 6, 7, 13, 15], vec![5u64, 14]),
        ] {
            let f = Function::from_on_dc(4, &on, &dc).unwrap();
            let cf = CoverFunction::from_function(&f);
            let base = minimize_function(&f);
            let fixed = add_consensus_terms_on_pairs(cf.on_cover(), cf.off_cover(), &base);
            assert!(fixed.equivalent_to(&f), "on={on:?}");
            for h in static_hazards(&fixed) {
                assert!(
                    !(f.is_on(h.from) && f.is_on(h.to)),
                    "on={on:?}: unfixed on/on hazard {h:?}"
                );
            }
            for c in base.cubes() {
                assert!(fixed.cubes().contains(c));
            }
        }
    }

    #[test]
    fn hazard_free_cover_of_constant_zero_is_empty() {
        let f = Function::constant_false(3).unwrap();
        assert!(hazard_free_cover(&f).is_empty());
        assert!(is_static_hazard_free(&Cover::empty(3)));
    }

    #[test]
    fn single_cube_cover_has_no_hazards() {
        let cover = Cover::parse(4, "1-0-").unwrap();
        assert!(is_static_hazard_free(&cover));
    }
}
