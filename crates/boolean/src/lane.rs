//! SIMD-wide lane kernels for the packed-word hot paths.
//!
//! Every hot loop of the boolean substrate — cube containment/intersection
//! (the Step 5/7 hazard and consensus engines), [`crate::MintermSet`] algebra
//! (Step 3 dichotomies) and [`crate::CoverIndex`] bucket ANDs — reduces to
//! bitwise operations over `u64` word arrays. This module provides one shared
//! fixed-width abstraction for all of them: a [`Lane`] of **four `u64` words
//! (256 bits)**, manually unrolled so it stays stable-Rust (MSRV 1.75) while
//! compiling to SIMD on any target where LLVM can vectorize straight-line
//! 4-wide word arithmetic.
//!
//! The slice kernels below walk word arrays a lane (256 bits) at a time with
//! a scalar tail for the remainder, testing all-zero/all-ones once per lane
//! so mismatch scans still exit early at lane granularity.
//!
//! # Layout invariant: 2-bit fields never straddle a lane
//!
//! Packed cubes store **two bits per variable inside a single `u64` word**
//! (variable `32·w + k` owns bits `63−2k`/`62−2k` of word `w`; see the crate
//! docs). A field therefore never crosses a word boundary, and since a lane
//! is just four consecutive words, never a lane boundary either. That is
//! what makes the per-2-bit-field cube predicates ([`Lane::empty_fields`],
//! [`cube_has_conflict`], [`cube_conflict_count`]) sound as plain lane-wise
//! expressions: the field algebra (`00` = conflict witness, `01`/`10` =
//! bound, `11` = don't-care) is evaluated independently per word, and lanes
//! only batch words — they never re-align bits. Bitset kernels
//! ([`and_is_zero`], [`or_into`], …) carry one bit per minterm and are
//! position-independent, so the same argument holds trivially.
//!
//! All kernels are **exact**: they compute the same results as the scalar
//! word loops they replaced, in the same order where order is observable
//! (accumulators are commutative OR/ADD folds). Storage layouts are
//! untouched — only traversal changed — so every differential and property
//! test of the packed kernel doubles as a correctness oracle for the lanes.

/// Mask of every low ("can-be-0") field bit of a packed cube word.
const LO_BITS: u64 = 0x5555_5555_5555_5555;

/// A 256-bit lane: four `u64` words operated on element-wise.
///
/// The type is a thin `[u64; 4]` wrapper whose methods are written as
/// straight-line four-wide expressions (no loops, no early exits inside the
/// lane) so the optimizer can lower them to vector instructions on AVX2-class
/// targets and to four-way ILP elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lane(pub [u64; 4]);

/// Words per lane.
pub const LANE_WORDS: usize = 4;

impl Lane {
    /// The all-zero lane.
    pub const ZERO: Lane = Lane([0; 4]);

    /// The all-ones lane.
    pub const ONES: Lane = Lane([!0; 4]);

    /// Load a lane from four words. Taking a fixed-size array (rather than a
    /// slice) keeps every kernel loop free of bounds checks, which is what
    /// lets LLVM vectorize them.
    #[inline(always)]
    pub fn load(words: &[u64; LANE_WORDS]) -> Lane {
        Lane(*words)
    }

    /// Store the lane into four words.
    #[inline(always)]
    pub fn store(self, out: &mut [u64; LANE_WORDS]) {
        *out = self.0;
    }

    /// Element-wise AND.
    #[inline(always)]
    pub fn and(self, o: Lane) -> Lane {
        Lane([
            self.0[0] & o.0[0],
            self.0[1] & o.0[1],
            self.0[2] & o.0[2],
            self.0[3] & o.0[3],
        ])
    }

    /// Element-wise OR.
    #[inline(always)]
    pub fn or(self, o: Lane) -> Lane {
        Lane([
            self.0[0] | o.0[0],
            self.0[1] | o.0[1],
            self.0[2] | o.0[2],
            self.0[3] | o.0[3],
        ])
    }

    /// Element-wise XOR.
    #[inline(always)]
    pub fn xor(self, o: Lane) -> Lane {
        Lane([
            self.0[0] ^ o.0[0],
            self.0[1] ^ o.0[1],
            self.0[2] ^ o.0[2],
            self.0[3] ^ o.0[3],
        ])
    }

    /// Element-wise AND-NOT: `self & !o`.
    #[inline(always)]
    pub fn andnot(self, o: Lane) -> Lane {
        Lane([
            self.0[0] & !o.0[0],
            self.0[1] & !o.0[1],
            self.0[2] & !o.0[2],
            self.0[3] & !o.0[3],
        ])
    }

    /// OR-fold of the four words — nonzero iff any bit is set. This is the
    /// lane-granular early-exit test: one branch per 256 bits.
    #[inline(always)]
    pub fn any(self) -> u64 {
        (self.0[0] | self.0[1]) | (self.0[2] | self.0[3])
    }

    /// `true` if every bit is zero.
    #[inline(always)]
    pub fn is_zero(self) -> bool {
        self.any() == 0
    }

    /// `true` if every bit is one.
    #[inline(always)]
    pub fn is_ones(self) -> bool {
        ((self.0[0] & self.0[1]) & (self.0[2] & self.0[3])) == !0u64
    }

    /// Population count across the whole lane.
    #[inline(always)]
    pub fn popcount(self) -> u32 {
        self.0[0].count_ones()
            + self.0[1].count_ones()
            + self.0[2].count_ones()
            + self.0[3].count_ones()
    }

    /// Per-2-bit-field cube predicate: a lane whose **low** field bit is set
    /// exactly where this lane's field is empty (`00`) — the conflict witness
    /// of cube intersection. Well-formed cubes contain no empty field, so on
    /// `a.and(b)` a nonzero result proves a 0/1 conflict between `a` and `b`.
    #[inline(always)]
    pub fn empty_fields(self) -> Lane {
        Lane([
            !(self.0[0] | (self.0[0] >> 1)) & LO_BITS,
            !(self.0[1] | (self.0[1] >> 1)) & LO_BITS,
            !(self.0[2] | (self.0[2] >> 1)) & LO_BITS,
            !(self.0[3] | (self.0[3] >> 1)) & LO_BITS,
        ])
    }

    /// Per-2-bit-field cube consensus combine: the AND of the two lanes with
    /// every empty (`00`) field of the AND re-opened to don't-care (`11`).
    /// With exactly one conflicting field between the cubes (the caller's
    /// precondition for consensus), that is the consensus term's packed form.
    #[inline(always)]
    pub fn consensus(self, o: Lane) -> Lane {
        let t = self.and(o);
        let e = t.empty_fields();
        Lane([
            t.0[0] | e.0[0] | (e.0[0] << 1),
            t.0[1] | e.0[1] | (e.0[1] << 1),
            t.0[2] | e.0[2] | (e.0[2] << 1),
            t.0[3] | e.0[3] | (e.0[3] << 1),
        ])
    }
}

/// Scalar [`Lane::consensus`] for tails and sub-lane cubes.
#[inline(always)]
fn consensus_word(a: u64, b: u64) -> u64 {
    let t = a & b;
    let e = !(t | (t >> 1)) & LO_BITS;
    t | e | (e << 1)
}

/// View a `chunks_exact(LANE_WORDS)` chunk as a fixed-size array — a no-op
/// reborrow that lets [`Lane::load`] elide every bounds check.
#[inline(always)]
fn as_lane(chunk: &[u64]) -> &[u64; LANE_WORDS] {
    chunk.try_into().expect("chunk is LANE_WORDS wide")
}

/// Mutable variant of [`as_lane`].
#[inline(always)]
fn as_lane_mut(chunk: &mut [u64]) -> &mut [u64; LANE_WORDS] {
    chunk.try_into().expect("chunk is LANE_WORDS wide")
}

/// `true` iff `a & b == 0` everywhere — bitset disjointness. Early exit per
/// lane, then per tail word.
///
/// # Panics
///
/// Debug-panics if the slices differ in length.
#[inline]
pub fn and_is_zero(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    // Size dispatch: sub-lane slices go straight to the scalar loop, and
    // exactly one or two lanes (the 128/256-variable cube widths, small
    // bitsets) skip the chunk iterators entirely. Call sites work at a fixed
    // width, so these branches predict perfectly.
    if a.len() < LANE_WORDS {
        return a.iter().zip(b).all(|(&x, &y)| x & y == 0);
    }
    if a.len() == LANE_WORDS && b.len() == LANE_WORDS {
        return Lane::load(as_lane(a)).and(Lane::load(as_lane(b))).is_zero();
    }
    if a.len() == 2 * LANE_WORDS && b.len() == 2 * LANE_WORDS {
        let (a0, a1) = a.split_at(LANE_WORDS);
        let (b0, b1) = b.split_at(LANE_WORDS);
        let lo = Lane::load(as_lane(a0)).and(Lane::load(as_lane(b0)));
        let hi = Lane::load(as_lane(a1)).and(Lane::load(as_lane(b1)));
        return lo.or(hi).is_zero();
    }
    let (ac, bc) = (a.chunks_exact(LANE_WORDS), b.chunks_exact(LANE_WORDS));
    let (at, bt) = (ac.remainder(), bc.remainder());
    for (x, y) in ac.zip(bc) {
        if !Lane::load(as_lane(x)).and(Lane::load(as_lane(y))).is_zero() {
            return false;
        }
    }
    at.iter().zip(bt).all(|(&x, &y)| x & y == 0)
}

/// `true` iff `a & !b == 0` everywhere — `a ⊆ b` for bitsets, and (with the
/// operands swapped) packed-cube containment. Early exit per lane.
///
/// # Panics
///
/// Debug-panics if the slices differ in length.
#[inline]
pub fn andnot_is_zero(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    // Size dispatch as in [`and_is_zero`].
    if a.len() < LANE_WORDS {
        return a.iter().zip(b).all(|(&x, &y)| x & !y == 0);
    }
    if a.len() == LANE_WORDS && b.len() == LANE_WORDS {
        return Lane::load(as_lane(a))
            .andnot(Lane::load(as_lane(b)))
            .is_zero();
    }
    if a.len() == 2 * LANE_WORDS && b.len() == 2 * LANE_WORDS {
        let (a0, a1) = a.split_at(LANE_WORDS);
        let (b0, b1) = b.split_at(LANE_WORDS);
        let lo = Lane::load(as_lane(a0)).andnot(Lane::load(as_lane(b0)));
        let hi = Lane::load(as_lane(a1)).andnot(Lane::load(as_lane(b1)));
        return lo.or(hi).is_zero();
    }
    let (ac, bc) = (a.chunks_exact(LANE_WORDS), b.chunks_exact(LANE_WORDS));
    let (at, bt) = (ac.remainder(), bc.remainder());
    for (x, y) in ac.zip(bc) {
        if !Lane::load(as_lane(x))
            .andnot(Lane::load(as_lane(y)))
            .is_zero()
        {
            return false;
        }
    }
    at.iter().zip(bt).all(|(&x, &y)| x & !y == 0)
}

/// Population count of a word slice.
#[inline]
pub fn popcount(a: &[u64]) -> usize {
    let chunks = a.chunks_exact(LANE_WORDS);
    let tail = chunks.remainder();
    let mut sum = 0u32;
    for x in chunks {
        sum += Lane::load(as_lane(x)).popcount();
    }
    sum as usize + tail.iter().map(|w| w.count_ones() as usize).sum::<usize>()
}

/// Population count of `a & b` — bitset intersection size.
///
/// # Panics
///
/// Debug-panics if the slices differ in length.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let (ac, bc) = (a.chunks_exact(LANE_WORDS), b.chunks_exact(LANE_WORDS));
    let (at, bt) = (ac.remainder(), bc.remainder());
    let mut sum = 0u32;
    for (x, y) in ac.zip(bc) {
        sum += Lane::load(as_lane(x))
            .and(Lane::load(as_lane(y)))
            .popcount();
    }
    sum as usize
        + at.iter()
            .zip(bt)
            .map(|(&x, &y)| (x & y).count_ones() as usize)
            .sum::<usize>()
}

/// `dst |= src`, element-wise, over the common prefix (`src` may be shorter;
/// callers resize `dst` first when growth is wanted).
#[inline]
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let mut dc = dst.chunks_exact_mut(LANE_WORDS);
    let mut sc = src.chunks_exact(LANE_WORDS);
    for (d, s) in dc.by_ref().zip(sc.by_ref()) {
        let d = as_lane_mut(d);
        Lane::load(d).or(Lane::load(as_lane(s))).store(d);
    }
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d |= s;
    }
}

/// `dst &= !src`, element-wise, over the common prefix.
#[inline]
pub fn andnot_into(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let mut dc = dst.chunks_exact_mut(LANE_WORDS);
    let mut sc = src.chunks_exact(LANE_WORDS);
    for (d, s) in dc.by_ref().zip(sc.by_ref()) {
        let d = as_lane_mut(d);
        Lane::load(d).andnot(Lane::load(as_lane(s))).store(d);
    }
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d &= !s;
    }
}

/// `dst &= src`, element-wise, over the common prefix — cube intersection's
/// constructive step (packed AND preserves canonical padding).
#[inline]
pub fn and_into(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let mut dc = dst.chunks_exact_mut(LANE_WORDS);
    let mut sc = src.chunks_exact(LANE_WORDS);
    for (d, s) in dc.by_ref().zip(sc.by_ref()) {
        let d = as_lane_mut(d);
        Lane::load(d).and(Lane::load(as_lane(s))).store(d);
    }
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d &= s;
    }
}

/// `dst &= src`, returning the OR-fold of the result — the CoverIndex
/// bucket-AND step (`0` means the candidate set just went empty). The fold
/// accumulates lane-wise and reduces once at the end, so the loop body stays
/// branch- and shuffle-free.
///
/// # Panics
///
/// Debug-panics if the slices differ in length.
#[inline]
pub fn and_into_any(dst: &mut [u64], src: &[u64]) -> u64 {
    debug_assert_eq!(dst.len(), src.len());
    let mut acc = Lane::ZERO;
    let mut dc = dst.chunks_exact_mut(LANE_WORDS);
    let mut sc = src.chunks_exact(LANE_WORDS);
    for (d, s) in dc.by_ref().zip(sc.by_ref()) {
        let d = as_lane_mut(d);
        let lane = Lane::load(d).and(Lane::load(as_lane(s)));
        lane.store(d);
        acc = acc.or(lane);
    }
    let mut any = acc.any();
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d &= s;
        any |= *d;
    }
    any
}

/// `dst &= a | b`, returning the OR-fold of the result — the bound-variable
/// bucket AND of the CoverIndex (same-phase ∪ don't-care in one pass).
///
/// # Panics
///
/// Debug-panics if the slices differ in length.
#[inline]
pub fn and_or2_into_any(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    let mut acc = Lane::ZERO;
    let mut dc = dst.chunks_exact_mut(LANE_WORDS);
    let mut ac = a.chunks_exact(LANE_WORDS);
    let mut bc = b.chunks_exact(LANE_WORDS);
    for ((d, x), y) in dc.by_ref().zip(ac.by_ref()).zip(bc.by_ref()) {
        let d = as_lane_mut(d);
        let lane = Lane::load(d).and(Lane::load(as_lane(x)).or(Lane::load(as_lane(y))));
        lane.store(d);
        acc = acc.or(lane);
    }
    let mut any = acc.any();
    for ((d, &x), &y) in dc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *d &= x | y;
        any |= *d;
    }
    any
}

/// Packed-cube containment: `true` iff cube `a` covers cube `b`
/// (`b & !a == 0` over the packed fields). Padding fields are canonically
/// `11`, so whole-word comparison is exact.
#[inline]
pub fn cube_covers(a: &[u64], b: &[u64]) -> bool {
    andnot_is_zero(b, a)
}

/// Packed-cube conflict test: `true` iff some variable field of `a & b` is
/// empty (`00`), i.e. the cubes bind some variable to opposite values and
/// their intersection is empty. Early exit per lane.
///
/// # Panics
///
/// Debug-panics if the slices differ in length.
#[inline]
pub fn cube_has_conflict(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    // Size dispatch as in [`and_is_zero`].
    if a.len() < LANE_WORDS {
        return a.iter().zip(b).any(|(&x, &y)| {
            let t = x & y;
            !(t | (t >> 1)) & LO_BITS != 0
        });
    }
    if a.len() == LANE_WORDS && b.len() == LANE_WORDS {
        return !Lane::load(as_lane(a))
            .and(Lane::load(as_lane(b)))
            .empty_fields()
            .is_zero();
    }
    if a.len() == 2 * LANE_WORDS && b.len() == 2 * LANE_WORDS {
        let (a0, a1) = a.split_at(LANE_WORDS);
        let (b0, b1) = b.split_at(LANE_WORDS);
        let lo = Lane::load(as_lane(a0))
            .and(Lane::load(as_lane(b0)))
            .empty_fields();
        let hi = Lane::load(as_lane(a1))
            .and(Lane::load(as_lane(b1)))
            .empty_fields();
        return !lo.or(hi).is_zero();
    }
    let (ac, bc) = (a.chunks_exact(LANE_WORDS), b.chunks_exact(LANE_WORDS));
    let (at, bt) = (ac.remainder(), bc.remainder());
    for (x, y) in ac.zip(bc) {
        if !Lane::load(as_lane(x))
            .and(Lane::load(as_lane(y)))
            .empty_fields()
            .is_zero()
        {
            return true;
        }
    }
    at.iter().zip(bt).any(|(&x, &y)| {
        let t = x & y;
        !(t | (t >> 1)) & LO_BITS != 0
    })
}

/// Number of conflicting variable fields between packed cubes `a` and `b`
/// (their distance).
///
/// # Panics
///
/// Debug-panics if the slices differ in length.
#[inline]
pub fn cube_conflict_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let (ac, bc) = (a.chunks_exact(LANE_WORDS), b.chunks_exact(LANE_WORDS));
    let (at, bt) = (ac.remainder(), bc.remainder());
    let mut sum = 0u32;
    for (x, y) in ac.zip(bc) {
        sum += Lane::load(as_lane(x))
            .and(Lane::load(as_lane(y)))
            .empty_fields()
            .popcount();
    }
    sum as usize
        + at.iter()
            .zip(bt)
            .map(|(&x, &y)| {
                let t = x & y;
                (!(t | (t >> 1)) & LO_BITS).count_ones() as usize
            })
            .sum::<usize>()
}

/// Packed-cube consensus combine, in place: `dst = dst ∩ src` with every
/// conflicting field re-opened to don't-care (`11`) — see [`Lane::consensus`].
/// Padding fields stay canonical (`11 ∩ 11 = 11`, not empty, so they are
/// untouched). The caller guarantees the cubes conflict in exactly one field
/// ([`cube_conflict_count`]` == 1`); the kernel itself is field-local and
/// total.
///
/// # Panics
///
/// Debug-panics if the slices differ in length.
#[inline]
pub fn cube_consensus_into(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    // Size dispatch as in [`and_into`]: most packed cubes are one or two
    // words, so the scalar path handles them without lane setup.
    if dst.len() < LANE_WORDS {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = consensus_word(*d, s);
        }
        return;
    }
    let mut dc = dst.chunks_exact_mut(LANE_WORDS);
    let mut sc = src.chunks_exact(LANE_WORDS);
    for (d, s) in dc.by_ref().zip(sc.by_ref()) {
        let d = as_lane_mut(d);
        Lane::load(d).consensus(Lane::load(as_lane(s))).store(d);
    }
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d = consensus_word(*d, s);
    }
}

/// `true` iff every word is all-ones — the packed-cube universe test
/// (padding fields are canonically `11`). Early exit per lane.
#[inline]
pub fn all_ones(a: &[u64]) -> bool {
    let chunks = a.chunks_exact(LANE_WORDS);
    let tail = chunks.remainder();
    for x in chunks {
        if !Lane::load(as_lane(x)).is_ones() {
            return false;
        }
    }
    tail.iter().all(|&w| w == !0u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word soup exercising all field patterns.
    fn words(seed: u64, len: usize) -> Vec<u64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    /// Canonical cube words: no `00` fields (OR the low bit in where needed).
    fn cube_words(seed: u64, len: usize) -> Vec<u64> {
        words(seed, len)
            .into_iter()
            .map(|w| {
                let empty = !(w | (w >> 1)) & LO_BITS;
                w | empty // repair empty fields to Zero (01)
            })
            .collect()
    }

    #[test]
    fn lane_ops_match_wordwise() {
        let a = Lane::load(as_lane(&words(1, 4)));
        let b = Lane::load(as_lane(&words(2, 4)));
        for i in 0..4 {
            assert_eq!(a.and(b).0[i], a.0[i] & b.0[i]);
            assert_eq!(a.or(b).0[i], a.0[i] | b.0[i]);
            assert_eq!(a.xor(b).0[i], a.0[i] ^ b.0[i]);
            assert_eq!(a.andnot(b).0[i], a.0[i] & !b.0[i]);
        }
        assert_eq!(
            a.popcount(),
            a.0.iter().map(|w| w.count_ones()).sum::<u32>()
        );
        assert!(Lane::ZERO.is_zero() && !Lane::ONES.is_zero());
        assert!(Lane::ONES.is_ones() && !Lane::ZERO.is_ones());
        assert_eq!(Lane::ZERO.any(), 0);
    }

    #[test]
    fn slice_kernels_match_scalar_references_at_all_tail_lengths() {
        // 0..=9 words cover empty, pure-tail, one-lane and lane+tail shapes.
        for len in 0..10usize {
            let a = words(0xA + len as u64, len);
            let b = words(0xB + len as u64, len);
            assert_eq!(
                and_is_zero(&a, &b),
                a.iter().zip(&b).all(|(&x, &y)| x & y == 0),
                "len {len}"
            );
            assert_eq!(
                andnot_is_zero(&a, &b),
                a.iter().zip(&b).all(|(&x, &y)| x & !y == 0),
                "len {len}"
            );
            // Forced-true cases: a ∩ b = 0 and a ⊆ b.
            let zero = vec![0u64; len];
            assert!(and_is_zero(&a, &zero));
            assert!(andnot_is_zero(&zero, &a));
            assert!(andnot_is_zero(&a, &a));
            assert_eq!(
                popcount(&a),
                a.iter().map(|w| w.count_ones() as usize).sum::<usize>()
            );
            assert_eq!(
                and_popcount(&a, &b),
                a.iter()
                    .zip(&b)
                    .map(|(&x, &y)| (x & y).count_ones() as usize)
                    .sum::<usize>()
            );
            let mut dst = a.clone();
            or_into(&mut dst, &b);
            assert_eq!(
                dst,
                a.iter().zip(&b).map(|(&x, &y)| x | y).collect::<Vec<_>>()
            );
            let mut dst = a.clone();
            andnot_into(&mut dst, &b);
            assert_eq!(
                dst,
                a.iter().zip(&b).map(|(&x, &y)| x & !y).collect::<Vec<_>>()
            );
            let mut dst = a.clone();
            and_into(&mut dst, &b);
            assert_eq!(
                dst,
                a.iter().zip(&b).map(|(&x, &y)| x & y).collect::<Vec<_>>()
            );
            let mut dst = a.clone();
            let any = and_into_any(&mut dst, &b);
            let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
            assert_eq!(dst, expect);
            assert_eq!(any != 0, expect.iter().any(|&w| w != 0));
            let c = words(0xC + len as u64, len);
            let mut dst = a.clone();
            let any = and_or2_into_any(&mut dst, &b, &c);
            let expect: Vec<u64> = a
                .iter()
                .zip(&b)
                .zip(&c)
                .map(|((&x, &y), &z)| x & (y | z))
                .collect();
            assert_eq!(dst, expect);
            assert_eq!(any != 0, expect.iter().any(|&w| w != 0));
        }
    }

    #[test]
    fn cube_kernels_match_scalar_references() {
        for len in 0..10usize {
            let a = cube_words(0x11 + len as u64, len);
            let b = cube_words(0x22 + len as u64, len);
            assert_eq!(
                cube_covers(&a, &b),
                a.iter().zip(&b).all(|(&x, &y)| y & !x == 0),
                "len {len}"
            );
            let scalar_conflicts = a.iter().zip(&b).any(|(&x, &y)| {
                let t = x & y;
                !(t | (t >> 1)) & LO_BITS != 0
            });
            assert_eq!(cube_has_conflict(&a, &b), scalar_conflicts, "len {len}");
            let scalar_count: usize = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let t = x & y;
                    (!(t | (t >> 1)) & LO_BITS).count_ones() as usize
                })
                .sum();
            assert_eq!(cube_conflict_count(&a, &b), scalar_count, "len {len}");
            assert!(!cube_has_conflict(&a, &a));
            assert_eq!(cube_conflict_count(&a, &a), 0);
            let mut dst = a.clone();
            cube_consensus_into(&mut dst, &b);
            let expect: Vec<u64> = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let t = x & y;
                    let e = !(t | (t >> 1)) & LO_BITS;
                    t | e | (e << 1)
                })
                .collect();
            assert_eq!(dst, expect, "len {len}");
            assert!(all_ones(&vec![!0u64; len]));
            if len > 0 {
                let mut holed = vec![!0u64; len];
                holed[len - 1] = !1;
                assert!(!all_ones(&holed));
            }
        }
    }

    #[test]
    fn empty_fields_flags_exactly_the_00_fields() {
        // Build a word with a known field pattern: fields cycle 00,01,10,11.
        let mut w = 0u64;
        for k in 0..32 {
            w |= ((k % 4) as u64) << (62 - 2 * k);
        }
        let lane = Lane([w, !0, 0, LO_BITS]);
        let empty = lane.empty_fields();
        // Word 0: every 4th field (pattern 00) flagged at its low bit.
        let mut expect0 = 0u64;
        for k in (0..32).step_by(4) {
            expect0 |= 1u64 << (62 - 2 * k);
        }
        assert_eq!(empty.0[0], expect0);
        assert_eq!(empty.0[1], 0, "all-ones word has no empty field");
        assert_eq!(empty.0[2], LO_BITS, "all-zero word is all empty fields");
        assert_eq!(empty.0[3], 0, "all-Zero-literal word has no empty field");
    }
}
