//! A fast, non-cryptographic hasher for hot-path maps.
//!
//! The synthesis pipeline keys hash maps and sets with small fixed-size data
//! (packed cube words, `(mask, value)` pairs, net indices). The standard
//! library's SipHash is DoS-resistant but costs an order of magnitude more
//! than needed for trusted in-process keys; this module provides the
//! multiply-rotate construction popularized by the Firefox/rustc `FxHasher`,
//! implemented here so the workspace stays dependency-free.
//!
//! Use [`FxHashMap`] / [`FxHashSet`] instead of the std aliases anywhere the
//! map is on a hot path and the keys are not attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher: each word of input is folded into the state with
/// an xor-rotate-multiply round. Quality is adequate for hash tables keyed by
/// machine words; it is **not** collision-resistant against adversaries.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

/// 2^64 / φ, the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn round(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.round(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.round(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.round(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.round(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.round(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.round(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
        assert_ne!(hash(0), hash(1) << 1, "low bits must differ too");
    }

    #[test]
    fn maps_work_end_to_end() {
        let mut m: FxHashMap<(u64, u64), usize> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i, i.wrapping_mul(7)), i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(999, 999u64.wrapping_mul(7))], 999);
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"abcdefghi");
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }
}
