use std::fmt;

use crate::{BooleanError, Cube};

/// A sum-of-products cover: a set of [`Cube`]s over a common variable count.
///
/// # Example
///
/// ```
/// use fantom_boolean::{Cover, Cube};
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// let cover = Cover::from_cubes(3, vec![Cube::parse("1--")?, Cube::parse("-11")?]);
/// assert_eq!(cover.cube_count(), 2);
/// assert!(cover.covers_minterm(0b011));
/// assert!(!cover.covers_minterm(0b010));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    num_vars: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// An empty cover (the constant-0 function) over `num_vars` variables.
    pub fn empty(num_vars: usize) -> Self {
        Cover {
            num_vars,
            cubes: Vec::new(),
        }
    }

    /// Build a cover from cubes. Cubes of mismatched width are debug-asserted.
    pub fn from_cubes(num_vars: usize, cubes: Vec<Cube>) -> Self {
        debug_assert!(cubes.iter().all(|c| c.num_vars() == num_vars));
        Cover { num_vars, cubes }
    }

    /// Build a cover consisting of one minterm cube per index in `minterms`.
    ///
    /// # Errors
    ///
    /// Returns [`BooleanError::MintermOutOfRange`] if any index does not fit.
    pub fn from_minterms(num_vars: usize, minterms: &[u64]) -> Result<Self, BooleanError> {
        let cubes = minterms
            .iter()
            .map(|&m| Cube::from_minterm(num_vars, m))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Cover { num_vars, cubes })
    }

    /// Parse a cover from whitespace-separated positional-cube strings.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed cube characters or inconsistent widths.
    pub fn parse(num_vars: usize, text: &str) -> Result<Self, BooleanError> {
        let mut cubes = Vec::new();
        for token in text.split_whitespace() {
            let cube = Cube::parse(token)?;
            if cube.num_vars() != num_vars {
                return Err(BooleanError::WidthMismatch {
                    expected: num_vars,
                    found: cube.num_vars(),
                });
            }
            cubes.push(cube);
        }
        Ok(Cover { num_vars, cubes })
    }

    /// Number of variables the cover is defined over.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The cubes of the cover, in insertion order.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of product terms.
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total literal count across all product terms.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// `true` if the cover has no cubes (constant 0).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Append a cube to the cover.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the cube width does not match.
    pub fn push(&mut self, cube: Cube) {
        debug_assert_eq!(cube.num_vars(), self.num_vars);
        self.cubes.push(cube);
    }

    /// Whether any cube covers the given minterm index.
    pub fn covers_minterm(&self, minterm: u64) -> bool {
        self.cubes.iter().any(|c| c.contains_minterm(minterm))
    }

    /// Whether some *single* cube of the cover covers the whole `cube`.
    ///
    /// This is the test used for static-hazard analysis: a 1→1 transition
    /// between adjacent minterms is hazard-free iff their supercube is covered
    /// by one product term.
    pub fn single_cube_covers(&self, cube: &Cube) -> bool {
        self.cubes.iter().any(|c| c.covers(cube))
    }

    /// Whether the union of cubes covers every minterm of `cube`.
    ///
    /// Decided cube-wise through the sharp/signature path of
    /// [`Cover::covers_cube_sharp`] — **never** by enumerating the cube's
    /// minterms, which is exponential in its free variables (a 33-variable
    /// don't-care-heavy cube has billions of them).
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        self.covers_cube_sharp(cube)
    }

    /// Evaluate the cover on a concrete assignment (index 0 = variable 0).
    pub fn eval(&self, bits: &[bool]) -> bool {
        self.cubes.iter().any(|c| c.eval(bits))
    }

    /// Remove cubes that are covered by another cube of the cover
    /// (single-cube containment; keeps the first of any duplicate pair).
    ///
    /// Runs in place: cubes are ordered so larger cubes (fewer literals) come
    /// first and absorb smaller ones, then the kept prefix grows by swapping —
    /// no cube is cloned. Beyond a small size the kept prefix is tracked in an
    /// incremental [`CoverIndex`](crate::index::CoverIndex), turning each
    /// containment test into a word-parallel phase-bucket query instead of a
    /// scan of every kept cube; tiny covers keep the plain scan, whose
    /// constant factor the index cannot beat.
    pub fn remove_contained_cubes(&mut self) {
        self.cubes.sort_by_key(Cube::literal_count);
        let mut kept = 0;
        if self.cubes.len() <= 16 || self.num_vars == 0 {
            for i in 0..self.cubes.len() {
                let covered = self.cubes[..kept].iter().any(|k| k.covers(&self.cubes[i]));
                if !covered {
                    self.cubes.swap(kept, i);
                    kept += 1;
                }
            }
        } else {
            let mut index = crate::index::CoverIndex::new(self.num_vars);
            let mut cand: Vec<u64> = Vec::new();
            for i in 0..self.cubes.len() {
                if !index.covering_candidates(&self.cubes[i], &mut cand) {
                    index.push(&self.cubes[i]);
                    self.cubes.swap(kept, i);
                    kept += 1;
                }
            }
        }
        self.cubes.truncate(kept);
    }

    /// Iterate over the cubes (alias of `cubes().iter()` for ergonomic loops).
    pub fn iter(&self) -> std::slice::Iter<'_, Cube> {
        self.cubes.iter()
    }

    /// Whether any cube of the cover intersects `cube` (shares a minterm).
    /// Word-parallel: one pass over the cover, no minterm enumeration.
    pub fn intersects_cube(&self, cube: &Cube) -> bool {
        self.cubes.iter().any(|c| c.intersect(cube).is_some())
    }

    /// The supercube of every cube of the cover (`None` when empty) — the
    /// cover's *signature*. Any point outside the signature is provably
    /// uncovered, which makes the signature a constant-time pre-filter for
    /// containment scans (see [`Function::implemented_by`](crate::Function::implemented_by)).
    pub fn signature(&self) -> Option<Cube> {
        let mut it = self.cubes.iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, c| acc.supercube(c)))
    }

    /// The sharp (cover difference) `self # other`: a cover of exactly the
    /// points of `self` not covered by `other`, computed cube-wise with the
    /// disjoint [`Cube::sharp`] and compacted by single-cube containment.
    ///
    /// `other` is indexed once so each cube of `self` is only sharped against
    /// the subtrahends that can actually hit it (the pieces of a cube stay
    /// inside it, so its intersecting-candidate set bounds theirs).
    pub fn sharp(&self, other: &Cover) -> Cover {
        debug_assert_eq!(self.num_vars, other.num_vars);
        let index = crate::index::CoverIndex::build(other);
        let (mut cand, mut ids) = (Vec::new(), Vec::new());
        let (mut pieces, mut next): (Vec<Cube>, Vec<Cube>) = (Vec::new(), Vec::new());
        let mut out_cubes: Vec<Cube> = Vec::new();
        for c in &self.cubes {
            if !index.intersecting_ids(c, &mut cand, &mut ids) {
                out_cubes.push(c.clone());
                continue;
            }
            pieces.clear();
            pieces.push(c.clone());
            for &i in &ids {
                if !crate::cube::sharp_pieces(&mut pieces, &mut next, &other.cubes[i]) {
                    break;
                }
            }
            out_cubes.append(&mut pieces);
        }
        let mut out = Cover::from_cubes(self.num_vars, out_cubes);
        out.remove_contained_cubes();
        out
    }

    /// Sharp by a single cube (see [`Cover::sharp`]).
    pub fn sharp_cube(&self, cube: &Cube) -> Cover {
        Cover::from_cubes(
            self.num_vars,
            self.cubes.iter().flat_map(|c| c.sharp(cube)).collect(),
        )
    }

    /// Rebuild the cover as a union of pairwise-disjoint cubes covering the
    /// same point set (each cube is sharped against the part already kept).
    ///
    /// The kept set is indexed incrementally, so each incoming cube is
    /// sharped only against the kept cubes that overlap it instead of the
    /// whole accumulated list.
    pub fn make_disjoint(&self) -> Cover {
        let mut index = crate::index::CoverIndex::new(self.num_vars);
        let (mut cand, mut ids) = (Vec::new(), Vec::new());
        let (mut pieces, mut next): (Vec<Cube>, Vec<Cube>) = (Vec::new(), Vec::new());
        let mut kept: Vec<Cube> = Vec::with_capacity(self.cubes.len());
        for cube in &self.cubes {
            pieces.clear();
            pieces.push(cube.clone());
            if index.intersecting_ids(cube, &mut cand, &mut ids) {
                for &i in &ids {
                    if !crate::cube::sharp_pieces(&mut pieces, &mut next, &kept[i]) {
                        break;
                    }
                }
            }
            for piece in pieces.drain(..) {
                index.push(&piece);
                kept.push(piece);
            }
        }
        Cover::from_cubes(self.num_vars, kept)
    }

    /// Whether `cube` lies entirely inside the union of this cover, decided
    /// cube-wise (`cube # cover = ∅`) without enumerating minterms.
    ///
    /// Two `sharp`-free pre-filters run before the (worst-case exponential)
    /// sharp recursion: single-cube containment accepts immediately, and a
    /// *signature-cube* test rejects immediately — the union of the cover's
    /// intersections with `cube` lies inside the supercube of those
    /// intersections, so if that supercube does not cover `cube`, some
    /// minterm of `cube` is provably uncovered. Both are word-parallel
    /// single passes; only genuinely ambiguous cases pay for the recursion
    /// (restricted to the cubes that intersect `cube` at all).
    pub fn covers_cube_sharp(&self, cube: &Cube) -> bool {
        let mut signature: Option<Cube> = None;
        let mut relevant: Vec<&Cube> = Vec::new();
        for c in &self.cubes {
            if c.covers(cube) {
                return true;
            }
            if let Some(part) = c.intersect(cube) {
                signature = Some(match signature {
                    None => part,
                    Some(sig) => sig.supercube(&part),
                });
                relevant.push(c);
            }
        }
        let Some(signature) = signature else {
            return false;
        };
        if !signature.covers(cube) {
            return false;
        }
        let mut pieces = vec![cube.clone()];
        for c in relevant {
            pieces = pieces.iter().flat_map(|p| p.sharp(c)).collect();
            if pieces.is_empty() {
                return true;
            }
        }
        false
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "(0)");
        }
        let strs: Vec<String> = self.cubes.iter().map(Cube::to_string).collect();
        write!(f, "{}", strs.join(" + "))
    }
}

impl FromIterator<Cube> for Cover {
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Self {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let num_vars = cubes.first().map_or(0, Cube::num_vars);
        Cover::from_cubes(num_vars, cubes)
    }
}

impl Extend<Cube> for Cover {
    fn extend<T: IntoIterator<Item = Cube>>(&mut self, iter: T) {
        for cube in iter {
            self.push(cube);
        }
    }
}

impl<'a> IntoIterator for &'a Cover {
    type Item = &'a Cube;
    type IntoIter = std::slice::Iter<'a, Cube>;

    fn into_iter(self) -> Self::IntoIter {
        self.cubes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Literal;

    #[test]
    fn membership_is_union_of_cubes() {
        let cover = Cover::parse(3, "1-- -11").unwrap();
        assert!(cover.covers_minterm(0b100));
        assert!(cover.covers_minterm(0b011));
        assert!(cover.covers_minterm(0b111));
        assert!(!cover.covers_minterm(0b001));
    }

    #[test]
    fn parse_checks_width() {
        assert!(Cover::parse(3, "1-- 10").is_err());
    }

    #[test]
    fn from_minterms_covers_exactly_those() {
        let cover = Cover::from_minterms(3, &[1, 6]).unwrap();
        for m in 0..8 {
            assert_eq!(cover.covers_minterm(m), m == 1 || m == 6);
        }
    }

    #[test]
    fn containment_removal_keeps_function() {
        let mut cover = Cover::parse(3, "1-- 101 10-").unwrap();
        let before: Vec<bool> = (0..8).map(|m| cover.covers_minterm(m)).collect();
        cover.remove_contained_cubes();
        assert_eq!(cover.cube_count(), 1);
        let after: Vec<bool> = (0..8).map(|m| cover.covers_minterm(m)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn single_cube_cover_vs_union_cover() {
        let cover = Cover::parse(2, "1- -1").unwrap();
        let diag = Cube::parse("--").unwrap();
        // The union covers 3 of 4 minterms -> not the whole universe either way.
        assert!(!cover.covers_cube(&diag));
        assert!(!cover.single_cube_covers(&diag));
        let one = Cube::parse("11").unwrap();
        assert!(cover.single_cube_covers(&one));
    }

    #[test]
    fn display_formats_sop() {
        let cover = Cover::parse(2, "1- 01").unwrap();
        assert_eq!(cover.to_string(), "1- + 01");
        assert_eq!(Cover::empty(2).to_string(), "(0)");
    }

    #[test]
    fn literal_and_cube_counts() {
        let cover = Cover::parse(4, "1--- -01-").unwrap();
        assert_eq!(cover.cube_count(), 2);
        assert_eq!(cover.literal_count(), 3);
    }

    #[test]
    fn sharp_and_disjoint_union_match_pointwise_semantics() {
        let a = Cover::parse(4, "1--- -11- --01").unwrap();
        let b = Cover::parse(4, "10-- ---1").unwrap();
        let diff = a.sharp(&b);
        for m in 0..16u64 {
            assert_eq!(
                diff.covers_minterm(m),
                a.covers_minterm(m) && !b.covers_minterm(m),
                "minterm {m}"
            );
        }
        let disjoint = a.make_disjoint();
        for m in 0..16u64 {
            assert_eq!(disjoint.covers_minterm(m), a.covers_minterm(m));
        }
        for (i, p) in disjoint.cubes().iter().enumerate() {
            for q in &disjoint.cubes()[i + 1..] {
                assert!(p.intersect(q).is_none(), "{p} and {q} overlap");
            }
        }
    }

    #[test]
    fn cube_containment_via_sharp() {
        let cover = Cover::parse(3, "1-- -11").unwrap();
        assert!(cover.covers_cube_sharp(&Cube::parse("11-").unwrap()));
        assert!(cover.covers_cube_sharp(&Cube::parse("1-1").unwrap()));
        assert!(!cover.covers_cube_sharp(&Cube::parse("--1").unwrap()));
        assert!(cover.intersects_cube(&Cube::parse("--1").unwrap()));
        assert!(!cover.intersects_cube(&Cube::parse("001").unwrap()));
    }

    #[test]
    fn sharp_containment_matches_minterm_enumeration_exhaustively() {
        // Every 2-bits-per-variable cube over 4 variables against covers
        // picked to hit all three decision paths: single-cube accept,
        // signature reject (the gap between 00-- and 11-- rejects everything
        // straddling it), and the sharp recursion (overlapping cubes whose
        // supercube over-approximates the union).
        let covers = [
            Cover::parse(4, "1--- -11- --01").unwrap(),
            Cover::parse(4, "00-- 11--").unwrap(),
            Cover::parse(4, "1-0- -11- 0--1 --10").unwrap(),
            Cover::empty(4),
        ];
        let all_cubes = (0..81).map(|i| {
            let lits: String = (0..4)
                .map(|v| ['0', '1', '-'][(i / 3usize.pow(v)) % 3])
                .collect();
            Cube::parse(&lits).unwrap()
        });
        for cube in all_cubes {
            for cover in &covers {
                let expected = cube.minterms_iter().all(|m| cover.covers_minterm(m));
                assert_eq!(
                    cover.covers_cube_sharp(&cube),
                    expected,
                    "cover {cover} vs cube {cube}"
                );
            }
        }
    }

    #[test]
    fn covers_cube_handles_wide_free_cubes_across_the_word_boundary() {
        // 33 variables (cube spills past the inline word) with 31 free
        // positions: minterm enumeration would walk 2^31 points per query,
        // the sharp path answers in microseconds.
        for n in [31usize, 32, 33] {
            let mut whole = vec!['-'; n];
            whole[0] = '1';
            let wide = Cube::new(
                whole
                    .iter()
                    .map(|&c| {
                        if c == '1' {
                            Literal::One
                        } else {
                            Literal::DontCare
                        }
                    })
                    .collect(),
            );
            // Split the wide cube on its last variable: together they cover it.
            let half0 = wide.with_literal(n - 1, Literal::Zero);
            let half1 = wide.with_literal(n - 1, Literal::One);
            let cover = Cover::from_cubes(n, vec![half0.clone(), half1]);
            assert!(cover.covers_cube(&wide), "n={n}");
            assert!(!cover.covers_cube(&Cube::universe(n)), "n={n}");
            let gap = Cover::from_cubes(n, vec![half0]);
            assert!(!gap.covers_cube(&wide), "n={n}");
        }
    }

    #[test]
    fn collect_and_extend() {
        let cubes = vec![Cube::parse("10").unwrap(), Cube::parse("01").unwrap()];
        let mut cover: Cover = cubes.into_iter().collect();
        assert_eq!(cover.cube_count(), 2);
        cover.extend(vec![Cube::parse("11").unwrap()]);
        assert_eq!(cover.cube_count(), 3);
    }

    #[test]
    fn remove_contained_cubes_indexed_path_matches_scan() {
        // Build covers large enough to take the indexed path and compare the
        // kept set against the reference quadratic scan.
        let n = 8;
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20 {
            let cubes: Vec<Cube> = (0..40)
                .map(|_| {
                    let lits: Vec<Literal> = (0..n)
                        .map(|_| match rand() % 4 {
                            0 => Literal::Zero,
                            1 => Literal::One,
                            _ => Literal::DontCare,
                        })
                        .collect();
                    Cube::new(lits)
                })
                .collect();

            let mut reference = cubes.clone();
            reference.sort_by_key(Cube::literal_count);
            let mut kept: Vec<Cube> = Vec::new();
            for c in reference {
                if !kept.iter().any(|k| k.covers(&c)) {
                    kept.push(c);
                }
            }

            let mut cover = Cover::from_cubes(n, cubes);
            cover.remove_contained_cubes();
            assert_eq!(cover.cubes(), kept.as_slice());
        }
    }
}
