//! Minimum-cover selection over a set of prime implicants.
//!
//! After prime generation ([`crate::quine`]), SEANCE reduces each function to
//! an *essential* sum-of-products: the essential primes plus a small selection
//! of additional primes covering the remaining on-set minterms. Exact
//! selection uses Petrick's method (product-of-sums expansion); for large
//! residual tables a greedy set-cover heuristic is used instead so that the
//! synthesis pipeline stays fast on every benchmark.

use std::collections::BTreeSet;

use crate::index::CoverIndex;
use crate::{quine, Cover, CoverFunction, Cube, Function};

/// Upper bound on `primes × uncovered-minterms` for which the exact Petrick
/// expansion is attempted before falling back to the greedy heuristic.
const PETRICK_EXACT_LIMIT: usize = 2_000;

/// Upper bound on covering-table rows produced by fragmenting an on-set cover
/// against the primes ([`minimum_cover_sparse`]); beyond it the sharp-based
/// greedy selection is used instead.
const FRAGMENT_LIMIT: usize = 2_048;

/// Select a minimum (or near-minimum) subset of `primes` covering the on-set
/// of `f`, always including every essential prime implicant.
///
/// The result is the "essential SOP expression" the paper refers to in
/// Steps 4 and 6.
///
/// # Example
///
/// ```
/// use fantom_boolean::{petrick, quine, Function};
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// let f = Function::from_on_set(3, &[0, 1, 2, 3, 7])?;
/// let primes = quine::prime_implicants(&f);
/// let cover = petrick::minimum_cover(&f, &primes);
/// assert!(cover.equivalent_to(&f));
/// assert_eq!(cover.cube_count(), 2); // 0-- and -11
/// # Ok(())
/// # }
/// ```
pub fn minimum_cover(f: &Function, primes: &[Cube]) -> Cover {
    let n = f.num_vars();
    if primes.is_empty() {
        return Cover::empty(n);
    }

    let mut selected: Vec<usize> = Vec::new();

    // 1. Essential primes.
    let on: Vec<u64> = f.on_minterms().collect();
    for &m in &on {
        let mut covering = (0..primes.len()).filter(|&i| primes[i].contains_minterm(m));
        if let (Some(i), None) = (covering.next(), covering.next()) {
            if !selected.contains(&i) {
                selected.push(i);
            }
        }
    }

    // 2. Remaining on-set minterms: those no selected prime covers. Checked
    // from the on-set side (word-parallel membership per prime) — never by
    // enumerating a prime's own minterm set, which is exponential in its
    // free variables.
    let remaining: Vec<u64> = on
        .iter()
        .copied()
        .filter(|&m| !selected.iter().any(|&i| primes[i].contains_minterm(m)))
        .collect();
    if remaining.is_empty() {
        return build_cover(n, primes, &selected);
    }

    // Candidate primes that cover at least one remaining minterm.
    let candidates: Vec<usize> = (0..primes.len())
        .filter(|&i| !selected.contains(&i))
        .filter(|&i| remaining.iter().any(|&m| primes[i].contains_minterm(m)))
        .collect();

    let extra = if candidates.len() * remaining.len() <= PETRICK_EXACT_LIMIT {
        petrick_exact(primes, &candidates, &remaining)
    } else {
        greedy_cover(primes, &candidates, &remaining)
    };
    selected.extend(extra);
    build_cover(n, primes, &selected)
}

fn build_cover(num_vars: usize, primes: &[Cube], selected: &[usize]) -> Cover {
    let mut idx: Vec<usize> = selected.to_vec();
    idx.sort_unstable();
    idx.dedup();
    Cover::from_cubes(
        num_vars,
        idx.into_iter().map(|i| primes[i].clone()).collect(),
    )
}

/// Petrick's method: expand the product of sums of covering primes into a sum
/// of products (sets of prime indices), keeping only minimal sets, and return
/// the cheapest one (fewest primes, then fewest literals).
fn petrick_exact(primes: &[Cube], candidates: &[usize], remaining: &[u64]) -> Vec<usize> {
    // Each element of `products` is one conjunction: a set of selected primes.
    let mut products: Vec<BTreeSet<usize>> = vec![BTreeSet::new()];
    for &m in remaining {
        let covering: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| primes[i].contains_minterm(m))
            .collect();
        if covering.is_empty() {
            // Minterm not coverable by the candidates (should not happen when
            // primes were generated for the same function); skip it.
            continue;
        }
        let mut next: Vec<BTreeSet<usize>> = Vec::new();
        for product in &products {
            for &p in &covering {
                let mut grown = product.clone();
                grown.insert(p);
                next.push(grown);
            }
        }
        absorb(&mut next);
        // Keep the expansion bounded even in adversarial cases.
        if next.len() > 10_000 {
            return greedy_cover(primes, candidates, remaining);
        }
        products = next;
    }

    products
        .into_iter()
        .min_by_key(|set| {
            let lits: usize = set.iter().map(|&i| primes[i].literal_count()).sum();
            (set.len(), lits)
        })
        .map(|set| set.into_iter().collect())
        .unwrap_or_default()
}

/// Remove any product term that is a superset of another (absorption law).
fn absorb(products: &mut Vec<BTreeSet<usize>>) {
    products.sort_by_key(BTreeSet::len);
    let mut kept: Vec<BTreeSet<usize>> = Vec::with_capacity(products.len());
    'outer: for p in products.drain(..) {
        for k in &kept {
            if k.is_subset(&p) {
                continue 'outer;
            }
        }
        kept.push(p);
    }
    *products = kept;
}

/// Greedy set cover: repeatedly pick the prime covering the most remaining
/// minterms (ties broken by fewer literals). The shrinking uncovered set is a
/// plain vector scanned against the word-parallel `contains_minterm`, keeping
/// every round O(|uncovered|) per candidate — never by enumerating a prime's
/// own minterms (exponential in its free variables) and never by walking a
/// dense 2ⁿ bitset when only a handful of minterms remain.
fn greedy_cover(primes: &[Cube], candidates: &[usize], remaining: &[u64]) -> Vec<usize> {
    let mut uncovered: Vec<u64> = remaining.to_vec();
    let mut chosen = Vec::new();
    while !uncovered.is_empty() {
        let best = candidates
            .iter()
            .copied()
            .filter(|&i| !chosen.contains(&i))
            .max_by_key(|&i| {
                let gain = uncovered
                    .iter()
                    .filter(|&&m| primes[i].contains_minterm(m))
                    .count();
                (gain, usize::MAX - primes[i].literal_count())
            });
        let Some(best) = best else { break };
        let before = uncovered.len();
        uncovered.retain(|&m| !primes[best].contains_minterm(m));
        if uncovered.len() == before {
            break;
        }
        chosen.push(best);
    }
    chosen
}

/// Convenience wrapper: generate primes for `f` and return a minimum cover.
pub fn minimize(f: &Function) -> Cover {
    let primes = quine::prime_implicants(f);
    minimum_cover(f, &primes)
}

/// Select a minimum (or near-minimum) subset of `primes` covering the on-set
/// of a sparse [`CoverFunction`], without enumerating minterms.
///
/// The covering table is built **cover-based**: the on-set cubes are
/// fragmented against the primes (splitting a row into its intersection with
/// a prime and the disjoint-sharp remainder) until every fragment is either
/// inside or disjoint from each prime. Fragments then play the role the
/// minterms play in the dense [`minimum_cover`]: fragments covered by exactly
/// one prime make that prime essential, the residual table is solved by the
/// exact Petrick expansion when small and greedily otherwise. If
/// fragmentation explodes past the internal `FRAGMENT_LIMIT` rows, a sharp-based greedy
/// selection (repeatedly subtracting the best prime from the uncovered cover)
/// is used instead.
pub fn minimum_cover_sparse(f: &CoverFunction, primes: &[Cube]) -> Cover {
    let n = f.num_vars();
    if primes.is_empty() || f.on_cover().is_empty() {
        return Cover::empty(n);
    }

    // 1. Fragment the on-set against the primes.
    let mut rows: Vec<Cube> = f.on_cover().make_disjoint().cubes().to_vec();
    let mut next: Vec<Cube> = Vec::with_capacity(rows.len());
    for p in primes {
        next.clear();
        for r in rows.drain(..) {
            match r.intersect(p) {
                None => next.push(r),
                Some(_) if p.covers(&r) => next.push(r),
                Some(inside) => {
                    next.push(inside);
                    next.extend(r.sharp(p));
                }
            }
        }
        std::mem::swap(&mut rows, &mut next);
        if rows.len() > FRAGMENT_LIMIT {
            return greedy_sharp_cover(f, primes);
        }
    }

    // 2. Incidence: which primes cover each fragment entirely — answered by
    // the prime index's exact covering-candidate bitsets instead of a
    // rows × primes containment scan.
    let prime_index = CoverIndex::build(&Cover::from_cubes(n, primes.to_vec()));
    let mut cand: Vec<u64> = Vec::new();
    let mut ids: Vec<usize> = Vec::new();
    let coverers: Vec<Vec<usize>> = rows
        .iter()
        .map(|r| {
            prime_index.covering_ids(r, &mut cand, &mut ids);
            ids.clone()
        })
        .collect();

    // 3. Essential primes: sole coverer of some fragment.
    let mut selected: Vec<usize> = Vec::new();
    for c in &coverers {
        if let [only] = c.as_slice() {
            if !selected.contains(only) {
                selected.push(*only);
            }
        }
    }

    // 4. Residual rows and candidates.
    let residual: Vec<&Vec<usize>> = coverers
        .iter()
        .filter(|c| !c.is_empty() && !c.iter().any(|i| selected.contains(i)))
        .collect();
    if residual.is_empty() {
        return build_cover(n, primes, &selected);
    }
    let mut candidates: Vec<usize> = residual.iter().flat_map(|c| c.iter().copied()).collect();
    candidates.sort_unstable();
    candidates.dedup();

    let extra = if candidates.len() * residual.len() <= PETRICK_EXACT_LIMIT {
        petrick_exact_table(primes, &residual)
    } else {
        greedy_table(&residual)
    };
    selected.extend(extra);
    build_cover(n, primes, &selected)
}

/// Exact Petrick expansion over a fragment covering table: each row
/// contributes the sum of its covering primes; products are expanded with
/// absorption and the cheapest product (fewest primes, then fewest literals)
/// is returned.
fn petrick_exact_table(primes: &[Cube], rows: &[&Vec<usize>]) -> Vec<usize> {
    let mut products: Vec<BTreeSet<usize>> = vec![BTreeSet::new()];
    for covering in rows {
        let mut next: Vec<BTreeSet<usize>> = Vec::new();
        for product in &products {
            if product.iter().any(|i| covering.contains(i)) {
                next.push(product.clone());
                continue;
            }
            for &p in covering.iter() {
                let mut grown = product.clone();
                grown.insert(p);
                next.push(grown);
            }
        }
        absorb(&mut next);
        // Tighter than the dense bailout: absorb is quadratic in the product
        // count, and the fragment tables of large sparse functions hit the
        // worst case far more often than small dense residuals do.
        if next.len() > 2_000 {
            return greedy_table(rows);
        }
        products = next;
    }
    products
        .into_iter()
        .min_by_key(|set| {
            let lits: usize = set.iter().map(|&i| primes[i].literal_count()).sum();
            (set.len(), lits)
        })
        .map(|set| set.into_iter().collect())
        .unwrap_or_default()
}

/// Greedy set cover over a fragment covering table: repeatedly pick the prime
/// covering the most uncovered rows.
fn greedy_table(rows: &[&Vec<usize>]) -> Vec<usize> {
    let mut uncovered: Vec<usize> = (0..rows.len()).collect();
    let mut chosen: Vec<usize> = Vec::new();
    while !uncovered.is_empty() {
        let best = uncovered
            .iter()
            .flat_map(|&r| rows[r].iter().copied())
            .filter(|i| !chosen.contains(i))
            .max_by_key(|&i| uncovered.iter().filter(|&&r| rows[r].contains(&i)).count());
        let Some(best) = best else { break };
        chosen.push(best);
        uncovered.retain(|&r| !rows[r].contains(&best));
    }
    chosen
}

/// Sharp-based greedy selection used when fragmentation is too expensive:
/// subtract the chosen prime from the remaining on-set cover each round.
/// Terminates after at most `primes.len()` rounds (each prime is chosen at
/// most once, and expansion primes jointly cover the on-set).
fn greedy_sharp_cover(f: &CoverFunction, primes: &[Cube]) -> Cover {
    let n = f.num_vars();
    let mut remaining: Cover = f.on_cover().clone();
    remaining.remove_contained_cubes();
    let mut used = vec![false; primes.len()];
    let mut chosen: Vec<usize> = Vec::new();
    while !remaining.is_empty() {
        let best = (0..primes.len())
            .filter(|&i| !used[i])
            .map(|i| {
                let full = remaining
                    .cubes()
                    .iter()
                    .filter(|c| primes[i].covers(c))
                    .count();
                let part = remaining
                    .cubes()
                    .iter()
                    .filter(|c| primes[i].intersect(c).is_some())
                    .count();
                (part, full, i)
            })
            .filter(|&(part, _, _)| part > 0)
            .max_by_key(|&(part, full, i)| (full, part, usize::MAX - primes[i].literal_count()));
        let Some((_, _, best)) = best else { break };
        used[best] = true;
        chosen.push(best);
        remaining = remaining.sharp_cube(&primes[best]);
        remaining.remove_contained_cubes();
    }
    build_cover(n, primes, &chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wikipedia_example_minimum_size() {
        let f = Function::from_on_dc(4, &[4, 8, 10, 11, 12, 15], &[9, 14]).unwrap();
        let cover = minimize(&f);
        assert!(cover.equivalent_to(&f));
        // Known minimum: 3 product terms (e.g. -100 + 10-- + 1-1- or -100 + 1--0 + 1-1-).
        assert_eq!(cover.cube_count(), 3);
    }

    #[test]
    fn essential_primes_always_selected() {
        // f = Σ m(0,1,5,7): minterm 0 forces 00-, minterm 7 forces a prime with x2=1,x3=1...
        let f = Function::from_on_set(3, &[0, 1, 5, 7]).unwrap();
        let primes = quine::prime_implicants(&f);
        let ess = quine::essential_primes(&f, &primes);
        let cover = minimum_cover(&f, &primes);
        for e in &ess {
            assert!(
                cover.cubes().contains(e),
                "essential prime {e} missing from cover"
            );
        }
        assert!(cover.equivalent_to(&f));
    }

    #[test]
    fn constant_functions() {
        let zero = Function::constant_false(3).unwrap();
        assert!(minimize(&zero).is_empty());

        let one = Function::from_on_set(2, &[0, 1, 2, 3]).unwrap();
        let cover = minimize(&one);
        assert_eq!(cover.cube_count(), 1);
        assert!(cover.cubes()[0].is_universe());
    }

    #[test]
    fn dont_cares_reduce_cover_size() {
        // Without DC: f = Σ m(1,3) over 3 vars needs cube 0--1? no wait 3 vars.
        // on = {1,3}: cube 0-1. With DC {5,7}: cube --1 suffices (1 literal).
        let strict = Function::from_on_set(3, &[1, 3]).unwrap();
        let relaxed = Function::from_on_dc(3, &[1, 3], &[5, 7]).unwrap();
        let c1 = minimize(&strict);
        let c2 = minimize(&relaxed);
        assert!(c1.equivalent_to(&strict));
        assert!(c2.equivalent_to(&relaxed));
        assert!(c2.literal_count() < c1.literal_count());
    }

    #[test]
    fn sparse_minimum_cover_matches_dense_quality() {
        // Same Wikipedia example through the cover-based covering table.
        let f = Function::from_on_dc(4, &[4, 8, 10, 11, 12, 15], &[9, 14]).unwrap();
        let cf = CoverFunction::from_function(&f);
        let primes = quine::prime_implicants(&f);
        let cover = minimum_cover_sparse(&cf, &primes);
        assert!(f.implemented_by(&cover));
        assert_eq!(cover.cube_count(), 3);
    }

    #[test]
    fn sparse_minimum_cover_handles_cube_shaped_on_sets() {
        // On-set given as wide cubes rather than minterms, with an off-set
        // cover: the natural shape of flow-table functions.
        let on = Cover::parse(6, "11---- --11-- ----11").unwrap();
        let off = Cover::parse(6, "0000-0").unwrap();
        let cf = CoverFunction::from_on_off(on, off).unwrap();
        let primes = cf.expand_primes();
        let cover = minimum_cover_sparse(&cf, &primes);
        assert!(cf.implemented_by(&cover));
    }

    #[test]
    fn greedy_fallback_still_valid() {
        // A moderately large random-ish function to exercise the greedy path
        // via the candidate*remaining limit (forced by constructing many primes).
        let on: Vec<u64> = (0..256).filter(|m| m % 3 != 0).collect();
        let f = Function::from_on_set(8, &on).unwrap();
        let cover = minimize(&f);
        assert!(cover.equivalent_to(&f));
    }
}
