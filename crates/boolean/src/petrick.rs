//! Minimum-cover selection over a set of prime implicants.
//!
//! After prime generation ([`crate::quine`]), SEANCE reduces each function to
//! an *essential* sum-of-products: the essential primes plus a small selection
//! of additional primes covering the remaining on-set minterms. Exact
//! selection uses Petrick's method (product-of-sums expansion); for large
//! residual tables a greedy set-cover heuristic is used instead so that the
//! synthesis pipeline stays fast on every benchmark.

use std::collections::BTreeSet;

use crate::{quine, Cover, Cube, Function};

/// Upper bound on `primes × uncovered-minterms` for which the exact Petrick
/// expansion is attempted before falling back to the greedy heuristic.
const PETRICK_EXACT_LIMIT: usize = 2_000;

/// Select a minimum (or near-minimum) subset of `primes` covering the on-set
/// of `f`, always including every essential prime implicant.
///
/// The result is the "essential SOP expression" the paper refers to in
/// Steps 4 and 6.
///
/// # Example
///
/// ```
/// use fantom_boolean::{petrick, quine, Function};
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// let f = Function::from_on_set(3, &[0, 1, 2, 3, 7])?;
/// let primes = quine::prime_implicants(&f);
/// let cover = petrick::minimum_cover(&f, &primes);
/// assert!(cover.equivalent_to(&f));
/// assert_eq!(cover.cube_count(), 2); // 0-- and -11
/// # Ok(())
/// # }
/// ```
pub fn minimum_cover(f: &Function, primes: &[Cube]) -> Cover {
    let n = f.num_vars();
    if primes.is_empty() {
        return Cover::empty(n);
    }

    let mut selected: Vec<usize> = Vec::new();

    // 1. Essential primes.
    let on = f.on_minterms();
    for &m in &on {
        let mut covering = (0..primes.len()).filter(|&i| primes[i].contains_minterm(m));
        if let (Some(i), None) = (covering.next(), covering.next()) {
            if !selected.contains(&i) {
                selected.push(i);
            }
        }
    }

    // 2. Remaining on-set minterms: those no selected prime covers. Checked
    // from the on-set side (word-parallel membership per prime) — never by
    // enumerating a prime's own minterm set, which is exponential in its
    // free variables.
    let remaining: Vec<u64> = on
        .iter()
        .copied()
        .filter(|&m| !selected.iter().any(|&i| primes[i].contains_minterm(m)))
        .collect();
    if remaining.is_empty() {
        return build_cover(n, primes, &selected);
    }

    // Candidate primes that cover at least one remaining minterm.
    let candidates: Vec<usize> = (0..primes.len())
        .filter(|&i| !selected.contains(&i))
        .filter(|&i| remaining.iter().any(|&m| primes[i].contains_minterm(m)))
        .collect();

    let extra = if candidates.len() * remaining.len() <= PETRICK_EXACT_LIMIT {
        petrick_exact(primes, &candidates, &remaining)
    } else {
        greedy_cover(primes, &candidates, &remaining)
    };
    selected.extend(extra);
    build_cover(n, primes, &selected)
}

fn build_cover(num_vars: usize, primes: &[Cube], selected: &[usize]) -> Cover {
    let mut idx: Vec<usize> = selected.to_vec();
    idx.sort_unstable();
    idx.dedup();
    Cover::from_cubes(
        num_vars,
        idx.into_iter().map(|i| primes[i].clone()).collect(),
    )
}

/// Petrick's method: expand the product of sums of covering primes into a sum
/// of products (sets of prime indices), keeping only minimal sets, and return
/// the cheapest one (fewest primes, then fewest literals).
fn petrick_exact(primes: &[Cube], candidates: &[usize], remaining: &[u64]) -> Vec<usize> {
    // Each element of `products` is one conjunction: a set of selected primes.
    let mut products: Vec<BTreeSet<usize>> = vec![BTreeSet::new()];
    for &m in remaining {
        let covering: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| primes[i].contains_minterm(m))
            .collect();
        if covering.is_empty() {
            // Minterm not coverable by the candidates (should not happen when
            // primes were generated for the same function); skip it.
            continue;
        }
        let mut next: Vec<BTreeSet<usize>> = Vec::new();
        for product in &products {
            for &p in &covering {
                let mut grown = product.clone();
                grown.insert(p);
                next.push(grown);
            }
        }
        absorb(&mut next);
        // Keep the expansion bounded even in adversarial cases.
        if next.len() > 10_000 {
            return greedy_cover(primes, candidates, remaining);
        }
        products = next;
    }

    products
        .into_iter()
        .min_by_key(|set| {
            let lits: usize = set.iter().map(|&i| primes[i].literal_count()).sum();
            (set.len(), lits)
        })
        .map(|set| set.into_iter().collect())
        .unwrap_or_default()
}

/// Remove any product term that is a superset of another (absorption law).
fn absorb(products: &mut Vec<BTreeSet<usize>>) {
    products.sort_by_key(BTreeSet::len);
    let mut kept: Vec<BTreeSet<usize>> = Vec::with_capacity(products.len());
    'outer: for p in products.drain(..) {
        for k in &kept {
            if k.is_subset(&p) {
                continue 'outer;
            }
        }
        kept.push(p);
    }
    *products = kept;
}

/// Greedy set cover: repeatedly pick the prime covering the most remaining
/// minterms (ties broken by fewer literals). The shrinking uncovered set is a
/// plain vector scanned against the word-parallel `contains_minterm`, keeping
/// every round O(|uncovered|) per candidate — never by enumerating a prime's
/// own minterms (exponential in its free variables) and never by walking a
/// dense 2ⁿ bitset when only a handful of minterms remain.
fn greedy_cover(primes: &[Cube], candidates: &[usize], remaining: &[u64]) -> Vec<usize> {
    let mut uncovered: Vec<u64> = remaining.to_vec();
    let mut chosen = Vec::new();
    while !uncovered.is_empty() {
        let best = candidates
            .iter()
            .copied()
            .filter(|&i| !chosen.contains(&i))
            .max_by_key(|&i| {
                let gain = uncovered
                    .iter()
                    .filter(|&&m| primes[i].contains_minterm(m))
                    .count();
                (gain, usize::MAX - primes[i].literal_count())
            });
        let Some(best) = best else { break };
        let before = uncovered.len();
        uncovered.retain(|&m| !primes[best].contains_minterm(m));
        if uncovered.len() == before {
            break;
        }
        chosen.push(best);
    }
    chosen
}

/// Convenience wrapper: generate primes for `f` and return a minimum cover.
pub fn minimize(f: &Function) -> Cover {
    let primes = quine::prime_implicants(f);
    minimum_cover(f, &primes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wikipedia_example_minimum_size() {
        let f = Function::from_on_dc(4, &[4, 8, 10, 11, 12, 15], &[9, 14]).unwrap();
        let cover = minimize(&f);
        assert!(cover.equivalent_to(&f));
        // Known minimum: 3 product terms (e.g. -100 + 10-- + 1-1- or -100 + 1--0 + 1-1-).
        assert_eq!(cover.cube_count(), 3);
    }

    #[test]
    fn essential_primes_always_selected() {
        // f = Σ m(0,1,5,7): minterm 0 forces 00-, minterm 7 forces a prime with x2=1,x3=1...
        let f = Function::from_on_set(3, &[0, 1, 5, 7]).unwrap();
        let primes = quine::prime_implicants(&f);
        let ess = quine::essential_primes(&f, &primes);
        let cover = minimum_cover(&f, &primes);
        for e in &ess {
            assert!(
                cover.cubes().contains(e),
                "essential prime {e} missing from cover"
            );
        }
        assert!(cover.equivalent_to(&f));
    }

    #[test]
    fn constant_functions() {
        let zero = Function::constant_false(3).unwrap();
        assert!(minimize(&zero).is_empty());

        let one = Function::from_on_set(2, &[0, 1, 2, 3]).unwrap();
        let cover = minimize(&one);
        assert_eq!(cover.cube_count(), 1);
        assert!(cover.cubes()[0].is_universe());
    }

    #[test]
    fn dont_cares_reduce_cover_size() {
        // Without DC: f = Σ m(1,3) over 3 vars needs cube 0--1? no wait 3 vars.
        // on = {1,3}: cube 0-1. With DC {5,7}: cube --1 suffices (1 literal).
        let strict = Function::from_on_set(3, &[1, 3]).unwrap();
        let relaxed = Function::from_on_dc(3, &[1, 3], &[5, 7]).unwrap();
        let c1 = minimize(&strict);
        let c2 = minimize(&relaxed);
        assert!(c1.equivalent_to(&strict));
        assert!(c2.equivalent_to(&relaxed));
        assert!(c2.literal_count() < c1.literal_count());
    }

    #[test]
    fn greedy_fallback_still_valid() {
        // A moderately large random-ish function to exercise the greedy path
        // via the candidate*remaining limit (forced by constructing many primes).
        let on: Vec<u64> = (0..256).filter(|m| m % 3 != 0).collect();
        let f = Function::from_on_set(8, &on).unwrap();
        let cover = minimize(&f);
        assert!(cover.equivalent_to(&f));
    }
}
