//! Sparse, cover-based representation of incompletely specified functions.
//!
//! Where [`Function`] stores the on/dc/off partition as dense `2^n`-bit
//! bitsets, a [`CoverFunction`] stores the **on-set** and **off-set** as
//! packed cube [`Cover`]s and leaves the don't-care set implicit
//! (`dc = ¬(on ∪ off)`). Synthesis naturally specifies functions this way —
//! a flow-table transition subcube pins a whole cube of total states to a
//! value, and everything never pinned is a don't-care — so the sparse
//! representation costs only as much as the specification, independent of the
//! variable count.
//!
//! All algorithms over it are cube algorithms from [`recursive`]: prime
//! implicants by the unate-recursive complete sum of `¬off`, the don't-care
//! cover by recursive sharp/complement, minimization by prime expansion
//! against the off cover plus the cover-based covering table of
//! [`petrick::minimum_cover_sparse`](crate::petrick::minimum_cover_sparse).

use crate::recursive;
use crate::{BooleanError, Cover, Cube, Function, Literal};

/// An incompletely specified Boolean function represented by packed on/off
/// cube covers, with the don't-care set implicit.
///
/// # Example
///
/// ```
/// use fantom_boolean::{Cover, CoverFunction};
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// let on = Cover::parse(3, "11-")?;
/// let off = Cover::parse(3, "0-0")?;
/// let f = CoverFunction::from_on_off(on, off)?;
/// assert!(f.is_on(0b110));
/// assert!(f.is_off(0b000));
/// assert!(f.is_dc(0b011));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CoverFunction {
    num_vars: usize,
    on: Cover,
    off: Cover,
}

impl CoverFunction {
    /// Build a function from disjoint on- and off-set covers; everything
    /// outside both is a don't-care.
    ///
    /// # Errors
    ///
    /// Returns [`BooleanError::OverlappingCovers`] if some on-cube intersects
    /// some off-cube (the partition would be contradictory), or
    /// [`BooleanError::WidthMismatch`] if the covers disagree on width.
    pub fn from_on_off(on: Cover, off: Cover) -> Result<Self, BooleanError> {
        if on.num_vars() != off.num_vars() {
            return Err(BooleanError::WidthMismatch {
                expected: on.num_vars(),
                found: off.num_vars(),
            });
        }
        // Disjointness check through the off index: one word-parallel
        // candidate query per on-cube instead of an |on| × |off| pairwise
        // intersection scan. The pair scan only runs to name the offending
        // cubes once a violation is known.
        let off_index = crate::index::CoverIndex::build(&off);
        let mut cand = Vec::new();
        for a in on.cubes() {
            if off_index.intersecting_candidates(a, &mut cand) {
                let b = off
                    .cubes()
                    .iter()
                    .find(|b| a.intersect(b).is_some())
                    .expect("index reported an intersecting off-cube");
                return Err(BooleanError::OverlappingCovers {
                    on: a.to_string(),
                    off: b.to_string(),
                });
            }
        }
        let num_vars = on.num_vars();
        Ok(CoverFunction { num_vars, on, off })
    }

    /// Build a function from on- and don't-care covers, deriving the off-set
    /// cover by recursive complement (`off = ¬(on ∪ dc)`). Where the covers
    /// overlap the don't-care wins, matching [`Function::from_on_dc`].
    pub fn from_on_dc_covers(on: Cover, dc: &Cover) -> Self {
        let num_vars = on.num_vars();
        let mut care = on.clone();
        care.extend(dc.iter().cloned());
        let off = recursive::complement(&care);
        let on = if dc.is_empty() { on } else { on.sharp(dc) };
        CoverFunction { num_vars, on, off }
    }

    /// Convert a dense [`Function`] into cover form, one minterm cube per
    /// on/off point. This is the dense↔sparse bridge used by differential
    /// tests and small-space callers; it scans the dense bitsets (word-
    /// skipping) and is only sensible below
    /// [`MAX_DENSE_VARS`](crate::MAX_DENSE_VARS).
    pub fn from_function(f: &Function) -> Self {
        let n = f.num_vars();
        let cubes = |ms: crate::Minterms<'_>| -> Cover {
            Cover::from_cubes(
                n,
                ms.map(|m| Cube::from_minterm(n, m).expect("minterm in range"))
                    .collect(),
            )
        };
        CoverFunction {
            num_vars: n,
            on: cubes(f.on_minterms()),
            off: cubes(f.off_minterms()),
        }
    }

    /// Convert to the dense representation.
    ///
    /// # Errors
    ///
    /// Returns [`BooleanError::TooManyVariables`] above
    /// [`MAX_DENSE_VARS`](crate::MAX_DENSE_VARS).
    pub fn to_function(&self) -> Result<Function, BooleanError> {
        let mut f = Function::constant_dc(self.num_vars)?;
        for cube in self.off.cubes() {
            for m in cube.minterms_iter() {
                f.set_off(m);
            }
        }
        for cube in self.on.cubes() {
            for m in cube.minterms_iter() {
                f.set_on(m);
            }
        }
        Ok(f)
    }

    /// Number of variables the function is defined over.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The on-set cover.
    pub fn on_cover(&self) -> &Cover {
        &self.on
    }

    /// The off-set cover.
    pub fn off_cover(&self) -> &Cover {
        &self.off
    }

    /// The don't-care cover, derived on demand by recursive sharp/complement:
    /// `dc = ¬(on ∪ off)`.
    pub fn dc_cover(&self) -> Cover {
        let mut care = self.on.clone();
        care.extend(self.off.iter().cloned());
        recursive::complement(&care)
    }

    /// `true` if `minterm` is in the on-set.
    pub fn is_on(&self, minterm: u64) -> bool {
        self.on.covers_minterm(minterm)
    }

    /// `true` if `minterm` is in the off-set.
    pub fn is_off(&self, minterm: u64) -> bool {
        self.off.covers_minterm(minterm)
    }

    /// `true` if `minterm` is in the (implicit) don't-care set.
    pub fn is_dc(&self, minterm: u64) -> bool {
        !self.is_on(minterm) && !self.is_off(minterm)
    }

    /// Add a cube to the on-set. The cube must not intersect the off-set
    /// (debug-asserted); it may absorb former don't-cares.
    pub fn push_on(&mut self, cube: Cube) {
        debug_assert!(
            !self.off.intersects_cube(&cube),
            "on-cube {cube} intersects the off-set"
        );
        self.on.push(cube);
    }

    /// Add a cube to the off-set. The cube must not intersect the on-set
    /// (debug-asserted); it may absorb former don't-cares.
    pub fn push_off(&mut self, cube: Cube) {
        debug_assert!(
            !self.on.intersects_cube(&cube),
            "off-cube {cube} intersects the on-set"
        );
        self.off.push(cube);
    }

    /// All prime implicants: cubes maximal within `on ∪ dc` that intersect
    /// the on-set. Computed as the unate-recursive complete sum of `¬off`
    /// (which is exactly `on ∪ dc`) filtered to the primes that touch the
    /// on-set — the sparse counterpart of
    /// [`quine::prime_implicants`](crate::quine::prime_implicants), never
    /// enumerating the `2^n` space.
    pub fn prime_implicants(&self) -> Vec<Cube> {
        let care = recursive::complement(&self.off);
        let mut primes: Vec<Cube> = recursive::complete_sum(&care)
            .into_iter()
            .filter(|p| self.on.intersects_cube(p))
            .collect();
        primes.sort();
        primes
    }

    /// A set of prime implicants sufficient to cover the on-set, by greedy
    /// expansion of each on-cube against the off-set cover — the sparse
    /// counterpart of [`quine::expand_primes`](crate::quine::expand_primes):
    /// each widening test is a word-parallel cube/cover intersection instead
    /// of an off-minterm scan, and the result size is bounded by the on-cover
    /// size rather than the total prime count.
    pub fn expand_primes(&self) -> Vec<Cube> {
        let off_index = crate::index::CoverIndex::build(&self.off);
        let mut cand = Vec::new();
        let mut out: Vec<Cube> = Vec::new();
        let mut seen: crate::collections::HashSet<Cube> = crate::collections::HashSet::default();
        for cube in self.on.cubes() {
            let mut grown = cube.clone();
            for var in 0..self.num_vars {
                if grown.literal(var) == Literal::DontCare {
                    continue;
                }
                let widened = grown.with_literal(var, Literal::DontCare);
                if !off_index.intersecting_candidates(&widened, &mut cand) {
                    grown = widened;
                }
            }
            if seen.insert(grown.clone()) {
                out.push(grown);
            }
        }
        out.sort();
        out
    }

    /// Produce an essential sum-of-products cover: expansion primes selected
    /// down to a minimal subset by the cover-based covering table
    /// ([`petrick::minimum_cover_sparse`](crate::petrick::minimum_cover_sparse)).
    /// The sparse counterpart of [`minimize_function`](crate::minimize_function).
    pub fn minimize(&self) -> Cover {
        let primes = self.expand_primes();
        crate::petrick::minimum_cover_sparse(self, &primes)
    }

    /// Whether `cover` is a valid implementation of this function: it covers
    /// the whole on-set and never intersects the off-set. Decided cube-wise
    /// (sharp containment + pairwise intersection), no minterm enumeration.
    pub fn implemented_by(&self, cover: &Cover) -> bool {
        if cover.num_vars() != self.num_vars {
            return false;
        }
        for off_cube in self.off.cubes() {
            if cover.intersects_cube(off_cube) {
                return false;
            }
        }
        self.on.cubes().iter().all(|c| cover.covers_cube_sharp(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quine;

    fn round_trip(f: &Function) -> CoverFunction {
        CoverFunction::from_function(f)
    }

    #[test]
    fn partition_queries_match_dense() {
        let f = Function::from_on_dc(4, &[0, 3, 5, 9], &[2, 11]).unwrap();
        let cf = round_trip(&f);
        for m in 0..16u64 {
            assert_eq!(cf.is_on(m), f.is_on(m), "on {m}");
            assert_eq!(cf.is_dc(m), f.is_dc(m), "dc {m}");
            assert_eq!(cf.is_off(m), f.is_off(m), "off {m}");
        }
        let back = cf.to_function().unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn overlapping_covers_are_rejected() {
        let on = Cover::parse(3, "11-").unwrap();
        let off = Cover::parse(3, "1--").unwrap();
        assert!(matches!(
            CoverFunction::from_on_off(on, off),
            Err(BooleanError::OverlappingCovers { .. })
        ));
    }

    #[test]
    fn from_on_dc_covers_matches_dense_from_on_dc() {
        let on = Cover::parse(3, "11- 0-0").unwrap();
        let dc = Cover::parse(3, "111 001").unwrap();
        let cf = CoverFunction::from_on_dc_covers(on.clone(), &dc);
        let dense = Function::from_on_dc(
            3,
            &on.cubes()
                .iter()
                .flat_map(|c| c.minterms())
                .collect::<Vec<_>>(),
            &dc.cubes()
                .iter()
                .flat_map(|c| c.minterms())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        for m in 0..8u64 {
            assert_eq!(cf.is_on(m), dense.is_on(m), "on {m}");
            assert_eq!(cf.is_off(m), dense.is_off(m), "off {m}");
        }
    }

    #[test]
    fn dc_cover_is_the_unspecified_remainder() {
        let on = Cover::parse(3, "11-").unwrap();
        let off = Cover::parse(3, "00-").unwrap();
        let cf = CoverFunction::from_on_off(on, off).unwrap();
        let dc = cf.dc_cover();
        for m in 0..8u64 {
            assert_eq!(dc.covers_minterm(m), cf.is_dc(m), "minterm {m}");
        }
    }

    #[test]
    fn sparse_primes_match_dense_tabulation() {
        let f = Function::from_on_dc(4, &[4, 8, 10, 11, 12, 15], &[9, 14]).unwrap();
        let cf = round_trip(&f);
        assert_eq!(cf.prime_implicants(), quine::prime_implicants(&f));
    }

    #[test]
    fn minimize_produces_a_valid_cover() {
        let f = Function::from_on_dc(5, &[0, 3, 5, 9, 11, 17, 21, 29, 30], &[2, 12]).unwrap();
        let cf = round_trip(&f);
        let cover = cf.minimize();
        assert!(cf.implemented_by(&cover));
        assert!(f.implemented_by(&cover));
    }

    #[test]
    fn implemented_by_rejects_bad_covers() {
        let on = Cover::parse(3, "11-").unwrap();
        let off = Cover::parse(3, "0--").unwrap();
        let cf = CoverFunction::from_on_off(on, off).unwrap();
        assert!(cf.implemented_by(&Cover::parse(3, "11-").unwrap()));
        // Misses part of the on-set.
        assert!(!cf.implemented_by(&Cover::parse(3, "111").unwrap()));
        // Touches the off-set.
        assert!(!cf.implemented_by(&Cover::parse(3, "11- 0--").unwrap()));
    }
}
