use std::fmt;

use crate::BooleanError;

/// Value of a single variable position inside a [`Cube`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Literal {
    /// The variable appears complemented (`x'`).
    Zero,
    /// The variable appears uncomplemented (`x`).
    One,
    /// The variable does not appear in the product term.
    DontCare,
}

impl Literal {
    /// Character used by the positional-cube text format.
    pub fn to_char(self) -> char {
        match self {
            Literal::Zero => '0',
            Literal::One => '1',
            Literal::DontCare => '-',
        }
    }

    /// Parse a positional-cube character.
    ///
    /// # Errors
    ///
    /// Returns [`BooleanError::InvalidCubeCharacter`] for anything other than
    /// `0`, `1` or `-`.
    pub fn from_char(c: char) -> Result<Self, BooleanError> {
        match c {
            '0' => Ok(Literal::Zero),
            '1' => Ok(Literal::One),
            '-' => Ok(Literal::DontCare),
            other => Err(BooleanError::InvalidCubeCharacter(other)),
        }
    }

    /// Whether a concrete bit value is compatible with this literal.
    pub fn matches(self, bit: bool) -> bool {
        match self {
            Literal::Zero => !bit,
            Literal::One => bit,
            Literal::DontCare => true,
        }
    }
}

/// A product term (cube) over a fixed, ordered set of Boolean variables.
///
/// Variable 0 is the **most significant** bit of a minterm index, matching the
/// row/column ordering conventions used by the flow-table crates.
///
/// # Example
///
/// ```
/// use fantom_boolean::Cube;
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// let c = Cube::parse("1-0")?;
/// assert_eq!(c.num_vars(), 3);
/// assert!(c.contains_minterm(0b100));
/// assert!(c.contains_minterm(0b110));
/// assert!(!c.contains_minterm(0b101));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    lits: Vec<Literal>,
}

impl Cube {
    /// Create a cube from an explicit literal vector.
    pub fn new(lits: Vec<Literal>) -> Self {
        Cube { lits }
    }

    /// The universal cube (all positions don't-care) over `num_vars` variables.
    pub fn universe(num_vars: usize) -> Self {
        Cube { lits: vec![Literal::DontCare; num_vars] }
    }

    /// Parse a positional-cube string such as `"1-0"`.
    ///
    /// # Errors
    ///
    /// Returns [`BooleanError::InvalidCubeCharacter`] on malformed input.
    pub fn parse(s: &str) -> Result<Self, BooleanError> {
        let lits = s.chars().map(Literal::from_char).collect::<Result<Vec<_>, _>>()?;
        Ok(Cube { lits })
    }

    /// Build the minterm cube for index `minterm` over `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`BooleanError::MintermOutOfRange`] if the index does not fit.
    pub fn from_minterm(num_vars: usize, minterm: u64) -> Result<Self, BooleanError> {
        if num_vars < 64 && minterm >= (1u64 << num_vars) {
            return Err(BooleanError::MintermOutOfRange { minterm, num_vars });
        }
        let mut lits = vec![Literal::Zero; num_vars];
        for (i, lit) in lits.iter_mut().enumerate() {
            let bit = (minterm >> (num_vars - 1 - i)) & 1 == 1;
            *lit = if bit { Literal::One } else { Literal::Zero };
        }
        Ok(Cube { lits })
    }

    /// Number of variables this cube is defined over.
    pub fn num_vars(&self) -> usize {
        self.lits.len()
    }

    /// The literal at variable position `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_vars()`.
    pub fn literal(&self, var: usize) -> Literal {
        self.lits[var]
    }

    /// Replace the literal at position `var`, returning a new cube.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_vars()`.
    pub fn with_literal(&self, var: usize, lit: Literal) -> Cube {
        let mut lits = self.lits.clone();
        lits[var] = lit;
        Cube { lits }
    }

    /// Iterate over the literals in variable order.
    pub fn literals(&self) -> impl Iterator<Item = Literal> + '_ {
        self.lits.iter().copied()
    }

    /// Number of non-don't-care positions (the literal count of the product term).
    pub fn literal_count(&self) -> usize {
        self.lits.iter().filter(|l| **l != Literal::DontCare).count()
    }

    /// Number of positions bound to [`Literal::One`].
    pub fn ones_count(&self) -> usize {
        self.lits.iter().filter(|l| **l == Literal::One).count()
    }

    /// `true` if every position is a don't-care.
    pub fn is_universe(&self) -> bool {
        self.lits.iter().all(|l| *l == Literal::DontCare)
    }

    /// `true` if the cube binds every variable (covers exactly one minterm).
    pub fn is_minterm(&self) -> bool {
        self.literal_count() == self.num_vars()
    }

    /// Number of minterms covered by this cube (`2^(free positions)`).
    pub fn minterm_count(&self) -> u64 {
        1u64 << (self.num_vars() - self.literal_count())
    }

    /// Whether the cube covers the given minterm index.
    pub fn contains_minterm(&self, minterm: u64) -> bool {
        let n = self.num_vars();
        self.lits.iter().enumerate().all(|(i, lit)| {
            let bit = (minterm >> (n - 1 - i)) & 1 == 1;
            lit.matches(bit)
        })
    }

    /// Whether this cube covers (is a superset of) `other`.
    pub fn covers(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.num_vars(), other.num_vars());
        self.lits.iter().zip(&other.lits).all(|(a, b)| match a {
            Literal::DontCare => true,
            _ => a == b,
        })
    }

    /// Intersection of two cubes, or `None` if they are disjoint.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.num_vars(), other.num_vars());
        let mut lits = Vec::with_capacity(self.num_vars());
        for (a, b) in self.lits.iter().zip(&other.lits) {
            let lit = match (a, b) {
                (Literal::DontCare, x) => *x,
                (x, Literal::DontCare) => *x,
                (x, y) if x == y => *x,
                _ => return None,
            };
            lits.push(lit);
        }
        Some(Cube { lits })
    }

    /// Number of positions where the cubes conflict (one bound to 0, the other to 1).
    pub fn conflict_count(&self, other: &Cube) -> usize {
        debug_assert_eq!(self.num_vars(), other.num_vars());
        self.lits
            .iter()
            .zip(&other.lits)
            .filter(|(a, b)| {
                matches!(
                    (a, b),
                    (Literal::Zero, Literal::One) | (Literal::One, Literal::Zero)
                )
            })
            .count()
    }

    /// Attempt the Quine–McCluskey adjacency merge: if the cubes have identical
    /// don't-care positions and differ in exactly one bound position, return
    /// the merged cube with that position freed.
    pub fn combine_adjacent(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.num_vars(), other.num_vars());
        let mut diff_at = None;
        for (i, (a, b)) in self.lits.iter().zip(&other.lits).enumerate() {
            if a == b {
                continue;
            }
            // Don't-care structure must match exactly.
            if *a == Literal::DontCare || *b == Literal::DontCare {
                return None;
            }
            if diff_at.is_some() {
                return None;
            }
            diff_at = Some(i);
        }
        diff_at.map(|i| self.with_literal(i, Literal::DontCare))
    }

    /// Smallest cube containing both operands.
    pub fn supercube(&self, other: &Cube) -> Cube {
        debug_assert_eq!(self.num_vars(), other.num_vars());
        let lits = self
            .lits
            .iter()
            .zip(&other.lits)
            .map(|(a, b)| if a == b { *a } else { Literal::DontCare })
            .collect();
        Cube { lits }
    }

    /// Enumerate the minterm indices covered by this cube, in increasing order.
    pub fn minterms(&self) -> Vec<u64> {
        let free: Vec<usize> = (0..self.num_vars())
            .filter(|i| self.lits[*i] == Literal::DontCare)
            .collect();
        let n = self.num_vars();
        let mut base = 0u64;
        for (i, lit) in self.lits.iter().enumerate() {
            if *lit == Literal::One {
                base |= 1 << (n - 1 - i);
            }
        }
        let mut out = Vec::with_capacity(1 << free.len());
        for combo in 0u64..(1 << free.len()) {
            let mut m = base;
            for (j, pos) in free.iter().enumerate() {
                if (combo >> j) & 1 == 1 {
                    m |= 1 << (n - 1 - pos);
                }
            }
            out.push(m);
        }
        out.sort_unstable();
        out
    }

    /// Evaluate the cube on a concrete assignment given as a bit slice
    /// (index 0 = variable 0).
    pub fn eval(&self, bits: &[bool]) -> bool {
        debug_assert_eq!(bits.len(), self.num_vars());
        self.lits.iter().zip(bits).all(|(lit, bit)| lit.matches(*bit))
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for lit in &self.lits {
            write!(f, "{}", lit.to_char())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let c = Cube::parse("10-1-").unwrap();
        assert_eq!(c.to_string(), "10-1-");
        assert_eq!(c.num_vars(), 5);
        assert_eq!(c.literal_count(), 3);
    }

    #[test]
    fn parse_rejects_bad_characters() {
        assert!(matches!(
            Cube::parse("10x"),
            Err(BooleanError::InvalidCubeCharacter('x'))
        ));
    }

    #[test]
    fn minterm_construction_and_membership() {
        let c = Cube::from_minterm(4, 0b1010).unwrap();
        assert_eq!(c.to_string(), "1010");
        assert!(c.contains_minterm(0b1010));
        assert!(!c.contains_minterm(0b1011));
    }

    #[test]
    fn minterm_out_of_range_is_rejected() {
        assert!(Cube::from_minterm(3, 8).is_err());
        assert!(Cube::from_minterm(3, 7).is_ok());
    }

    #[test]
    fn containment_and_intersection() {
        let a = Cube::parse("1--").unwrap();
        let b = Cube::parse("1-0").unwrap();
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert_eq!(a.intersect(&b), Some(b.clone()));

        let c = Cube::parse("0--").unwrap();
        assert_eq!(b.intersect(&c), None);
    }

    #[test]
    fn adjacency_merge() {
        let a = Cube::parse("101").unwrap();
        let b = Cube::parse("100").unwrap();
        assert_eq!(a.combine_adjacent(&b), Some(Cube::parse("10-").unwrap()));

        // Differ in two positions: no merge.
        let c = Cube::parse("110").unwrap();
        assert_eq!(a.combine_adjacent(&c), None);

        // Mismatched don't-care structure: no merge.
        let d = Cube::parse("10-").unwrap();
        assert_eq!(a.combine_adjacent(&d), None);
    }

    #[test]
    fn minterm_enumeration_matches_membership() {
        let c = Cube::parse("1-0-").unwrap();
        let ms = c.minterms();
        assert_eq!(ms.len(), 4);
        for m in 0..16u64 {
            assert_eq!(ms.contains(&m), c.contains_minterm(m));
        }
    }

    #[test]
    fn supercube_covers_both() {
        let a = Cube::parse("101").unwrap();
        let b = Cube::parse("001").unwrap();
        let s = a.supercube(&b);
        assert!(s.covers(&a));
        assert!(s.covers(&b));
        assert_eq!(s.to_string(), "-01");
    }

    #[test]
    fn eval_matches_contains_minterm() {
        let c = Cube::parse("1-0").unwrap();
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|i| (m >> (2 - i)) & 1 == 1).collect();
            assert_eq!(c.eval(&bits), c.contains_minterm(m));
        }
    }
}
