use std::fmt;

use crate::lane;
use crate::BooleanError;

/// Value of a single variable position inside a [`Cube`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Literal {
    /// The variable appears complemented (`x'`).
    Zero,
    /// The variable appears uncomplemented (`x`).
    One,
    /// The variable does not appear in the product term.
    DontCare,
}

impl Literal {
    /// Character used by the positional-cube text format.
    pub fn to_char(self) -> char {
        match self {
            Literal::Zero => '0',
            Literal::One => '1',
            Literal::DontCare => '-',
        }
    }

    /// Parse a positional-cube character.
    ///
    /// # Errors
    ///
    /// Returns [`BooleanError::InvalidCubeCharacter`] for anything other than
    /// `0`, `1` or `-`.
    pub fn from_char(c: char) -> Result<Self, BooleanError> {
        match c {
            '0' => Ok(Literal::Zero),
            '1' => Ok(Literal::One),
            '-' => Ok(Literal::DontCare),
            other => Err(BooleanError::InvalidCubeCharacter(other)),
        }
    }

    /// Whether a concrete bit value is compatible with this literal.
    pub fn matches(self, bit: bool) -> bool {
        match self {
            Literal::Zero => !bit,
            Literal::One => bit,
            Literal::DontCare => true,
        }
    }

    /// The espresso-style 2-bit field encoding of this literal
    /// (`can-be-1` in the high bit, `can-be-0` in the low bit).
    fn field(self) -> u64 {
        match self {
            Literal::Zero => 0b01,
            Literal::One => 0b10,
            Literal::DontCare => 0b11,
        }
    }

    /// Decode a 2-bit field back into a literal.
    ///
    /// # Panics
    ///
    /// Panics on the empty field `0b00`, which no well-formed cube contains.
    fn from_field(f: u64) -> Self {
        match f {
            0b01 => Literal::Zero,
            0b10 => Literal::One,
            0b11 => Literal::DontCare,
            _ => unreachable!("empty cube field"),
        }
    }
}

/// Number of variable fields per packed 64-bit word.
const SLOTS_PER_WORD: usize = 32;

/// Mask of every low ("can-be-0") field bit.
const LO_BITS: u64 = 0x5555_5555_5555_5555;

/// Storage for the packed fields: cubes of at most [`SLOTS_PER_WORD`]
/// variables (every MCNC-scale benchmark) live in a single inline word and
/// never touch the heap; wider cubes spill into a boxed word slice.
#[derive(Debug, Clone)]
enum Repr {
    Inline(u64),
    Heap(Box<[u64]>),
}

/// A product term (cube) over a fixed, ordered set of Boolean variables.
///
/// Variable 0 is the **most significant** bit of a minterm index, matching the
/// row/column ordering conventions used by the flow-table crates.
///
/// Internally the cube is bit-packed, two bits per variable (see the crate
/// docs for the exact layout), so containment, intersection, conflict
/// counting and adjacency merging are word-parallel bit operations rather
/// than per-literal loops.
///
/// # Example
///
/// ```
/// use fantom_boolean::Cube;
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// let c = Cube::parse("1-0")?;
/// assert_eq!(c.num_vars(), 3);
/// assert!(c.contains_minterm(0b100));
/// assert!(c.contains_minterm(0b110));
/// assert!(!c.contains_minterm(0b101));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Cube {
    num_vars: usize,
    repr: Repr,
}

/// Number of packed words needed for `num_vars` variables (at least one, so
/// the zero-variable cube still has canonical storage).
fn word_count(num_vars: usize) -> usize {
    num_vars.div_ceil(SLOTS_PER_WORD).max(1)
}

/// Mask selecting the field bits of word `word_idx` that belong to real
/// variables of an `num_vars`-wide cube (fields are allocated from the top of
/// the word down).
fn valid_mask(num_vars: usize, word_idx: usize) -> u64 {
    let used = num_vars
        .saturating_sub(word_idx * SLOTS_PER_WORD)
        .min(SLOTS_PER_WORD);
    if used == 0 {
        0
    } else {
        !0u64 << (64 - 2 * used)
    }
}

/// Spread the 32 bits of `x` to the even bit positions of a `u64`
/// (bit `j` of `x` moves to bit `2j`).
fn spread(x: u32) -> u64 {
    let mut x = u64::from(x);
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & LO_BITS;
    x
}

/// Extract the 32-bit chunk of `source` holding the bits of variables
/// `word_idx*32 ..` for an `num_vars`-wide cube, aligned so the word's first
/// variable sits in chunk bit 31. `source` uses the minterm convention
/// (variable `v` at bit `num_vars - 1 - v`). Bits beyond the cube width are
/// garbage and must be masked by the caller.
fn chunk(num_vars: usize, source: u64, word_idx: usize) -> u32 {
    let top = num_vars - word_idx * SLOTS_PER_WORD;
    if top >= 32 {
        (source >> (top - 32)) as u32
    } else {
        (source << (32 - top)) as u32
    }
}

/// The packed word a minterm contributes for word `word_idx`: each variable's
/// field holds `10` where the minterm bit is 1 and `01` where it is 0, with
/// padding fields left empty (`00`).
fn minterm_word(num_vars: usize, minterm: u64, word_idx: usize) -> u64 {
    let c = chunk(num_vars, minterm, word_idx);
    let word = (spread(c) << 1) | spread(!c);
    word & valid_mask(num_vars, word_idx)
}

impl Cube {
    /// Word-wise AND of two same-width cubes (the constructive step of
    /// intersection). Inline cubes stay allocation-free; heap cubes run the
    /// [`lane`] kernel.
    #[inline]
    fn and_cube(&self, other: &Cube) -> Cube {
        debug_assert_eq!(self.num_vars, other.num_vars);
        let repr = match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => Repr::Inline(a & b),
            _ => {
                let mut out: Box<[u64]> = self.words().into();
                lane::and_into(&mut out, other.words());
                Repr::Heap(out)
            }
        };
        Cube {
            num_vars: self.num_vars,
            repr,
        }
    }

    /// Word-wise OR of two same-width cubes (supercube / adjacency merge).
    #[inline]
    fn or_cube(&self, other: &Cube) -> Cube {
        debug_assert_eq!(self.num_vars, other.num_vars);
        let repr = match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => Repr::Inline(a | b),
            _ => {
                let mut out: Box<[u64]> = self.words().into();
                lane::or_into(&mut out, other.words());
                Repr::Heap(out)
            }
        };
        Cube {
            num_vars: self.num_vars,
            repr,
        }
    }

    /// The packed words of the cube (two bits per variable).
    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => std::slice::from_ref(w),
            Repr::Heap(ws) => ws,
        }
    }

    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline(w) => std::slice::from_mut(w),
            Repr::Heap(ws) => ws,
        }
    }

    /// Create a cube from an explicit literal vector.
    pub fn new(lits: Vec<Literal>) -> Self {
        let mut cube = Cube::universe(lits.len());
        for (v, lit) in lits.into_iter().enumerate() {
            cube.set_literal(v, lit);
        }
        cube
    }

    /// The universal cube (all positions don't-care) over `num_vars` variables.
    pub fn universe(num_vars: usize) -> Self {
        // All fields (including padding) are `11`, the canonical form.
        let repr = if num_vars <= SLOTS_PER_WORD {
            Repr::Inline(!0u64)
        } else {
            Repr::Heap(vec![!0u64; word_count(num_vars)].into_boxed_slice())
        };
        Cube { num_vars, repr }
    }

    /// Parse a positional-cube string such as `"1-0"`.
    ///
    /// # Errors
    ///
    /// Returns [`BooleanError::InvalidCubeCharacter`] on malformed input.
    pub fn parse(s: &str) -> Result<Self, BooleanError> {
        let mut cube = Cube::universe(s.chars().count());
        for (v, c) in s.chars().enumerate() {
            cube.set_literal(v, Literal::from_char(c)?);
        }
        Ok(cube)
    }

    /// Build the minterm cube for index `minterm` over `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`BooleanError::MintermOutOfRange`] if the index does not fit.
    pub fn from_minterm(num_vars: usize, minterm: u64) -> Result<Self, BooleanError> {
        if num_vars < 64 && minterm >= (1u64 << num_vars) {
            return Err(BooleanError::MintermOutOfRange { minterm, num_vars });
        }
        if num_vars == 0 {
            return Ok(Cube::universe(0));
        }
        let full = if num_vars >= 64 {
            !0u64
        } else {
            (1u64 << num_vars) - 1
        };
        Ok(Self::from_mask_value(num_vars, full, minterm))
    }

    /// Build a cube from the compact `(mask, value)` encoding used by the
    /// Quine–McCluskey tabulation: `mask` has a 1 at bit `num_vars - 1 - v`
    /// for every **bound** variable `v`, and `value` holds the bound values at
    /// the same positions. Unbound positions become don't-cares; `value` bits
    /// outside `mask` are ignored.
    ///
    /// Only meaningful for cubes of at most 64 variables (the width of the
    /// mask words).
    pub fn from_mask_value(num_vars: usize, mask: u64, value: u64) -> Self {
        assert!(
            num_vars <= 64,
            "mask/value encoding only spans 64 variables"
        );
        if num_vars == 0 {
            return Cube::universe(0);
        }
        let bound_ones = value & mask;
        // can-be-1: unbound, or bound to 1; can-be-0: unbound, or bound to 0.
        let hi_src = bound_ones | !mask;
        let lo_src = !bound_ones;
        let pack = |i: usize| {
            let valid = valid_mask(num_vars, i);
            let word =
                (spread(chunk(num_vars, hi_src, i)) << 1) | spread(chunk(num_vars, lo_src, i));
            (word & valid) | !valid
        };
        let repr = if num_vars <= SLOTS_PER_WORD {
            Repr::Inline(pack(0))
        } else {
            Repr::Heap((0..word_count(num_vars)).map(pack).collect())
        };
        Cube { num_vars, repr }
    }

    /// Number of variables this cube is defined over.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The 2-bit field shift of variable `var` within its word.
    fn shift(var: usize) -> u32 {
        (62 - 2 * (var % SLOTS_PER_WORD)) as u32
    }

    /// The literal at variable position `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_vars()`.
    pub fn literal(&self, var: usize) -> Literal {
        assert!(var < self.num_vars, "variable index out of range");
        let word = self.words()[var / SLOTS_PER_WORD];
        Literal::from_field((word >> Self::shift(var)) & 0b11)
    }

    /// Overwrite the literal at position `var` in place.
    fn set_literal(&mut self, var: usize, lit: Literal) {
        debug_assert!(var < self.num_vars);
        let shift = Self::shift(var);
        let word = &mut self.words_mut()[var / SLOTS_PER_WORD];
        *word = (*word & !(0b11 << shift)) | (lit.field() << shift);
    }

    /// Replace the literal at position `var`, returning a new cube.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_vars()`.
    pub fn with_literal(&self, var: usize, lit: Literal) -> Cube {
        assert!(var < self.num_vars, "variable index out of range");
        let mut cube = self.clone();
        cube.set_literal(var, lit);
        cube
    }

    /// Iterate over the literals in variable order.
    pub fn literals(&self) -> impl Iterator<Item = Literal> + '_ {
        (0..self.num_vars).map(move |v| self.literal(v))
    }

    /// Number of non-don't-care positions (the literal count of the product term).
    pub fn literal_count(&self) -> usize {
        let dc: u32 = self
            .words()
            .iter()
            .enumerate()
            .map(|(i, &w)| (w & (w >> 1) & LO_BITS & valid_mask(self.num_vars, i)).count_ones())
            .sum();
        self.num_vars - dc as usize
    }

    /// Number of positions bound to [`Literal::One`].
    pub fn ones_count(&self) -> usize {
        self.words()
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                ((w >> 1) & !w & LO_BITS & valid_mask(self.num_vars, i)).count_ones() as usize
            })
            .sum()
    }

    /// `true` if every position is a don't-care.
    pub fn is_universe(&self) -> bool {
        // Padding fields are canonically `11`, so the universe is all-ones.
        lane::all_ones(self.words())
    }

    /// `true` if the cube binds every variable (covers exactly one minterm).
    pub fn is_minterm(&self) -> bool {
        self.literal_count() == self.num_vars
    }

    /// Number of minterms covered by this cube (`2^(free positions)`).
    ///
    /// # Panics
    ///
    /// Panics if the cube has 64 or more free positions — the count would not
    /// fit in a `u64` (dense-function workloads stay below 24 variables).
    pub fn minterm_count(&self) -> u64 {
        let free = self.num_vars - self.literal_count();
        assert!(
            free < 64,
            "minterm count of a cube with {free} free variables overflows u64"
        );
        1u64 << free
    }

    /// Whether the cube covers the given minterm index.
    pub fn contains_minterm(&self, minterm: u64) -> bool {
        debug_assert!(self.num_vars <= 64);
        self.words()
            .iter()
            .enumerate()
            .all(|(i, &w)| minterm_word(self.num_vars, minterm, i) & !w == 0)
    }

    /// Whether this cube covers (is a superset of) `other`.
    pub fn covers(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.num_vars, other.num_vars);
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => b & !a == 0,
            _ => lane::cube_covers(self.words(), other.words()),
        }
    }

    /// Intersection of two cubes, or `None` if they are disjoint.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.num_vars, other.num_vars);
        // A variable whose field becomes empty (00) witnesses a 0/1 conflict.
        // Padding fields stay 11, so no mask is needed.
        let conflict = match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => {
                let t = a & b;
                !(t | (t >> 1)) & LO_BITS != 0
            }
            _ => lane::cube_has_conflict(self.words(), other.words()),
        };
        if conflict {
            return None;
        }
        Some(self.and_cube(other))
    }

    /// Number of positions where the cubes conflict (one bound to 0, the other
    /// to 1). Also known as the *distance* between the cubes.
    pub fn conflict_count(&self, other: &Cube) -> usize {
        debug_assert_eq!(self.num_vars, other.num_vars);
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => {
                let t = a & b;
                (!(t | (t >> 1)) & LO_BITS).count_ones() as usize
            }
            _ => lane::cube_conflict_count(self.words(), other.words()),
        }
    }

    /// Alias of [`Cube::conflict_count`] under its classical name.
    pub fn distance(&self, other: &Cube) -> usize {
        self.conflict_count(other)
    }

    /// The consensus of two cubes: if they conflict in exactly one variable,
    /// the cube obtained by freeing that variable and intersecting the rest
    /// (the classical consensus term `ab' ∨ a'c ⊢ bc`). `None` when the
    /// distance is not exactly 1.
    ///
    /// Part of the kernel's word-parallel op set; note that the hazard
    /// remover ([`crate::hazard::add_consensus_terms`]) intentionally builds
    /// its consensus gates by prime expansion instead, so the added terms are
    /// maximal.
    pub fn consensus(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.num_vars, other.num_vars);
        if self.conflict_count(other) != 1 {
            return None;
        }
        // Intersect and re-open the single conflicting field to don't-care.
        let repr = match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => {
                let t = a & b;
                let empty_lo = !(t | (t >> 1)) & LO_BITS;
                Repr::Inline(t | empty_lo | (empty_lo << 1))
            }
            _ => {
                let mut out: Box<[u64]> = self.words().into();
                lane::cube_consensus_into(&mut out, other.words());
                Repr::Heap(out)
            }
        };
        Some(Cube {
            num_vars: self.num_vars,
            repr,
        })
    }

    /// Attempt the Quine–McCluskey adjacency merge: if the cubes have identical
    /// don't-care positions and differ in exactly one bound position, return
    /// the merged cube with that position freed.
    pub fn combine_adjacent(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.num_vars, other.num_vars);
        // The XOR of the packed words is nonzero only where the cubes differ.
        // A legal merge differs in exactly one field, and that field must be
        // the pair 01/10 (so its XOR is 11): two set bits, in the same field.
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &other.repr) {
            let d = a ^ b;
            if d.count_ones() != 2 || d & (d >> 1) & LO_BITS == 0 {
                return None;
            }
            return Some(Cube {
                num_vars: self.num_vars,
                repr: Repr::Inline(a | b),
            });
        }
        let mut diff_word = 0u64;
        let mut diff_bits = 0u32;
        for (&a, &b) in self.words().iter().zip(other.words()) {
            let d = a ^ b;
            if d != 0 {
                if diff_bits != 0 {
                    return None; // differences in more than one word
                }
                diff_word = d;
                diff_bits = d.count_ones();
            }
        }
        if diff_bits != 2 || diff_word & (diff_word >> 1) & LO_BITS == 0 {
            return None;
        }
        Some(self.or_cube(other))
    }

    /// Smallest cube containing both operands.
    pub fn supercube(&self, other: &Cube) -> Cube {
        self.or_cube(other)
    }

    /// The cofactor of this cube with respect to `var = value`: `None` if the
    /// cube is incompatible with the assignment (bound to the opposite
    /// value), otherwise the cube with `var` freed (the Shannon cofactor of a
    /// product term does not mention the cofactoring variable).
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_vars()`.
    pub fn cofactor(&self, var: usize, value: bool) -> Option<Cube> {
        match (self.literal(var), value) {
            (Literal::Zero, true) | (Literal::One, false) => None,
            _ => Some(self.with_literal(var, Literal::DontCare)),
        }
    }

    /// The disjoint sharp `self # other`: a set of pairwise-disjoint cubes
    /// whose union is exactly the points of `self` not covered by `other`.
    ///
    /// For every variable bound by `other` but free in `self`, one result
    /// cube flips that position to the opposite literal while pinning the
    /// previously-visited positions to `other`'s value — the classical
    /// disjoint-sharp recurrence, realised iteratively.
    pub fn sharp(&self, other: &Cube) -> Vec<Cube> {
        debug_assert_eq!(self.num_vars, other.num_vars);
        if self.intersect(other).is_none() {
            return vec![self.clone()];
        }
        if other.covers(self) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut prefix = self.clone();
        for var in 0..self.num_vars {
            let ol = other.literal(var);
            if ol == Literal::DontCare {
                continue;
            }
            if self.literal(var) == Literal::DontCare {
                let flipped = match ol {
                    Literal::Zero => Literal::One,
                    Literal::One => Literal::Zero,
                    Literal::DontCare => unreachable!(),
                };
                out.push(prefix.with_literal(var, flipped));
                prefix.set_literal(var, ol);
            }
        }
        out
    }

    /// Enumerate the minterm indices covered by this cube, in increasing order.
    pub fn minterms(&self) -> Vec<u64> {
        self.minterms_iter().collect()
    }

    /// Lazily enumerate the minterm indices covered by this cube, in
    /// increasing order. Prefer this over [`Cube::minterms`] in any-/all-style
    /// scans so the enumeration can stop early.
    ///
    /// # Panics
    ///
    /// Panics if the cube has 64 or more free positions (the enumeration
    /// length would not fit in a `u64`).
    pub fn minterms_iter(&self) -> MintermIter {
        debug_assert!(self.num_vars <= 64);
        let n = self.num_vars;
        let mut base = 0u64;
        let mut free_bits = Vec::new();
        // Walk variables from highest index (lowest minterm weight) down so
        // `free_bits` ends up sorted ascending and the enumeration is ordered.
        for v in (0..n).rev() {
            let weight = 1u64 << (n - 1 - v);
            match self.literal(v) {
                Literal::One => base |= weight,
                Literal::DontCare => free_bits.push(weight),
                Literal::Zero => {}
            }
        }
        assert!(
            free_bits.len() < 64,
            "a cube with {} free variables cannot be enumerated",
            free_bits.len()
        );
        let total = 1u64 << free_bits.len();
        MintermIter {
            base,
            free_bits,
            combo: 0,
            total,
        }
    }

    /// Evaluate the cube on a concrete assignment given as a bit slice
    /// (index 0 = variable 0).
    pub fn eval(&self, bits: &[bool]) -> bool {
        debug_assert_eq!(bits.len(), self.num_vars);
        if self.num_vars <= 64 {
            let mut m = 0u64;
            for &b in bits {
                m = (m << 1) | u64::from(b);
            }
            self.contains_minterm(m)
        } else {
            bits.iter()
                .enumerate()
                .all(|(v, &b)| self.literal(v).matches(b))
        }
    }
}

/// Sharp every cube of `pieces` by `sub`, double-buffering through `next`
/// (allocations are reused; disjoint pieces are moved, not cloned). Returns
/// `false` when nothing is left — the workhorse of the indexed subtraction
/// loops in `cover` and `hazard`.
pub(crate) fn sharp_pieces(pieces: &mut Vec<Cube>, next: &mut Vec<Cube>, sub: &Cube) -> bool {
    next.clear();
    for p in pieces.drain(..) {
        if p.intersect(sub).is_none() {
            next.push(p);
        } else {
            next.extend(p.sharp(sub));
        }
    }
    std::mem::swap(pieces, next);
    !pieces.is_empty()
}

/// Ordered enumeration of the minterms of a cube (see [`Cube::minterms_iter`]).
#[derive(Debug, Clone)]
pub struct MintermIter {
    base: u64,
    free_bits: Vec<u64>,
    combo: u64,
    total: u64,
}

impl Iterator for MintermIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.combo >= self.total {
            return None;
        }
        let mut m = self.base;
        let mut c = self.combo;
        while c != 0 {
            let j = c.trailing_zeros() as usize;
            m |= self.free_bits[j];
            c &= c - 1;
        }
        self.combo += 1;
        Some(m)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.total - self.combo) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for MintermIter {}

impl PartialEq for Cube {
    fn eq(&self, other: &Self) -> bool {
        self.num_vars == other.num_vars && self.words() == other.words()
    }
}

impl Eq for Cube {}

impl std::hash::Hash for Cube {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.num_vars.hash(state);
        for w in self.words() {
            w.hash(state);
        }
    }
}

impl PartialOrd for Cube {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cube {
    /// Lexicographic by variable position with `Zero < One < DontCare`,
    /// matching the ordering of the literal-vector representation this kernel
    /// replaced. The packed field values (01 < 10 < 11) preserve the literal
    /// order and variable 0 occupies the most significant field, so plain
    /// word comparison realises the lexicographic order.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.words()
            .cmp(other.words())
            .then(self.num_vars.cmp(&other.num_vars))
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for lit in self.literals() {
            write!(f, "{}", lit.to_char())?;
        }
        Ok(())
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube(\"{self}\")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let c = Cube::parse("10-1-").unwrap();
        assert_eq!(c.to_string(), "10-1-");
        assert_eq!(c.num_vars(), 5);
        assert_eq!(c.literal_count(), 3);
    }

    #[test]
    fn parse_rejects_bad_characters() {
        assert!(matches!(
            Cube::parse("10x"),
            Err(BooleanError::InvalidCubeCharacter('x'))
        ));
    }

    #[test]
    fn minterm_construction_and_membership() {
        let c = Cube::from_minterm(4, 0b1010).unwrap();
        assert_eq!(c.to_string(), "1010");
        assert!(c.contains_minterm(0b1010));
        assert!(!c.contains_minterm(0b1011));
    }

    #[test]
    fn minterm_out_of_range_is_rejected() {
        assert!(Cube::from_minterm(3, 8).is_err());
        assert!(Cube::from_minterm(3, 7).is_ok());
    }

    #[test]
    fn containment_and_intersection() {
        let a = Cube::parse("1--").unwrap();
        let b = Cube::parse("1-0").unwrap();
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert_eq!(a.intersect(&b), Some(b.clone()));

        let c = Cube::parse("0--").unwrap();
        assert_eq!(b.intersect(&c), None);
    }

    #[test]
    fn adjacency_merge() {
        let a = Cube::parse("101").unwrap();
        let b = Cube::parse("100").unwrap();
        assert_eq!(a.combine_adjacent(&b), Some(Cube::parse("10-").unwrap()));

        // Differ in two positions: no merge.
        let c = Cube::parse("110").unwrap();
        assert_eq!(a.combine_adjacent(&c), None);

        // Mismatched don't-care structure: no merge.
        let d = Cube::parse("10-").unwrap();
        assert_eq!(a.combine_adjacent(&d), None);
    }

    #[test]
    fn minterm_enumeration_matches_membership() {
        let c = Cube::parse("1-0-").unwrap();
        let ms = c.minterms();
        assert_eq!(ms.len(), 4);
        for m in 0..16u64 {
            assert_eq!(ms.contains(&m), c.contains_minterm(m));
        }
    }

    #[test]
    fn minterms_are_sorted_ascending() {
        let c = Cube::parse("-1-0-").unwrap();
        let ms = c.minterms();
        let mut sorted = ms.clone();
        sorted.sort_unstable();
        assert_eq!(ms, sorted);
    }

    #[test]
    fn supercube_covers_both() {
        let a = Cube::parse("101").unwrap();
        let b = Cube::parse("001").unwrap();
        let s = a.supercube(&b);
        assert!(s.covers(&a));
        assert!(s.covers(&b));
        assert_eq!(s.to_string(), "-01");
    }

    #[test]
    fn eval_matches_contains_minterm() {
        let c = Cube::parse("1-0").unwrap();
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|i| (m >> (2 - i)) & 1 == 1).collect();
            assert_eq!(c.eval(&bits), c.contains_minterm(m));
        }
    }

    #[test]
    fn from_mask_value_round_trips() {
        // 4 vars, vars 0 and 2 bound (mask 0b1010), values 1 and 0: "1-0-".
        let c = Cube::from_mask_value(4, 0b1010, 0b1000);
        assert_eq!(c.to_string(), "1-0-");
        // Value bits outside the mask are ignored.
        let d = Cube::from_mask_value(4, 0b1010, 0b1101);
        assert_eq!(d.to_string(), "1-0-");
    }

    #[test]
    fn consensus_of_distance_one_cubes() {
        // ab' + a'c -> consensus b'c? classic: "11-" and "0-1" conflict in var
        // 0 only; consensus is "1" fields elsewhere intersected: "-11"? no:
        // a=11-, b=0-1: free var0 -> intersect(1-,-1) over vars 1,2 = "11".
        let a = Cube::parse("11-").unwrap();
        let b = Cube::parse("0-1").unwrap();
        let c = a.consensus(&b).unwrap();
        assert_eq!(c.to_string(), "-11");
        // Distance 0 or 2: no consensus.
        assert_eq!(a.consensus(&a), None);
        let d = Cube::parse("00-").unwrap();
        let e = Cube::parse("11-").unwrap();
        assert_eq!(d.consensus(&e), None);
    }

    #[test]
    fn cofactor_frees_or_rejects() {
        let c = Cube::parse("1-0").unwrap();
        assert_eq!(c.cofactor(0, true), Some(Cube::parse("--0").unwrap()));
        assert_eq!(c.cofactor(0, false), None);
        assert_eq!(c.cofactor(1, true), Some(c.clone()));
        assert_eq!(c.cofactor(1, false), Some(c.clone()));
    }

    #[test]
    fn sharp_is_disjoint_and_exact() {
        let a = Cube::parse("1---").unwrap();
        let b = Cube::parse("1-01").unwrap();
        let pieces = a.sharp(&b);
        // Pieces are disjoint, inside a, outside b, and cover a \ b.
        for (i, p) in pieces.iter().enumerate() {
            assert!(a.covers(p));
            assert!(p.intersect(&b).is_none());
            for q in &pieces[i + 1..] {
                assert!(p.intersect(q).is_none());
            }
        }
        for m in 0..16u64 {
            let expected = a.contains_minterm(m) && !b.contains_minterm(m);
            let got = pieces.iter().any(|p| p.contains_minterm(m));
            assert_eq!(got, expected, "minterm {m}");
        }
        // Disjoint operands: sharp is the identity.
        let c = Cube::parse("0---").unwrap();
        assert_eq!(a.sharp(&c), vec![a.clone()]);
        // Covered operand: sharp is empty.
        assert!(b.sharp(&a).is_empty());
    }

    #[test]
    fn wide_cubes_spill_to_multiple_words() {
        // 40 variables crosses the 32-variable inline word boundary.
        let text: String = (0..40).map(|i| ['1', '0', '-'][i % 3]).collect();
        let c = Cube::parse(&text).unwrap();
        assert_eq!(c.to_string(), text);
        assert_eq!(c.num_vars(), 40);
        assert_eq!(
            c.literal_count(),
            text.chars().filter(|&ch| ch != '-').count()
        );
        assert!(Cube::universe(40).covers(&c));
        assert_eq!(c.intersect(&Cube::universe(40)), Some(c.clone()));
    }

    #[test]
    fn adjacency_across_the_word_boundary() {
        // 33 vars: var 32 lives in the second word.
        let mut a = "1".repeat(33);
        let mut b = a.clone();
        a.replace_range(32..33, "1");
        b.replace_range(32..33, "0");
        let ca = Cube::parse(&a).unwrap();
        let cb = Cube::parse(&b).unwrap();
        let merged = ca.combine_adjacent(&cb).unwrap();
        assert_eq!(merged.literal(32), Literal::DontCare);
        assert_eq!(merged.literal_count(), 32);
        // Two differing positions in *different* words must not merge.
        let mut c = b.clone();
        c.replace_range(0..1, "0");
        let cc = Cube::parse(&c).unwrap();
        assert_eq!(ca.combine_adjacent(&cc), None);
    }

    #[test]
    fn ordering_matches_literal_rank() {
        // Zero < One < DontCare, lexicographic from variable 0.
        let z = Cube::parse("0--").unwrap();
        let o = Cube::parse("1--").unwrap();
        let d = Cube::parse("---").unwrap();
        assert!(z < o && o < d);
        let a = Cube::parse("10-").unwrap();
        let b = Cube::parse("11-").unwrap();
        assert!(a < b);
    }
}
