//! Word-parallel cube index over a [`Cover`] — the query engine behind the
//! Step 5/7 hazard & consensus hot paths.
//!
//! A [`CoverIndex`] maintains, for every variable, three **phase buckets**:
//! bitsets over cube *indices* recording which cubes bind the variable to 0,
//! bind it to 1, or leave it free. On top of the buckets sits a
//! *signature supercube* (the supercube of every indexed cube) used as a
//! constant-time pre-filter. Together they answer the two queries the
//! consensus engine asks millions of times —
//!
//! * [`single_cube_covers`](CoverIndex::single_cube_covers): is some single
//!   cube of the cover a superset of `q`?
//! * [`intersects_cube`](CoverIndex::intersects_cube): does any cube of the
//!   cover share a minterm with `q`?
//!
//! — **exactly** (no verification scan) by intersecting bucket bitsets:
//! a cube `c` covers `q` iff at every position `q`'s field bits are a subset
//! of `c`'s, so the covering candidates are the AND over `q`'s free
//! variables of the don't-care buckets and over `q`'s bound variables of
//! (same-phase ∪ don't-care) buckets; `c` intersects `q` iff no position
//! binds the opposite phase, so the intersecting candidates are the AND over
//! `q`'s bound variables of (same-phase ∪ don't-care). The cost is
//! `O(num_vars · cubes / 64)` words with early exit on an empty candidate
//! set, instead of `O(cubes · num_vars / 32)` for the cube-by-cube scan —
//! and, crucially, the candidate *sets* drive the hazard engine's region
//! subtraction: only the cubes that can actually hit a region are sharped
//! against it.
//!
//! The index is **incrementally maintained**: [`push`](CoverIndex::push)
//! appends one cube in `O(num_vars)` time, which is what keeps it valid
//! while the consensus augmentation pushes primes mid-analysis.
//!
//! The index stores cube *indices*, not cubes; callers keep it in sync with
//! the cover they query against (see [`IndexedCover`] for a bundled pair).

use crate::{lane, Cover, Cube, Literal};

/// Number of phase buckets per variable (`Zero`, `One`, `DontCare`).
const PHASES: usize = 3;

/// Bucket offset of a literal phase.
#[inline]
fn phase_of(lit: Literal) -> usize {
    match lit {
        Literal::Zero => 0,
        Literal::One => 1,
        Literal::DontCare => 2,
    }
}

/// An incrementally-maintained, word-parallel index over the cubes of a
/// [`Cover`] (see the [module docs](self) for the query algebra).
///
/// # Example
///
/// ```
/// use fantom_boolean::{Cover, CoverIndex, Cube};
///
/// # fn main() -> Result<(), fantom_boolean::BooleanError> {
/// let cover = Cover::parse(3, "1-- -11")?;
/// let mut index = CoverIndex::build(&cover);
/// assert!(index.single_cube_covers(&Cube::parse("11-")?));
/// assert!(!index.single_cube_covers(&Cube::parse("--1")?));
/// assert!(index.intersects_cube(&Cube::parse("--1")?));
/// // Incremental: push keeps the index valid as the cover grows.
/// index.push(&Cube::parse("0-0")?);
/// assert!(index.single_cube_covers(&Cube::parse("010")?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CoverIndex {
    num_vars: usize,
    /// Number of cubes indexed.
    len: usize,
    /// Allocated words per bucket (the layout stride). Grown geometrically,
    /// so N incremental pushes cost O(N) amortized word moves; queries only
    /// ever scan the `ceil(len / 64)` used words.
    words: usize,
    /// Phase buckets, `buckets[var * 3 + phase]`, each `words` long, laid out
    /// contiguously so growth is a single in-place restride.
    buckets: Vec<u64>,
    /// Supercube of every indexed cube (`None` while empty) — the
    /// constant-time signature pre-filter.
    signature: Option<Cube>,
}

impl CoverIndex {
    /// An empty index over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        CoverIndex {
            num_vars,
            len: 0,
            words: 0,
            buckets: Vec::new(),
            signature: None,
        }
    }

    /// Build the index of `cover`.
    pub fn build(cover: &Cover) -> Self {
        let mut index = CoverIndex::new(cover.num_vars());
        index.buckets = vec![0u64; cover.cube_count().div_ceil(64) * cover.num_vars() * PHASES];
        index.words = cover.cube_count().div_ceil(64);
        for cube in cover.cubes() {
            index.push(cube);
        }
        index
    }

    /// Number of cubes indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no cube has been indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The supercube of every indexed cube, or `None` while empty. A query
    /// cube disjoint from the signature is disjoint from every indexed cube.
    pub fn signature(&self) -> Option<&Cube> {
        self.signature.as_ref()
    }

    /// Words actually holding cube bits (`ceil(len / 64)`); the remaining
    /// `words - used_words` per bucket are zeroed growth headroom.
    #[inline]
    fn used_words(&self) -> usize {
        self.len.div_ceil(64)
    }

    /// Bucket slice for `(var, phase)`, trimmed to the used words.
    #[inline]
    fn bucket(&self, var: usize, phase: usize) -> &[u64] {
        let start = (var * PHASES + phase) * self.words;
        &self.buckets[start..start + self.used_words()]
    }

    /// Append `cube` (index `self.len()`) to the index in `O(num_vars)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the cube width does not match.
    pub fn push(&mut self, cube: &Cube) {
        debug_assert_eq!(cube.num_vars(), self.num_vars);
        let id = self.len;
        if id / 64 == self.words && self.num_vars > 0 {
            // Out of headroom: double the per-bucket capacity and restride in
            // place back-to-front (amortized O(1) words moved per push).
            let old = self.words;
            let new = (old * 2).max(1);
            self.buckets.resize(self.num_vars * PHASES * new, 0);
            for b in (1..self.num_vars * PHASES).rev() {
                for w in (0..old).rev() {
                    self.buckets[b * new + w] = self.buckets[b * old + w];
                }
                for w in old..new {
                    self.buckets[b * new + w] = 0;
                }
            }
            // Bucket 0 stays at offset 0; only its new tail needs zeroing,
            // which `resize` cannot have done for the moved buckets above.
            for w in old..new {
                self.buckets[w] = 0;
            }
            self.words = new;
        }
        let (word, bit) = (id / 64, id % 64);
        for var in 0..self.num_vars {
            let phase = phase_of(cube.literal(var));
            let start = (var * PHASES + phase) * self.words;
            self.buckets[start + word] |= 1u64 << bit;
        }
        self.signature = Some(match self.signature.take() {
            None => cube.clone(),
            Some(sig) => sig.supercube(cube),
        });
        self.len += 1;
    }

    /// Iterate the indices of cubes whose literal at `var` is `phase`, in
    /// increasing order — the per-variable candidate enumeration the hazard
    /// engine builds its lower/upper/free lists from.
    pub fn phase_ids(&self, var: usize, phase: Literal) -> impl Iterator<Item = usize> + '_ {
        BitIds::new(self.bucket(var, phase_of(phase)))
    }

    /// Number of cubes whose literal at `var` is `phase`.
    pub fn phase_count(&self, var: usize, phase: Literal) -> usize {
        lane::popcount(self.bucket(var, phase_of(phase)))
    }

    /// AND the constraint bitset of `(var, allow_dc ∪ phase-of-q)` into
    /// `cand`; returns `false` when `cand` became all-zero (early exit).
    /// This is the bucket-enumeration inner loop — it runs once per variable
    /// per query, over `ceil(len / 64)` words, so it rides the [`lane`]
    /// kernels (256 bits per step, any-accumulation folded per lane).
    #[inline]
    fn constrain(&self, cand: &mut [u64], var: usize, lit: Literal) -> bool {
        let dc = self.bucket(var, phase_of(Literal::DontCare));
        let any = match lit {
            Literal::DontCare => lane::and_into_any(cand, dc),
            bound => lane::and_or2_into_any(cand, self.bucket(var, phase_of(bound)), dc),
        };
        any != 0
    }

    /// Compute the covering-candidate bitset of `q` into `cand` (resized and
    /// seeded internally); returns `false` if it is empty. A set bit `i`
    /// means cube `i` covers `q` — the bucket algebra is exact, so no
    /// verification pass over the cubes is needed.
    pub(crate) fn covering_candidates(&self, q: &Cube, cand: &mut Vec<u64>) -> bool {
        debug_assert_eq!(q.num_vars(), self.num_vars);
        if self.len == 0 {
            return false;
        }
        if self.num_vars == 0 {
            cand.clear();
            cand.push(1);
            return true; // the zero-variable universe cube covers itself
        }
        // Signature reject: any cube covering q is itself covered by the
        // signature supercube, so the signature must cover q too.
        if let Some(sig) = &self.signature {
            if !sig.covers(q) {
                return false;
            }
        }
        cand.clear();
        cand.resize(self.used_words(), !0u64);
        mask_tail(cand, self.len);
        // Free variables first: a cube covering q must be don't-care wherever
        // q is, and don't-care buckets are typically the sparsest — they
        // prune hardest and exit earliest.
        for var in 0..self.num_vars {
            if q.literal(var) == Literal::DontCare && !self.constrain(cand, var, Literal::DontCare)
            {
                return false;
            }
        }
        for var in 0..self.num_vars {
            let lit = q.literal(var);
            if lit != Literal::DontCare && !self.constrain(cand, var, lit) {
                return false;
            }
        }
        true
    }

    /// Whether some *single* indexed cube covers the whole of `q` — the
    /// indexed counterpart of [`Cover::single_cube_covers`].
    pub fn single_cube_covers(&self, q: &Cube) -> bool {
        let mut cand = Vec::new();
        self.covering_candidates(q, &mut cand)
    }

    /// Compute the intersecting-candidate bitset of `q` into `cand`; returns
    /// `false` if it is empty. A set bit `i` means cube `i` shares a minterm
    /// with `q` (exact — free positions of `q` constrain nothing).
    pub(crate) fn intersecting_candidates(&self, q: &Cube, cand: &mut Vec<u64>) -> bool {
        debug_assert_eq!(q.num_vars(), self.num_vars);
        if self.len == 0 {
            return false;
        }
        if self.num_vars == 0 {
            cand.clear();
            cand.push(1);
            return true; // zero-variable cubes are all the universe point
        }
        if let Some(sig) = &self.signature {
            if sig.intersect(q).is_none() {
                return false;
            }
        }
        cand.clear();
        cand.resize(self.used_words(), !0u64);
        mask_tail(cand, self.len);
        for var in 0..self.num_vars {
            let lit = q.literal(var);
            if lit != Literal::DontCare && !self.constrain(cand, var, lit) {
                return false;
            }
        }
        true
    }

    /// Whether any indexed cube shares a minterm with `q` — the indexed
    /// counterpart of [`Cover::intersects_cube`].
    pub fn intersects_cube(&self, q: &Cube) -> bool {
        let mut cand = Vec::new();
        self.intersecting_candidates(q, &mut cand)
    }

    /// Collect into `out` the indices of cubes that cover the whole of `q`,
    /// in increasing order. Returns `true` if any were found.
    pub fn covering_ids(&self, q: &Cube, cand: &mut Vec<u64>, out: &mut Vec<usize>) -> bool {
        out.clear();
        if !self.covering_candidates(q, cand) {
            return false;
        }
        out.extend(BitIds::new(cand));
        true
    }

    /// Collect into `out` the indices of cubes that intersect `q`, in
    /// increasing order. Returns `true` if any were found.
    pub fn intersecting_ids(&self, q: &Cube, cand: &mut Vec<u64>, out: &mut Vec<usize>) -> bool {
        out.clear();
        if !self.intersecting_candidates(q, cand) {
            return false;
        }
        out.extend(BitIds::new(cand));
        true
    }

    /// Collect into `out` the indices of cubes that both intersect `q` and
    /// leave `var` free, in increasing order — exactly the cubes that can
    /// subtract from (or cover part of) a `var`-free hazard region. Returns
    /// `true` if any were found.
    pub fn free_intersecting_ids(
        &self,
        var: usize,
        q: &Cube,
        cand: &mut Vec<u64>,
        out: &mut Vec<usize>,
    ) -> bool {
        out.clear();
        if !self.intersecting_candidates(q, cand) {
            return false;
        }
        let dc = self.bucket(var, phase_of(Literal::DontCare));
        if lane::and_into_any(cand, dc) == 0 {
            return false;
        }
        out.extend(BitIds::new(cand));
        true
    }
}

/// Zero the bits at positions `len..` of a candidate bitset.
#[inline]
fn mask_tail(cand: &mut [u64], len: usize) {
    let tail = len % 64;
    if tail != 0 {
        if let Some(last) = cand.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

/// Iterator over the set-bit positions of a word slice, ascending.
struct BitIds<'a> {
    words: &'a [u64],
    word_idx: usize,
    bits: u64,
}

impl<'a> BitIds<'a> {
    fn new(words: &'a [u64]) -> Self {
        BitIds {
            words,
            word_idx: 0,
            bits: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for BitIds<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.bits = self.words[self.word_idx];
        }
        let bit = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.word_idx * 64 + bit)
    }
}

/// A [`Cover`] bundled with its [`CoverIndex`], kept in sync on every push —
/// the working representation of the consensus engine's growing cover.
#[derive(Debug, Clone)]
pub struct IndexedCover {
    cover: Cover,
    index: CoverIndex,
}

impl IndexedCover {
    /// Index an existing cover (the cover is cloned into the bundle).
    pub fn build(cover: &Cover) -> Self {
        IndexedCover {
            cover: cover.clone(),
            index: CoverIndex::build(cover),
        }
    }

    /// The underlying cover.
    pub fn cover(&self) -> &Cover {
        &self.cover
    }

    /// The index.
    pub fn index(&self) -> &CoverIndex {
        &self.index
    }

    /// The cubes of the cover, in insertion order.
    pub fn cubes(&self) -> &[Cube] {
        self.cover.cubes()
    }

    /// Append a cube to both the cover and its index.
    pub fn push(&mut self, cube: Cube) {
        self.index.push(&cube);
        self.cover.push(cube);
    }

    /// Take the cover out of the bundle, dropping the index.
    pub fn into_cover(self) -> Cover {
        self.cover
    }

    /// See [`CoverIndex::single_cube_covers`].
    pub fn single_cube_covers(&self, q: &Cube) -> bool {
        self.index.single_cube_covers(q)
    }

    /// See [`CoverIndex::intersects_cube`].
    pub fn intersects_cube(&self, q: &Cube) -> bool {
        self.index.intersects_cube(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every 3^4 cube over 4 variables, for exhaustive query checks.
    fn all_cubes() -> impl Iterator<Item = Cube> {
        (0..81).map(|i| {
            let lits: String = (0..4)
                .map(|v| ['0', '1', '-'][(i / 3usize.pow(v)) % 3])
                .collect();
            Cube::parse(&lits).unwrap()
        })
    }

    #[test]
    fn queries_match_scans_exhaustively() {
        let covers = [
            Cover::parse(4, "1--- -11- --01").unwrap(),
            Cover::parse(4, "00-- 11--").unwrap(),
            Cover::parse(4, "1-0- -11- 0--1 --10 ---- 0000").unwrap(),
            Cover::empty(4),
        ];
        for cover in &covers {
            let index = CoverIndex::build(cover);
            assert_eq!(index.len(), cover.cube_count());
            for q in all_cubes() {
                assert_eq!(
                    index.single_cube_covers(&q),
                    cover.single_cube_covers(&q),
                    "covers: {cover} vs {q}"
                );
                assert_eq!(
                    index.intersects_cube(&q),
                    cover.intersects_cube(&q),
                    "intersects: {cover} vs {q}"
                );
            }
        }
    }

    #[test]
    fn incremental_push_matches_rebuild() {
        let cubes = ["1---", "-11-", "--01", "0-0-", "11-1", "----"];
        let mut cover = Cover::empty(4);
        let mut index = CoverIndex::new(4);
        for text in cubes {
            let cube = Cube::parse(text).unwrap();
            index.push(&cube);
            cover.push(cube);
            let rebuilt = CoverIndex::build(&cover);
            for q in all_cubes() {
                assert_eq!(
                    index.single_cube_covers(&q),
                    rebuilt.single_cube_covers(&q),
                    "after {text}: {q}"
                );
                assert_eq!(
                    index.intersects_cube(&q),
                    rebuilt.intersects_cube(&q),
                    "after {text}: {q}"
                );
            }
            assert_eq!(index.signature(), rebuilt.signature());
        }
    }

    #[test]
    fn growth_across_the_64_cube_boundary() {
        // 70 distinct minterm cubes over 7 variables: ids spill into a second
        // bucket word at id 64.
        let n = 7;
        let mut cover = Cover::empty(n);
        let mut index = CoverIndex::new(n);
        for m in 0..70u64 {
            let cube = Cube::from_minterm(n, m).unwrap();
            index.push(&cube);
            cover.push(cube);
        }
        assert_eq!(index.len(), 70);
        for m in 0..80u64 {
            let q = Cube::from_minterm(n, m).unwrap();
            assert_eq!(index.single_cube_covers(&q), m < 70, "minterm {m}");
            assert_eq!(index.intersects_cube(&q), m < 70, "minterm {m}");
        }
        // A wide query covering all of them.
        let top = Cube::parse("0------").unwrap();
        assert!(index.intersects_cube(&top));
        assert!(!index.single_cube_covers(&top));
    }

    #[test]
    fn phase_ids_enumerate_buckets() {
        let cover = Cover::parse(3, "1-- 0-1 -10 --- 10-").unwrap();
        let index = CoverIndex::build(&cover);
        let ids = |var, phase| index.phase_ids(var, phase).collect::<Vec<_>>();
        assert_eq!(ids(0, Literal::One), vec![0, 4]);
        assert_eq!(ids(0, Literal::Zero), vec![1]);
        assert_eq!(ids(0, Literal::DontCare), vec![2, 3]);
        assert_eq!(ids(2, Literal::One), vec![1]);
        assert_eq!(index.phase_count(1, Literal::DontCare), 3);
    }

    #[test]
    fn free_intersecting_ids_filter_by_phase_and_overlap() {
        let cover = Cover::parse(3, "1-- 0-1 -10 1-1").unwrap();
        let index = CoverIndex::build(&cover);
        let q = Cube::parse("1--").unwrap();
        let (mut cand, mut out) = (Vec::new(), Vec::new());
        // Cubes free in var 1 that intersect q: ids 0 ("1--") and 3 ("1-1");
        // id 1 is free in var 1 but disjoint from q.
        assert!(index.free_intersecting_ids(1, &q, &mut cand, &mut out));
        assert_eq!(out, vec![0, 3]);
        // All intersecting cubes: 0, 2, 3.
        assert!(index.intersecting_ids(&q, &mut cand, &mut out));
        assert_eq!(out, vec![0, 2, 3]);
    }

    #[test]
    fn indexed_cover_stays_in_sync() {
        let mut ic = IndexedCover::build(&Cover::parse(3, "11-").unwrap());
        assert!(!ic.single_cube_covers(&Cube::parse("0-0").unwrap()));
        ic.push(Cube::parse("0--").unwrap());
        assert!(ic.single_cube_covers(&Cube::parse("0-0").unwrap()));
        assert_eq!(ic.cover().cube_count(), 2);
        assert_eq!(ic.index().len(), 2);
    }

    #[test]
    fn wide_cubes_index_across_cube_word_boundary() {
        // 33-variable cubes: the cube itself spills to two packed words; the
        // index must keep var 32's buckets straight.
        let a: String = "1".repeat(32) + "-";
        let b: String = "-".repeat(32) + "0";
        let cover = Cover::parse(33, &format!("{a} {b}")).unwrap();
        let index = CoverIndex::build(&cover);
        let q = Cube::parse(&("1".repeat(32) + "0")).unwrap();
        assert!(index.single_cube_covers(&q));
        assert!(index.intersects_cube(&q));
        let miss = Cube::parse(&("0".repeat(32) + "1")).unwrap();
        assert!(!index.single_cube_covers(&miss));
        assert!(!index.intersects_cube(&miss));
        assert_eq!(index.phase_ids(32, Literal::Zero).collect::<Vec<_>>(), [1]);
    }
}
