//! The one-stop façade for every hot-path collection in the workspace.
//!
//! Synthesis hot paths (consensus recursion, hazard lists, dichotomy seeds,
//! batch-service caches, simulator scoreboards) all want the same things: a
//! fast non-cryptographic hash map/set and the special-purpose structures of
//! the boolean substrate. Before this module they imported them from three
//! different places — `crate::fxhash`, `crate::bitset`, `crate::index` — and
//! the occasional `std::collections::HashMap` with its DoS-resistant (and
//! hot-loop-slow) SipHash default crept in. Downstream code now imports
//! *only* from here:
//!
//! ```
//! use fantom_boolean::collections::{HashMap, HashSet};
//!
//! let mut seen: HashSet<u64> = HashSet::default();
//! seen.insert(42);
//! let mut index: HashMap<String, usize> = HashMap::default();
//! index.insert("cube".to_owned(), 7);
//! # assert!(seen.contains(&42) && index["cube"] == 7);
//! ```
//!
//! `HashMap`/`HashSet` here are the fx-hashed aliases (deterministic,
//! multiply-rotate [`FxHasher`]) — construct them with `::default()`, not
//! `::new()`, since the hasher is a non-default type parameter. CI greps that
//! no crate imports the std hash containers directly on a hot path; ordered
//! containers (`BTreeMap`/`BTreeSet`, used where iteration order is part of
//! the output contract) stay with `std`.
//!
//! The dense structures re-exported here all share the packed-word layout
//! serviced by the [`crate::lane`] kernels: [`MintermSet`] carries one bit
//! per minterm, [`CoverIndex`] buckets carry one bit per cube id, and cube
//! words carry two bits per variable with fields never straddling a word (or
//! lane) boundary.

pub use crate::bitset::{MintermSet, SparseMintermSet};
pub use crate::fxhash::FxHashMap as HashMap;
pub use crate::fxhash::FxHashSet as HashSet;
pub use crate::fxhash::{FxBuildHasher, FxHasher};
pub use crate::index::{CoverIndex, IndexedCover};

/// Support types for [`HashMap`] (the std map API types are hasher-generic,
/// so the std `Entry` works unchanged with the fx-hashed alias).
pub mod hash_map {
    pub use std::collections::hash_map::Entry;
}

#[cfg(test)]
mod tests {
    use super::{hash_map::Entry, HashMap, HashSet};

    #[test]
    fn facade_aliases_are_fx_hashed_and_entry_compatible() {
        let mut map: HashMap<&str, u32> = HashMap::default();
        match map.entry("k") {
            Entry::Vacant(v) => {
                v.insert(1);
            }
            Entry::Occupied(_) => unreachable!(),
        }
        *map.entry("k").or_insert(0) += 1;
        assert_eq!(map["k"], 2);

        let set: HashSet<u64> = (0..8).collect();
        assert_eq!(set.len(), 8);
    }
}
