//! Dense minterm bitsets for covering algorithms.
//!
//! Petrick selection, hazard lists and the fsv generation all need "set of
//! minterm indices" with fast membership; a dense `u64` bitset beats the
//! `BTreeSet<u64>` it replaces by a wide margin on the ≤ 2²⁴-point spaces the
//! synthesis pipeline works in (one cache line per 512 minterms, O(1)
//! insert/contains, popcount-based size).

/// A set of minterm indices over a fixed-size Boolean space.
#[derive(Clone, PartialEq, Eq)]
pub struct MintermSet {
    words: Vec<u64>,
    len: usize,
}

impl MintermSet {
    /// An empty set over a space of `capacity` minterms.
    pub fn new(capacity: u64) -> Self {
        MintermSet {
            words: vec![0; (capacity as usize).div_ceil(64)],
            len: 0,
        }
    }

    /// Build a set from an iterator of minterms over a `capacity`-point space.
    pub fn from_minterms(capacity: u64, minterms: impl IntoIterator<Item = u64>) -> Self {
        let mut set = Self::new(capacity);
        for m in minterms {
            set.insert(m);
        }
        set
    }

    /// Number of minterms the space can hold.
    pub fn capacity(&self) -> u64 {
        (self.words.len() * 64) as u64
    }

    /// Insert a minterm; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `minterm` exceeds the capacity.
    pub fn insert(&mut self, minterm: u64) -> bool {
        let (w, b) = (minterm as usize / 64, minterm % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        self.len += usize::from(fresh);
        fresh
    }

    /// Remove a minterm; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `minterm` exceeds the capacity.
    pub fn remove(&mut self, minterm: u64) -> bool {
        let (w, b) = (minterm as usize / 64, minterm % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        self.len -= usize::from(present);
        present
    }

    /// Membership test. Out-of-capacity indices are simply absent.
    pub fn contains(&self, minterm: u64) -> bool {
        self.words
            .get(minterm as usize / 64)
            .is_some_and(|w| w & (1 << (minterm % 64)) != 0)
    }

    /// Number of minterms in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set holds no minterms.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every minterm, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterate over the minterms in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            std::iter::successors(Some(w), |&w| Some(w & w.wrapping_sub(1)))
                .take_while(|&w| w != 0)
                .map(move |w| (i * 64 + w.trailing_zeros() as usize) as u64)
        })
    }
}

impl<'a> IntoIterator for &'a MintermSet {
    type Item = u64;
    type IntoIter = Box<dyn Iterator<Item = u64> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl std::fmt::Debug for MintermSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = MintermSet::new(128);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(127));
        assert!(!s.insert(127), "double insert reports not-fresh");
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && s.contains(127) && !s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let ms = [3u64, 64, 65, 100, 127];
        let s = MintermSet::from_minterms(128, ms.iter().copied());
        let got: Vec<u64> = s.iter().collect();
        assert_eq!(got, ms);
    }

    #[test]
    fn out_of_capacity_contains_is_false() {
        let s = MintermSet::new(64);
        assert!(!s.contains(1000));
    }

    #[test]
    fn clear_resets() {
        let mut s = MintermSet::from_minterms(64, [1, 2, 3]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
