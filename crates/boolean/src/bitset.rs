//! Dense minterm bitsets for covering algorithms.
//!
//! Petrick selection, hazard lists and the fsv generation all need "set of
//! minterm indices" with fast membership; a dense `u64` bitset beats the
//! `BTreeSet<u64>` it replaces by a wide margin on the ≤ 2²⁴-point spaces the
//! synthesis pipeline works in (one cache line per 512 minterms, O(1)
//! insert/contains, popcount-based size). The set-algebra operations traverse
//! their word arrays through the [`crate::lane`] 256-bit kernels — on the
//! large spaces (up to ~262k words at 2²⁴ points) that is where the pipeline
//! spends its bitset time.

use crate::lane;

/// A set of minterm indices over a fixed-size Boolean space.
#[derive(Clone, PartialEq, Eq)]
pub struct MintermSet {
    words: Vec<u64>,
    len: usize,
}

impl MintermSet {
    /// An empty set over a space of `capacity` minterms.
    pub fn new(capacity: u64) -> Self {
        MintermSet {
            words: vec![0; (capacity as usize).div_ceil(64)],
            len: 0,
        }
    }

    /// Build a set from an iterator of minterms over a `capacity`-point space.
    pub fn from_minterms(capacity: u64, minterms: impl IntoIterator<Item = u64>) -> Self {
        let mut set = Self::new(capacity);
        for m in minterms {
            set.insert(m);
        }
        set
    }

    /// Number of minterms the space can hold.
    pub fn capacity(&self) -> u64 {
        (self.words.len() * 64) as u64
    }

    /// Insert a minterm; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `minterm` exceeds the capacity.
    pub fn insert(&mut self, minterm: u64) -> bool {
        let (w, b) = (minterm as usize / 64, minterm % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        self.len += usize::from(fresh);
        fresh
    }

    /// Remove a minterm; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `minterm` exceeds the capacity.
    pub fn remove(&mut self, minterm: u64) -> bool {
        let (w, b) = (minterm as usize / 64, minterm % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        self.len -= usize::from(present);
        present
    }

    /// Membership test. Out-of-capacity indices are simply absent.
    pub fn contains(&self, minterm: u64) -> bool {
        self.words
            .get(minterm as usize / 64)
            .is_some_and(|w| w & (1 << (minterm % 64)) != 0)
    }

    /// Number of minterms in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set holds no minterms.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every minterm, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterate over the minterms in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            std::iter::successors(Some(w), |&w| Some(w & w.wrapping_sub(1)))
                .take_while(|&w| w != 0)
                .map(move |w| (i * 64 + w.trailing_zeros() as usize) as u64)
        })
    }

    /// The smallest minterm in the set, if any.
    pub fn first(&self) -> Option<u64> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|i| (i * 64 + self.words[i].trailing_zeros() as usize) as u64)
    }

    /// Whether the two sets share no minterm. Lane-parallel; sets of
    /// different capacities are compared on their common prefix (the missing
    /// words of the shorter set are empty).
    pub fn is_disjoint(&self, other: &MintermSet) -> bool {
        let common = self.words.len().min(other.words.len());
        lane::and_is_zero(&self.words[..common], &other.words[..common])
    }

    /// Whether every minterm of `self` is in `other`. Lane-parallel; words of
    /// `self` past `other`'s capacity must be empty.
    pub fn is_subset(&self, other: &MintermSet) -> bool {
        let common = self.words.len().min(other.words.len());
        lane::andnot_is_zero(&self.words[..common], &other.words[..common])
            && self.words[common..].iter().all(|&w| w == 0)
    }

    /// Whether the two sets hold exactly the same minterms, regardless of
    /// their capacities (unlike `==`, which also compares capacity).
    pub fn same_contents(&self, other: &MintermSet) -> bool {
        let common = self.words.len().min(other.words.len());
        self.words[..common] == other.words[..common]
            && self.words[common..].iter().all(|&w| w == 0)
            && other.words[common..].iter().all(|&w| w == 0)
    }

    /// Number of minterms shared by the two sets. Lane-parallel popcount.
    pub fn intersection_count(&self, other: &MintermSet) -> usize {
        let common = self.words.len().min(other.words.len());
        lane::and_popcount(&self.words[..common], &other.words[..common])
    }

    /// Add every minterm of `other` to `self`, growing the capacity if
    /// `other` is wider.
    pub fn union_with(&mut self, other: &MintermSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        lane::or_into(&mut self.words, &other.words);
        self.len = lane::popcount(&self.words);
    }

    /// Remove every minterm of `other` from `self`.
    pub fn subtract(&mut self, other: &MintermSet) {
        lane::andnot_into(&mut self.words, &other.words);
        self.len = lane::popcount(&self.words);
    }

    /// [`MintermSet::subtract`] that appends `(word index, previous word)`
    /// records for every changed word to `undo`, so the operation can be
    /// reversed with [`MintermSet::undo_subtract`] without cloning the set —
    /// the allocation-free pattern backtracking searches need.
    pub fn subtract_with_undo(&mut self, other: &MintermSet, undo: &mut Vec<(u32, u64)>) {
        for (i, (a, b)) in self.words.iter_mut().zip(&other.words).enumerate() {
            if *a & b != 0 {
                undo.push((i as u32, *a));
                *a &= !b;
            }
        }
        self.len = lane::popcount(&self.words);
    }

    /// Restore the words recorded by [`MintermSet::subtract_with_undo`]
    /// (pass the same slice that call appended).
    pub fn undo_subtract(&mut self, undo: &[(u32, u64)]) {
        for &(i, w) in undo {
            self.words[i as usize] = w;
        }
        self.len = lane::popcount(&self.words);
    }

    /// The backing words of the set (64 minterms per word, low bit first).
    /// Exposed so external engines can run their own word-granular sweeps —
    /// the Step-3 dichotomy index enumerates candidate ids from these words
    /// with [`crate::lane`] kernels without re-walking the set bit by bit.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Hash the set contents (trailing empty words excluded, so the hash is
    /// consistent with [`MintermSet::same_contents`]).
    pub fn hash_contents<H: std::hash::Hasher>(&self, state: &mut H) {
        use std::hash::Hash as _;
        let trimmed = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |i| i + 1);
        self.words[..trimmed].hash(state);
    }
}

impl<'a> IntoIterator for &'a MintermSet {
    type Item = u64;
    type IntoIter = Box<dyn Iterator<Item = u64> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl std::fmt::Debug for MintermSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A hash-backed set of minterm indices for spaces too large to back with a
/// dense bitset (beyond ~2²⁴ points the dense words dominate memory while the
/// sets the synthesis pipeline stores — hazard lists — stay tiny). Capacity-
/// free: any `u64` index may be inserted.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct SparseMintermSet {
    set: crate::fxhash::FxHashSet<u64>,
}

impl SparseMintermSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a set from an iterator of minterms.
    pub fn from_minterms(minterms: impl IntoIterator<Item = u64>) -> Self {
        SparseMintermSet {
            set: minterms.into_iter().collect(),
        }
    }

    /// Insert a minterm; returns `true` if it was not already present.
    pub fn insert(&mut self, minterm: u64) -> bool {
        self.set.insert(minterm)
    }

    /// Remove a minterm; returns `true` if it was present.
    pub fn remove(&mut self, minterm: u64) -> bool {
        self.set.remove(&minterm)
    }

    /// Membership test.
    pub fn contains(&self, minterm: u64) -> bool {
        self.set.contains(&minterm)
    }

    /// Number of minterms in the set.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` if the set holds no minterms.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Remove every minterm.
    pub fn clear(&mut self) {
        self.set.clear();
    }

    /// Iterate over the minterms in increasing order (the set is sorted on
    /// each call; hazard lists are small, determinism matters more).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        let mut sorted: Vec<u64> = self.set.iter().copied().collect();
        sorted.sort_unstable();
        sorted.into_iter()
    }
}

impl IntoIterator for &SparseMintermSet {
    type Item = u64;
    type IntoIter = std::vec::IntoIter<u64>;

    fn into_iter(self) -> Self::IntoIter {
        let mut sorted: Vec<u64> = self.set.iter().copied().collect();
        sorted.sort_unstable();
        sorted.into_iter()
    }
}

impl std::fmt::Debug for SparseMintermSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u64> for SparseMintermSet {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        Self::from_minterms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_set_round_trip() {
        let mut s = SparseMintermSet::new();
        assert!(s.is_empty());
        assert!(s.insert(1 << 40));
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(3) && s.contains(1 << 40) && !s.contains(4));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 1 << 40]);
        assert!(s.remove(3) && !s.remove(3));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = MintermSet::new(128);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(127));
        assert!(!s.insert(127), "double insert reports not-fresh");
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && s.contains(127) && !s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let ms = [3u64, 64, 65, 100, 127];
        let s = MintermSet::from_minterms(128, ms.iter().copied());
        let got: Vec<u64> = s.iter().collect();
        assert_eq!(got, ms);
    }

    #[test]
    fn out_of_capacity_contains_is_false() {
        let s = MintermSet::new(64);
        assert!(!s.contains(1000));
    }

    #[test]
    fn clear_resets() {
        let mut s = MintermSet::from_minterms(64, [1, 2, 3]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn set_algebra_ops() {
        let a = MintermSet::from_minterms(128, [1, 64, 100]);
        let b = MintermSet::from_minterms(128, [2, 64]);
        let c = MintermSet::from_minterms(128, [3, 70]);
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&c));
        assert!(b.is_disjoint(&c));
        assert_eq!(a.intersection_count(&b), 1);
        assert_eq!(a.intersection_count(&c), 0);
        assert!(MintermSet::from_minterms(128, [64]).is_subset(&a));
        assert!(!b.is_subset(&a));
        assert_eq!(a.first(), Some(1));
        assert_eq!(MintermSet::new(64).first(), None);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 64, 100]);
        assert_eq!(u.len(), 4);
        u.subtract(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 100]);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn subtract_with_undo_round_trips() {
        let original = MintermSet::from_minterms(192, [1, 64, 100, 130]);
        let other = MintermSet::from_minterms(192, [64, 100, 5]);
        let mut s = original.clone();
        let mut undo = Vec::new();
        s.subtract_with_undo(&other, &mut undo);
        let mut expected = original.clone();
        expected.subtract(&other);
        assert_eq!(s, expected);
        s.undo_subtract(&undo);
        assert_eq!(s, original);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn capacity_mismatch_is_tolerated() {
        let narrow = MintermSet::from_minterms(64, [3]);
        let wide = MintermSet::from_minterms(256, [3, 200]);
        assert!(narrow.is_subset(&wide));
        assert!(!wide.is_subset(&narrow));
        assert!(!narrow.is_disjoint(&wide));
        assert!(!narrow.same_contents(&wide));
        assert!(narrow.same_contents(&MintermSet::from_minterms(256, [3])));

        let mut grown = narrow.clone();
        grown.union_with(&wide);
        assert_eq!(grown.iter().collect::<Vec<_>>(), vec![3, 200]);
    }
}
