//! Property-based tests for the cube algebra and two-level minimization.

use fantom_boolean::{
    all_primes_cover, hazard, minimize_function, quine, Cover, Cube, Function, Literal,
};
use proptest::prelude::*;

const NUM_VARS: usize = 5;

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Zero),
        Just(Literal::One),
        Just(Literal::DontCare),
    ]
}

fn arb_cube() -> impl Strategy<Value = Cube> {
    proptest::collection::vec(arb_literal(), NUM_VARS).prop_map(Cube::new)
}

fn arb_function() -> impl Strategy<Value = Function> {
    // Random on-set / dc-set over a 5-variable space.
    (
        proptest::collection::btree_set(0u64..(1 << NUM_VARS), 0..20),
        proptest::collection::btree_set(0u64..(1 << NUM_VARS), 0..8),
    )
        .prop_map(|(on, dc)| {
            let on: Vec<u64> = on.into_iter().collect();
            let dc: Vec<u64> = dc.into_iter().collect();
            Function::from_on_dc(NUM_VARS, &on, &dc).expect("within range")
        })
}

proptest! {
    /// The intersection of two cubes covers exactly the minterms covered by both.
    #[test]
    fn cube_intersection_is_set_intersection(a in arb_cube(), b in arb_cube()) {
        let inter = a.intersect(&b);
        for m in 0..(1u64 << NUM_VARS) {
            let both = a.contains_minterm(m) && b.contains_minterm(m);
            let by_inter = inter.as_ref().is_some_and(|c| c.contains_minterm(m));
            prop_assert_eq!(both, by_inter, "minterm {}", m);
        }
    }

    /// The supercube covers everything either operand covers.
    #[test]
    fn supercube_covers_operands(a in arb_cube(), b in arb_cube()) {
        let s = a.supercube(&b);
        prop_assert!(s.covers(&a));
        prop_assert!(s.covers(&b));
        for m in 0..(1u64 << NUM_VARS) {
            if a.contains_minterm(m) || b.contains_minterm(m) {
                prop_assert!(s.contains_minterm(m));
            }
        }
    }

    /// Cube containment agrees with minterm-set containment.
    #[test]
    fn covers_iff_minterm_subset(a in arb_cube(), b in arb_cube()) {
        let subset = b.minterms().iter().all(|&m| a.contains_minterm(m));
        prop_assert_eq!(a.covers(&b), subset);
    }

    /// `minterm_count` matches the enumerated minterm list length.
    #[test]
    fn minterm_count_matches_enumeration(a in arb_cube()) {
        prop_assert_eq!(a.minterm_count() as usize, a.minterms().len());
    }

    /// Every prime implicant is an implicant (never intersects the off-set)
    /// and is maximal (cannot be widened in any variable).
    #[test]
    fn primes_are_maximal_implicants(f in arb_function()) {
        let primes = quine::prime_implicants(&f);
        for p in &primes {
            prop_assert!(f.admits_cube(p), "prime {} intersects off-set", p);
            for v in 0..NUM_VARS {
                if p.literal(v) != Literal::DontCare {
                    let widened = p.with_literal(v, Literal::DontCare);
                    prop_assert!(!f.admits_cube(&widened), "prime {} not maximal at var {}", p, v);
                }
            }
        }
    }

    /// A minimized cover implements the function it was derived from.
    #[test]
    fn minimized_cover_implements_function(f in arb_function()) {
        let cover = minimize_function(&f);
        prop_assert!(cover.equivalent_to(&f));
    }

    /// The minimized cover never uses more cubes than the number of on-set
    /// minterms (the trivial canonical cover).
    #[test]
    fn minimized_cover_no_worse_than_canonical(f in arb_function()) {
        let cover = minimize_function(&f);
        prop_assert!(cover.cube_count() as u64 <= f.on_count().max(1));
    }

    /// The all-primes cover implements the function and is free of static-1
    /// hazards for single-input changes between *specified* on-set minterms
    /// (transitions through don't-care vertices are unconstrained).
    #[test]
    fn all_primes_cover_is_hazard_free(f in arb_function()) {
        let cover = all_primes_cover(&f);
        prop_assert!(cover.equivalent_to(&f));
        let on_set_hazards = hazard::static_hazards(&cover)
            .into_iter()
            .filter(|h| f.is_on(h.from) && f.is_on(h.to))
            .count();
        prop_assert_eq!(on_set_hazards, 0);
    }

    /// Adding consensus terms to a minimal cover yields a cover that still
    /// implements the function, contains the original cubes, and has no
    /// static hazards between specified on-set minterms.
    #[test]
    fn consensus_terms_fix_hazards(f in arb_function()) {
        let base = minimize_function(&f);
        let fixed = hazard::add_consensus_terms(&f, &base);
        prop_assert!(fixed.equivalent_to(&f));
        let on_set_hazards = hazard::static_hazards(&fixed)
            .into_iter()
            .filter(|h| f.is_on(h.from) && f.is_on(h.to))
            .count();
        prop_assert_eq!(on_set_hazards, 0);
    }

    /// Parsing a displayed cube round-trips.
    #[test]
    fn cube_display_parse_round_trip(a in arb_cube()) {
        let round = Cube::parse(&a.to_string()).expect("display emits valid cube text");
        prop_assert_eq!(a, round);
    }

    /// The two-level expression and the first-level-gate expression of a cover
    /// compute the same function, and the first-level-gate depth is at most
    /// one level deeper.
    #[test]
    fn first_level_gate_transform_is_equivalent(f in arb_function()) {
        use fantom_boolean::Expr;
        let cover = minimize_function(&f);
        let two = Expr::from_cover(&cover);
        let flg = Expr::first_level_gates(&cover);
        for m in 0..(1u64 << NUM_VARS) {
            let bits: Vec<bool> = (0..NUM_VARS).map(|i| (m >> (NUM_VARS - 1 - i)) & 1 == 1).collect();
            prop_assert_eq!(two.eval(&bits), flg.eval(&bits), "minterm {}", m);
        }
        prop_assert!(flg.depth() <= two.depth() + 1);
    }

    /// Removing contained cubes never changes the function of a cover.
    #[test]
    fn containment_removal_preserves_function(cubes in proptest::collection::vec(arb_cube(), 1..8)) {
        let mut cover = Cover::from_cubes(NUM_VARS, cubes);
        let before: Vec<bool> = (0..(1u64 << NUM_VARS)).map(|m| cover.covers_minterm(m)).collect();
        cover.remove_contained_cubes();
        let after: Vec<bool> = (0..(1u64 << NUM_VARS)).map(|m| cover.covers_minterm(m)).collect();
        prop_assert_eq!(before, after);
    }
}
