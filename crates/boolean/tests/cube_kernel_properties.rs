//! Differential property tests: the bit-packed cube kernel against a naive
//! literal-vector reference implementation of the original semantics.
//!
//! Every operation of the packed kernel — parse/display, containment,
//! intersection, conflict counting, adjacency merge, supercube, minterm
//! membership and enumeration, literal metrics and ordering — is compared on
//! random cubes up to 24 variables (the dense-function regime) and across the
//! 1-word/multi-word boundary at 31/32/33 variables, plus deep spillover
//! widths. Each test is driven by its own deterministic SplitMix64 stream so
//! failures reproduce exactly.

use fantom_boolean::{Cube, Literal};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Deterministic seeded stream for reproducible random cubes (wraps the
/// workspace `rand` generator so the algorithm lives in one place).
struct Rng(StdRng);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(StdRng::seed_from_u64(seed))
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.0.gen_range(0..bound)
    }
}

/// Naive reference cube: a plain literal vector with the loop-per-literal
/// semantics the packed kernel replaced.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct RefCube(Vec<Literal>);

impl RefCube {
    fn random(rng: &mut Rng, num_vars: usize, dc_bias: bool) -> Self {
        RefCube(
            (0..num_vars)
                .map(|_| match rng.below(if dc_bias { 4 } else { 3 }) {
                    0 => Literal::Zero,
                    1 => Literal::One,
                    _ => Literal::DontCare,
                })
                .collect(),
        )
    }

    fn to_packed(&self) -> Cube {
        Cube::new(self.0.clone())
    }

    fn display(&self) -> String {
        self.0.iter().map(|l| l.to_char()).collect()
    }

    fn covers(&self, other: &RefCube) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| match a {
            Literal::DontCare => true,
            _ => a == b,
        })
    }

    fn intersect(&self, other: &RefCube) -> Option<RefCube> {
        let mut lits = Vec::with_capacity(self.0.len());
        for (a, b) in self.0.iter().zip(&other.0) {
            let lit = match (a, b) {
                (Literal::DontCare, x) => *x,
                (x, Literal::DontCare) => *x,
                (x, y) if x == y => *x,
                _ => return None,
            };
            lits.push(lit);
        }
        Some(RefCube(lits))
    }

    fn conflict_count(&self, other: &RefCube) -> usize {
        self.0
            .iter()
            .zip(&other.0)
            .filter(|(a, b)| {
                matches!(
                    (a, b),
                    (Literal::Zero, Literal::One) | (Literal::One, Literal::Zero)
                )
            })
            .count()
    }

    fn combine_adjacent(&self, other: &RefCube) -> Option<RefCube> {
        let mut diff_at = None;
        for (i, (a, b)) in self.0.iter().zip(&other.0).enumerate() {
            if a == b {
                continue;
            }
            if *a == Literal::DontCare || *b == Literal::DontCare {
                return None;
            }
            if diff_at.is_some() {
                return None;
            }
            diff_at = Some(i);
        }
        diff_at.map(|i| {
            let mut lits = self.0.clone();
            lits[i] = Literal::DontCare;
            RefCube(lits)
        })
    }

    fn supercube(&self, other: &RefCube) -> RefCube {
        RefCube(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| if a == b { *a } else { Literal::DontCare })
                .collect(),
        )
    }

    fn contains_minterm(&self, m: u64) -> bool {
        let n = self.0.len();
        self.0
            .iter()
            .enumerate()
            .all(|(i, lit)| lit.matches((m >> (n - 1 - i)) & 1 == 1))
    }

    fn literal_count(&self) -> usize {
        self.0.iter().filter(|l| **l != Literal::DontCare).count()
    }

    fn ones_count(&self) -> usize {
        self.0.iter().filter(|l| **l == Literal::One).count()
    }

    fn minterms(&self) -> Vec<u64> {
        let n = self.0.len();
        let mut out = Vec::new();
        for m in 0..(1u64 << n) {
            if self.contains_minterm(m) {
                out.push(m);
            }
        }
        out
    }
}

/// Variable widths exercising the inline word, the exact word boundary and
/// the heap spillover.
const WIDTHS: &[usize] = &[1, 2, 3, 5, 8, 13, 16, 20, 24, 31, 32, 33, 40, 64];

/// Widths small enough to enumerate minterms exhaustively.
const DENSE_WIDTHS: &[usize] = &[1, 3, 5, 8, 13, 16];

const CASES_PER_WIDTH: usize = 200;

#[test]
fn parse_display_round_trip_matches_reference() {
    let mut rng = Rng::new(0x1001);
    for &n in WIDTHS {
        for _ in 0..CASES_PER_WIDTH {
            let r = RefCube::random(&mut rng, n, false);
            let text = r.display();
            let packed = Cube::parse(&text).expect("valid cube text");
            assert_eq!(packed.to_string(), text, "n={n}");
            assert_eq!(packed, r.to_packed(), "n={n} text={text}");
            // Literal accessors agree position by position.
            for (v, &lit) in r.0.iter().enumerate() {
                assert_eq!(packed.literal(v), lit, "n={n} v={v} text={text}");
            }
            assert_eq!(packed.literals().collect::<Vec<_>>(), r.0);
        }
    }
}

#[test]
fn literal_metrics_match_reference() {
    let mut rng = Rng::new(0x1002);
    for &n in WIDTHS {
        for _ in 0..CASES_PER_WIDTH {
            let r = RefCube::random(&mut rng, n, true);
            let p = r.to_packed();
            assert_eq!(p.literal_count(), r.literal_count(), "{r:?}");
            assert_eq!(p.ones_count(), r.ones_count(), "{r:?}");
            assert_eq!(p.is_universe(), r.literal_count() == 0, "{r:?}");
            assert_eq!(p.is_minterm(), r.literal_count() == n, "{r:?}");
            if n < 64 {
                assert_eq!(p.minterm_count(), 1u64 << (n - r.literal_count()), "{r:?}");
            }
        }
    }
}

#[test]
fn containment_matches_reference() {
    let mut rng = Rng::new(0x1003);
    for &n in WIDTHS {
        for _ in 0..CASES_PER_WIDTH {
            let a = RefCube::random(&mut rng, n, true);
            let b = RefCube::random(&mut rng, n, true);
            let (pa, pb) = (a.to_packed(), b.to_packed());
            assert_eq!(pa.covers(&pb), a.covers(&b), "a={a:?} b={b:?}");
            assert_eq!(pb.covers(&pa), b.covers(&a), "a={a:?} b={b:?}");
            assert!(pa.covers(&pa), "covers must be reflexive: {a:?}");
        }
    }
}

#[test]
fn intersection_matches_reference() {
    let mut rng = Rng::new(0x1004);
    for &n in WIDTHS {
        for _ in 0..CASES_PER_WIDTH {
            let a = RefCube::random(&mut rng, n, true);
            let b = RefCube::random(&mut rng, n, true);
            let (pa, pb) = (a.to_packed(), b.to_packed());
            let expected = a.intersect(&b).map(|r| r.to_packed());
            assert_eq!(pa.intersect(&pb), expected, "a={a:?} b={b:?}");
            assert_eq!(
                pa.conflict_count(&pb),
                a.conflict_count(&b),
                "a={a:?} b={b:?}"
            );
        }
    }
}

#[test]
fn adjacency_merge_matches_reference() {
    let mut rng = Rng::new(0x1005);
    for &n in WIDTHS {
        for _ in 0..CASES_PER_WIDTH {
            let a = RefCube::random(&mut rng, n, false);
            // Bias towards near-misses and exact merges: mutate a copy of `a`
            // in a few positions rather than drawing independently.
            let mut b = a.clone();
            for _ in 0..=rng.below(3) {
                let v = rng.below(n as u64) as usize;
                b.0[v] = match rng.below(3) {
                    0 => Literal::Zero,
                    1 => Literal::One,
                    _ => Literal::DontCare,
                };
            }
            let (pa, pb) = (a.to_packed(), b.to_packed());
            let expected = a.combine_adjacent(&b).map(|r| r.to_packed());
            assert_eq!(pa.combine_adjacent(&pb), expected, "a={a:?} b={b:?}");
            assert_eq!(
                pa.supercube(&pb),
                a.supercube(&b).to_packed(),
                "a={a:?} b={b:?}"
            );
        }
    }
}

#[test]
fn minterm_membership_matches_reference() {
    let mut rng = Rng::new(0x1006);
    for &n in WIDTHS.iter().filter(|&&n| n < 64) {
        for _ in 0..CASES_PER_WIDTH {
            let r = RefCube::random(&mut rng, n, false);
            let p = r.to_packed();
            for _ in 0..32 {
                let m = rng.below(1u64 << n);
                assert_eq!(p.contains_minterm(m), r.contains_minterm(m), "{r:?} m={m}");
            }
        }
    }
}

#[test]
fn minterm_enumeration_matches_reference() {
    let mut rng = Rng::new(0x1007);
    for &n in DENSE_WIDTHS {
        for _ in 0..64 {
            let r = RefCube::random(&mut rng, n, false);
            let p = r.to_packed();
            assert_eq!(p.minterms(), r.minterms(), "{r:?}");
            assert_eq!(p.minterms_iter().len(), p.minterms().len(), "{r:?}");
        }
    }
}

#[test]
fn from_minterm_matches_reference() {
    let mut rng = Rng::new(0x1008);
    for &n in WIDTHS.iter().filter(|&&n| n < 64) {
        for _ in 0..64 {
            let m = rng.below(1u64 << n);
            let p = Cube::from_minterm(n, m).expect("in range");
            let expected: String = (0..n)
                .map(|v| {
                    if (m >> (n - 1 - v)) & 1 == 1 {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect();
            assert_eq!(p.to_string(), expected);
            assert!(p.is_minterm());
            assert!(p.contains_minterm(m));
        }
    }
}

#[test]
fn ordering_and_equality_match_reference() {
    let mut rng = Rng::new(0x1009);
    for &n in WIDTHS {
        for _ in 0..CASES_PER_WIDTH {
            let a = RefCube::random(&mut rng, n, true);
            let b = RefCube::random(&mut rng, n, true);
            let (pa, pb) = (a.to_packed(), b.to_packed());
            // The literal enum derives Ord with Zero < One < DontCare, so the
            // reference Vec<Literal> ordering is the original cube ordering.
            assert_eq!(pa.cmp(&pb), a.cmp(&b), "a={a:?} b={b:?}");
            assert_eq!(pa == pb, a == b, "a={a:?} b={b:?}");
        }
    }
}

#[test]
fn sorting_agrees_with_reference_order() {
    let mut rng = Rng::new(0x100A);
    for &n in &[5usize, 24, 31, 32, 33] {
        let refs: Vec<RefCube> = (0..64)
            .map(|_| RefCube::random(&mut rng, n, true))
            .collect();
        let mut packed: Vec<Cube> = refs.iter().map(RefCube::to_packed).collect();
        let mut sorted_refs = refs.clone();
        sorted_refs.sort();
        packed.sort();
        let via_ref: Vec<Cube> = sorted_refs.iter().map(RefCube::to_packed).collect();
        assert_eq!(packed, via_ref, "n={n}");
    }
}

#[test]
fn word_boundary_with_literal_round_trips() {
    // Flipping every literal at widths straddling the 32-variable boundary
    // must preserve all other positions exactly.
    let mut rng = Rng::new(0x100B);
    for &n in &[31usize, 32, 33] {
        for _ in 0..32 {
            let r = RefCube::random(&mut rng, n, true);
            let p = r.to_packed();
            for v in 0..n {
                for lit in [Literal::Zero, Literal::One, Literal::DontCare] {
                    let q = p.with_literal(v, lit);
                    for u in 0..n {
                        let expected = if u == v { lit } else { r.0[u] };
                        assert_eq!(q.literal(u), expected, "n={n} v={v} u={u}");
                    }
                }
            }
        }
    }
}

#[test]
fn eval_matches_minterm_membership() {
    let mut rng = Rng::new(0x100C);
    for &n in DENSE_WIDTHS {
        for _ in 0..64 {
            let r = RefCube::random(&mut rng, n, false);
            let p = r.to_packed();
            let m = rng.below(1u64 << n);
            let bits: Vec<bool> = (0..n).map(|i| (m >> (n - 1 - i)) & 1 == 1).collect();
            assert_eq!(p.eval(&bits), r.contains_minterm(m), "{r:?} m={m}");
        }
    }
}
