//! Differential property tests pinning the **indexed** Step 5/7 engines —
//! [`hazard::static_hazard_regions`], [`hazard::add_consensus_terms_cover`],
//! [`hazard::add_consensus_terms_on_pairs`] and
//! [`petrick::minimum_cover_sparse`] — against verbatim copies of the
//! pre-index (PR 2–4) implementations used as oracles.
//!
//! Two kinds of pin:
//!
//! * where the indexed rewrite is a pure reorganisation (the sparse covering
//!   table), results must be **identical**;
//! * where subtraction order and region dedup legitimately change the cube
//!   decomposition (hazard regions, consensus augmentation), results must be
//!   **equally valid**: same hazardous-pair semantics, base cubes preserved,
//!   added primes inside `on ∪ dc`, and the output verified hazard-free by
//!   the oracle's own machinery.
//!
//! Generators cover mixed-phase random covers, dc-heavy flow-table-shaped
//! functions, unate covers, and deterministic 31/32/33-variable cases that
//! straddle the packed-cube word boundary (where minterm enumeration is
//! impossible and every check must stay cube-wise).

use std::collections::BTreeSet;

use fantom_boolean::{hazard, petrick, Cover, CoverFunction, Cube, Literal};
use proptest::prelude::*;

const NUM_VARS: usize = 6;

// ---------------------------------------------------------------------------
// Oracles: the pre-index implementations, copied verbatim (modulo privacy).
// ---------------------------------------------------------------------------

/// Pre-index `overlapping_regions_for`: full-cover scans per variable, sharp
/// against every var-free cube in cover order.
fn oracle_overlapping_regions_for(cover: &Cover, var: usize) -> Vec<Cube> {
    let free: Vec<&Cube> = cover
        .cubes()
        .iter()
        .filter(|c| c.literal(var) == Literal::DontCare)
        .collect();
    let lower: Vec<Cube> = cover
        .cubes()
        .iter()
        .filter(|c| c.literal(var) == Literal::Zero)
        .map(|c| c.with_literal(var, Literal::DontCare))
        .collect();
    let upper: Vec<Cube> = cover
        .cubes()
        .iter()
        .filter(|c| c.literal(var) == Literal::One)
        .map(|c| c.with_literal(var, Literal::DontCare))
        .collect();
    let mut out: Vec<Cube> = Vec::new();
    for a in &lower {
        for b in &upper {
            let Some(q) = a.intersect(b) else { continue };
            let mut pieces = vec![q];
            for f in &free {
                pieces = pieces.iter().flat_map(|p| p.sharp(f)).collect();
                if pieces.is_empty() {
                    break;
                }
            }
            out.extend(pieces);
        }
    }
    out
}

/// Pre-index `static_hazard_regions`: the quadratic disjointness pass over
/// the raw overlapping regions.
fn oracle_static_hazard_regions(cover: &Cover) -> Vec<(usize, Cube)> {
    let n = cover.num_vars();
    let mut out = Vec::new();
    for var in 0..n {
        let mut disjoint: Vec<Cube> = Vec::new();
        for q in oracle_overlapping_regions_for(cover, var) {
            let mut pieces = vec![q];
            for u in &disjoint {
                pieces = pieces.iter().flat_map(|p| p.sharp(u)).collect();
                if pieces.is_empty() {
                    break;
                }
            }
            disjoint.extend(pieces);
        }
        out.extend(disjoint.into_iter().map(|region| (var, region)));
    }
    out
}

/// Pre-index `add_consensus_terms_cover`: fixpoint loop, all-off-cube
/// subtraction in cover order, full-cover coverage rescans.
fn oracle_add_consensus_terms_cover(off: &Cover, base: &Cover) -> Cover {
    let n = base.num_vars();
    let mut cover = base.clone();
    loop {
        let mut progress = false;
        for var in 0..n {
            for region in oracle_overlapping_regions_for(&cover, var) {
                let mut safe = vec![region];
                for d in off.cubes() {
                    let freed = d.with_literal(var, Literal::DontCare);
                    safe = safe.iter().flat_map(|p| p.sharp(&freed)).collect();
                    if safe.is_empty() {
                        break;
                    }
                }
                for piece in safe {
                    if cover.single_cube_covers(&piece) {
                        continue;
                    }
                    let mut grown = piece;
                    for v in 0..n {
                        if grown.literal(v) == Literal::DontCare {
                            continue;
                        }
                        let widened = grown.with_literal(v, Literal::DontCare);
                        if !off.intersects_cube(&widened) {
                            grown = widened;
                        }
                    }
                    cover.push(grown);
                    progress = true;
                }
            }
        }
        if !progress {
            return cover;
        }
    }
}

/// Pre-index `add_consensus_terms_on_pairs`: var-free snapshot before the
/// pair loop, full-cover rescan per piece.
fn oracle_add_consensus_terms_on_pairs(on: &Cover, off: &Cover, base: &Cover) -> Cover {
    let n = base.num_vars();
    let mut cover = base.clone();
    for var in 0..n {
        let lower: Vec<Cube> = on
            .cubes()
            .iter()
            .filter(|c| c.literal(var) != Literal::One)
            .map(|c| c.with_literal(var, Literal::DontCare))
            .collect();
        let upper: Vec<Cube> = on
            .cubes()
            .iter()
            .filter(|c| c.literal(var) != Literal::Zero)
            .map(|c| c.with_literal(var, Literal::DontCare))
            .collect();
        let free: Vec<Cube> = cover
            .cubes()
            .iter()
            .filter(|c| c.literal(var) == Literal::DontCare)
            .cloned()
            .collect();
        for a in &lower {
            for b in &upper {
                let Some(q) = a.intersect(b) else { continue };
                let mut pieces = vec![q];
                for f in &free {
                    pieces = pieces.iter().flat_map(|p| p.sharp(f)).collect();
                    if pieces.is_empty() {
                        break;
                    }
                }
                for piece in pieces {
                    if cover.single_cube_covers(&piece) {
                        continue;
                    }
                    let mut grown = piece;
                    for v in 0..n {
                        if grown.literal(v) == Literal::DontCare {
                            continue;
                        }
                        let widened = grown.with_literal(v, Literal::DontCare);
                        if !off.intersects_cube(&widened) {
                            grown = widened;
                        }
                    }
                    cover.push(grown);
                }
            }
        }
    }
    cover
}

/// Pre-index `minimum_cover_sparse` with its private helpers, copied from
/// the PR 2 implementation (linear containment scans, no prime index).
mod oracle_petrick {
    use super::*;

    const PETRICK_EXACT_LIMIT: usize = 2_000;
    const FRAGMENT_LIMIT: usize = 2_048;

    fn build_cover(num_vars: usize, primes: &[Cube], selected: &[usize]) -> Cover {
        let mut idx: Vec<usize> = selected.to_vec();
        idx.sort_unstable();
        idx.dedup();
        Cover::from_cubes(
            num_vars,
            idx.into_iter().map(|i| primes[i].clone()).collect(),
        )
    }

    fn absorb(products: &mut Vec<BTreeSet<usize>>) {
        products.sort_by_key(BTreeSet::len);
        let mut kept: Vec<BTreeSet<usize>> = Vec::with_capacity(products.len());
        'outer: for p in products.drain(..) {
            for k in &kept {
                if k.is_subset(&p) {
                    continue 'outer;
                }
            }
            kept.push(p);
        }
        *products = kept;
    }

    fn petrick_exact_table(primes: &[Cube], rows: &[&Vec<usize>]) -> Vec<usize> {
        let mut products: Vec<BTreeSet<usize>> = vec![BTreeSet::new()];
        for covering in rows {
            let mut next: Vec<BTreeSet<usize>> = Vec::new();
            for product in &products {
                if product.iter().any(|i| covering.contains(i)) {
                    next.push(product.clone());
                    continue;
                }
                for &p in covering.iter() {
                    let mut grown = product.clone();
                    grown.insert(p);
                    next.push(grown);
                }
            }
            absorb(&mut next);
            if next.len() > 2_000 {
                return greedy_table(rows);
            }
            products = next;
        }
        products
            .into_iter()
            .min_by_key(|set| {
                let lits: usize = set.iter().map(|&i| primes[i].literal_count()).sum();
                (set.len(), lits)
            })
            .map(|set| set.into_iter().collect())
            .unwrap_or_default()
    }

    fn greedy_table(rows: &[&Vec<usize>]) -> Vec<usize> {
        let mut uncovered: Vec<usize> = (0..rows.len()).collect();
        let mut chosen: Vec<usize> = Vec::new();
        while !uncovered.is_empty() {
            let best = uncovered
                .iter()
                .flat_map(|&r| rows[r].iter().copied())
                .filter(|i| !chosen.contains(i))
                .max_by_key(|&i| uncovered.iter().filter(|&&r| rows[r].contains(&i)).count());
            let Some(best) = best else { break };
            chosen.push(best);
            uncovered.retain(|&r| !rows[r].contains(&best));
        }
        chosen
    }

    fn greedy_sharp_cover(f: &CoverFunction, primes: &[Cube]) -> Cover {
        let n = f.num_vars();
        let mut remaining: Cover = f.on_cover().clone();
        remaining.remove_contained_cubes();
        let mut used = vec![false; primes.len()];
        let mut chosen: Vec<usize> = Vec::new();
        while !remaining.is_empty() {
            let best = (0..primes.len())
                .filter(|&i| !used[i])
                .map(|i| {
                    let full = remaining
                        .cubes()
                        .iter()
                        .filter(|c| primes[i].covers(c))
                        .count();
                    let part = remaining
                        .cubes()
                        .iter()
                        .filter(|c| primes[i].intersect(c).is_some())
                        .count();
                    (part, full, i)
                })
                .filter(|&(part, _, _)| part > 0)
                .max_by_key(|&(part, full, i)| {
                    (full, part, usize::MAX - primes[i].literal_count())
                });
            let Some((_, _, best)) = best else { break };
            used[best] = true;
            chosen.push(best);
            remaining = remaining.sharp_cube(&primes[best]);
            remaining.remove_contained_cubes();
        }
        build_cover(n, primes, &chosen)
    }

    pub fn minimum_cover_sparse(f: &CoverFunction, primes: &[Cube]) -> Cover {
        let n = f.num_vars();
        if primes.is_empty() || f.on_cover().is_empty() {
            return Cover::empty(n);
        }
        let mut rows: Vec<Cube> = f.on_cover().make_disjoint().cubes().to_vec();
        for p in primes {
            let mut next: Vec<Cube> = Vec::with_capacity(rows.len());
            for r in rows {
                match r.intersect(p) {
                    None => next.push(r),
                    Some(_) if p.covers(&r) => next.push(r),
                    Some(inside) => {
                        next.push(inside);
                        next.extend(r.sharp(p));
                    }
                }
            }
            rows = next;
            if rows.len() > FRAGMENT_LIMIT {
                return greedy_sharp_cover(f, primes);
            }
        }
        let coverers: Vec<Vec<usize>> = rows
            .iter()
            .map(|r| (0..primes.len()).filter(|&i| primes[i].covers(r)).collect())
            .collect();
        let mut selected: Vec<usize> = Vec::new();
        for c in &coverers {
            if let [only] = c.as_slice() {
                if !selected.contains(only) {
                    selected.push(*only);
                }
            }
        }
        let residual: Vec<&Vec<usize>> = coverers
            .iter()
            .filter(|c| !c.is_empty() && !c.iter().any(|i| selected.contains(i)))
            .collect();
        if residual.is_empty() {
            return build_cover(n, primes, &selected);
        }
        let mut candidates: Vec<usize> = residual.iter().flat_map(|c| c.iter().copied()).collect();
        candidates.sort_unstable();
        candidates.dedup();
        let extra = if candidates.len() * residual.len() <= PETRICK_EXACT_LIMIT {
            petrick_exact_table(primes, &residual)
        } else {
            greedy_table(&residual)
        };
        selected.extend(extra);
        build_cover(n, primes, &selected)
    }
}

// ---------------------------------------------------------------------------
// Cube-wise validity checkers (safe at any width — no minterm enumeration).
// ---------------------------------------------------------------------------

/// Union-of-regions for one variable as a cover (var stays free in every
/// region, so region covers compare cube-wise).
fn region_cover(regions: &[(usize, Cube)], var: usize, n: usize) -> Cover {
    Cover::from_cubes(
        n,
        regions
            .iter()
            .filter(|(v, _)| *v == var)
            .map(|(_, r)| r.clone())
            .collect(),
    )
}

/// Both region lists bundle exactly the same hazardous pairs: for each
/// variable the unions must cover each other (checked with the sharp-based
/// `covers_cube`, never by pair enumeration).
fn assert_same_pair_semantics(ours: &[(usize, Cube)], oracle: &[(usize, Cube)], n: usize) {
    for var in 0..n {
        let a = region_cover(ours, var, n);
        let b = region_cover(oracle, var, n);
        for r in a.cubes() {
            assert!(b.covers_cube(r), "var {var}: extra hazard region {r}");
        }
        for r in b.cubes() {
            assert!(a.covers_cube(r), "var {var}: missing hazard region {r}");
        }
    }
}

/// Every region of the same variable is pairwise disjoint and var-free.
fn assert_disjoint_regions(regions: &[(usize, Cube)]) {
    for (i, (va, a)) in regions.iter().enumerate() {
        assert_eq!(a.literal(*va), Literal::DontCare);
        for (vb, b) in &regions[i + 1..] {
            if va == vb {
                assert!(a.intersect(b).is_none(), "overlapping regions {a} / {b}");
            }
        }
    }
}

/// The consensus result is *equally valid*: keeps the base cubes as a
/// prefix, adds only cubes inside `on ∪ dc` (never touching `off`), and —
/// verified with the **oracle's** region machinery — leaves no covered
/// single-input-change pair outside the off-set uncovered by a single cube.
fn assert_consensus_cover_valid(result: &Cover, base: &Cover, off: &Cover) {
    let n = base.num_vars();
    assert_eq!(&result.cubes()[..base.cube_count()], base.cubes());
    for added in &result.cubes()[base.cube_count()..] {
        assert!(!off.intersects_cube(added), "added cube {added} hits off");
    }
    for var in 0..n {
        for region in oracle_overlapping_regions_for(result, var) {
            // Remaining hazardous pairs must all touch the off-set.
            let mut safe = vec![region];
            for d in off.cubes() {
                let freed = d.with_literal(var, Literal::DontCare);
                safe = safe.iter().flat_map(|p| p.sharp(&freed)).collect();
                if safe.is_empty() {
                    break;
                }
            }
            assert!(
                safe.is_empty(),
                "var {var}: unfixed hazardous region outside the off-set"
            );
        }
    }
}

/// The on-pair consensus result is equally valid: base prefix kept, added
/// cubes avoid `off`, and every on/on pair region is covered by a single
/// var-free cube of the result (cube-wise, via sharp).
fn assert_on_pair_consensus_valid(result: &Cover, on: &Cover, off: &Cover, base: &Cover) {
    let n = base.num_vars();
    assert_eq!(&result.cubes()[..base.cube_count()], base.cubes());
    for added in &result.cubes()[base.cube_count()..] {
        assert!(!off.intersects_cube(added), "added cube {added} hits off");
    }
    for var in 0..n {
        let free: Vec<&Cube> = result
            .cubes()
            .iter()
            .filter(|c| c.literal(var) == Literal::DontCare)
            .collect();
        for a in on.cubes().iter().filter(|c| c.literal(var) != Literal::One) {
            for b in on
                .cubes()
                .iter()
                .filter(|c| c.literal(var) != Literal::Zero)
            {
                let qa = a.with_literal(var, Literal::DontCare);
                let Some(q) = qa.intersect(&b.with_literal(var, Literal::DontCare)) else {
                    continue;
                };
                let mut pieces = vec![q];
                for f in &free {
                    pieces = pieces.iter().flat_map(|p| p.sharp(f)).collect();
                    if pieces.is_empty() {
                        break;
                    }
                }
                assert!(
                    pieces.is_empty(),
                    "var {var}: on/on pair region of {a} × {b} left hazardous"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Generators (mirroring recursive_properties.rs).
// ---------------------------------------------------------------------------

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Zero),
        Just(Literal::One),
        Just(Literal::DontCare),
    ]
}

fn arb_cube(num_vars: usize) -> impl Strategy<Value = Cube> {
    proptest::collection::vec(arb_literal(), num_vars).prop_map(Cube::new)
}

fn arb_cover(num_vars: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(arb_cube(num_vars), 0..max_cubes)
        .prop_map(move |cubes| Cover::from_cubes(num_vars, cubes))
}

fn arb_unate_cover(num_vars: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    (
        proptest::collection::vec(proptest::arbitrary::any::<bool>(), num_vars),
        proptest::collection::vec(
            proptest::collection::vec(proptest::arbitrary::any::<bool>(), num_vars),
            1..max_cubes,
        ),
    )
        .prop_map(move |(phases, picks)| {
            let cubes: Vec<Cube> = picks
                .into_iter()
                .map(|bound| {
                    Cube::new(
                        (0..num_vars)
                            .map(|v| {
                                if bound[v] {
                                    if phases[v] {
                                        Literal::One
                                    } else {
                                        Literal::Zero
                                    }
                                } else {
                                    Literal::DontCare
                                }
                            })
                            .collect(),
                    )
                })
                .collect();
            Cover::from_cubes(num_vars, cubes)
        })
}

/// A dc-heavy incompletely specified function: on-set minterms plus a small
/// off cover (carved disjoint), everything else don't-care.
fn arb_dc_heavy(num_vars: usize) -> impl Strategy<Value = CoverFunction> {
    (
        proptest::collection::btree_set(0u64..(1u64 << num_vars), 1..10),
        arb_cover(num_vars, 4),
    )
        .prop_map(move |(on_pts, off)| {
            let on = Cover::from_cubes(
                num_vars,
                on_pts
                    .into_iter()
                    .map(|m| Cube::from_minterm(num_vars, m).unwrap())
                    .collect(),
            );
            let off = off.sharp(&on);
            CoverFunction::from_on_off(on, off).expect("sharp keeps the covers disjoint")
        })
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

proptest! {
    /// Indexed hazard regions bundle exactly the oracle's hazardous pairs,
    /// stay per-variable disjoint, and agree on hazard-freedom.
    #[test]
    fn indexed_regions_match_oracle(cover in arb_cover(NUM_VARS, 7)) {
        let ours: Vec<(usize, Cube)> = hazard::static_hazard_regions(&cover)
            .into_iter()
            .map(|r| (r.variable, r.region))
            .collect();
        let oracle = oracle_static_hazard_regions(&cover);
        assert_disjoint_regions(&ours);
        assert_same_pair_semantics(&ours, &oracle, NUM_VARS);
        // Disjoint bundles of the same pair set have the same pair count.
        let pair_count = |rs: &[(usize, Cube)]| -> u64 {
            rs.iter().map(|(_, r)| r.minterm_count() / 2).sum()
        };
        prop_assert_eq!(pair_count(&ours), pair_count(&oracle));
        prop_assert_eq!(
            hazard::is_static_hazard_free(&cover),
            oracle.is_empty()
        );
    }

    /// Indexed `add_consensus_terms_cover` is equally valid vs the oracle
    /// (and the oracle itself passes the same validity checks).
    #[test]
    fn indexed_consensus_cover_equally_valid(cf in arb_dc_heavy(NUM_VARS)) {
        let base = cf.minimize();
        let off = cf.off_cover();
        let ours = hazard::add_consensus_terms_cover(off, &base);
        let oracle = oracle_add_consensus_terms_cover(off, &base);
        assert_consensus_cover_valid(&ours, &base, off);
        assert_consensus_cover_valid(&oracle, &base, off);
        // Pointwise: both cover the same specified behaviour (base points
        // plus primes within on ∪ dc; n is small enough to enumerate here).
        for m in 0..(1u64 << NUM_VARS) {
            if base.covers_minterm(m) {
                prop_assert!(ours.covers_minterm(m));
            }
            if cf.is_off(m) {
                prop_assert!(!ours.covers_minterm(m), "off point {} covered", m);
            }
        }
    }

    /// Indexed `add_consensus_terms_on_pairs` fixes every on/on adjacency,
    /// matching the oracle's guarantee, on dc-heavy functions.
    #[test]
    fn indexed_on_pair_consensus_equally_valid(cf in arb_dc_heavy(NUM_VARS)) {
        let base = cf.minimize();
        let (on, off) = (cf.on_cover(), cf.off_cover());
        let ours = hazard::add_consensus_terms_on_pairs(on, off, &base);
        let oracle = oracle_add_consensus_terms_on_pairs(on, off, &base);
        assert_on_pair_consensus_valid(&ours, on, off, &base);
        assert_on_pair_consensus_valid(&oracle, on, off, &base);
        // Dense cross-check of the guarantee: every adjacent on/on minterm
        // pair is covered by a single cube.
        for m in 0..(1u64 << NUM_VARS) {
            if !cf.is_on(m) { continue; }
            for var in 0..NUM_VARS {
                let bit = 1u64 << (NUM_VARS - 1 - var);
                let other = m | bit;
                if m & bit != 0 || !cf.is_on(other) { continue; }
                let full_mask = (1u64 << NUM_VARS) - 1;
                let pair = Cube::from_mask_value(NUM_VARS, full_mask & !bit, m);
                prop_assert!(ours.single_cube_covers(&pair), "pair {}/{}", m, other);
            }
        }
    }

    /// The indexed sparse covering table is byte-identical to the oracle on
    /// dc-heavy functions.
    #[test]
    fn indexed_minimum_cover_sparse_identical_dc_heavy(cf in arb_dc_heavy(NUM_VARS)) {
        let primes = cf.expand_primes();
        let ours = petrick::minimum_cover_sparse(&cf, &primes);
        let oracle = oracle_petrick::minimum_cover_sparse(&cf, &primes);
        prop_assert_eq!(ours.cubes(), oracle.cubes());
    }

    /// ... and on completely specified mixed / unate covers.
    #[test]
    fn indexed_minimum_cover_sparse_identical_unate(cover in arb_unate_cover(NUM_VARS, 6)) {
        let off = fantom_boolean::recursive::complement(&cover);
        let cf = CoverFunction::from_on_off(cover, off).expect("complement is disjoint");
        let primes = cf.expand_primes();
        let ours = petrick::minimum_cover_sparse(&cf, &primes);
        let oracle = oracle_petrick::minimum_cover_sparse(&cf, &primes);
        prop_assert_eq!(ours.cubes(), oracle.cubes());
    }
}

// ---------------------------------------------------------------------------
// Word-boundary cases: 31/32/33 variables. Minterm enumeration is
// impossible here — everything must stay cube-wise.
// ---------------------------------------------------------------------------

/// A deterministic wide cover straddling the inline-word boundary: cubes
/// bind a window of variables around position 30..33 plus a couple of
/// anchors, the rest free.
fn wide_cover(n: usize) -> Cover {
    let mk = |pairs: &[(usize, Literal)]| {
        let mut lits = vec![Literal::DontCare; n];
        for &(v, l) in pairs {
            lits[v] = l;
        }
        Cube::new(lits)
    };
    use Literal::{One, Zero};
    let w = n - 2; // near the top so 31/32/33 straddle differently
    Cover::from_cubes(
        n,
        vec![
            mk(&[(0, One), (w, One)]),
            mk(&[(0, Zero), (w + 1, One)]),
            mk(&[(1, One), (w, Zero), (w + 1, Zero)]),
            mk(&[(0, One), (1, Zero), (w + 1, Zero)]),
        ],
    )
}

#[test]
fn wide_word_boundary_regions_match_oracle() {
    for n in [31usize, 32, 33] {
        let cover = wide_cover(n);
        let ours: Vec<(usize, Cube)> = hazard::static_hazard_regions(&cover)
            .into_iter()
            .map(|r| (r.variable, r.region))
            .collect();
        let oracle = oracle_static_hazard_regions(&cover);
        assert!(!oracle.is_empty(), "n={n}: wide case should have hazards");
        assert_disjoint_regions(&ours);
        assert_same_pair_semantics(&ours, &oracle, n);
        assert_eq!(
            hazard::is_static_hazard_free(&cover),
            oracle.is_empty(),
            "n={n}"
        );
    }
}

#[test]
fn wide_word_boundary_consensus_equally_valid() {
    use Literal::{One, Zero};
    for n in [31usize, 32, 33] {
        let on = wide_cover(n);
        // A small off cover disjoint from `on`: bind the same window to the
        // opposite phases.
        let mut lits = vec![Literal::DontCare; n];
        lits[0] = Zero;
        lits[1] = Zero;
        lits[n - 2] = One;
        lits[n - 1] = Zero;
        let off = Cover::from_cubes(n, vec![Cube::new(lits)]);
        for c in on.cubes() {
            assert!(!off.intersects_cube(c), "n={n}: generator overlap");
        }
        let base = on.clone();
        let ours = hazard::add_consensus_terms_on_pairs(&on, &off, &base);
        assert_on_pair_consensus_valid(&ours, &on, &off, &base);

        let fixed = hazard::add_consensus_terms_cover(&off, &base);
        assert_consensus_cover_valid(&fixed, &base, &off);
    }
}

#[test]
fn wide_word_boundary_sparse_cover_identical() {
    for n in [31usize, 32, 33] {
        let on = wide_cover(n);
        let mut lits = vec![Literal::DontCare; n];
        lits[0] = Literal::Zero;
        lits[1] = Literal::Zero;
        lits[n - 2] = Literal::One;
        lits[n - 1] = Literal::Zero;
        let off = Cover::from_cubes(n, vec![Cube::new(lits)]);
        let cf = CoverFunction::from_on_off(on, off).expect("disjoint by phases");
        let primes = cf.expand_primes();
        let ours = petrick::minimum_cover_sparse(&cf, &primes);
        let oracle = oracle_petrick::minimum_cover_sparse(&cf, &primes);
        assert_eq!(ours.cubes(), oracle.cubes(), "n={n}");
        assert!(cf.implemented_by(&petrick::minimum_cover_sparse(&cf, &primes)));
    }
}
