//! Differential property tests pinning the sparse cover-based engine
//! ([`recursive`], [`CoverFunction`], cube-pair-wise hazards) against the
//! dense oracle ([`quine::prime_implicants`], `Function::off_minterms`, the
//! dense adjacency scan) on spaces small enough to enumerate (n ≤ 16).
//!
//! The generators deliberately include the regimes the unate-recursive
//! paradigm special-cases: don't-care-heavy functions (tiny off-sets, the
//! flow-table shape), unate covers (the recursion leaf), and plain random
//! mixed-phase covers.

use fantom_boolean::{hazard, quine, recursive, Cover, CoverFunction, Cube, Function, Literal};
use proptest::prelude::*;

/// Random cube width used by the cover generators.
const NUM_VARS: usize = 6;

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Zero),
        Just(Literal::One),
        Just(Literal::DontCare),
    ]
}

fn arb_cube(num_vars: usize) -> impl Strategy<Value = Cube> {
    proptest::collection::vec(arb_literal(), num_vars).prop_map(Cube::new)
}

fn arb_cover(num_vars: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(arb_cube(num_vars), 0..max_cubes)
        .prop_map(move |cubes| Cover::from_cubes(num_vars, cubes))
}

/// A unate cover: each variable is assigned a fixed phase up front and cube
/// literals are drawn from {that phase, don't-care}.
fn arb_unate_cover(num_vars: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    (
        proptest::collection::vec(proptest::arbitrary::any::<bool>(), num_vars),
        proptest::collection::vec(
            proptest::collection::vec(proptest::arbitrary::any::<bool>(), num_vars),
            1..max_cubes,
        ),
    )
        .prop_map(move |(phases, picks)| {
            let cubes: Vec<Cube> = picks
                .into_iter()
                .map(|bound| {
                    Cube::new(
                        (0..num_vars)
                            .map(|v| {
                                if bound[v] {
                                    if phases[v] {
                                        Literal::One
                                    } else {
                                        Literal::Zero
                                    }
                                } else {
                                    Literal::DontCare
                                }
                            })
                            .collect(),
                    )
                })
                .collect();
            Cover::from_cubes(num_vars, cubes)
        })
}

/// A dc-heavy incompletely specified function: a handful of on-set minterms
/// and a small off-set cover, everything else don't-care — the shape the
/// synthesis pipeline produces from flow tables.
fn arb_dc_heavy(num_vars: usize) -> impl Strategy<Value = CoverFunction> {
    (
        proptest::collection::btree_set(0u64..(1u64 << num_vars), 1..10),
        arb_cover(num_vars, 4),
    )
        .prop_map(move |(on_pts, off)| {
            let on = Cover::from_cubes(
                num_vars,
                on_pts
                    .into_iter()
                    .map(|m| Cube::from_minterm(num_vars, m).unwrap())
                    .collect(),
            );
            // Carve the on-points out of the off cover to keep them disjoint.
            let off = off.sharp(&on);
            CoverFunction::from_on_off(on, off).expect("sharp keeps the covers disjoint")
        })
}

fn dense_of_cover(cover: &Cover) -> Function {
    Function::from_cover(cover, None).expect("small space")
}

proptest! {
    /// Unate-recursive complete sum == dense Quine–McCluskey tabulation,
    /// on arbitrary mixed-phase covers.
    #[test]
    fn complete_sum_matches_dense_tabulation(cover in arb_cover(NUM_VARS, 7)) {
        let f = dense_of_cover(&cover);
        let mut expected = quine::prime_implicants(&f);
        expected.sort();
        prop_assert_eq!(recursive::complete_sum(&cover), expected);
    }

    /// The unate-leaf shortcut agrees with the oracle on unate covers.
    #[test]
    fn complete_sum_matches_dense_on_unate_leaves(cover in arb_unate_cover(NUM_VARS, 6)) {
        prop_assert!(recursive::is_unate(&cover));
        let f = dense_of_cover(&cover);
        let mut expected = quine::prime_implicants(&f);
        expected.sort();
        prop_assert_eq!(recursive::complete_sum(&cover), expected);
    }

    /// Recursive complement covers exactly the dense complement.
    #[test]
    fn complement_matches_dense_offset(cover in arb_cover(NUM_VARS, 7)) {
        let f = dense_of_cover(&cover);
        let comp = recursive::complement(&cover);
        for m in 0..(1u64 << NUM_VARS) {
            prop_assert_eq!(comp.covers_minterm(m), !f.is_on(m), "minterm {}", m);
        }
    }

    /// Sharp-complement off-set derivation == the dense off-minterm scan, and
    /// sparse primes == dense primes, on dc-heavy functions.
    #[test]
    fn dc_heavy_primes_and_offsets_match_dense(cf in arb_dc_heavy(NUM_VARS)) {
        let f = cf.to_function().expect("small space");
        // Off-set partition matches.
        let dense_off: Vec<u64> = f.off_minterms().collect();
        let sparse_off: Vec<u64> = (0..(1u64 << NUM_VARS))
            .filter(|&m| cf.is_off(m))
            .collect();
        prop_assert_eq!(&sparse_off, &dense_off);
        // The derived dc cover is exactly the dense dc set.
        let dc = cf.dc_cover();
        for m in 0..(1u64 << NUM_VARS) {
            prop_assert_eq!(dc.covers_minterm(m), f.is_dc(m), "dc minterm {}", m);
        }
        // Prime implicants match the dense tabulation exactly.
        prop_assert_eq!(cf.prime_implicants(), quine::prime_implicants(&f));
    }

    /// Sparse minimize yields a valid implementation whose every cube is a
    /// prime implicant of the dense oracle.
    #[test]
    fn sparse_minimize_is_valid_and_prime(cf in arb_dc_heavy(NUM_VARS)) {
        let f = cf.to_function().expect("small space");
        let cover = cf.minimize();
        prop_assert!(f.implemented_by(&cover));
        prop_assert!(cf.implemented_by(&cover));
        for p in cover.cubes() {
            prop_assert!(f.admits_cube(p), "cube {} leaves on ∪ dc", p);
            for v in 0..NUM_VARS {
                if p.literal(v) != Literal::DontCare {
                    prop_assert!(
                        !f.admits_cube(&p.with_literal(v, Literal::DontCare)),
                        "cube {} is not maximal",
                        p
                    );
                }
            }
        }
    }

    /// Cube-pair-wise hazard detection == the dense 2^n · n adjacency walk.
    #[test]
    fn hazard_regions_match_dense_adjacency_scan(cover in arb_cover(NUM_VARS, 6)) {
        let n = cover.num_vars();
        let space = 1u64 << n;
        let full_mask = space - 1;
        let mut expected = Vec::new();
        for m in 0..space {
            for var in 0..n {
                let bit = 1u64 << (n - 1 - var);
                if m & bit != 0 {
                    continue;
                }
                let other = m | bit;
                if !cover.covers_minterm(m) || !cover.covers_minterm(other) {
                    continue;
                }
                let pair = Cube::from_mask_value(n, full_mask & !bit, m);
                if !cover.single_cube_covers(&pair) {
                    expected.push((m, other, var));
                }
            }
        }
        let got: Vec<(u64, u64, usize)> = hazard::static_hazards(&cover)
            .into_iter()
            .map(|h| (h.from, h.to, h.variable))
            .collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(hazard::is_static_hazard_free(&cover), expected_is_empty(&cover));
    }
}

fn expected_is_empty(cover: &Cover) -> bool {
    hazard::static_hazards(cover).is_empty()
}

/// A deeper, deterministic differential run at a larger width (n = 10) so the
/// recursion actually exercises multi-level binate splits, including a
/// dc-heavy flow-table-shaped instance.
#[test]
fn wider_differential_spot_checks() {
    let texts = [
        "110------- 0--1----0- ---11---1- 1------0-- ----0--1-1",
        "1--------- -1-------- --1------- 0-0-0-0-0-",
    ];
    for text in texts {
        let cover = Cover::parse(10, text).unwrap();
        let f = dense_of_cover(&cover);
        let mut expected = quine::prime_implicants(&f);
        expected.sort();
        assert_eq!(recursive::complete_sum(&cover), expected, "cover {text}");
        let comp = recursive::complement(&cover);
        for m in 0..(1u64 << 10) {
            assert_eq!(comp.covers_minterm(m), !f.is_on(m));
        }
    }

    // dc-heavy: 12 on-points, off cover of 3 cubes, rest dc over 12 vars.
    let on_pts: Vec<u64> = vec![
        5, 100, 1023, 2048, 3000, 4000, 77, 900, 1500, 2500, 3500, 4094,
    ];
    let on = Cover::from_cubes(
        12,
        on_pts
            .iter()
            .map(|&m| Cube::from_minterm(12, m).unwrap())
            .collect(),
    );
    let off = Cover::parse(12, "0000--1----- 11---------0 --10-1------")
        .unwrap()
        .sharp(&on);
    let cf = CoverFunction::from_on_off(on, off).unwrap();
    let f = cf.to_function().unwrap();
    assert_eq!(cf.prime_implicants(), quine::prime_implicants(&f));
    let cover = cf.minimize();
    assert!(f.implemented_by(&cover));
}
