use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use fantom_boolean::fxhash::FxHashMap;

use crate::{DelayModel, GateKind, NetId, Netlist};

/// Recorded value changes on a monitored net: `(time, new_value)` pairs in
/// chronological order, starting with the value at monitoring start.
pub type Waveform = Vec<(u64, bool)>;

/// Errors reported by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The circuit did not reach quiescence within the event budget
    /// (it is probably oscillating).
    Oscillation {
        /// Number of events processed before giving up.
        events_processed: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Oscillation { events_processed } => {
                write!(
                    f,
                    "circuit did not settle after {events_processed} events (oscillation)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    seq: u64,
    net: NetId,
    value: bool,
    /// Index of the gate that scheduled this event, if any (used by the
    /// inertial delay mode to supersede stale transitions).
    origin: Option<usize>,
}

/// How scheduled output transitions behave when a gate re-evaluates before a
/// previously scheduled transition has been delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayStyle {
    /// Every scheduled transition is delivered (pulses narrower than the gate
    /// delay still propagate). This exposes the maximum number of hazards.
    #[default]
    Transport,
    /// A gate has at most one outstanding transition; re-evaluating to the
    /// currently committed value cancels it (pulses narrower than the gate
    /// delay are filtered). This models the pulse-rejection of real gates and
    /// is used for closed-loop (feedback) simulations.
    Inertial,
}

/// Transport-delay event-driven simulator over a [`Netlist`].
///
/// Gate delays are fixed per instance by a [`DelayModel`]; every scheduled
/// output change is delivered (transport delay), so short pulses — the
/// observable form of hazards — propagate instead of being filtered out.
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    gate_delays: Vec<u64>,
    dff_delay: u64,
    style: DelayStyle,
    values: Vec<bool>,
    pending: Vec<bool>,
    active_event: Vec<Option<u64>>,
    queue: BinaryHeap<Reverse<Event>>,
    /// Net→gate fanout in compressed sparse row form: the gates reading net
    /// `n` are `fanout_data[fanout_offsets[n]..fanout_offsets[n + 1]]`. The
    /// flat layout lets the event loop walk a net's fanout by index with no
    /// per-event clone or allocation.
    fanout_offsets: Vec<u32>,
    fanout_data: Vec<u32>,
    fanout_dff_clocks: Vec<Vec<usize>>,
    time: u64,
    seq: u64,
    monitored: FxHashMap<usize, Waveform>,
}

impl<'a> Simulator<'a> {
    /// Create a simulator for `netlist` with delays drawn from `delay_model`
    /// and transport-delay semantics. All nets start at logic 0 at time 0.
    pub fn new(netlist: &'a Netlist, delay_model: &DelayModel) -> Self {
        Self::with_style(netlist, delay_model, DelayStyle::Transport)
    }

    /// Create a simulator with an explicit [`DelayStyle`].
    pub fn with_style(netlist: &'a Netlist, delay_model: &DelayModel, style: DelayStyle) -> Self {
        let gate_delays = delay_model.delays_for(netlist.num_gates());
        // Two-pass CSR construction over the per-gate deduplicated input
        // lists (a gate reading the same net twice re-evaluates once per
        // change): count each net's fanout, prefix-sum into offsets, fill.
        let gate_inputs: Vec<Vec<usize>> = netlist
            .gates()
            .iter()
            .map(|gate| {
                let mut nets: Vec<usize> = gate.inputs.iter().map(|n| n.0).collect();
                nets.sort_unstable();
                nets.dedup();
                nets
            })
            .collect();
        let mut counts = vec![0u32; netlist.num_nets() + 1];
        for nets in &gate_inputs {
            for &n in nets {
                counts[n + 1] += 1;
            }
        }
        let mut fanout_offsets = counts;
        for i in 1..fanout_offsets.len() {
            fanout_offsets[i] += fanout_offsets[i - 1];
        }
        let mut fanout_data = vec![0u32; *fanout_offsets.last().expect("offsets") as usize];
        let mut cursor: Vec<u32> = fanout_offsets[..fanout_offsets.len() - 1].to_vec();
        for (gi, nets) in gate_inputs.iter().enumerate() {
            for &n in nets {
                fanout_data[cursor[n] as usize] = gi as u32;
                cursor[n] += 1;
            }
        }
        let mut fanout_dff_clocks = vec![Vec::new(); netlist.num_nets()];
        for (di, dff) in netlist.dffs().iter().enumerate() {
            fanout_dff_clocks[dff.clock.0].push(di);
        }
        Simulator {
            netlist,
            gate_delays,
            dff_delay: delay_model.max_delay(),
            style,
            values: vec![false; netlist.num_nets()],
            pending: vec![false; netlist.num_gates()],
            active_event: vec![None; netlist.num_gates()],
            // Pre-size the event heap from the netlist stats: steady-state
            // event populations track the gate count plus scheduled inputs.
            queue: BinaryHeap::with_capacity(netlist.num_gates() + netlist.num_nets()),
            fanout_offsets,
            fanout_data,
            fanout_dff_clocks,
            time: 0,
            seq: 0,
            monitored: FxHashMap::default(),
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Override the propagation delay of a single gate.
    ///
    /// Used to model structurally slow elements such as the feedback loop of
    /// an asynchronous state machine, whose delay must exceed every
    /// combinational settling path (the loop-delay assumption).
    ///
    /// # Panics
    ///
    /// Panics if `gate_index` is out of range or `delay` is zero.
    pub fn set_gate_delay(&mut self, gate_index: usize, delay: u64) {
        assert!(delay > 0, "gate delay must be positive");
        self.gate_delays[gate_index] = delay;
    }

    /// Current value of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.0]
    }

    /// Current values of several nets, in order.
    pub fn values(&self, nets: &[NetId]) -> Vec<bool> {
        nets.iter().map(|&n| self.value(n)).collect()
    }

    /// Begin recording a waveform for `net`.
    pub fn monitor(&mut self, net: NetId) {
        self.monitored
            .entry(net.0)
            .or_insert_with(|| vec![(self.time, self.values[net.0])]);
    }

    /// The recorded waveform of a monitored net, if it was monitored.
    pub fn waveform(&self, net: NetId) -> Option<&Waveform> {
        self.monitored.get(&net.0)
    }

    /// Force a net to a value *now* (used to establish initial conditions and
    /// to drive primary inputs immediately).
    pub fn set_input(&mut self, net: NetId, value: bool) {
        self.schedule_input(net, value, 0);
    }

    /// Schedule a primary-input (or initialisation) change `delta` time units
    /// from the current simulation time.
    pub fn schedule_input(&mut self, net: NetId, value: bool, delta: u64) {
        let event = Event {
            time: self.time + delta,
            seq: self.seq,
            net,
            value,
            origin: None,
        };
        self.seq += 1;
        self.queue.push(Reverse(event));
    }

    /// Compute a delay-free fixpoint of the combinational logic with the given
    /// nets held at fixed values, then preset every net (and every gate's
    /// pending state) to that fixpoint.
    ///
    /// This establishes a consistent initial condition for circuits with
    /// combinational feedback (such as the FANTOM `Y → y` loop) without the
    /// spurious start-up transients that per-net presetting would cause.
    /// Flip-flop outputs are left at their current values.
    pub fn initialize_consistent(&mut self, fixed: &[(NetId, bool)]) {
        let fixed_idx: Vec<usize> = fixed.iter().map(|(n, _)| n.0).collect();
        for &(net, value) in fixed {
            self.values[net.0] = value;
        }
        // Iterate to a fixpoint; the iteration count is bounded by the number
        // of gates (each pass settles at least one more logic level).
        for _ in 0..=self.netlist.num_gates() {
            let mut changed = false;
            for gate in self.netlist.gates() {
                if fixed_idx.contains(&gate.output.0) {
                    continue;
                }
                let new_val = gate
                    .kind
                    .eval_iter(gate.inputs.iter().map(|n| self.values[n.0]));
                if self.values[gate.output.0] != new_val {
                    self.values[gate.output.0] = new_val;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (gi, gate) in self.netlist.gates().iter().enumerate() {
            self.pending[gi] = self.values[gate.output.0];
            self.active_event[gi] = None;
        }
        for (net, wave) in self.monitored.iter_mut() {
            wave.push((self.time, self.values[*net]));
        }
    }

    /// Process events until the queue drains or `max_events` have been
    /// handled.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Oscillation`] when the budget is exhausted, which
    /// for a well-formed combinational feedback circuit indicates oscillation.
    pub fn run_until_quiet(&mut self, max_events: usize) -> Result<u64, SimError> {
        let mut processed = 0;
        while let Some(Reverse(event)) = self.queue.pop() {
            processed += 1;
            if processed > max_events {
                return Err(SimError::Oscillation {
                    events_processed: processed,
                });
            }
            self.time = self.time.max(event.time);
            self.apply(event);
        }
        Ok(self.time)
    }

    fn apply(&mut self, event: Event) {
        // In inertial mode, a gate-originated transition that has been
        // superseded (the gate re-evaluated since it was scheduled) is dropped.
        if self.style == DelayStyle::Inertial {
            if let Some(gi) = event.origin {
                if self.active_event[gi] != Some(event.seq) {
                    return;
                }
                self.active_event[gi] = None;
            }
        }
        let net = event.net.0;
        let old = self.values[net];
        if old == event.value {
            return;
        }
        self.values[net] = event.value;
        if let Some(wave) = self.monitored.get_mut(&net) {
            wave.push((event.time, event.value));
        }

        // Rising-edge flip-flops clocked by this net.
        if event.value && !old {
            for &di in &self.fanout_dff_clocks[net] {
                let dff = &self.netlist.dffs()[di];
                let sampled = self.values[dff.data.0];
                let ev = Event {
                    time: event.time + self.dff_delay,
                    seq: self.seq,
                    net: dff.q,
                    value: sampled,
                    origin: None,
                };
                self.seq += 1;
                self.queue.push(Reverse(ev));
            }
        }

        // Combinational fanout: walk the CSR row by index so no per-event
        // clone or allocation is needed.
        let netlist = self.netlist;
        let (start, end) = (
            self.fanout_offsets[net] as usize,
            self.fanout_offsets[net + 1] as usize,
        );
        for k in start..end {
            let gi = self.fanout_data[k] as usize;
            let gate = &netlist.gates()[gi];
            let new_val = gate
                .kind
                .eval_iter(gate.inputs.iter().map(|n| self.values[n.0]));
            match self.style {
                DelayStyle::Transport => {
                    if new_val != self.pending[gi] {
                        self.pending[gi] = new_val;
                        self.schedule_gate_event(gi, event.time, new_val);
                    }
                }
                DelayStyle::Inertial => {
                    if new_val == self.values[gate.output.0] {
                        // The change was rescinded before it could happen.
                        self.active_event[gi] = None;
                        self.pending[gi] = new_val;
                    } else if new_val != self.pending[gi] || self.active_event[gi].is_none() {
                        self.pending[gi] = new_val;
                        self.schedule_gate_event(gi, event.time, new_val);
                    }
                }
            }
        }
    }

    fn schedule_gate_event(&mut self, gate_index: usize, now: u64, value: bool) {
        let gate = &self.netlist.gates()[gate_index];
        let ev = Event {
            time: now + self.gate_delays[gate_index],
            seq: self.seq,
            net: gate.output,
            value,
            origin: Some(gate_index),
        };
        self.active_event[gate_index] = Some(ev.seq);
        self.seq += 1;
        self.queue.push(Reverse(ev));
    }

    /// Evaluate every gate once and schedule updates — used to bring a circuit
    /// with non-zero initial conditions into a consistent state before an
    /// experiment. Returns the settling time.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Oscillation`] from [`Simulator::run_until_quiet`].
    pub fn settle(&mut self, max_events: usize) -> Result<u64, SimError> {
        let netlist = self.netlist;
        for (gi, gate) in netlist.gates().iter().enumerate() {
            let new_val = gate
                .kind
                .eval_iter(gate.inputs.iter().map(|n| self.values[n.0]));
            self.pending[gi] = new_val;
            if new_val != self.values[gate.output.0] {
                let now = self.time;
                self.schedule_gate_event(gi, now, new_val);
            }
        }
        self.run_until_quiet(max_events)
    }

    /// Set a net's value directly without scheduling (initial conditions only;
    /// no fanout evaluation happens until [`Simulator::settle`] or a later
    /// event touches the fanout).
    pub fn preset(&mut self, net: NetId, value: bool) {
        self.values[net.0] = value;
        if let Some(wave) = self.monitored.get_mut(&net.0) {
            wave.push((self.time, value));
        }
    }

    /// `GateKind` helper re-export so harness code can evaluate gates without
    /// importing the netlist module separately.
    pub fn eval_gate(kind: GateKind, inputs: &[bool]) -> bool {
        kind.eval(inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    fn inverter_chain(n: usize) -> (Netlist, NetId, NetId) {
        let mut nl = Netlist::new();
        let input = nl.add_primary_input("in");
        let mut prev = input;
        let mut last = input;
        for i in 0..n {
            let next = nl.add_net(format!("n{i}"));
            nl.add_gate(GateKind::Not, vec![prev], next);
            prev = next;
            last = next;
        }
        (nl, input, last)
    }

    #[test]
    fn inverter_chain_propagates_with_delay() {
        let (nl, input, out) = inverter_chain(4);
        let mut sim = Simulator::new(&nl, &DelayModel::Unit);
        sim.settle(1_000).unwrap();
        let initial = sim.value(out);
        sim.schedule_input(input, true, 5);
        let end = sim.run_until_quiet(1_000).unwrap();
        assert_eq!(sim.value(out), !initial);
        assert!(end >= 5 + 4, "four unit delays must elapse, got {end}");
    }

    #[test]
    fn and_gate_glitch_is_observable_with_skewed_inputs() {
        // y = a AND (NOT a) should glitch when 'a' rises, because the inverter
        // is slower than the direct path.
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let na = nl.add_net("na");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Not, vec![a], na);
        nl.add_gate(GateKind::And, vec![a, na], y);
        let mut sim = Simulator::new(&nl, &DelayModel::Fixed(3));
        sim.settle(100).unwrap();
        sim.monitor(y);
        sim.schedule_input(a, true, 10);
        sim.run_until_quiet(100).unwrap();
        let wave = sim.waveform(y).unwrap();
        // y pulses 0 -> 1 -> 0: at least two changes after monitoring started.
        let changes = wave.windows(2).filter(|w| w[0].1 != w[1].1).count();
        assert!(changes >= 2, "expected a glitch pulse, waveform {wave:?}");
        assert!(!sim.value(y));
    }

    #[test]
    fn ring_oscillator_is_detected_as_oscillation() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(GateKind::Not, vec![a], b);
        nl.add_gate(GateKind::Buf, vec![b], a);
        let mut sim = Simulator::new(&nl, &DelayModel::Unit);
        let result = sim.settle(500);
        assert!(matches!(result, Err(SimError::Oscillation { .. })));
    }

    #[test]
    fn dff_samples_on_rising_edge_only() {
        let mut nl = Netlist::new();
        let clk = nl.add_primary_input("clk");
        let d = nl.add_primary_input("d");
        let q = nl.add_net("q");
        nl.add_dff(clk, d, q);
        let mut sim = Simulator::new(&nl, &DelayModel::Unit);
        sim.set_input(d, true);
        sim.run_until_quiet(100).unwrap();
        assert!(!sim.value(q), "q must not change without a clock edge");
        sim.schedule_input(clk, true, 5);
        sim.run_until_quiet(100).unwrap();
        assert!(sim.value(q), "q captures d on the rising edge");
        // Falling edge does not sample.
        sim.schedule_input(d, false, 1);
        sim.schedule_input(clk, false, 2);
        sim.run_until_quiet(100).unwrap();
        assert!(sim.value(q));
    }

    #[test]
    fn preset_and_settle_establish_initial_state() {
        // SR-latch style feedback: two cross-coupled NORs.
        let mut nl = Netlist::new();
        let s = nl.add_primary_input("s");
        let r = nl.add_primary_input("r");
        let q = nl.add_net("q");
        let nq = nl.add_net("nq");
        nl.add_gate(GateKind::Nor, vec![r, nq], q);
        nl.add_gate(GateKind::Nor, vec![s, q], nq);
        let mut sim = Simulator::new(&nl, &DelayModel::Unit);
        sim.preset(q, true);
        sim.preset(nq, false);
        sim.settle(100).unwrap();
        assert!(sim.value(q));
        assert!(!sim.value(nq));
        // Reset pulse flips the latch.
        sim.schedule_input(r, true, 5);
        sim.schedule_input(r, false, 10);
        sim.run_until_quiet(100).unwrap();
        assert!(!sim.value(q));
        assert!(sim.value(nq));
    }

    #[test]
    fn inertial_mode_filters_pulses_narrower_than_the_gate_delay() {
        // y = a AND (NOT a): with equal delays the overlap pulse is exactly as
        // wide as the AND delay; under inertial semantics it is filtered.
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let na = nl.add_net("na");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Not, vec![a], na);
        nl.add_gate(GateKind::And, vec![a, na], y);
        let mut sim = Simulator::with_style(&nl, &DelayModel::Fixed(3), DelayStyle::Inertial);
        sim.settle(100).unwrap();
        sim.monitor(y);
        sim.schedule_input(a, true, 10);
        sim.run_until_quiet(100).unwrap();
        let wave = sim.waveform(y).unwrap();
        let changes = wave.windows(2).filter(|w| w[0].1 != w[1].1).count();
        assert_eq!(
            changes, 0,
            "inertial mode must filter the narrow pulse: {wave:?}"
        );
    }

    #[test]
    fn inertial_mode_still_propagates_wide_pulses() {
        // A pulse wider than the gate delay must still come through.
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Buf, vec![a], y);
        let mut sim = Simulator::with_style(&nl, &DelayModel::Fixed(2), DelayStyle::Inertial);
        sim.settle(10).unwrap();
        sim.monitor(y);
        sim.schedule_input(a, true, 5);
        sim.schedule_input(a, false, 15);
        sim.run_until_quiet(100).unwrap();
        let wave = sim.waveform(y).unwrap();
        let changes = wave.windows(2).filter(|w| w[0].1 != w[1].1).count();
        assert_eq!(changes, 2);
        assert!(!sim.value(y));
    }

    #[test]
    fn initialize_consistent_fixes_feedback_circuits_without_transients() {
        // Cross-coupled NOR latch initialised to q=1 via the fixpoint helper:
        // no start-up events at all.
        let mut nl = Netlist::new();
        let s = nl.add_primary_input("s");
        let r = nl.add_primary_input("r");
        let q = nl.add_net("q");
        let nq = nl.add_net("nq");
        nl.add_gate(GateKind::Nor, vec![r, nq], q);
        nl.add_gate(GateKind::Nor, vec![s, q], nq);
        let mut sim = Simulator::new(&nl, &DelayModel::Unit);
        sim.initialize_consistent(&[(s, false), (r, false), (q, true)]);
        sim.monitor(q);
        assert!(sim.value(q));
        assert!(!sim.value(nq));
        sim.run_until_quiet(100).unwrap();
        // The latch holds without any transition having occurred.
        let wave = sim.waveform(q).unwrap();
        assert_eq!(wave.windows(2).filter(|w| w[0].1 != w[1].1).count(), 0);
        assert!(sim.value(q));
    }

    #[test]
    fn monitored_waveform_records_initial_value() {
        let (nl, input, out) = inverter_chain(1);
        let mut sim = Simulator::new(&nl, &DelayModel::Unit);
        sim.settle(10).unwrap();
        sim.monitor(out);
        let wave = sim.waveform(out).unwrap();
        assert_eq!(wave.len(), 1);
        let _ = input;
    }
}
