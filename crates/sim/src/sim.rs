use std::fmt;

use crate::queue::{IndexedEventQueue, ScheduledEvent};
use crate::{DelayModel, Fanout, GateKind, NetId, Netlist};

/// Recorded value changes on a monitored net: `(time, new_value)` pairs in
/// chronological order, starting with the value at monitoring start.
pub type Waveform = Vec<(u64, bool)>;

/// Default per-run event budget used when [`SimulatorBuilder::event_budget`]
/// is not called.
pub const DEFAULT_EVENT_BUDGET: usize = 100_000;

/// A net that toggles at least this many times within a single budgeted run
/// is diagnosed as oscillating when the budget runs out.
const OSCILLATION_TOGGLES: u32 = 16;

/// Unified error surface of the simulator.
///
/// Every variant names the offending net and, where meaningful, the
/// simulation time at which the run gave up, so campaign reports and test
/// failures can point at the actual circuit node instead of a bare count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event budget ran out while some net kept toggling — the circuit
    /// is oscillating. `net` is the busiest net of the run.
    Oscillation {
        /// The net with the most value changes during the run.
        net: NetId,
        /// Simulation time when the run gave up.
        time: u64,
        /// Events processed before giving up.
        events_processed: usize,
    },
    /// The event budget ran out without any net showing oscillatory
    /// toggling — the budget is simply too small for the workload.
    BudgetExhausted {
        /// The net of the last processed event.
        net: NetId,
        /// Simulation time when the run gave up.
        time: u64,
        /// Events processed before giving up.
        events_processed: usize,
    },
    /// [`Simulator::initialize_consistent`] failed to find a zero-delay
    /// fixpoint (the feedback logic is unstable under the given fixed nets).
    InconsistentInitialization {
        /// A net still changing when the iteration bound was hit.
        net: NetId,
        /// Fixpoint iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Oscillation {
                net,
                time,
                events_processed,
            } => write!(
                f,
                "oscillation on net {net} at t={time} ({events_processed} events processed)"
            ),
            SimError::BudgetExhausted {
                net,
                time,
                events_processed,
            } => write!(
                f,
                "event budget exhausted at t={time} on net {net} ({events_processed} events)"
            ),
            SimError::InconsistentInitialization { net, iterations } => write!(
                f,
                "no consistent initialization: net {net} still changing after {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// How scheduled output transitions behave when a gate re-evaluates before a
/// previously scheduled transition has been delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayStyle {
    /// Every scheduled transition is delivered (pulses narrower than the gate
    /// delay still propagate). This exposes the maximum number of hazards.
    #[default]
    Transport,
    /// A gate has at most one outstanding transition; re-evaluating to the
    /// currently committed value cancels it (pulses narrower than the gate
    /// delay are filtered). This models the pulse-rejection of real gates and
    /// is used for closed-loop (feedback) simulations.
    Inertial,
}

/// Configures and constructs a [`Simulator`].
///
/// The builder gathers everything that used to be spread over
/// `Simulator::new` / `with_style` / `set_gate_delay` and the per-call
/// `max_events` arguments: the delay model and style, per-gate delay
/// overrides (the loop-delay assumption), the nets to record waveforms for,
/// and the event budget that [`Simulator::run_until_quiet`] and
/// [`Simulator::settle`] enforce per run.
///
/// ```
/// use fantom_sim::{DelayModel, DelayStyle, GateKind, Netlist, Simulator};
///
/// let mut nl = Netlist::new();
/// let a = nl.add_primary_input("a");
/// let y = nl.add_net("y");
/// nl.add_gate(GateKind::Not, vec![a], y);
///
/// let mut sim = Simulator::builder(&nl)
///     .delay_model(DelayModel::Fixed(2))
///     .style(DelayStyle::Transport)
///     .event_budget(1_000)
///     .monitor(y)
///     .build();
/// sim.settle().unwrap();
/// sim.schedule_input(a, true, 5);
/// sim.run_until_quiet().unwrap();
/// assert!(!sim.value(y));
/// ```
#[derive(Debug, Clone)]
pub struct SimulatorBuilder<'a> {
    netlist: &'a Netlist,
    delay_model: DelayModel,
    style: DelayStyle,
    event_budget: usize,
    monitors: Vec<NetId>,
    monitor_all: bool,
    delay_overrides: Vec<(usize, u64)>,
}

impl<'a> SimulatorBuilder<'a> {
    /// Start configuring a simulator for `netlist` (unit delays,
    /// transport style, default event budget, no monitors).
    pub fn new(netlist: &'a Netlist) -> Self {
        SimulatorBuilder {
            netlist,
            delay_model: DelayModel::Unit,
            style: DelayStyle::Transport,
            event_budget: DEFAULT_EVENT_BUDGET,
            monitors: Vec::new(),
            monitor_all: false,
            delay_overrides: Vec::new(),
        }
    }

    /// Delay model the per-gate delays are drawn from.
    pub fn delay_model(mut self, model: DelayModel) -> Self {
        self.delay_model = model;
        self
    }

    /// Transport or inertial transition semantics.
    pub fn style(mut self, style: DelayStyle) -> Self {
        self.style = style;
        self
    }

    /// Event budget enforced by each [`Simulator::run_until_quiet`] /
    /// [`Simulator::settle`] call.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn event_budget(mut self, budget: usize) -> Self {
        assert!(budget > 0, "event budget must be positive");
        self.event_budget = budget;
        self
    }

    /// Override the propagation delay of a single gate.
    ///
    /// Used to model structurally slow elements such as the feedback loop of
    /// an asynchronous state machine, whose delay must exceed every
    /// combinational settling path (the loop-delay assumption).
    ///
    /// # Panics
    ///
    /// `build` panics if `gate_index` is out of range or `delay` is zero.
    pub fn gate_delay(mut self, gate_index: usize, delay: u64) -> Self {
        self.delay_overrides.push((gate_index, delay));
        self
    }

    /// Record a waveform for `net` from time 0.
    pub fn monitor(mut self, net: NetId) -> Self {
        self.monitors.push(net);
        self
    }

    /// Record waveforms for every net of the netlist (used by the parity
    /// suite and the campaign's glitch scan).
    pub fn monitor_all(mut self) -> Self {
        self.monitor_all = true;
        self
    }

    /// Construct the simulator. All nets start at logic 0 at time 0.
    pub fn build(self) -> Simulator<'a> {
        let netlist = self.netlist;
        let num_gates = netlist.num_gates();
        let num_nets = netlist.num_nets();
        let mut gate_delays = self.delay_model.delays_for(num_gates);
        for (gi, delay) in self.delay_overrides {
            assert!(gi < num_gates, "gate index {gi} out of range");
            assert!(delay > 0, "gate delay must be positive");
            gate_delays[gi] = delay;
        }
        let fanout = Fanout::build(netlist);
        let mut fanout_dff_clocks = vec![Vec::new(); num_nets];
        for (di, dff) in netlist.dffs().iter().enumerate() {
            fanout_dff_clocks[dff.clock.0].push(di);
        }
        let fanin_counts: Vec<u32> = netlist
            .gates()
            .iter()
            .map(|g| g.inputs.len() as u32)
            .collect();
        let mut sim = Simulator {
            netlist,
            gate_delays,
            dff_delay: self.delay_model.max_delay(),
            style: self.style,
            event_budget: self.event_budget,
            values: vec![false; num_nets],
            pending: vec![false; num_gates],
            true_counts: vec![0; num_gates],
            fanin_counts,
            // Sources: one per gate (gate-originated transitions) plus one
            // per net (externally driven: inputs and flip-flop outputs).
            queue: IndexedEventQueue::new(num_gates + num_nets),
            fanout,
            fanout_dff_clocks,
            time: 0,
            seq: 0,
            events_processed: 0,
            toggles: vec![0; num_nets],
            monitored: vec![None; num_nets],
        };
        if self.monitor_all {
            for n in 0..num_nets {
                sim.monitor(NetId(n));
            }
        } else {
            for net in self.monitors {
                sim.monitor(net);
            }
        }
        sim
    }
}

/// Event-driven gate-level simulator over a [`Netlist`].
///
/// Built via [`Simulator::builder`]. Scheduling runs on an
/// [`IndexedEventQueue`] — one FIFO per event source (gate or externally
/// driven net) under a position-indexed heap — so inertial-mode supersession
/// cancels transitions in place instead of leaving stale tombstones, and gate
/// re-evaluation is O(1) via per-gate true-input counters maintained
/// incrementally along the fanout CSR.
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    gate_delays: Vec<u64>,
    dff_delay: u64,
    style: DelayStyle,
    event_budget: usize,
    values: Vec<bool>,
    /// Last value scheduled (or rescinded to) per gate.
    pending: Vec<bool>,
    /// Per-gate count of currently-true input connections, with multiplicity.
    /// Together with `fanin_counts` this evaluates any gate in O(1).
    true_counts: Vec<u32>,
    /// Per-gate total number of input connections, with multiplicity.
    fanin_counts: Vec<u32>,
    queue: IndexedEventQueue,
    fanout: Fanout,
    fanout_dff_clocks: Vec<Vec<usize>>,
    time: u64,
    seq: u64,
    events_processed: u64,
    /// Per-net value changes within the current budgeted run (oscillation
    /// diagnosis).
    toggles: Vec<u32>,
    monitored: Vec<Option<Waveform>>,
}

impl<'a> Simulator<'a> {
    /// Start building a simulator for `netlist`.
    pub fn builder(netlist: &'a Netlist) -> SimulatorBuilder<'a> {
        SimulatorBuilder::new(netlist)
    }

    /// Current simulation time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The netlist this simulator was built over.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The committed value of every net, indexed by net id (a borrowed
    /// snapshot for differential oracles).
    pub fn net_values(&self) -> &[bool] {
        &self.values
    }

    /// Cumulative number of events processed over the simulator's lifetime
    /// (feeds the `sim.events_per_s` throughput metric).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The per-run event budget this simulator was built with.
    pub fn event_budget(&self) -> usize {
        self.event_budget
    }

    /// Current value of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.0]
    }

    /// Current values of several nets, in order.
    pub fn values(&self, nets: &[NetId]) -> Vec<bool> {
        nets.iter().map(|&n| self.value(n)).collect()
    }

    /// Begin recording a waveform for `net` (no-op if already monitored).
    pub fn monitor(&mut self, net: NetId) {
        if self.monitored[net.0].is_none() {
            self.monitored[net.0] = Some(vec![(self.time, self.values[net.0])]);
        }
    }

    /// The recorded waveform of a monitored net, if it was monitored.
    pub fn waveform(&self, net: NetId) -> Option<&Waveform> {
        self.monitored[net.0].as_ref()
    }

    /// Force a net to a value *now* (used to establish initial conditions and
    /// to drive primary inputs immediately).
    pub fn set_input(&mut self, net: NetId, value: bool) {
        self.schedule_input(net, value, 0);
    }

    /// Schedule a primary-input (or initialisation) change `delta` time units
    /// from the current simulation time.
    pub fn schedule_input(&mut self, net: NetId, value: bool, delta: u64) {
        let event = ScheduledEvent {
            time: self.time + delta,
            seq: self.seq,
            net,
            value,
        };
        self.seq += 1;
        let source = self.netlist.num_gates() + net.0;
        self.queue.schedule(source, event);
    }

    /// Compute a delay-free fixpoint of the combinational logic with the given
    /// nets held at fixed values, then preset every net (and every gate's
    /// pending state) to that fixpoint. Pending gate transitions are
    /// discarded; externally scheduled input events are kept.
    ///
    /// This establishes a consistent initial condition for circuits with
    /// combinational feedback (such as the FANTOM `Y → y` loop) without the
    /// spurious start-up transients that per-net presetting would cause.
    /// Flip-flop outputs are left at their current values.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InconsistentInitialization`] when the logic has no
    /// zero-delay fixpoint under the given fixed nets (e.g. an unbroken
    /// inverting loop), naming a net that was still changing.
    pub fn initialize_consistent(&mut self, fixed: &[(NetId, bool)]) -> Result<(), SimError> {
        let fixed_idx: Vec<usize> = fixed.iter().map(|(n, _)| n.0).collect();
        for &(net, value) in fixed {
            self.values[net.0] = value;
        }
        // Iterate to a fixpoint; the iteration count is bounded by the number
        // of gates (each pass settles at least one more logic level).
        let mut iterations = 0;
        loop {
            let mut changed = None;
            for gate in self.netlist.gates() {
                if fixed_idx.contains(&gate.output.0) {
                    continue;
                }
                let new_val = gate
                    .kind
                    .eval_iter(gate.inputs.iter().map(|n| self.values[n.0]));
                if self.values[gate.output.0] != new_val {
                    self.values[gate.output.0] = new_val;
                    changed = Some(gate.output);
                }
            }
            iterations += 1;
            match changed {
                None => break,
                Some(net) if iterations > self.netlist.num_gates() => {
                    return Err(SimError::InconsistentInitialization { net, iterations });
                }
                Some(_) => {}
            }
        }
        self.recompute_counts();
        for (gi, gate) in self.netlist.gates().iter().enumerate() {
            self.pending[gi] = self.values[gate.output.0];
            self.queue.cancel(gi);
        }
        let time = self.time;
        for (net, slot) in self.monitored.iter_mut().enumerate() {
            if let Some(wave) = slot {
                wave.push((time, self.values[net]));
            }
        }
        Ok(())
    }

    /// Process events until the queue drains or the event budget is
    /// exhausted. Returns the quiescence time.
    ///
    /// # Errors
    ///
    /// On budget exhaustion, returns [`SimError::Oscillation`] naming the
    /// busiest net when some net kept toggling, and
    /// [`SimError::BudgetExhausted`] otherwise.
    pub fn run_until_quiet(&mut self) -> Result<u64, SimError> {
        for t in self.toggles.iter_mut() {
            *t = 0;
        }
        let mut processed = 0usize;
        while let Some((source, event)) = self.queue.pop() {
            processed += 1;
            self.events_processed += 1;
            if processed > self.event_budget {
                return Err(self.budget_error(processed, event.net));
            }
            self.time = self.time.max(event.time);
            self.apply(source, event);
        }
        Ok(self.time)
    }

    fn budget_error(&self, events_processed: usize, last_net: NetId) -> SimError {
        let busiest = self
            .toggles
            .iter()
            .enumerate()
            .max_by_key(|&(_, &t)| t)
            .map(|(n, &t)| (NetId(n), t))
            .unwrap_or((last_net, 0));
        if busiest.1 >= OSCILLATION_TOGGLES {
            SimError::Oscillation {
                net: busiest.0,
                time: self.time,
                events_processed,
            }
        } else {
            SimError::BudgetExhausted {
                net: last_net,
                time: self.time,
                events_processed,
            }
        }
    }

    fn apply(&mut self, _source: usize, event: ScheduledEvent) {
        let net = event.net.0;
        let old = self.values[net];
        if old == event.value {
            return;
        }
        self.values[net] = event.value;
        self.toggles[net] += 1;
        if let Some(wave) = self.monitored[net].as_mut() {
            wave.push((event.time, event.value));
        }

        // Rising-edge flip-flops clocked by this net sample *before* the
        // combinational fanout walk (scheduling order fixes global seq order).
        if event.value && !old {
            for i in 0..self.fanout_dff_clocks[net].len() {
                let di = self.fanout_dff_clocks[net][i];
                let dff = &self.netlist.dffs()[di];
                let q = dff.q;
                let sampled = self.values[dff.data.0];
                let ev = ScheduledEvent {
                    time: event.time + self.dff_delay,
                    seq: self.seq,
                    net: q,
                    value: sampled,
                };
                self.seq += 1;
                let source = self.netlist.num_gates() + q.0;
                self.queue.schedule(source, ev);
            }
        }

        // Combinational fanout: walk the CSR row by index, updating each
        // reader's true-input counter and re-evaluating it in O(1).
        let (start, end) = self.fanout.row_bounds(net);
        for k in start..end {
            let gi = self.fanout.gate_at(k);
            let mult = self.fanout.mult_at(k);
            if event.value {
                self.true_counts[gi] += mult;
            } else {
                self.true_counts[gi] -= mult;
            }
            let new_val = self.gate_output(gi);
            match self.style {
                DelayStyle::Transport => {
                    if new_val != self.pending[gi] {
                        self.pending[gi] = new_val;
                        self.schedule_gate_event(gi, event.time, new_val);
                    }
                }
                DelayStyle::Inertial => {
                    if new_val == self.values[self.netlist.gates()[gi].output.0] {
                        // The change was rescinded before it could happen:
                        // remove the outstanding transition in place.
                        self.queue.cancel(gi);
                        self.pending[gi] = new_val;
                    } else if new_val != self.pending[gi] || !self.queue.contains(gi) {
                        self.queue.cancel(gi);
                        self.pending[gi] = new_val;
                        self.schedule_gate_event(gi, event.time, new_val);
                    }
                }
            }
        }
    }

    /// O(1) gate evaluation from the incremental counters. `Buf`/`Not` read
    /// their first input directly (they are defined on it, not on the count).
    #[inline]
    fn gate_output(&self, gi: usize) -> bool {
        let gate = &self.netlist.gates()[gi];
        let t = self.true_counts[gi];
        match gate.kind {
            GateKind::Buf => self.values[gate.inputs[0].0],
            GateKind::Not => !self.values[gate.inputs[0].0],
            GateKind::And => t == self.fanin_counts[gi],
            GateKind::Or => t > 0,
            GateKind::Nand => t != self.fanin_counts[gi],
            GateKind::Nor => t == 0,
            GateKind::Xor => t & 1 == 1,
            GateKind::Xnor => t & 1 == 0,
        }
    }

    fn schedule_gate_event(&mut self, gate_index: usize, now: u64, value: bool) {
        let ev = ScheduledEvent {
            time: now + self.gate_delays[gate_index],
            seq: self.seq,
            net: self.netlist.gates()[gate_index].output,
            value,
        };
        self.seq += 1;
        self.queue.schedule(gate_index, ev);
    }

    /// Rebuild every gate's true-input counter from the committed net values.
    fn recompute_counts(&mut self) {
        for (gi, gate) in self.netlist.gates().iter().enumerate() {
            self.true_counts[gi] = gate.inputs.iter().filter(|n| self.values[n.0]).count() as u32;
        }
    }

    /// Evaluate every gate once and schedule updates — used to bring a circuit
    /// with non-zero initial conditions into a consistent state before an
    /// experiment. Returns the settling time.
    ///
    /// # Errors
    ///
    /// Propagates the budget errors of [`Simulator::run_until_quiet`].
    pub fn settle(&mut self) -> Result<u64, SimError> {
        self.recompute_counts();
        for gi in 0..self.netlist.num_gates() {
            let new_val = self.gate_output(gi);
            self.queue.cancel(gi);
            self.pending[gi] = new_val;
            if new_val != self.values[self.netlist.gates()[gi].output.0] {
                let now = self.time;
                self.schedule_gate_event(gi, now, new_val);
            }
        }
        self.run_until_quiet()
    }

    /// Set a net's value directly without scheduling (initial conditions only;
    /// no fanout evaluation happens until [`Simulator::settle`] or a later
    /// event touches the fanout).
    pub fn preset(&mut self, net: NetId, value: bool) {
        let old = self.values[net.0];
        if old != value {
            self.values[net.0] = value;
            let (start, end) = self.fanout.row_bounds(net.0);
            for k in start..end {
                let gi = self.fanout.gate_at(k);
                let mult = self.fanout.mult_at(k);
                if value {
                    self.true_counts[gi] += mult;
                } else {
                    self.true_counts[gi] -= mult;
                }
            }
        }
        if let Some(wave) = self.monitored[net.0].as_mut() {
            wave.push((self.time, value));
        }
    }

    /// `GateKind` helper re-export so harness code can evaluate gates without
    /// importing the netlist module separately.
    pub fn eval_gate(kind: GateKind, inputs: &[bool]) -> bool {
        kind.eval(inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    fn inverter_chain(n: usize) -> (Netlist, NetId, NetId) {
        let mut nl = Netlist::new();
        let input = nl.add_primary_input("in");
        let mut prev = input;
        let mut last = input;
        for i in 0..n {
            let next = nl.add_net(format!("n{i}"));
            nl.add_gate(GateKind::Not, vec![prev], next);
            prev = next;
            last = next;
        }
        (nl, input, last)
    }

    #[test]
    fn inverter_chain_propagates_with_delay() {
        let (nl, input, out) = inverter_chain(4);
        let mut sim = Simulator::builder(&nl).event_budget(1_000).build();
        sim.settle().unwrap();
        let initial = sim.value(out);
        sim.schedule_input(input, true, 5);
        let end = sim.run_until_quiet().unwrap();
        assert_eq!(sim.value(out), !initial);
        assert!(end >= 5 + 4, "four unit delays must elapse, got {end}");
    }

    #[test]
    fn and_gate_glitch_is_observable_with_skewed_inputs() {
        // y = a AND (NOT a) should glitch when 'a' rises, because the inverter
        // is slower than the direct path.
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let na = nl.add_net("na");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Not, vec![a], na);
        nl.add_gate(GateKind::And, vec![a, na], y);
        let mut sim = Simulator::builder(&nl)
            .delay_model(DelayModel::Fixed(3))
            .event_budget(100)
            .monitor(y)
            .build();
        sim.settle().unwrap();
        sim.schedule_input(a, true, 10);
        sim.run_until_quiet().unwrap();
        let wave = sim.waveform(y).unwrap();
        // y pulses 0 -> 1 -> 0: at least two changes after monitoring started.
        let changes = wave.windows(2).filter(|w| w[0].1 != w[1].1).count();
        assert!(changes >= 2, "expected a glitch pulse, waveform {wave:?}");
        assert!(!sim.value(y));
    }

    #[test]
    fn ring_oscillator_is_detected_as_oscillation() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(GateKind::Not, vec![a], b);
        nl.add_gate(GateKind::Buf, vec![b], a);
        let mut sim = Simulator::builder(&nl).event_budget(500).build();
        let result = sim.settle();
        match result {
            Err(SimError::Oscillation {
                net,
                events_processed,
                ..
            }) => {
                assert!(net == a || net == b, "oscillating net is in the ring");
                assert!(events_processed > 500);
            }
            other => panic!("expected oscillation, got {other:?}"),
        }
    }

    #[test]
    fn deep_chain_exhausts_small_budget_without_oscillation_verdict() {
        // A long inverter chain legitimately needs more events than a tiny
        // budget allows; no net toggles often, so the error must be
        // BudgetExhausted, not Oscillation.
        let (nl, input, _) = inverter_chain(64);
        let mut sim = Simulator::builder(&nl).event_budget(10).build();
        // Establish the quiescent state without events (settle() would
        // itself need more than 10 events for a 64-deep chain).
        sim.initialize_consistent(&[(input, false)]).unwrap();
        sim.schedule_input(input, true, 1);
        let result = sim.run_until_quiet();
        assert!(
            matches!(result, Err(SimError::BudgetExhausted { .. })),
            "got {result:?}"
        );
    }

    #[test]
    fn dff_samples_on_rising_edge_only() {
        let mut nl = Netlist::new();
        let clk = nl.add_primary_input("clk");
        let d = nl.add_primary_input("d");
        let q = nl.add_net("q");
        nl.add_dff(clk, d, q);
        let mut sim = Simulator::builder(&nl).event_budget(100).build();
        sim.set_input(d, true);
        sim.run_until_quiet().unwrap();
        assert!(!sim.value(q), "q must not change without a clock edge");
        sim.schedule_input(clk, true, 5);
        sim.run_until_quiet().unwrap();
        assert!(sim.value(q), "q captures d on the rising edge");
        // Falling edge does not sample.
        sim.schedule_input(d, false, 1);
        sim.schedule_input(clk, false, 2);
        sim.run_until_quiet().unwrap();
        assert!(sim.value(q));
    }

    #[test]
    fn preset_and_settle_establish_initial_state() {
        // SR-latch style feedback: two cross-coupled NORs.
        let mut nl = Netlist::new();
        let s = nl.add_primary_input("s");
        let r = nl.add_primary_input("r");
        let q = nl.add_net("q");
        let nq = nl.add_net("nq");
        nl.add_gate(GateKind::Nor, vec![r, nq], q);
        nl.add_gate(GateKind::Nor, vec![s, q], nq);
        let mut sim = Simulator::builder(&nl).event_budget(100).build();
        sim.preset(q, true);
        sim.preset(nq, false);
        sim.settle().unwrap();
        assert!(sim.value(q));
        assert!(!sim.value(nq));
        // Reset pulse flips the latch.
        sim.schedule_input(r, true, 5);
        sim.schedule_input(r, false, 10);
        sim.run_until_quiet().unwrap();
        assert!(!sim.value(q));
        assert!(sim.value(nq));
    }

    #[test]
    fn inertial_mode_filters_pulses_narrower_than_the_gate_delay() {
        // y = a AND (NOT a): with equal delays the overlap pulse is exactly as
        // wide as the AND delay; under inertial semantics it is filtered.
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let na = nl.add_net("na");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Not, vec![a], na);
        nl.add_gate(GateKind::And, vec![a, na], y);
        let mut sim = Simulator::builder(&nl)
            .delay_model(DelayModel::Fixed(3))
            .style(DelayStyle::Inertial)
            .event_budget(100)
            .monitor(y)
            .build();
        sim.settle().unwrap();
        sim.schedule_input(a, true, 10);
        sim.run_until_quiet().unwrap();
        let wave = sim.waveform(y).unwrap();
        let changes = wave.windows(2).filter(|w| w[0].1 != w[1].1).count();
        assert_eq!(
            changes, 0,
            "inertial mode must filter the narrow pulse: {wave:?}"
        );
    }

    #[test]
    fn inertial_mode_still_propagates_wide_pulses() {
        // A pulse wider than the gate delay must still come through.
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Buf, vec![a], y);
        let mut sim = Simulator::builder(&nl)
            .delay_model(DelayModel::Fixed(2))
            .style(DelayStyle::Inertial)
            .event_budget(100)
            .monitor(y)
            .build();
        sim.settle().unwrap();
        sim.schedule_input(a, true, 5);
        sim.schedule_input(a, false, 15);
        sim.run_until_quiet().unwrap();
        let wave = sim.waveform(y).unwrap();
        let changes = wave.windows(2).filter(|w| w[0].1 != w[1].1).count();
        assert_eq!(changes, 2);
        assert!(!sim.value(y));
    }

    #[test]
    fn initialize_consistent_fixes_feedback_circuits_without_transients() {
        // Cross-coupled NOR latch initialised to q=1 via the fixpoint helper:
        // no start-up events at all.
        let mut nl = Netlist::new();
        let s = nl.add_primary_input("s");
        let r = nl.add_primary_input("r");
        let q = nl.add_net("q");
        let nq = nl.add_net("nq");
        nl.add_gate(GateKind::Nor, vec![r, nq], q);
        nl.add_gate(GateKind::Nor, vec![s, q], nq);
        let mut sim = Simulator::builder(&nl).event_budget(100).build();
        sim.initialize_consistent(&[(s, false), (r, false), (q, true)])
            .unwrap();
        sim.monitor(q);
        assert!(sim.value(q));
        assert!(!sim.value(nq));
        sim.run_until_quiet().unwrap();
        // The latch holds without any transition having occurred.
        let wave = sim.waveform(q).unwrap();
        assert_eq!(wave.windows(2).filter(|w| w[0].1 != w[1].1).count(), 0);
        assert!(sim.value(q));
    }

    #[test]
    fn initialize_consistent_reports_unstable_feedback() {
        // A bare inverting loop has no zero-delay fixpoint.
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(GateKind::Not, vec![a], b);
        nl.add_gate(GateKind::Buf, vec![b], a);
        let mut sim = Simulator::builder(&nl).build();
        let result = sim.initialize_consistent(&[]);
        assert!(
            matches!(result, Err(SimError::InconsistentInitialization { .. })),
            "got {result:?}"
        );
    }

    #[test]
    fn monitored_waveform_records_initial_value() {
        let (nl, input, out) = inverter_chain(1);
        let mut sim = Simulator::builder(&nl).event_budget(10).build();
        sim.settle().unwrap();
        sim.monitor(out);
        let wave = sim.waveform(out).unwrap();
        assert_eq!(wave.len(), 1);
        let _ = input;
    }

    #[test]
    fn xor_with_duplicated_input_evaluates_by_multiplicity() {
        // y = a XOR a XOR b == b; the duplicated input must count twice in the
        // incremental evaluation or toggling `a` would flip y.
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Xor, vec![a, a, b], y);
        let mut sim = Simulator::builder(&nl).event_budget(100).build();
        sim.settle().unwrap();
        assert!(!sim.value(y));
        sim.schedule_input(a, true, 1);
        sim.run_until_quiet().unwrap();
        assert!(!sim.value(y), "a xor a cancels");
        sim.schedule_input(b, true, 1);
        sim.run_until_quiet().unwrap();
        assert!(sim.value(y));
    }
}
