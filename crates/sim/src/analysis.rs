//! Waveform analysis helpers: transition counting, glitch detection and
//! stability windows.
//!
//! A *glitch* on a net, for the purposes of hazard validation, is any pair of
//! opposite transitions within an observation window on a net that was
//! supposed to change at most once (single-output-change principle) or not at
//! all (an invariant state variable).

use crate::Waveform;

/// Number of value changes recorded in `waveform` at or after `since`.
pub fn transitions_since(waveform: &Waveform, since: u64) -> usize {
    waveform
        .windows(2)
        .filter(|w| w[1].0 >= since && w[0].1 != w[1].1)
        .count()
}

/// The value a waveform holds at time `t` (the last recorded value at or
/// before `t`), or the initial value if `t` precedes every sample.
pub fn value_at(waveform: &Waveform, t: u64) -> bool {
    waveform
        .iter()
        .take_while(|(time, _)| *time <= t)
        .last()
        .or_else(|| waveform.first())
        .map(|(_, v)| *v)
        .unwrap_or(false)
}

/// `true` if the net changed value more than `allowed` times at or after
/// `since` — i.e. it glitched with respect to the expected change count.
pub fn has_glitch(waveform: &Waveform, since: u64, allowed: usize) -> bool {
    transitions_since(waveform, since) > allowed
}

/// `true` if the waveform is constant (no changes) at or after `since`.
pub fn is_constant_since(waveform: &Waveform, since: u64) -> bool {
    transitions_since(waveform, since) == 0
}

/// The last time at which the waveform changed value, if it ever changed.
pub fn last_change(waveform: &Waveform) -> Option<u64> {
    waveform
        .windows(2)
        .filter(|w| w[0].1 != w[1].1)
        .map(|w| w[1].0)
        .next_back()
}

/// Intervals `(start, end)` during which `condition_wave` holds value `true`,
/// clipped to `[since, until]`. Useful for checking that an output is stable
/// whenever a "capture window" (e.g. `SSD ∧ ¬fsv`) is open.
pub fn true_intervals(condition_wave: &Waveform, since: u64, until: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut current: Option<u64> = if value_at(condition_wave, since) {
        Some(since)
    } else {
        None
    };
    for &(t, v) in condition_wave
        .iter()
        .filter(|(t, _)| *t > since && *t <= until)
    {
        match (current, v) {
            (None, true) => current = Some(t),
            (Some(start), false) => {
                out.push((start, t));
                current = None;
            }
            _ => {}
        }
    }
    if let Some(start) = current {
        out.push((start, until));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(points: &[(u64, bool)]) -> Waveform {
        points.to_vec()
    }

    #[test]
    fn transition_counting() {
        let w = wave(&[(0, false), (5, true), (7, false), (9, false)]);
        assert_eq!(transitions_since(&w, 0), 2);
        assert_eq!(transitions_since(&w, 6), 1);
        assert_eq!(transitions_since(&w, 8), 0);
    }

    #[test]
    fn value_lookup() {
        let w = wave(&[(0, false), (5, true), (9, false)]);
        assert!(!value_at(&w, 0));
        assert!(!value_at(&w, 4));
        assert!(value_at(&w, 5));
        assert!(value_at(&w, 8));
        assert!(!value_at(&w, 100));
    }

    #[test]
    fn glitch_detection_against_allowance() {
        let single_change = wave(&[(0, false), (5, true)]);
        assert!(!has_glitch(&single_change, 0, 1));
        let pulse = wave(&[(0, false), (5, true), (6, false)]);
        assert!(has_glitch(&pulse, 0, 1));
        assert!(!has_glitch(&pulse, 0, 2));
        assert!(is_constant_since(&pulse, 7));
    }

    #[test]
    fn last_change_reported() {
        assert_eq!(last_change(&wave(&[(0, false)])), None);
        assert_eq!(
            last_change(&wave(&[(0, false), (3, true), (8, false)])),
            Some(8)
        );
    }

    #[test]
    fn true_interval_extraction() {
        let w = wave(&[(0, false), (5, true), (9, false), (12, true)]);
        let intervals = true_intervals(&w, 0, 20);
        assert_eq!(intervals, vec![(5, 9), (12, 20)]);
        // Window starting inside a true region.
        let intervals2 = true_intervals(&w, 6, 8);
        assert_eq!(intervals2, vec![(6, 8)]);
        // Empty when always false in window.
        let intervals3 = true_intervals(&wave(&[(0, false)]), 0, 10);
        assert!(intervals3.is_empty());
    }
}
