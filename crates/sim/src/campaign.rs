//! Building blocks for Monte-Carlo hazard-validation campaigns.
//!
//! A campaign simulates one circuit under many sampled delay assignments and
//! input sequences, looking for glitches the analytical hazard checks claim
//! cannot happen. This module provides the circuit-agnostic pieces:
//!
//! * [`DelaySweep`] — a deterministic schedule of delay assignments
//!   (unit / all-min / all-max / seeded-random styles, round-robin by trial
//!   index) with split-mix seed derivation so every `(campaign seed, trial)`
//!   pair maps to one delay assignment regardless of execution order;
//! * [`ZeroDelayOracle`] — a cheap dirty-flag + process-queue netlist
//!   evaluator (the `rva` propagation idiom) that predicts the zero-delay
//!   fixpoint after an input change, used as a differential reference for the
//!   event-driven simulator's settled state;
//! * [`Harness`] — a [`Simulator`] + oracle pair that drives one trial step
//!   by step, reporting per-step timing windows and oracle verdicts.
//!
//! The machine-aware campaign driver (which transitions to exercise, which
//! outputs are analytically hazard-free, report aggregation, parallel seeds)
//! lives in the `seance` crate on top of these pieces.

use std::collections::VecDeque;

use crate::{DelayModel, Fanout, NetId, Netlist, SimError, Simulator};

/// Split-mix style derivation of independent RNG seeds from a campaign seed
/// and a stream index. Every consumer of campaign randomness derives its seed
/// this way, which is what makes reports byte-identical for any worker count.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The delay-assignment style of one campaign trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayStyleKind {
    /// Every gate has delay 1.
    Unit,
    /// Every gate at the sweep minimum.
    Min,
    /// Every gate at the sweep maximum.
    Max,
    /// Per-gate delays drawn uniformly from the sweep range.
    Random,
}

impl DelayStyleKind {
    /// Short lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DelayStyleKind::Unit => "unit",
            DelayStyleKind::Min => "min",
            DelayStyleKind::Max => "max",
            DelayStyleKind::Random => "random",
        }
    }
}

/// A deterministic sweep over delay assignments.
///
/// Trials round-robin through the four [`DelayStyleKind`] styles; random
/// trials derive their seed from `(base_seed, trial)` so the assignment for a
/// trial is independent of which worker runs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelaySweep {
    /// Smallest per-gate delay of the sweep.
    pub min: u64,
    /// Largest per-gate delay of the sweep.
    pub max: u64,
}

impl DelaySweep {
    /// The style assigned to `trial`.
    pub fn style_for_trial(&self, trial: usize) -> DelayStyleKind {
        match trial % 4 {
            0 => DelayStyleKind::Unit,
            1 => DelayStyleKind::Min,
            2 => DelayStyleKind::Max,
            _ => DelayStyleKind::Random,
        }
    }

    /// The delay model of `trial` under campaign seed `base_seed`.
    pub fn model_for_trial(&self, base_seed: u64, trial: usize) -> DelayModel {
        match self.style_for_trial(trial) {
            DelayStyleKind::Unit => DelayModel::Unit,
            DelayStyleKind::Min => DelayModel::Fixed(self.min),
            DelayStyleKind::Max => DelayModel::Fixed(self.max),
            DelayStyleKind::Random => DelayModel::Random {
                min: self.min,
                max: self.max,
                seed: derive_seed(base_seed, trial as u64),
            },
        }
    }
}

/// Zero-delay differential oracle over a [`Netlist`].
///
/// Propagation follows the dirty-flag + process-queue idiom: changing a net
/// marks its reader gates dirty and enqueues them; settling dequeues gates,
/// re-evaluates each once, and re-enqueues the readers of any output that
/// changed. For a race-free circuit this converges to the unique zero-delay
/// fixpoint the event-driven simulator must also reach once quiescent —
/// disagreement means either a simulator bug or a genuine race resolved
/// differently under the sampled delays.
///
/// Flip-flop `q` nets have no combinational driver and are simply carried at
/// their loaded values; campaign comparisons exclude them.
#[derive(Debug)]
pub struct ZeroDelayOracle<'a> {
    netlist: &'a Netlist,
    fanout: Fanout,
    values: Vec<bool>,
    dirty: Vec<bool>,
    queue: VecDeque<u32>,
    step_bound: usize,
}

impl<'a> ZeroDelayOracle<'a> {
    /// An oracle over `netlist`, all nets at logic 0.
    pub fn new(netlist: &'a Netlist) -> Self {
        ZeroDelayOracle {
            netlist,
            fanout: Fanout::build(netlist),
            values: vec![false; netlist.num_nets()],
            dirty: vec![false; netlist.num_gates()],
            queue: VecDeque::new(),
            // A settled circuit re-evaluates each gate O(depth) times; 64
            // rounds of the whole netlist is far beyond any converging run.
            step_bound: netlist.num_gates().max(1) * 64,
        }
    }

    /// Overwrite every net value from a committed simulator snapshot and
    /// clear all dirty state.
    pub fn load(&mut self, values: &[bool]) {
        self.values.copy_from_slice(values);
        for d in self.dirty.iter_mut() {
            *d = false;
        }
        self.queue.clear();
    }

    /// The oracle's current value of `net`.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.0]
    }

    /// All current net values, indexed by net id.
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Mark every gate dirty, forcing a full re-evaluation on the next
    /// [`ZeroDelayOracle::settle`] — used to reach a consistent state from
    /// scratch instead of from a loaded simulator snapshot.
    pub fn invalidate_all(&mut self) {
        for (gi, d) in self.dirty.iter_mut().enumerate() {
            if !*d {
                *d = true;
                self.queue.push_back(gi as u32);
            }
        }
    }

    /// Drive `net` to `value`, marking its readers dirty.
    pub fn set(&mut self, net: NetId, value: bool) {
        if self.values[net.0] != value {
            self.values[net.0] = value;
            self.enqueue_readers(net.0);
        }
    }

    fn enqueue_readers(&mut self, net: usize) {
        let (start, end) = self.fanout.row_bounds(net);
        for k in start..end {
            let gi = self.fanout.gate_at(k);
            if !self.dirty[gi] {
                self.dirty[gi] = true;
                self.queue.push_back(gi as u32);
            }
        }
    }

    /// Propagate until no gate is dirty.
    ///
    /// # Errors
    ///
    /// Returns the output net of a still-changing gate if the step bound is
    /// hit (the logic is unstable at zero delay).
    pub fn settle(&mut self) -> Result<(), NetId> {
        let mut steps = 0usize;
        while let Some(gi) = self.queue.pop_front() {
            let gi = gi as usize;
            self.dirty[gi] = false;
            let gate = &self.netlist.gates()[gi];
            let new_val = gate
                .kind
                .eval_iter(gate.inputs.iter().map(|n| self.values[n.0]));
            let out = gate.output.0;
            if self.values[out] != new_val {
                steps += 1;
                if steps > self.step_bound {
                    return Err(gate.output);
                }
                self.values[out] = new_val;
                self.enqueue_readers(out);
            }
        }
        Ok(())
    }
}

/// What the differential oracle concluded about one trial step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleVerdict {
    /// The simulator's settled values match the zero-delay fixpoint on every
    /// combinationally driven net.
    Agreed,
    /// A net settled differently than the zero-delay fixpoint predicts.
    Disagreed {
        /// The first differing net (lowest id).
        net: NetId,
    },
    /// The oracle found no zero-delay fixpoint for this input change.
    Unstable {
        /// A net still changing when the oracle gave up.
        net: NetId,
    },
    /// No comparison was made (oracle disabled, or the simulator erred).
    Skipped,
}

/// Timing window and verdicts of one input-change step of a trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// Transitions at or after this time belong to the step (`t0`).
    pub start_time: u64,
    /// Simulation time when the circuit went quiet (or the run gave up).
    pub end_time: u64,
    /// The simulator error, if the step did not settle.
    pub error: Option<SimError>,
    /// Differential verdict against the zero-delay oracle.
    pub oracle: OracleVerdict,
}

impl StepOutcome {
    /// `true` if the step settled and the oracle (if consulted) agreed.
    pub fn is_clean(&self) -> bool {
        self.error.is_none() && !matches!(self.oracle, OracleVerdict::Disagreed { .. })
    }
}

/// A simulator plus optional zero-delay oracle, driven step by step.
///
/// The harness owns the per-trial mechanics shared by every campaign: sync
/// the oracle to the simulator's committed state before each input change,
/// apply the change to both, run the simulator to quiescence, and compare
/// settled values on every combinationally driven net.
#[derive(Debug)]
pub struct Harness<'a> {
    sim: Simulator<'a>,
    oracle: Option<ZeroDelayOracle<'a>>,
    /// Per net: `true` for flip-flop outputs, which the oracle cannot predict.
    dff_q: Vec<bool>,
}

impl<'a> Harness<'a> {
    /// Wrap a built simulator; `use_oracle` enables the differential check.
    pub fn new(sim: Simulator<'a>, use_oracle: bool) -> Self {
        let netlist = sim.netlist();
        let mut dff_q = vec![false; netlist.num_nets()];
        for dff in netlist.dffs() {
            dff_q[dff.q.0] = true;
        }
        let oracle = use_oracle.then(|| ZeroDelayOracle::new(netlist));
        Harness { sim, oracle, dff_q }
    }

    /// The wrapped simulator.
    pub fn sim(&self) -> &Simulator<'a> {
        &self.sim
    }

    /// Mutable access to the wrapped simulator (monitor setup, presets).
    pub fn sim_mut(&mut self) -> &mut Simulator<'a> {
        &mut self.sim
    }

    /// Establish a consistent initial condition and run to quiescence.
    ///
    /// # Errors
    ///
    /// Propagates initialization and budget errors from the simulator.
    pub fn init(&mut self, fixed: &[(NetId, bool)]) -> Result<u64, SimError> {
        self.sim.initialize_consistent(fixed)?;
        self.sim.run_until_quiet()
    }

    /// Apply one input-change step: each `(net, value, delta)` is scheduled
    /// `delta` time units from now (skewed multiple-input changes use
    /// distinct deltas), the simulator runs to quiescence, and the settled
    /// state is compared against the zero-delay fixpoint.
    pub fn step(&mut self, changes: &[(NetId, bool, u64)]) -> StepOutcome {
        let start_time = self.sim.time() + 1;
        // Predict the fixpoint from the pre-step committed state.
        let mut oracle_verdict = OracleVerdict::Skipped;
        if let Some(oracle) = self.oracle.as_mut() {
            oracle.load(self.sim.net_values());
            for &(net, value, _) in changes {
                oracle.set(net, value);
            }
            oracle_verdict = match oracle.settle() {
                Ok(()) => OracleVerdict::Agreed, // refined after the sim runs
                Err(net) => OracleVerdict::Unstable { net },
            };
        }
        for &(net, value, delta) in changes {
            self.sim.schedule_input(net, value, delta.max(1));
        }
        let (end_time, error) = match self.sim.run_until_quiet() {
            Ok(t) => (t, None),
            Err(e) => (self.sim.time(), Some(e)),
        };
        if error.is_none() {
            if let (OracleVerdict::Agreed, Some(oracle)) = (oracle_verdict, self.oracle.as_ref()) {
                let sim_values = self.sim.net_values();
                let mismatch = oracle
                    .values()
                    .iter()
                    .zip(sim_values.iter())
                    .enumerate()
                    .find(|&(n, (o, s))| o != s && !self.dff_q[n]);
                if let Some((n, _)) = mismatch {
                    oracle_verdict = OracleVerdict::Disagreed { net: NetId(n) };
                }
            }
        } else {
            oracle_verdict = OracleVerdict::Skipped;
        }
        StepOutcome {
            start_time,
            end_time,
            error,
            oracle: oracle_verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayStyle, GateKind};

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_eq!(a, derive_seed(1, 0));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sweep_round_robins_styles() {
        let sweep = DelaySweep { min: 2, max: 7 };
        assert_eq!(sweep.style_for_trial(0), DelayStyleKind::Unit);
        assert_eq!(sweep.style_for_trial(1), DelayStyleKind::Min);
        assert_eq!(sweep.style_for_trial(2), DelayStyleKind::Max);
        assert_eq!(sweep.style_for_trial(3), DelayStyleKind::Random);
        assert_eq!(sweep.style_for_trial(4), DelayStyleKind::Unit);
        assert_eq!(sweep.model_for_trial(9, 1), DelayModel::Fixed(2));
        // Random trials with different indices draw different seeds.
        assert_ne!(sweep.model_for_trial(9, 3), sweep.model_for_trial(9, 7));
        // ... but the same (seed, trial) is stable.
        assert_eq!(sweep.model_for_trial(9, 3), sweep.model_for_trial(9, 3));
    }

    #[test]
    fn oracle_settles_combinational_logic() {
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let na = nl.add_net("na");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Not, vec![a], na);
        nl.add_gate(GateKind::And, vec![na, b], y);
        let mut oracle = ZeroDelayOracle::new(&nl);
        oracle.invalidate_all(); // consistent state from scratch
        oracle.set(b, true);
        oracle.settle().unwrap();
        assert!(oracle.value(y), "!a & b with a=0, b=1");
        oracle.set(a, true);
        oracle.settle().unwrap();
        assert!(!oracle.value(y));
    }

    #[test]
    fn oracle_reports_zero_delay_instability() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(GateKind::Not, vec![a], b);
        nl.add_gate(GateKind::Buf, vec![b], a);
        let mut oracle = ZeroDelayOracle::new(&nl);
        oracle.invalidate_all();
        oracle.set(a, true); // kick the loop
        assert!(oracle.settle().is_err());
    }

    #[test]
    fn harness_step_agrees_on_hazardous_but_convergent_logic() {
        // a AND !a glitches under skewed delays but settles to 0 — the
        // oracle and simulator agree on the settled state.
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let na = nl.add_net("na");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Not, vec![a], na);
        nl.add_gate(GateKind::And, vec![a, na], y);
        let sim = Simulator::builder(&nl)
            .delay_model(DelayModel::Fixed(3))
            .style(DelayStyle::Transport)
            .event_budget(1_000)
            .monitor(y)
            .build();
        let mut harness = Harness::new(sim, true);
        harness.init(&[(a, false)]).unwrap();
        let outcome = harness.step(&[(a, true, 1)]);
        assert!(outcome.is_clean(), "outcome {outcome:?}");
        assert_eq!(outcome.oracle, OracleVerdict::Agreed);
        assert!(!harness.sim().value(y));
        // The glitch is still visible in the waveform.
        let wave = harness.sim().waveform(y).unwrap();
        let changes = wave.windows(2).filter(|w| w[0].1 != w[1].1).count();
        assert!(changes >= 2, "glitch recorded: {wave:?}");
    }

    #[test]
    fn harness_skips_oracle_when_disabled() {
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Buf, vec![a], y);
        let sim = Simulator::builder(&nl).event_budget(100).build();
        let mut harness = Harness::new(sim, false);
        harness.init(&[]).unwrap();
        let outcome = harness.step(&[(a, true, 1)]);
        assert_eq!(outcome.oracle, OracleVerdict::Skipped);
        assert!(outcome.error.is_none());
        assert!(harness.sim().value(y));
    }
}
