use std::fmt;

use fantom_boolean::Expr;

/// Identifier of a net (wire) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

impl NetId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The logic function computed by a [`Gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Identity (used to model line/loop delays).
    Buf,
    /// Inverter.
    Not,
    /// N-ary AND.
    And,
    /// N-ary OR.
    Or,
    /// N-ary NAND.
    Nand,
    /// N-ary NOR.
    Nor,
    /// N-ary XOR (parity).
    Xor,
    /// N-ary XNOR (complement of parity).
    Xnor,
}

impl GateKind {
    /// Evaluate the gate function on the given input values.
    pub fn eval(self, inputs: &[bool]) -> bool {
        self.eval_iter(inputs.iter().copied())
    }

    /// Evaluate the gate over an iterator of input values without
    /// materializing a slice — the allocation-free path the event loop uses.
    pub fn eval_iter(self, mut inputs: impl Iterator<Item = bool>) -> bool {
        match self {
            GateKind::Buf => inputs.next().expect("gate input"),
            GateKind::Not => !inputs.next().expect("gate input"),
            GateKind::And => inputs.all(|b| b),
            GateKind::Or => inputs.any(|b| b),
            GateKind::Nand => !inputs.all(|b| b),
            GateKind::Nor => !inputs.any(|b| b),
            GateKind::Xor => inputs.filter(|&b| b).count() % 2 == 1,
            GateKind::Xnor => inputs.filter(|&b| b).count() % 2 == 0,
        }
    }
}

/// A combinational gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Logic function.
    pub kind: GateKind,
    /// Input nets (order matters only for documentation; all functions are
    /// symmetric except `Buf`/`Not`, which use the first input).
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
}

/// A rising-edge-triggered D flip-flop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dff {
    /// Clock net; the flip-flop samples on a 0→1 transition of this net.
    pub clock: NetId,
    /// Data input net.
    pub data: NetId,
    /// Output net.
    pub q: NetId,
}

/// A flat gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    net_names: Vec<String>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    primary_inputs: Vec<NetId>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Add a named internal net and return its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        self.net_names.push(name.into());
        NetId(self.net_names.len() - 1)
    }

    /// Add a primary input net.
    pub fn add_primary_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.primary_inputs.push(id);
        id
    }

    /// Add a gate driving `output` from `inputs` and return its index.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any referenced net does not exist.
    pub fn add_gate(&mut self, kind: GateKind, inputs: Vec<NetId>, output: NetId) -> usize {
        assert!(!inputs.is_empty(), "gate must have at least one input");
        for n in inputs.iter().chain(std::iter::once(&output)) {
            assert!(n.0 < self.net_names.len(), "net {n} does not exist");
        }
        self.gates.push(Gate {
            kind,
            inputs,
            output,
        });
        self.gates.len() - 1
    }

    /// Add a rising-edge D flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if any referenced net does not exist.
    pub fn add_dff(&mut self, clock: NetId, data: NetId, q: NetId) -> usize {
        for n in [clock, data, q] {
            assert!(n.0 < self.net_names.len(), "net {n} does not exist");
        }
        self.dffs.push(Dff { clock, data, q });
        self.dffs.len() - 1
    }

    /// Instantiate gates computing `expr` over the nets `var_nets`
    /// (variable `i` of the expression reads `var_nets[i]`), returning the
    /// output net. Constant sub-expressions become `Buf`/`Not` gates fed from
    /// a dedicated constant-zero net named `const0`.
    ///
    /// # Panics
    ///
    /// Panics if the expression references a variable index outside `var_nets`.
    pub fn add_expr(&mut self, expr: &Expr, var_nets: &[NetId], name_hint: &str) -> NetId {
        match expr {
            Expr::Var(i) => var_nets[*i],
            Expr::Const(value) => {
                let zero = self.const_zero();
                if *value {
                    let out = self.add_net(format!("{name_hint}_const1"));
                    self.add_gate(GateKind::Not, vec![zero], out);
                    out
                } else {
                    zero
                }
            }
            Expr::Not(inner) => {
                let input = self.add_expr(inner, var_nets, name_hint);
                let out = self.add_net(format!("{name_hint}_not"));
                self.add_gate(GateKind::Not, vec![input], out);
                out
            }
            Expr::And(ops) | Expr::Or(ops) | Expr::Nor(ops) | Expr::Nand(ops) => {
                let kind = match expr {
                    Expr::And(_) => GateKind::And,
                    Expr::Or(_) => GateKind::Or,
                    Expr::Nor(_) => GateKind::Nor,
                    _ => GateKind::Nand,
                };
                let inputs: Vec<NetId> = ops
                    .iter()
                    .map(|op| self.add_expr(op, var_nets, name_hint))
                    .collect();
                let out = self.add_net(format!("{name_hint}_{kind:?}").to_lowercase());
                self.add_gate(kind, inputs, out);
                out
            }
        }
    }

    fn const_zero(&mut self) -> NetId {
        if let Some(pos) = self.net_names.iter().position(|n| n == "const0") {
            NetId(pos)
        } else {
            self.add_net("const0")
        }
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gates of the netlist.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The flip-flops of the netlist.
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// The declared primary inputs.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// The name of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.0]
    }

    /// Find a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_names.iter().position(|n| n == name).map(NetId)
    }

    /// Longest combinational path length (in gates) from any net to any net,
    /// ignoring flip-flops; an upper bound useful for sizing loop delays.
    pub fn combinational_depth(&self) -> usize {
        // Longest path in the gate DAG; feedback loops are cut by taking each
        // gate at most once along a path (simple bounded DFS with memoisation
        // that treats revisited gates as depth 0).
        let mut memo: Vec<Option<usize>> = vec![None; self.gates.len()];
        let mut visiting = vec![false; self.gates.len()];
        let mut best = 0;
        for g in 0..self.gates.len() {
            best = best.max(self.depth_of(g, &mut memo, &mut visiting));
        }
        best
    }

    fn depth_of(
        &self,
        gate: usize,
        memo: &mut Vec<Option<usize>>,
        visiting: &mut Vec<bool>,
    ) -> usize {
        if let Some(d) = memo[gate] {
            return d;
        }
        if visiting[gate] {
            return 0; // feedback loop: cut here
        }
        visiting[gate] = true;
        let mut depth = 1;
        for input in &self.gates[gate].inputs {
            for (gi, other) in self.gates.iter().enumerate() {
                if other.output == *input {
                    depth = depth.max(1 + self.depth_of(gi, memo, visiting));
                }
            }
        }
        visiting[gate] = false;
        memo[gate] = Some(depth);
        depth
    }
}

/// Net→gate fanout of a [`Netlist`] in compressed sparse row form.
///
/// Row `n` lists the distinct gates reading net `n`, in ascending gate order,
/// each with the *multiplicity* of the connection (a gate reading the same net
/// twice — legal for parity gates — appears once with multiplicity 2). The
/// flat layout lets the event loop and the zero-delay oracle walk a net's
/// fanout by index with no per-event clone or allocation, and the
/// multiplicities are what make counter-based incremental gate evaluation
/// exact for `Xor`/`Xnor`.
#[derive(Debug, Clone, Default)]
pub struct Fanout {
    offsets: Vec<u32>,
    gates: Vec<u32>,
    mults: Vec<u32>,
}

impl Fanout {
    /// Build the fanout CSR for `netlist`.
    pub fn build(netlist: &Netlist) -> Self {
        // Per-gate sorted, multiplicity-counted input lists.
        let gate_inputs: Vec<Vec<(usize, u32)>> = netlist
            .gates()
            .iter()
            .map(|gate| {
                let mut nets: Vec<usize> = gate.inputs.iter().map(|n| n.0).collect();
                nets.sort_unstable();
                let mut runs: Vec<(usize, u32)> = Vec::with_capacity(nets.len());
                for n in nets {
                    match runs.last_mut() {
                        Some((last, m)) if *last == n => *m += 1,
                        _ => runs.push((n, 1)),
                    }
                }
                runs
            })
            .collect();
        let mut counts = vec![0u32; netlist.num_nets() + 1];
        for runs in &gate_inputs {
            for &(n, _) in runs {
                counts[n + 1] += 1;
            }
        }
        let mut offsets = counts;
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let total = *offsets.last().expect("offsets") as usize;
        let mut gates = vec![0u32; total];
        let mut mults = vec![0u32; total];
        let mut cursor: Vec<u32> = offsets[..offsets.len() - 1].to_vec();
        // Filling in ascending gate order leaves every row sorted by gate id,
        // which is what makes the fanout walk order (and therefore event
        // sequence numbering) deterministic and equal to the old scheduler's.
        for (gi, runs) in gate_inputs.iter().enumerate() {
            for &(n, m) in runs {
                gates[cursor[n] as usize] = gi as u32;
                mults[cursor[n] as usize] = m;
                cursor[n] += 1;
            }
        }
        Fanout {
            offsets,
            gates,
            mults,
        }
    }

    /// Index bounds of net `n`'s row (for index-based walks that must not
    /// borrow the whole structure).
    #[inline]
    pub fn row_bounds(&self, net: usize) -> (usize, usize) {
        (self.offsets[net] as usize, self.offsets[net + 1] as usize)
    }

    /// The gate at flat index `k` of the CSR.
    #[inline]
    pub fn gate_at(&self, k: usize) -> usize {
        self.gates[k] as usize
    }

    /// The connection multiplicity at flat index `k` of the CSR.
    #[inline]
    pub fn mult_at(&self, k: usize) -> u32 {
        self.mults[k]
    }

    /// Iterator over `(gate_index, multiplicity)` for the gates reading `net`.
    pub fn readers(&self, net: usize) -> impl Iterator<Item = (usize, u32)> + '_ {
        let (start, end) = self.row_bounds(net);
        (start..end).map(move |k| (self.gate_at(k), self.mult_at(k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_functions() {
        assert!(GateKind::And.eval(&[true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(!GateKind::Nand.eval(&[true, true]));
        assert!(GateKind::Xor.eval(&[true, false, false]));
        assert!(GateKind::Xnor.eval(&[true, true, false]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
    }

    #[test]
    fn build_and_lookup_nets() {
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Not, vec![a], y);
        assert_eq!(nl.num_nets(), 2);
        assert_eq!(nl.num_gates(), 1);
        assert_eq!(nl.net_by_name("y"), Some(y));
        assert_eq!(nl.net_name(a), "a");
        assert_eq!(nl.primary_inputs(), &[a]);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_gate_inputs_panic() {
        let mut nl = Netlist::new();
        let y = nl.add_net("y");
        nl.add_gate(GateKind::And, vec![], y);
    }

    #[test]
    fn expr_instantiation_matches_expr_eval() {
        use fantom_boolean::Cover;
        let cover = Cover::parse(3, "1-0 011").unwrap();
        let expr = Expr::first_level_gates(&cover);

        let mut nl = Netlist::new();
        let vars: Vec<NetId> = (0..3)
            .map(|i| nl.add_primary_input(format!("x{i}")))
            .collect();
        let out = nl.add_expr(&expr, &vars, "f");
        assert!(nl.num_gates() > 0);
        assert!(nl.net_name(out).starts_with("f_"));
    }

    #[test]
    fn combinational_depth_of_chain() {
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        let d = nl.add_net("d");
        nl.add_gate(GateKind::Not, vec![a], b);
        nl.add_gate(GateKind::Not, vec![b], c);
        nl.add_gate(GateKind::Not, vec![c], d);
        assert_eq!(nl.combinational_depth(), 3);
    }

    #[test]
    fn fanout_rows_are_sorted_with_multiplicity() {
        let mut nl = Netlist::new();
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let y0 = nl.add_net("y0");
        let y1 = nl.add_net("y1");
        nl.add_gate(GateKind::Xor, vec![a, a, b], y0); // a read twice
        nl.add_gate(GateKind::And, vec![a, b], y1);
        let fanout = Fanout::build(&nl);
        let a_readers: Vec<(usize, u32)> = fanout.readers(a.0).collect();
        assert_eq!(a_readers, vec![(0, 2), (1, 1)]);
        let b_readers: Vec<(usize, u32)> = fanout.readers(b.0).collect();
        assert_eq!(b_readers, vec![(0, 1), (1, 1)]);
        assert_eq!(fanout.readers(y0.0).count(), 0);
    }

    #[test]
    fn dff_registration() {
        let mut nl = Netlist::new();
        let clk = nl.add_primary_input("clk");
        let d = nl.add_primary_input("d");
        let q = nl.add_net("q");
        nl.add_dff(clk, d, q);
        assert_eq!(nl.dffs().len(), 1);
    }
}
