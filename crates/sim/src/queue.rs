//! Position-indexed event queue — the scheduling core of the simulator.
//!
//! A gate-level event simulator schedules transitions from a bounded set of
//! *sources*: every gate output and every externally driven net. A global
//! `BinaryHeap` over raw events (the pre-PR 7 scheduler) loses that structure:
//! membership is unanswerable without a scan, a superseded transition can only
//! be cancelled by leaving a stale tombstone to be skipped at pop time, and
//! the heap grows with the number of *events* instead of the number of
//! *active sources*.
//!
//! [`IndexedEventQueue`] keeps one short FIFO of pending events per source and
//! a binary heap over the **sources**, ordered by each source's earliest
//! pending event, with a position array mapping every source to its heap slot
//! (the `FiniteHeapedMap` shape). That gives:
//!
//! * **O(1) membership** — `contains(source)` is an array read, which is how
//!   the inertial delay mode knows whether a gate has an outstanding
//!   transition without auxiliary sequence-number bookkeeping;
//! * **in-place reprioritization** — scheduling an earlier event for an
//!   already-queued source sifts its existing heap entry, and cancelling a
//!   superseded transition removes it outright, so no stale events are ever
//!   popped;
//! * **a small heap** — the heap holds at most one entry per source, so sift
//!   depth tracks the number of simultaneously active gates, not the total
//!   backlog of scheduled transitions.
//!
//! Events from one source are almost always scheduled in nondecreasing time
//! order (a gate's output events are `now + delay` with `now` monotone), so
//! the per-source insertion is amortized O(1); the global pop order is the
//! exact `(time, seq)` order a global heap would produce, which is what lets
//! the parity suite pin this queue event-for-event against the old scheduler.

use std::collections::VecDeque;

use crate::NetId;

/// A scheduled value change, ordered by `(time, seq)`.
///
/// `seq` is a globally unique, monotonically increasing issue number assigned
/// by the simulator; it breaks ties between events scheduled for the same
/// instant so that delivery order equals scheduling order (FIFO at equal
/// times), exactly as the old global-heap scheduler behaved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// Absolute simulation time at which the change is delivered.
    pub time: u64,
    /// Global issue number (unique; ties at equal `time` resolve FIFO).
    pub seq: u64,
    /// The net that changes.
    pub net: NetId,
    /// The value the net changes to.
    pub value: bool,
}

impl ScheduledEvent {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

const NULL_POS: u32 = u32::MAX;

/// Position-indexed heap of per-source event FIFOs (see the module docs).
///
/// The source id space is fixed at construction; the simulator uses
/// `gate_index` for gate-originated events and `num_gates + net` for
/// externally driven nets (primary inputs, flip-flop outputs).
#[derive(Debug, Clone)]
pub struct IndexedEventQueue {
    /// Heap of source ids, ordered by the head event of each source's FIFO.
    heap: Vec<u32>,
    /// `pos[source]` is the heap slot of `source`, or `NULL_POS` if the
    /// source has no pending events.
    pos: Vec<u32>,
    /// Per-source pending events, sorted by `(time, seq)`.
    fifos: Vec<VecDeque<ScheduledEvent>>,
    /// Total number of pending events across all sources.
    len: usize,
}

impl IndexedEventQueue {
    /// An empty queue over `num_sources` event sources.
    pub fn new(num_sources: usize) -> Self {
        IndexedEventQueue {
            heap: Vec::with_capacity(num_sources.min(64)),
            pos: vec![NULL_POS; num_sources],
            fifos: vec![VecDeque::new(); num_sources],
            len: 0,
        }
    }

    /// Total number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if `source` has at least one pending event — O(1).
    #[inline]
    pub fn contains(&self, source: usize) -> bool {
        self.pos[source] != NULL_POS
    }

    /// Number of pending events of a single source.
    pub fn source_len(&self, source: usize) -> usize {
        self.fifos[source].len()
    }

    /// The `(time, seq)` key of a source's earliest pending event.
    #[inline]
    fn head_key(&self, source: u32) -> (u64, u64) {
        self.fifos[source as usize]
            .front()
            .expect("queued source has a head event")
            .key()
    }

    /// Schedule `event` for `source`.
    ///
    /// Events of one source are kept sorted by `(time, seq)`; the common case
    /// (nondecreasing times) appends in O(1), and only an event that becomes
    /// the source's new head touches the heap (an in-place decrease-key).
    pub fn schedule(&mut self, source: usize, event: ScheduledEvent) {
        let fifo = &mut self.fifos[source];
        let key = event.key();
        let mut idx = fifo.len();
        while idx > 0 && fifo[idx - 1].key() > key {
            idx -= 1;
        }
        fifo.insert(idx, event);
        self.len += 1;
        let p = self.pos[source];
        if p == NULL_POS {
            let slot = self.heap.len();
            self.heap.push(source as u32);
            self.pos[source] = slot as u32;
            self.sift_up(slot);
        } else if idx == 0 {
            // The source's head got earlier: restore the heap in place.
            self.sift_up(p as usize);
        }
    }

    /// Remove and return the globally earliest pending event (by
    /// `(time, seq)`), together with its source id.
    pub fn pop(&mut self) -> Option<(usize, ScheduledEvent)> {
        let &root = self.heap.first()?;
        let source = root as usize;
        let event = self.fifos[source].pop_front().expect("root has a head");
        self.len -= 1;
        if self.fifos[source].is_empty() {
            self.remove_heap_slot(0);
        } else {
            // The head key only grew; sift the root down.
            self.sift_down(0);
        }
        Some((source, event))
    }

    /// Drop every pending event of `source` (the inertial mode's supersede:
    /// the cancelled transition is removed *now* instead of being popped and
    /// skipped later). Returns the number of events removed.
    pub fn cancel(&mut self, source: usize) -> usize {
        let p = self.pos[source];
        if p == NULL_POS {
            return 0;
        }
        let dropped = self.fifos[source].len();
        self.fifos[source].clear();
        self.len -= dropped;
        self.remove_heap_slot(p as usize);
        dropped
    }

    /// Drop every pending event of every source.
    pub fn clear(&mut self) {
        for &s in &self.heap {
            self.fifos[s as usize].clear();
            self.pos[s as usize] = NULL_POS;
        }
        self.heap.clear();
        self.len = 0;
    }

    /// Remove the heap entry at `slot`, restoring the heap property around
    /// the element swapped into its place.
    fn remove_heap_slot(&mut self, slot: usize) {
        let source = self.heap.swap_remove(slot);
        self.pos[source as usize] = NULL_POS;
        if slot < self.heap.len() {
            self.pos[self.heap[slot] as usize] = slot as u32;
            // The swapped-in element may violate either direction.
            self.sift_up(slot);
            self.sift_down(self.pos_slot_of(slot));
        }
    }

    /// After a sift_up from `slot`, the element that must sift down is the
    /// one now occupying `slot` (sift_up may have moved a different source
    /// there).
    fn pos_slot_of(&self, slot: usize) -> usize {
        slot
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if self.head_key(self.heap[slot]) < self.head_key(self.heap[parent]) {
                self.heap.swap(slot, parent);
                self.pos[self.heap[slot] as usize] = slot as u32;
                self.pos[self.heap[parent] as usize] = parent as u32;
                slot = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * slot + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let mut best = left;
            if right < n && self.head_key(self.heap[right]) < self.head_key(self.heap[left]) {
                best = right;
            }
            if self.head_key(self.heap[best]) < self.head_key(self.heap[slot]) {
                self.heap.swap(slot, best);
                self.pos[self.heap[slot] as usize] = slot as u32;
                self.pos[self.heap[best] as usize] = best as u32;
                slot = best;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn ev(time: u64, seq: u64, net: usize, value: bool) -> ScheduledEvent {
        ScheduledEvent {
            time,
            seq,
            net: NetId(net),
            value,
        }
    }

    /// SplitMix64 — deterministic stream for the differential test.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = IndexedEventQueue::new(4);
        q.schedule(0, ev(10, 0, 0, true));
        q.schedule(1, ev(5, 1, 1, true));
        q.schedule(2, ev(10, 2, 2, false));
        q.schedule(3, ev(5, 3, 3, false));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| (e.time, e.seq))
            .collect();
        assert_eq!(order, vec![(5, 1), (5, 3), (10, 0), (10, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    fn membership_and_cancel() {
        let mut q = IndexedEventQueue::new(3);
        assert!(!q.contains(1));
        q.schedule(1, ev(7, 0, 1, true));
        q.schedule(1, ev(9, 1, 1, false));
        assert!(q.contains(1));
        assert_eq!(q.source_len(1), 2);
        assert_eq!(q.cancel(1), 2);
        assert!(!q.contains(1));
        assert!(q.is_empty());
        assert_eq!(q.cancel(1), 0);
    }

    #[test]
    fn earlier_event_reprioritizes_in_place() {
        let mut q = IndexedEventQueue::new(2);
        q.schedule(0, ev(50, 0, 0, true));
        // Out-of-order (earlier) event for the same source becomes its head.
        q.schedule(0, ev(20, 1, 0, false));
        q.schedule(1, ev(30, 2, 1, true));
        let (_, first) = q.pop().unwrap();
        assert_eq!((first.time, first.seq), (20, 1));
        let (_, second) = q.pop().unwrap();
        assert_eq!((second.time, second.seq), (30, 2));
        let (_, third) = q.pop().unwrap();
        assert_eq!((third.time, third.seq), (50, 0));
    }

    #[test]
    fn differential_against_global_binary_heap() {
        // Random schedules (per-source nondecreasing times, plus occasional
        // out-of-order external events) must pop in exactly the order a
        // global (time, seq) heap produces — interleaved with random cancels
        // mirrored on both sides.
        let mut rng = 0xDEAD_BEEF_u64;
        for round in 0..50 {
            let sources = 1 + (mix(&mut rng) % 12) as usize;
            let mut q = IndexedEventQueue::new(sources);
            let mut reference: BinaryHeap<Reverse<(u64, u64, usize, bool)>> = BinaryHeap::new();
            let mut last_time = vec![0u64; sources];
            let mut seq = 0u64;
            let mut popped = Vec::new();
            let mut expected = Vec::new();
            for _ in 0..200 {
                match mix(&mut rng) % 10 {
                    0..=6 => {
                        let s = (mix(&mut rng) % sources as u64) as usize;
                        // Mostly nondecreasing per source; sometimes earlier.
                        let t = if mix(&mut rng) % 8 == 0 {
                            mix(&mut rng) % 100
                        } else {
                            last_time[s] + mix(&mut rng) % 10
                        };
                        last_time[s] = last_time[s].max(t);
                        let v = mix(&mut rng) % 2 == 0;
                        q.schedule(s, ev(t, seq, s, v));
                        reference.push(Reverse((t, seq, s, v)));
                        seq += 1;
                    }
                    7 => {
                        let s = (mix(&mut rng) % sources as u64) as usize;
                        q.cancel(s);
                        let keep: Vec<_> = reference
                            .drain()
                            .filter(|Reverse((_, _, src, _))| *src != s)
                            .collect();
                        reference = keep.into_iter().collect();
                    }
                    _ => {
                        let got = q.pop().map(|(_, e)| (e.time, e.seq, e.net.0, e.value));
                        let want = reference.pop().map(|Reverse(x)| x);
                        popped.push(got);
                        expected.push(want);
                    }
                }
            }
            while let Some((_, e)) = q.pop() {
                popped.push(Some((e.time, e.seq, e.net.0, e.value)));
            }
            while let Some(Reverse(x)) = reference.pop() {
                expected.push(Some(x));
            }
            assert_eq!(popped, expected, "round {round}");
            assert!(q.is_empty());
        }
    }
}
