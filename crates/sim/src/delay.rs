use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Assignment of propagation delays to the gates of a netlist.
///
/// The speed-independent model of the paper treats gate delays as unbounded
/// but finite; hazards are observable only for particular delay orderings.
/// The [`DelayModel::Random`] variant draws a delay for every gate from a
/// seeded uniform distribution so that experiments are reproducible while
/// still exploring adversarial orderings across seeds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DelayModel {
    /// Every gate has delay 1.
    #[default]
    Unit,
    /// Every gate has the same fixed delay.
    Fixed(u64),
    /// Each gate draws a delay uniformly from `min..=max` using `seed`.
    Random {
        /// Smallest possible gate delay.
        min: u64,
        /// Largest possible gate delay.
        max: u64,
        /// RNG seed (same seed ⇒ same delays).
        seed: u64,
    },
}

impl DelayModel {
    /// Produce the per-gate delay vector for a netlist with `num_gates` gates.
    pub fn delays_for(&self, num_gates: usize) -> Vec<u64> {
        match self {
            DelayModel::Unit => vec![1; num_gates],
            DelayModel::Fixed(d) => vec![(*d).max(1); num_gates],
            DelayModel::Random { min, max, seed } => {
                let lo = (*min).max(1);
                let hi = (*max).max(lo);
                let mut rng = StdRng::seed_from_u64(*seed);
                (0..num_gates).map(|_| rng.gen_range(lo..=hi)).collect()
            }
        }
    }

    /// The largest delay this model can assign to a single gate.
    pub fn max_delay(&self) -> u64 {
        match self {
            DelayModel::Unit => 1,
            DelayModel::Fixed(d) => (*d).max(1),
            DelayModel::Random { min, max, .. } => (*max).max((*min).max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_and_fixed_models() {
        assert_eq!(DelayModel::Unit.delays_for(3), vec![1, 1, 1]);
        assert_eq!(DelayModel::Fixed(5).delays_for(2), vec![5, 5]);
        // A zero fixed delay is clamped to 1 to keep causality.
        assert_eq!(DelayModel::Fixed(0).delays_for(1), vec![1]);
    }

    #[test]
    fn random_model_is_reproducible_and_bounded() {
        let m = DelayModel::Random {
            min: 2,
            max: 9,
            seed: 42,
        };
        let a = m.delays_for(16);
        let b = m.delays_for(16);
        assert_eq!(a, b);
        assert!(a.iter().all(|&d| (2..=9).contains(&d)));
        let other_seed = DelayModel::Random {
            min: 2,
            max: 9,
            seed: 43,
        }
        .delays_for(16);
        assert_ne!(a, other_seed);
    }

    #[test]
    fn max_delay_reported() {
        assert_eq!(DelayModel::Unit.max_delay(), 1);
        assert_eq!(DelayModel::Fixed(7).max_delay(), 7);
        assert_eq!(
            DelayModel::Random {
                min: 1,
                max: 4,
                seed: 0
            }
            .max_delay(),
            4
        );
    }
}
