//! Event-driven gate-level logic simulation with glitch detection.
//!
//! The paper validates FANTOM machines on real hardware; this workspace
//! substitutes a delay-accurate logic simulator (see `DESIGN.md`,
//! "Substitutions"). Hazards are defined in terms of gate- and line-delay
//! orderings, so an event-driven simulator that assigns adversarial
//! (randomised) delays to every gate exercises exactly the orderings that
//! make a hazard observable.
//!
//! The crate provides:
//!
//! * [`Netlist`] — gates ([`GateKind`]), rising-edge D flip-flops and nets,
//!   including direct construction from `fantom_boolean::Expr` trees,
//! * [`DelayModel`] — unit, fixed and seeded-random gate delays,
//! * [`Simulator`] — a transport-delay event-driven simulator with waveform
//!   recording,
//! * [`analysis`] — waveform utilities (transition counting, glitch
//!   detection, stability windows).
//!
//! # Example
//!
//! ```
//! use fantom_sim::{DelayModel, GateKind, Netlist, Simulator};
//!
//! let mut netlist = Netlist::new();
//! let a = netlist.add_primary_input("a");
//! let b = netlist.add_primary_input("b");
//! let y = netlist.add_net("y");
//! netlist.add_gate(GateKind::And, vec![a, b], y);
//!
//! let mut sim = Simulator::new(&netlist, &DelayModel::Unit);
//! sim.set_input(a, true);
//! sim.set_input(b, true);
//! sim.run_until_quiet(1_000).expect("combinational circuit settles");
//! assert!(sim.value(y));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod delay;
mod netlist;
mod sim;

pub use delay::DelayModel;
pub use netlist::{Dff, Gate, GateKind, NetId, Netlist};
pub use sim::{DelayStyle, SimError, Simulator, Waveform};
