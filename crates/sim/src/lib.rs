//! Event-driven gate-level logic simulation with glitch detection and
//! Monte-Carlo hazard-validation building blocks.
//!
//! The paper validates FANTOM machines on real hardware; this workspace
//! substitutes a delay-accurate logic simulator (see `DESIGN.md`,
//! "Substitutions"). Hazards are defined in terms of gate- and line-delay
//! orderings, so an event-driven simulator that assigns adversarial
//! (randomised) delays to every gate exercises exactly the orderings that
//! make a hazard observable.
//!
//! The crate provides:
//!
//! * [`Netlist`] — gates ([`GateKind`]), rising-edge D flip-flops and nets,
//!   including direct construction from `fantom_boolean::Expr` trees, plus
//!   the shared [`Fanout`] CSR both evaluation engines walk,
//! * [`DelayModel`] — unit, fixed and seeded-random gate delays,
//! * [`Simulator`] — an event-driven simulator (transport or inertial
//!   [`DelayStyle`]) with waveform recording, configured through
//!   [`SimulatorBuilder`]: delay model and style, per-gate delay overrides
//!   for the loop-delay assumption, monitors, and the event budget enforced
//!   by the argument-free [`Simulator::run_until_quiet`] /
//!   [`Simulator::settle`],
//! * [`queue`] — the scheduling core: [`queue::IndexedEventQueue`], a
//!   position-indexed heap of per-source event FIFOs with O(1) membership
//!   and in-place cancellation (no stale-event tombstones),
//! * [`campaign`] — Monte-Carlo campaign building blocks: deterministic
//!   delay sweeps ([`campaign::DelaySweep`]), the zero-delay differential
//!   oracle ([`campaign::ZeroDelayOracle`], dirty-flag + process-queue
//!   propagation), and the per-trial [`campaign::Harness`],
//! * [`analysis`] — waveform utilities (transition counting, glitch
//!   detection, stability windows).
//!
//! Errors are unified in [`SimError`]: budget exhaustion, oscillation and
//! inconsistent initialization, each naming the offending net.
//!
//! # Example
//!
//! ```
//! use fantom_sim::{DelayModel, GateKind, Netlist, Simulator};
//!
//! let mut netlist = Netlist::new();
//! let a = netlist.add_primary_input("a");
//! let b = netlist.add_primary_input("b");
//! let y = netlist.add_net("y");
//! netlist.add_gate(GateKind::And, vec![a, b], y);
//!
//! let mut sim = Simulator::builder(&netlist)
//!     .delay_model(DelayModel::Unit)
//!     .event_budget(1_000)
//!     .build();
//! sim.set_input(a, true);
//! sim.set_input(b, true);
//! sim.run_until_quiet().expect("combinational circuit settles");
//! assert!(sim.value(y));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod campaign;
mod delay;
mod netlist;
pub mod queue;
mod sim;

pub use delay::DelayModel;
pub use netlist::{Dff, Fanout, Gate, GateKind, NetId, Netlist};
pub use sim::{DelayStyle, SimError, Simulator, SimulatorBuilder, Waveform, DEFAULT_EVENT_BUDGET};
